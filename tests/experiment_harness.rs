//! Smoke tests for the experiment harness: every figure/table experiment runs
//! at Quick scale and produces output with the expected shape. (The
//! paper-scale runs live in the benchmark harness.)

use sablock::eval::experiments::tab03::GridScale;
use sablock::eval::experiments::{fig05, fig06, fig07, fig08, fig12, fig13, tab02, tab03, Scale};

#[test]
fn fig05_and_fig06_produce_the_papers_axes() {
    let fig5 = fig05::run(15);
    assert_eq!(fig5.series.len(), 6);
    assert_eq!(fig5.to_table().num_rows(), 29);

    let fig6 = fig06::run(Scale::Quick).unwrap();
    assert_eq!(fig6.cora.collision_curves.len(), 6);
    assert_eq!(fig6.ncvoter.distributions.len(), 4);
    assert!(fig6.cora.distribution_table().render().contains("q=4"));
}

#[test]
fn fig07_and_fig08_cover_all_semantic_hash_configs() {
    let fig7 = fig07::run(Scale::Quick).unwrap();
    assert_eq!(fig7.runs.len(), 5);
    assert!(fig7.get("H11").is_some() && fig7.get("H15").is_some());

    let fig8 = fig08::run(Scale::Quick).unwrap();
    assert_eq!(fig8.runs.len(), 5);
    assert!(fig8.get("H21").is_some() && fig8.get("H25").is_some());
}

#[test]
fn tab02_reports_all_taxonomy_variants() {
    let output = tab02::run(Scale::Quick).unwrap();
    assert_eq!(output.impacts.len(), 4);
    assert!(output.to_table().render().contains("t_bib,2"));
}

#[test]
fn tab03_and_fig12_cover_every_technique() {
    let tab3 = tab03::run(Scale::Quick, GridScale::Reduced).unwrap();
    assert_eq!(tab3.rows.len(), 14);
    assert!(tab3.get("SA-LSH").is_some());

    let fig12_output = fig12::run(Scale::Quick).unwrap();
    assert_eq!(fig12_output.cora.rows.len(), 5);
    assert_eq!(fig12_output.ncvoter.rows.len(), 5);
}

#[test]
fn fig13_scales_over_increasing_sizes() {
    let output = fig13::run_sizes(&[400, 800]).unwrap();
    assert_eq!(output.points.len(), 2);
    assert!(output.points[1].records > output.points[0].records);
    assert!(output.time_table().render().contains("SF"));
}
