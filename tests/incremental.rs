//! Integration tests of the incremental (streaming-ingest) blocking
//! subsystem: batched ingest of **any** partition of a dataset — batch size
//! 1, one giant batch, arbitrary random splits, with and without interleaved
//! removals — must be observationally identical to one-shot blocking, both
//! in block structure and in streamed Γ counts, and the golden Cora delta
//! trajectory is pinned so a drift in delta enumeration cannot hide behind a
//! correct final total.

use proptest::prelude::*;

use sablock::core::incremental::{IncrementalBlocker, IncrementalSaLshBlocker};
use sablock::core::lsh::salsh::SaLshBlockerBuilder;
use sablock::core::semantic::semhash::SemhashFamily;
use sablock::prelude::*;

/// The Cora quality configuration (the paper's k = 4, l = 63 operating
/// point is too heavy for per-case property tests; this is the small
/// configuration the workspace's other integration tests use).
fn cora_dataset(records: usize) -> Dataset {
    CoraGenerator::new(CoraConfig { num_records: records, seed: 0xD5EED, ..CoraConfig::default() })
        .generate()
        .unwrap()
}

fn lsh_builder() -> SaLshBlockerBuilder {
    SaLshBlocker::builder().attributes(["title", "authors"]).qgram(3).rows_per_band(2).bands(8).seed(0xB10C)
}

/// SA-LSH over the bibliographic taxonomy with the semhash family pinned —
/// the family must be identical between the one-shot reference and the
/// incremental index for byte-level comparison (see `core::incremental`).
fn salsh_builder() -> SaLshBlockerBuilder {
    let tree = bibliographic_taxonomy();
    let zeta = PatternSemanticFunction::cora_default(&tree).unwrap();
    let family = SemhashFamily::from_all_leaves(&tree).unwrap();
    lsh_builder().semantic(
        SemanticConfig::new(tree, zeta)
            .with_w(2)
            .with_mode(SemanticMode::Or)
            .with_seed(11)
            .with_pinned_family(family),
    )
}

/// Splits `records` into consecutive batches whose sizes follow `cuts`
/// (each at least 1); the tail goes into a final batch.
fn ingest_in_batches(
    blocker: &mut IncrementalSaLshBlocker,
    dataset: &Dataset,
    batch_sizes: &[usize],
) -> u64 {
    let mut offset = 0usize;
    let mut total_delta = 0u64;
    let mut sizes = batch_sizes.iter().copied();
    while offset < dataset.len() {
        let size = sizes.next().unwrap_or(dataset.len() - offset).clamp(1, dataset.len() - offset);
        let delta = blocker.insert_batch(&dataset.records()[offset..offset + size]).unwrap();
        total_delta += delta.num_pairs();
        offset += size;
    }
    total_delta
}

/// One-shot blocks with a set of record ids filtered out of every block —
/// the reference semantics of tombstoning removal.
fn filtered_reference(blocks: &BlockCollection, removed: &[RecordId]) -> BlockCollection {
    let filtered: Vec<Block> = blocks
        .blocks()
        .iter()
        .map(|b| {
            Block::new(
                b.key().to_string(),
                b.members().iter().copied().filter(|id| !removed.contains(id)).collect(),
            )
        })
        .collect();
    BlockCollection::from_blocks(filtered)
}

#[test]
fn extreme_batch_shapes_match_one_shot() {
    let dataset = cora_dataset(120);
    for (name, builder) in [("LSH", lsh_builder()), ("SA-LSH", salsh_builder())] {
        let reference = builder.clone().build().unwrap().block(&dataset).unwrap();
        // Batch size 1 (one insert per record) and one giant batch.
        for batch_size in [1usize, dataset.len()] {
            let mut incremental = builder.clone().into_incremental().unwrap();
            let sizes: Vec<usize> = vec![batch_size; dataset.len().div_ceil(batch_size)];
            let total_delta = ingest_in_batches(&mut incremental, &dataset, &sizes);
            let snapshot = incremental.snapshot();
            assert_eq!(snapshot.blocks(), reference.blocks(), "{name}, batch_size={batch_size}");
            assert_eq!(total_delta, reference.num_distinct_pairs(), "{name}, batch_size={batch_size}");
        }
    }
}

#[test]
fn incremental_ingest_is_thread_count_invariant() {
    let dataset = cora_dataset(150);
    let run = |threads: usize| {
        let mut incremental = salsh_builder().threads(threads).into_incremental().unwrap();
        for chunk in dataset.records().chunks(40) {
            incremental.insert_batch(chunk).unwrap();
        }
        incremental.snapshot()
    };
    let single = run(1);
    let quad = run(4);
    assert_eq!(single.blocks(), quad.blocks(), "1 vs 4 ingest workers");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any partition of the dataset into batches yields blocks and Γ counts
    /// identical to one-shot blocking, for plain LSH and pinned SA-LSH.
    #[test]
    fn any_batch_partition_matches_one_shot(
        sizes in proptest::collection::vec(1usize..40, 1..10),
        semantic in any::<bool>(),
    ) {
        let dataset = cora_dataset(90);
        let builder = if semantic { salsh_builder() } else { lsh_builder() };
        let reference = builder.clone().build().unwrap().block(&dataset).unwrap();
        let mut incremental = builder.into_incremental().unwrap();
        let total_delta = ingest_in_batches(&mut incremental, &dataset, &sizes);
        let snapshot = incremental.snapshot();
        prop_assert_eq!(snapshot.blocks(), reference.blocks());
        // Delta counts are disjoint across batches: their sum is |Γ| exactly,
        // and the streamed count of the snapshot agrees.
        prop_assert_eq!(total_delta, reference.num_distinct_pairs());
        let truth = dataset.ground_truth();
        let streamed = BlockingMetrics::evaluate(&snapshot, truth);
        let one_shot = BlockingMetrics::evaluate(&reference, truth);
        prop_assert_eq!(streamed, one_shot);
    }

    /// Interleaved inserts and removes: after every prefix of batches a few
    /// records are tombstoned; the final snapshot equals the one-shot blocks
    /// with exactly those records filtered out, and the streamed Γ counts of
    /// the two collections agree field for field.
    #[test]
    fn interleaved_inserts_and_removes_match_filtered_one_shot(
        sizes in proptest::collection::vec(1usize..30, 1..8),
        removals in proptest::collection::vec(0u32..80, 0..12),
        semantic in any::<bool>(),
    ) {
        let dataset = cora_dataset(80);
        let builder = if semantic { salsh_builder() } else { lsh_builder() };
        let reference = builder.clone().build().unwrap().block(&dataset).unwrap();
        let mut incremental = builder.into_incremental().unwrap();

        // Ingest batch by batch, removing the next queued id after each batch
        // (only ids already ingested are eligible — removal of future ids is
        // an error by contract).
        let mut removal_queue: Vec<RecordId> = removals.iter().map(|&id| RecordId(id)).collect();
        let mut removed: Vec<RecordId> = Vec::new();
        let mut offset = 0usize;
        let mut sizes_iter = sizes.iter().copied();
        while offset < dataset.len() {
            let size = sizes_iter.next().unwrap_or(dataset.len() - offset).clamp(1, dataset.len() - offset);
            incremental.insert_batch(&dataset.records()[offset..offset + size]).unwrap();
            offset += size;
            removal_queue.retain(|&id| {
                if id.index() < offset {
                    if incremental.remove(id).unwrap() {
                        removed.push(id);
                    }
                    false
                } else {
                    true
                }
            });
        }
        for id in removal_queue {
            // Whatever never became eligible is removed at the end (all ids
            // are ingested by now).
            if incremental.remove(id).unwrap() {
                removed.push(id);
            }
        }

        let expected = filtered_reference(&reference, &removed);
        let snapshot = incremental.snapshot();
        prop_assert_eq!(snapshot.blocks(), expected.blocks());
        let truth = dataset.ground_truth();
        prop_assert_eq!(
            BlockingMetrics::evaluate(&snapshot, truth),
            BlockingMetrics::evaluate(&expected, truth)
        );
    }
}

/// Golden Cora delta-pair trajectory: ingesting the deterministic 100-record
/// Cora prefix in five 20-record batches through the pinned SA-LSH
/// configuration must reproduce these exact per-batch delta counts **and**
/// per-batch running Γ/Γ_tp counter values (printed by
/// `cargo test --test incremental -- --nocapture` when they shift) — not
/// just the final sums, so a drift in the running-counter maintenance cannot
/// hide behind a correct total. The cumulative sum is additionally pinned
/// against the one-shot |Γ| so the table cannot drift as a whole.
#[test]
fn golden_cora_delta_pair_counts() {
    const GOLDEN_DELTAS: [u64; 5] = [66, 84, 76, 77, 340];
    const GOLDEN_RUNNING: [(u64, u64); 5] = [(66, 63), (150, 135), (226, 188), (303, 241), (643, 539)];
    let dataset = cora_dataset(100);
    let entities = dataset.ground_truth().entity_table();
    let mut incremental = salsh_builder().into_incremental().unwrap();
    let mut deltas = Vec::new();
    let mut running = Vec::new();
    let mut offset = 0usize;
    for chunk in dataset.records().chunks(20) {
        deltas.push(
            incremental
                .insert_batch_with_entities(chunk, &entities[offset..offset + chunk.len()])
                .unwrap()
                .num_pairs(),
        );
        offset += chunk.len();
        let counts = incremental.running_counts();
        running.push((counts.pairs, counts.true_positives));
    }
    println!("golden Cora delta counts: {deltas:?}");
    println!("golden Cora running (|Γ|, |Γ_tp|): {running:?}");
    assert_eq!(deltas, GOLDEN_DELTAS, "per-batch delta pair counts shifted");
    assert_eq!(running, GOLDEN_RUNNING, "per-batch running Γ/Γ_tp counters shifted");
    let reference = salsh_builder().build().unwrap().block(&dataset).unwrap();
    assert_eq!(deltas.iter().sum::<u64>(), reference.num_distinct_pairs());
    assert_eq!(incremental.snapshot().blocks(), reference.blocks());
    // The final running counters equal a full evaluation of the one-shot
    // blocking — PC's numerator straight from the counter.
    let reference_metrics = BlockingMetrics::evaluate(&reference, dataset.ground_truth());
    assert_eq!(incremental.running_counts().pairs, reference_metrics.candidate_pairs);
    assert_eq!(incremental.running_counts().true_positives, reference_metrics.true_positives);
}
