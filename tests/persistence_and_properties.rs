//! Cross-crate round-trip and statistical-property tests: CSV persistence of
//! generated datasets, and agreement between the analytic collision model and
//! the empirical behaviour of the blocker.

use proptest::prelude::*;

use sablock::core::lsh::probability::banding_collision_probability;
use sablock::core::minhash::{MinHasher, MinhashConfig};
use sablock::datasets::csv::{from_csv_string, to_csv_string};
use sablock::prelude::*;
use sablock::textual::qgrams::hashed_qgram_set;

#[test]
fn generated_datasets_round_trip_through_csv() {
    let original = CoraGenerator::new(CoraConfig {
        num_records: 250,
        ..CoraConfig::default()
    })
    .generate()
    .unwrap();
    let csv = to_csv_string(&original).unwrap();
    let restored = from_csv_string("cora-restored", &csv).unwrap();
    assert_eq!(restored.len(), original.len());
    assert_eq!(restored.schema().names(), original.schema().names());
    assert_eq!(
        restored.ground_truth().num_true_matches(),
        original.ground_truth().num_true_matches()
    );
    for (a, b) in original.records().iter().zip(restored.records()) {
        assert_eq!(a.values(), b.values());
    }

    // Blocking the restored dataset gives identical results.
    let blocker = SaLshBlocker::builder()
        .attributes(["title", "authors"])
        .qgram(3)
        .rows_per_band(3)
        .bands(10)
        .build()
        .unwrap();
    let blocks_a = blocker.block(&original).unwrap();
    let blocks_b = blocker.block(&restored).unwrap();
    assert_eq!(blocks_a.distinct_pairs(), blocks_b.distinct_pairs());
}

#[test]
fn empirical_collision_rate_tracks_the_analytic_model() {
    // For pairs of strings at a known Jaccard similarity, the fraction of
    // (k, l) bandings under which they collide should match 1 − (1 − s^k)^l.
    // We test this by repeating the banding with many different minhash seeds
    // and comparing the empirical collision frequency with the model.
    let a = "the cascade correlation learning architecture";
    let b = "the cascade correlation learning architectures of neural nets";
    let q = 2;
    let sa = hashed_qgram_set(a, q);
    let sb = hashed_qgram_set(b, q);
    let s = sablock::textual::jaccard(&sa, &sb);
    let (k, l) = (3usize, 8usize);

    let trials = 400;
    let mut collisions = 0;
    for seed in 0..trials {
        let config = MinhashConfig {
            bands: l,
            rows_per_band: k,
            qgram: q,
            seed,
        };
        let hasher = MinHasher::from_config(&config);
        let sig_a = hasher.signature(&sa);
        let sig_b = hasher.signature(&sb);
        let banding = sablock::core::lsh::BandingScheme::new(l, k).unwrap();
        let keys_a = banding.band_keys(&sig_a);
        let keys_b = banding.band_keys(&sig_b);
        if keys_a.iter().zip(&keys_b).any(|(x, y)| x == y) {
            collisions += 1;
        }
    }
    let empirical = collisions as f64 / trials as f64;
    let model = banding_collision_probability(s, k, l);
    assert!(
        (empirical - model).abs() < 0.12,
        "empirical collision rate {empirical:.3} too far from the model {model:.3} (s = {s:.3})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Whatever the (small) generator configuration, SA-LSH never produces
    /// more candidate pairs than plain LSH with the same textual parameters.
    #[test]
    fn salsh_is_never_more_permissive_than_lsh(records in 60usize..160, seed in 0u64..500) {
        let dataset = CoraGenerator::new(CoraConfig {
            num_records: records,
            seed,
            ..CoraConfig::default()
        })
        .generate()
        .unwrap();
        let lsh = SaLshBlocker::builder()
            .attributes(["title", "authors"])
            .qgram(3)
            .rows_per_band(3)
            .bands(8)
            .build()
            .unwrap();
        let tree = bibliographic_taxonomy();
        let zeta = PatternSemanticFunction::cora_default(&tree).unwrap();
        let salsh = SaLshBlocker::builder()
            .attributes(["title", "authors"])
            .qgram(3)
            .rows_per_band(3)
            .bands(8)
            .semantic(SemanticConfig::new(tree, zeta).with_w(3).with_mode(SemanticMode::Or))
            .build()
            .unwrap();
        let lsh_pairs = lsh.block(&dataset).unwrap().num_distinct_pairs();
        let salsh_pairs = salsh.block(&dataset).unwrap().num_distinct_pairs();
        prop_assert!(salsh_pairs <= lsh_pairs);
    }

    /// Evaluation measures stay within range for arbitrary voter generator
    /// configurations.
    #[test]
    fn metrics_are_always_in_range(records in 50usize..200, dup in 0.0f64..0.6, seed in 0u64..300) {
        let dataset = NcVoterGenerator::new(NcVoterConfig {
            num_records: records,
            duplicate_probability: dup,
            seed,
            ..NcVoterConfig::default()
        })
        .generate()
        .unwrap();
        let blocker = StandardBlocking::new(BlockingKey::ncvoter());
        let result = run_blocker("TBlo", &blocker, &dataset).unwrap();
        let m = result.metrics;
        prop_assert!((0.0..=1.0).contains(&m.pc()));
        prop_assert!((0.0..=1.0).contains(&m.pq()));
        prop_assert!((0.0..=1.0).contains(&m.fm()));
        prop_assert!(m.rr() <= 1.0);
        prop_assert!(m.true_positives <= m.candidate_pairs);
    }
}
