//! End-to-end pipeline test over the Cora-like bibliographic workload:
//! generators → taxonomy/semantic function → LSH/SA-LSH blocking → evaluation.

use sablock::prelude::*;

fn cora(records: usize) -> Dataset {
    CoraGenerator::new(CoraConfig {
        num_records: records,
        ..CoraConfig::default()
    })
    .generate()
    .expect("generator configuration is valid")
}

fn lsh_blocker(k: usize, l: usize) -> SaLshBlocker {
    SaLshBlocker::builder()
        .attributes(["title", "authors"])
        .qgram(4)
        .rows_per_band(k)
        .bands(l)
        .build()
        .expect("valid configuration")
}

fn salsh_blocker(k: usize, l: usize, w: usize, mode: SemanticMode) -> SaLshBlocker {
    let tree = bibliographic_taxonomy();
    let zeta = PatternSemanticFunction::cora_default(&tree).expect("default pattern function");
    SaLshBlocker::builder()
        .attributes(["title", "authors"])
        .qgram(4)
        .rows_per_band(k)
        .bands(l)
        .semantic(SemanticConfig::new(tree, zeta).with_w(w).with_mode(mode))
        .build()
        .expect("valid configuration")
}

#[test]
fn lsh_blocking_keeps_most_matches_while_cutting_the_comparison_space() {
    let dataset = cora(600);
    let result = run_blocker("LSH", &lsh_blocker(4, 63), &dataset).unwrap();
    assert!(result.metrics.pc() > 0.8, "PC = {}", result.metrics.pc());
    assert!(result.metrics.rr() > 0.9, "RR = {}", result.metrics.rr());
    assert!(result.metrics.fm() > 0.2, "FM = {}", result.metrics.fm());
}

#[test]
fn semantic_augmentation_improves_pq_and_fm_at_small_pc_cost() {
    let dataset = cora(600);
    let lsh = run_blocker("LSH", &lsh_blocker(4, 63), &dataset).unwrap();
    let salsh = run_blocker("SA-LSH", &salsh_blocker(4, 63, 5, SemanticMode::Or), &dataset).unwrap();

    // The paper's core claim (Fig. 9, Table 2): semantic features eliminate
    // textually similar but semantically dissimilar pairs.
    assert!(salsh.metrics.candidate_pairs <= lsh.metrics.candidate_pairs);
    assert!(salsh.metrics.pq() >= lsh.metrics.pq(), "PQ {} vs {}", salsh.metrics.pq(), lsh.metrics.pq());
    assert!(salsh.metrics.fm() >= lsh.metrics.fm(), "FM {} vs {}", salsh.metrics.fm(), lsh.metrics.fm());
    assert!(salsh.metrics.rr() >= lsh.metrics.rr());
    // PC may drop, but only modestly (the semantic features are noisy but
    // broadly correct on this corpus).
    assert!(lsh.metrics.pc() - salsh.metrics.pc() < 0.15, "PC dropped from {} to {}", lsh.metrics.pc(), salsh.metrics.pc());
}

#[test]
fn and_composition_is_stricter_than_or_composition() {
    let dataset = cora(400);
    let or_run = run_blocker("SA-LSH", &salsh_blocker(4, 20, 2, SemanticMode::Or), &dataset).unwrap();
    let and_run = run_blocker("SA-LSH", &salsh_blocker(4, 20, 2, SemanticMode::And), &dataset).unwrap();
    assert!(and_run.metrics.candidate_pairs <= or_run.metrics.candidate_pairs);
    assert!(and_run.metrics.pc() <= or_run.metrics.pc() + 1e-9);
}

#[test]
fn more_bands_recover_more_matches() {
    let dataset = cora(400);
    let few = run_blocker("LSH", &lsh_blocker(4, 8), &dataset).unwrap();
    let many = run_blocker("LSH", &lsh_blocker(4, 63), &dataset).unwrap();
    assert!(many.metrics.pc() >= few.metrics.pc());
    assert!(many.metrics.candidate_pairs >= few.metrics.candidate_pairs);
}

#[test]
fn blocking_results_are_reproducible_across_runs() {
    let dataset = cora(300);
    let blocker = salsh_blocker(4, 16, 3, SemanticMode::Or);
    let a = blocker.block(&dataset).unwrap();
    let b = blocker.block(&dataset).unwrap();
    assert_eq!(a.num_blocks(), b.num_blocks());
    assert_eq!(a.distinct_pairs(), b.distinct_pairs());
}

#[test]
fn taxonomy_variants_still_deliver_a_quality_gain() {
    use sablock::core::taxonomy::bib::{bibliographic_taxonomy_variant, BibVariant};
    let dataset = cora(500);
    let lsh = run_blocker("LSH", &lsh_blocker(4, 32), &dataset).unwrap();
    for variant in [BibVariant::NoReviewLevels, BibVariant::NoBook, BibVariant::NoJournal] {
        let tree = bibliographic_taxonomy_variant(variant);
        let zeta = PatternSemanticFunction::cora_default(&tree).unwrap();
        let blocker = SaLshBlocker::builder()
            .attributes(["title", "authors"])
            .qgram(4)
            .rows_per_band(4)
            .bands(32)
            .semantic(SemanticConfig::new(tree, zeta).with_w(5).with_mode(SemanticMode::Or))
            .build()
            .unwrap();
        let result = run_blocker("SA-LSH", &blocker, &dataset).unwrap();
        assert!(
            result.metrics.pq() >= lsh.metrics.pq(),
            "{}: PQ {} should not be below LSH's {}",
            variant.name(),
            result.metrics.pq(),
            lsh.metrics.pq()
        );
    }
}
