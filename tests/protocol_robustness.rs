//! Robustness of the protocol surface: fuzzed request lines and byte
//! streams must never panic the parser, the bounded reader, or the
//! full request handler — malformed input always becomes a typed `ERR`
//! reply, never a crash. Alongside, the [`ServeError`] display strings are
//! pinned to carry their diagnostic context.

use proptest::prelude::*;
use sablock::core::lsh::salsh::SaLshBlockerBuilder;
use sablock::prelude::*;
use sablock::serve::protocol::{handle_line_with, parse_request, read_bounded_line, RequestLimits};

fn builder() -> SaLshBlockerBuilder {
    SaLshBlocker::builder().attributes(["title", "authors"]).qgram(3).rows_per_band(2).bands(4).seed(0xB10C)
}

fn service() -> CandidateService {
    let service =
        CandidateService::new(builder().into_incremental().unwrap(), Schema::shared(["title", "authors"]).unwrap())
            .unwrap();
    service
        .insert_rows(vec![
            vec![Some("semantic blocking study".into()), Some("author0".into())],
            vec![Some("semantic blocking survey".into()), None],
        ])
        .unwrap();
    service
}

/// Verbs the structured fuzz cycles through. `SAVE` is deliberately absent —
/// executing it would write snapshot files to fuzz-chosen paths.
const VERBS: &[&str] = &["QUERY", "QUERYK", "INSERT", "REMOVE", "STATS", "CHECKPOINT", "QUIT", "query", "", "NOSUCH"];

/// Almost-valid protocol traffic: a real (or off-by-case) verb with fuzzed
/// tab-separated fields.
fn structured_line(verb_index: usize, fields: &[String]) -> String {
    let mut line = VERBS[verb_index % VERBS.len()].to_string();
    for field in fields {
        line.push('\t');
        line.push_str(field);
    }
    line
}

/// Arbitrary printable lines with tabs sprinkled in (the vendored proptest
/// has no `\PC` class, so the line is assembled from fuzzed bytes).
fn arbitrary_line(bytes: &[u8]) -> String {
    bytes
        .iter()
        .map(|byte| match byte % 97 {
            96 => '\t',
            n => (b' ' + (n % 95)) as char,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parse_request_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..120), width in 0usize..5) {
        let _ = parse_request(&arbitrary_line(&bytes), width);
    }

    #[test]
    fn the_bounded_reader_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
        max in 0usize..48,
    ) {
        let len = bytes.len();
        let mut cursor = std::io::Cursor::new(bytes);
        // Drain the stream; every call either yields a line, a typed error
        // (overlong / non-UTF-8), or EOF — and always makes progress.
        for _ in 0..=len {
            if let Ok(None) = read_bounded_line(&mut cursor, max) {
                break;
            }
        }
    }

    #[test]
    fn the_handler_always_answers_structured_lines(
        verb_index in 0usize..10,
        fields in proptest::collection::vec("[ -~]{0,12}", 0..4),
    ) {
        let service = service();
        let line = structured_line(verb_index, &fields);
        let outcome = handle_line_with(&service, &RequestLimits::default(), &line);
        let reply = outcome.reply();
        prop_assert!(
            reply.starts_with("OK") || reply.starts_with("ERR"),
            "unexpected reply {reply:?} for line {line:?}"
        );
    }

    #[test]
    fn the_handler_always_answers_arbitrary_lines(bytes in proptest::collection::vec(any::<u8>(), 0..80)) {
        let line = arbitrary_line(&bytes);
        if line.starts_with("SAVE") {
            return; // never let the fuzz write files
        }
        let service = service();
        let outcome = handle_line_with(&service, &RequestLimits::default(), &line);
        let reply = outcome.reply();
        prop_assert!(
            reply.starts_with("OK") || reply.starts_with("ERR"),
            "unexpected reply {reply:?} for line {line:?}"
        );
    }
}

#[test]
fn error_displays_carry_their_diagnostic_context() {
    let cases: Vec<(ServeError, &[&str])> = vec![
        (ServeError::BadMagic, &["not a sablock snapshot"]),
        (ServeError::UnsupportedVersion { found: 9, supported: 1 }, &["version 9", "v1"]),
        (ServeError::ChecksumMismatch { expected: 0xABCD, found: 0x1234 }, &["000000000000abcd", "0000000000001234"]),
        (ServeError::Corrupt { offset: 42, reason: "impossible length".into() }, &["byte 42", "impossible length"]),
        (
            ServeError::ConfigMismatch { expected: "lsh-a".into(), found: "lsh-b".into() },
            &["'lsh-b'", "'lsh-a'"],
        ),
        (
            ServeError::SchemaMismatch { expected: vec!["title".into()], found: vec!["name".into()] },
            &["title", "name"],
        ),
        (ServeError::Protocol("unknown verb".into()), &["protocol error", "unknown verb"]),
        (ServeError::LineTooLong { limit: 65536 }, &["65536-byte limit"]),
        (ServeError::Overloaded { retry_after_ms: 250 }, &["overloaded", "retry after 250 ms"]),
        (
            ServeError::WriterPoisoned { reason: "injected write failure".into() },
            &["poisoned", "injected write failure", "re-open"],
        ),
        (ServeError::Recovery("the log has a hole".into()), &["unrecoverable", "the log has a hole"]),
        (ServeError::Io(std::io::Error::other("disk on fire")), &["I/O error", "disk on fire"]),
    ];
    for (error, fragments) in cases {
        let rendered = error.to_string();
        for fragment in fragments {
            assert!(rendered.contains(fragment), "display of {error:?} is missing {fragment:?}: {rendered}");
        }
    }
}

#[test]
fn in_memory_checkpoints_are_a_typed_protocol_error() {
    // The fuzz above can hit CHECKPOINT against this in-memory fixture;
    // pin that it answers with the typed refusal rather than anything odd.
    let service = service();
    let outcome = handle_line_with(&service, &RequestLimits::default(), "CHECKPOINT");
    assert_eq!(outcome.reply(), "ERR protocol error: CHECKPOINT requires a durable (WAL-backed) service");
}
