//! Snapshot persistence round-trips and corruption handling for the serve
//! layer: `save → load → save` must be **byte-identical**, a loaded service
//! must behave exactly like the original under further writes, and every
//! flavour of damaged file — truncation at any offset, a bit flip at any
//! offset, a wrong magic/version — must come back as a typed [`ServeError`],
//! never a panic and never a silently-wrong index.

use std::path::PathBuf;
use std::sync::Arc;

use sablock::core::lsh::salsh::SaLshBlockerBuilder;
use sablock::core::semantic::semhash::SemhashFamily;
use sablock::prelude::*;
use sablock::serve::persist;

fn lsh_builder() -> SaLshBlockerBuilder {
    SaLshBlocker::builder().attributes(["title", "authors"]).qgram(3).rows_per_band(2).bands(8).seed(0xB10C)
}

fn salsh_builder() -> SaLshBlockerBuilder {
    let tree = bibliographic_taxonomy();
    let zeta = PatternSemanticFunction::cora_default(&tree).unwrap();
    let family = SemhashFamily::from_all_leaves(&tree).unwrap();
    lsh_builder().semantic(
        SemanticConfig::new(tree, zeta)
            .with_w(2)
            .with_mode(SemanticMode::Or)
            .with_seed(11)
            .with_pinned_family(family),
    )
}

fn schema() -> Arc<Schema> {
    Schema::shared(["title", "authors"]).unwrap()
}

/// A populated service with history: three insert batches, two removals, a
/// missing value and a duplicate-ish pair, so the snapshot carries
/// tombstones, multi-member buckets and `None` attributes.
fn populated_service(builder: SaLshBlockerBuilder) -> CandidateService {
    let service = CandidateService::new(builder.into_incremental().unwrap(), schema()).unwrap();
    service
        .insert_rows(vec![
            vec![Some("a theory for record linkage".into()), Some("fellegi".into())],
            vec![Some("a theory of record linkage".into()), Some("sunter".into())],
            vec![None, Some("anonymous".into())],
        ])
        .unwrap();
    service
        .insert_rows(vec![
            vec![Some("semantic aware blocking for entity resolution".into()), Some("wang".into())],
            vec![Some("semantic-aware blocking for entity resolution".into()), None],
        ])
        .unwrap();
    service.remove(RecordId(2)).unwrap();
    service.insert_rows(vec![vec![Some("automatic linkage of vital records".into()), Some("newcombe".into())]]).unwrap();
    service.remove(RecordId(0)).unwrap();
    service
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sablock-serve-test-{}-{tag}.snap", std::process::id()))
}

struct TempFile(PathBuf);
impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[test]
fn save_load_save_is_byte_identical_and_behaviour_preserving() {
    for (tag, builder) in [("lsh", lsh_builder as fn() -> SaLshBlockerBuilder), ("salsh", salsh_builder)] {
        let original = populated_service(builder());
        let first = TempFile(temp_path(&format!("{tag}-first")));
        let second = TempFile(temp_path(&format!("{tag}-second")));
        original.save(&first.0).unwrap();

        let loaded = CandidateService::load(builder().into_incremental().unwrap(), schema(), &first.0).unwrap();
        loaded.save(&second.0).unwrap();
        let first_bytes = std::fs::read(&first.0).unwrap();
        let second_bytes = std::fs::read(&second.0).unwrap();
        assert_eq!(first_bytes, second_bytes, "{tag}: save → load → save must be byte-identical");

        // The published state round-tripped wholesale.
        let original_state = original.current();
        let loaded_state = loaded.current();
        assert_eq!(loaded_state.view().snapshot().blocks(), original_state.view().snapshot().blocks());
        assert_eq!(loaded_state.view().running_counts(), original_state.view().running_counts());
        assert_eq!(loaded_state.view().num_records(), original_state.view().num_records());
        assert_eq!(loaded_state.view().num_live_records(), original_state.view().num_live_records());
        for index in 0..original_state.view().num_records() {
            let id = RecordId(u32::try_from(index).unwrap());
            assert_eq!(loaded_state.view().is_live(id), original_state.view().is_live(id));
            assert_eq!(
                loaded_state.record(id).map(Record::values),
                original_state.record(id).map(Record::values),
                "{tag}: stored row {index} must round-trip"
            );
        }

        // And the future is identical too: the same writes land the same.
        let next = vec![vec![Some("a theory of record linkage".into()), Some("winkler".into())]];
        let after_original = original.insert_rows(next.clone()).unwrap();
        let after_loaded = loaded.insert_rows(next).unwrap();
        assert_eq!(after_loaded.view().snapshot().blocks(), after_original.view().snapshot().blocks());
        assert_eq!(after_loaded.view().running_counts(), after_original.view().running_counts());
        let removed_original = original.remove(RecordId(1)).unwrap();
        let removed_loaded = loaded.remove(RecordId(1)).unwrap();
        assert_eq!(removed_loaded.view().snapshot().blocks(), removed_original.view().snapshot().blocks());
    }
}

#[test]
fn corrupted_snapshots_fail_typed_and_never_panic() {
    let service = populated_service(lsh_builder());
    let file = TempFile(temp_path("corrupt"));
    service.save(&file.0).unwrap();
    let good = std::fs::read(&file.0).unwrap();
    let fresh = || lsh_builder().into_incremental().unwrap();

    // Sanity: the untouched bytes parse.
    persist::from_bytes(&good).unwrap();

    // Truncation at every prefix length: typed error, no panic. (The whole
    // file is a few KiB, so exhaustive truncation is affordable.)
    for cut in 0..good.len() {
        let error = persist::from_bytes(&good[..cut])
            .err()
            .unwrap_or_else(|| panic!("truncation to {cut} bytes must not parse"));
        matches_corruption(&error, cut);
    }

    // A single flipped bit anywhere: the checksum (or an earlier magic
    // check) catches it.
    for offset in (0..good.len()).step_by(7) {
        let mut bytes = good.clone();
        bytes[offset] ^= 0x10;
        let error = persist::from_bytes(&bytes)
            .err()
            .unwrap_or_else(|| panic!("bit flip at {offset} must not parse"));
        matches_corruption(&error, offset);
    }

    // A wrong version with a *recomputed valid checksum* is still rejected,
    // and with the dedicated variant rather than a checksum complaint.
    let mut future = good.clone();
    future[8..12].copy_from_slice(&2u32.to_le_bytes());
    let body_end = future.len() - 8;
    let checksum = persist::fnv1a64(&future[..body_end]);
    future[body_end..].copy_from_slice(&checksum.to_le_bytes());
    assert!(
        matches!(persist::from_bytes(&future), Err(ServeError::UnsupportedVersion { found: 2, .. })),
        "a future format version must be rejected as unsupported"
    );

    // Loading through the service surfaces the same typed errors.
    std::fs::write(&file.0, &good[..good.len() / 2]).unwrap();
    assert!(CandidateService::load(fresh(), schema(), &file.0).is_err());
    let missing = temp_path("never-written");
    assert!(matches!(CandidateService::load(fresh(), schema(), &missing), Err(ServeError::Io(_))));

    // Config/schema mismatches are their own variants: same bytes, wrong
    // head or wrong schema.
    std::fs::write(&file.0, &good).unwrap();
    let other_head = SaLshBlocker::builder()
        .attributes(["title"])
        .qgram(2)
        .rows_per_band(2)
        .bands(12)
        .seed(1)
        .into_incremental()
        .unwrap();
    assert!(matches!(
        CandidateService::load(other_head, schema(), &file.0),
        Err(ServeError::ConfigMismatch { .. })
    ));
    let other_schema = Schema::shared(["title", "authors", "venue"]).unwrap();
    assert!(matches!(
        CandidateService::load(fresh(), other_schema, &file.0),
        Err(ServeError::SchemaMismatch { .. })
    ));
}

/// Every corruption must map to one of the typed decode errors — which one
/// depends on where the damage landed, but it must never be a mismatch
/// variant that would misdirect the operator, and never a panic.
fn matches_corruption(error: &ServeError, offset: usize) {
    assert!(
        matches!(
            error,
            ServeError::BadMagic
                | ServeError::ChecksumMismatch { .. }
                | ServeError::UnsupportedVersion { .. }
                | ServeError::Corrupt { .. }
        ),
        "offset {offset}: unexpected error flavour: {error}"
    );
}
