//! Determinism regression tests: the entire pipeline — data generation,
//! signature computation and blocking — must be a pure function of its
//! configured seed, independent of thread count. Every experiment, test and
//! bench in this workspace relies on that reproducibility.

use sablock::core::minhash::shingle::RecordShingler;
use sablock::core::parallel::parallel_map;
use sablock::prelude::*;

fn small_cora() -> Dataset {
    CoraGenerator::new(CoraConfig { num_records: 250, seed: 0xD5EED, ..CoraConfig::default() })
        .generate()
        .unwrap()
}

fn salsh_blocker() -> SaLshBlocker {
    let tree = bibliographic_taxonomy();
    let zeta = PatternSemanticFunction::cora_default(&tree).unwrap();
    SaLshBlocker::builder()
        .attributes(["title", "authors"])
        .qgram(3)
        .rows_per_band(3)
        .bands(12)
        .seed(0xB10C)
        .semantic(SemanticConfig::new(tree, zeta).with_w(2).with_mode(SemanticMode::Or))
        .build()
        .unwrap()
}

/// The generator is a pure function of its seed: two runs with the same
/// config produce identical records and ground truth.
#[test]
fn generation_is_deterministic_for_a_fixed_seed() {
    let a = small_cora();
    let b = small_cora();
    assert_eq!(a.len(), b.len());
    assert_eq!(a.records(), b.records());
    assert_eq!(a.ground_truth().num_entities(), b.ground_truth().num_entities());
    let pairs = |d: &Dataset| d.ground_truth().true_match_pairs().collect::<Vec<_>>();
    assert_eq!(pairs(&a), pairs(&b));

    // And a different seed actually produces different data (the test would
    // be vacuous if the generator ignored its seed).
    let c = CoraGenerator::new(CoraConfig { num_records: 250, seed: 0x0DD5EED, ..CoraConfig::default() })
        .generate()
        .unwrap();
    assert_ne!(a.records(), c.records());
}

/// Blocking the same dataset twice with identically-configured blockers
/// yields byte-for-byte identical block collections.
#[test]
fn blocking_is_deterministic_for_a_fixed_seed() {
    let dataset = small_cora();
    let first = salsh_blocker().block(&dataset).unwrap();
    let second = salsh_blocker().block(&dataset).unwrap();
    assert_eq!(first.blocks(), second.blocks());
    assert_eq!(first.num_distinct_pairs(), second.num_distinct_pairs());
}

/// `parallel_map` splits work across scoped threads but must stitch results
/// back in input order: 1 worker and 4 workers give identical output, both
/// for a plain function and for the real signature pipeline.
#[test]
fn parallel_map_is_thread_count_invariant() {
    let numbers: Vec<u64> = (0..1_000).collect();
    let sequential = parallel_map(&numbers, 1, |x| x.wrapping_mul(2654435761).rotate_left(13));
    let parallel = parallel_map(&numbers, 4, |x| x.wrapping_mul(2654435761).rotate_left(13));
    assert_eq!(sequential, parallel);

    let dataset = small_cora();
    let shingler = RecordShingler::new(["title", "authors"], 3).unwrap();
    let hasher = MinHasher::new(36, 0x5EED);
    let shingles: Vec<_> = dataset.records().iter().map(|r| shingler.shingles(r)).collect();
    let signatures_1 = parallel_map(&shingles, 1, |set| hasher.signature(set));
    let signatures_4 = parallel_map(&shingles, 4, |set| hasher.signature(set));
    assert_eq!(signatures_1, signatures_4);
}

/// The sharded bucket phase must be thread-count invariant: blocking with 1
/// worker and with 4 workers produces byte-identical block collections
/// (same keys, same members, same order), for both plain LSH and SA-LSH.
#[test]
fn bucket_phase_is_thread_count_invariant() {
    let dataset = small_cora();
    let blocker_with = |threads: usize, semantic: bool| {
        let mut builder = SaLshBlocker::builder()
            .attributes(["title", "authors"])
            .qgram(3)
            .rows_per_band(3)
            .bands(12)
            .seed(0xB10C)
            .threads(threads);
        if semantic {
            let tree = bibliographic_taxonomy();
            let zeta = PatternSemanticFunction::cora_default(&tree).unwrap();
            builder = builder.semantic(SemanticConfig::new(tree, zeta).with_w(2).with_mode(SemanticMode::Or));
        }
        builder.build().unwrap()
    };
    for semantic in [false, true] {
        let single = blocker_with(1, semantic).block(&dataset).unwrap();
        let quad = blocker_with(4, semantic).block(&dataset).unwrap();
        assert_eq!(single.blocks(), quad.blocks(), "semantic={semantic}");
        assert_eq!(single.distinct_pairs(), quad.distinct_pairs(), "semantic={semantic}");
    }
}

/// End-to-end: the full SA-LSH pipeline (which decides its own worker count
/// from the dataset size) produces the same blocks as a rerun, and its
/// evaluation metrics are stable — same seed ⇒ the same `BlockingMetrics`,
/// field for field.
#[test]
fn end_to_end_metrics_are_reproducible() {
    let dataset = small_cora();
    let blocker = salsh_blocker();
    let first = BlockingMetrics::evaluate(&blocker.block(&dataset).unwrap(), dataset.ground_truth());
    let second = BlockingMetrics::evaluate(&blocker.block(&dataset).unwrap(), dataset.ground_truth());
    assert_eq!(first, second, "same seed must reproduce every metric field");
    assert_eq!(first.pc(), second.pc());
    assert_eq!(first.pq(), second.pq());
    assert_eq!(first.rr(), second.rr());
    assert_eq!(first.candidate_pairs, second.candidate_pairs);
}

/// The streaming Γ evaluation is thread-count invariant: counting the same
/// block collection with 1 worker and with 4 workers produces identical
/// `BlockingMetrics` (and both agree with the materialised reference), for
/// every slice count of the pair-space partitioning.
#[test]
fn streaming_evaluation_is_thread_count_invariant() {
    let dataset = small_cora();
    let blocks = salsh_blocker().block(&dataset).unwrap();
    let truth = dataset.ground_truth();
    let reference = BlockingMetrics::evaluate_materialised(&blocks, truth);
    let single = BlockingMetrics::evaluate_with_threads(&blocks, truth, 1);
    let quad = BlockingMetrics::evaluate_with_threads(&blocks, truth, 4);
    assert_eq!(single, quad, "1 vs 4 streaming workers");
    assert_eq!(single, reference, "streaming vs materialised");
    // The same invariance holds when the pair space is force-split into
    // slices far smaller than the automatic heuristic would pick.
    for slices in [2usize, 5, 16] {
        for threads in [1usize, 4] {
            let counts = blocks.stream_pair_counts_sliced(threads, slices, |p| truth.is_match_pair(p));
            assert_eq!(counts.distinct, reference.candidate_pairs, "slices={slices} threads={threads}");
            assert_eq!(counts.matching, reference.true_positives, "slices={slices} threads={threads}");
        }
    }
}

/// The parallel suffix-array, q-gram and sorted-neighbourhood bucket
/// constructions are thread-count invariant: 1 worker and 4 workers produce
/// byte-identical block output on a dataset large enough to engage the
/// chunked parallel path.
#[test]
fn baseline_bucket_construction_is_thread_count_invariant() {
    use sablock::baselines::{
        AdaptiveSortedNeighbourhood, AllSubstringsBlocking, BlockingKey, QGramBlocking, RobustSuffixArrayBlocking,
        SortedNeighbourhoodArray, SortedNeighbourhoodInverted, SuffixArrayBlocking,
    };
    use sablock::textual::similarity::SimilarityFunction;

    // > 1,024 records so the chunked parallel index construction engages.
    let dataset = NcVoterGenerator::new(NcVoterConfig { num_records: 2_500, ..NcVoterConfig::small() })
        .generate()
        .unwrap();

    type BlockerFactory = Box<dyn Fn(usize) -> Box<dyn Blocker>>;
    let blockers: Vec<(&str, BlockerFactory)> = vec![
        ("SuA", Box::new(|t| Box::new(SuffixArrayBlocking::new(BlockingKey::ncvoter(), 3, 10).unwrap().with_threads(t)))),
        ("SuAS", Box::new(|t| Box::new(AllSubstringsBlocking::new(BlockingKey::ncvoter(), 3, 10).unwrap().with_threads(t)))),
        (
            "RSuA",
            Box::new(|t| {
                Box::new(
                    RobustSuffixArrayBlocking::new(BlockingKey::ncvoter(), 3, 10, SimilarityFunction::JaroWinkler, 0.9)
                        .unwrap()
                        .with_threads(t),
                )
            }),
        ),
        ("QGr", Box::new(|t| Box::new(QGramBlocking::new(BlockingKey::ncvoter(), 2, 0.8).unwrap().with_threads(t)))),
        ("SorA", Box::new(|t| Box::new(SortedNeighbourhoodArray::new(BlockingKey::ncvoter(), 3).unwrap().with_threads(t)))),
        (
            "SorII",
            Box::new(|t| Box::new(SortedNeighbourhoodInverted::new(BlockingKey::ncvoter(), 3).unwrap().with_threads(t))),
        ),
        (
            "ASor",
            Box::new(|t| {
                Box::new(
                    AdaptiveSortedNeighbourhood::new(BlockingKey::ncvoter(), SimilarityFunction::JaroWinkler, 0.9)
                        .unwrap()
                        .with_threads(t),
                )
            }),
        ),
    ];
    for (name, build) in blockers {
        let single = build(1).block(&dataset).unwrap();
        let quad = build(4).block(&dataset).unwrap();
        assert_eq!(single.blocks(), quad.blocks(), "{name}: 1 vs 4 worker block output");
        assert_eq!(
            single.stream_pair_counts_with_threads(1, |_| false),
            quad.stream_pair_counts_with_threads(4, |_| false),
            "{name}: streamed pair counts"
        );
    }
}

/// Canopy and string-map — the last baselines to gain a parallel path — are
/// thread-count invariant too: representation build and key extraction go
/// through the chunked index construction, similarity scans through
/// `parallel_map`, and 1-worker vs 4-worker runs produce byte-identical
/// blocks on a dataset large enough to engage the chunked path.
#[test]
fn canopy_and_stringmap_are_thread_count_invariant() {
    use sablock::baselines::{
        BlockingKey, CanopyNearestNeighbour, CanopySimilarity, CanopyThreshold, StringMapNearestNeighbour,
        StringMapThreshold,
    };
    use sablock::textual::SimilarityFunction;

    // > 1,024 records so `build_index_chunked` actually chunks.
    let dataset = NcVoterGenerator::new(NcVoterConfig { num_records: 1_100, ..NcVoterConfig::small() })
        .generate()
        .unwrap();

    type BlockerFactory = Box<dyn Fn(usize) -> Box<dyn Blocker>>;
    let blockers: Vec<(&str, BlockerFactory)> = vec![
        (
            "CaTh",
            Box::new(|t| {
                Box::new(
                    CanopyThreshold::new(BlockingKey::ncvoter(), CanopySimilarity::TfIdfCosine, 0.9, 0.6)
                        .unwrap()
                        .with_seed(5)
                        .with_threads(t),
                )
            }),
        ),
        (
            "CaNN",
            Box::new(|t| {
                Box::new(
                    CanopyNearestNeighbour::new(BlockingKey::ncvoter(), CanopySimilarity::Jaccard { q: 2 }, 5, 10)
                        .unwrap()
                        .with_seed(5)
                        .with_threads(t),
                )
            }),
        ),
        (
            "StMT",
            Box::new(|t| {
                Box::new(
                    StringMapThreshold::new(BlockingKey::ncvoter(), 6, 2.0, SimilarityFunction::JaroWinkler, 0.85)
                        .unwrap()
                        .with_threads(t),
                )
            }),
        ),
        (
            "StMNN",
            Box::new(|t| Box::new(StringMapNearestNeighbour::new(BlockingKey::ncvoter(), 6, 5.0, 3).unwrap().with_threads(t))),
        ),
    ];
    for (name, build) in blockers {
        let single = build(1).block(&dataset).unwrap();
        let quad = build(4).block(&dataset).unwrap();
        assert_eq!(single.blocks(), quad.blocks(), "{name}: 1 vs 4 worker block output");
    }
}

/// The batch-parallel incremental insert path (per-band shard updates via
/// `parallel_map_mut`, stitched in band order) must be thread-count
/// invariant *per batch*, not just at the end: identical per-batch delta
/// runs, identical running Γ/Γ_tp counters after every batch and removal,
/// and a byte-identical final snapshot for 1 vs 4 ingest workers.
#[test]
fn incremental_insert_is_thread_count_invariant_per_batch() {
    use sablock::core::incremental::IncrementalBlocker;

    let dataset = small_cora();
    let entities = dataset.ground_truth().entity_table();
    let build = |threads: usize| {
        let tree = bibliographic_taxonomy();
        let zeta = PatternSemanticFunction::cora_default(&tree).unwrap();
        SaLshBlocker::builder()
            .attributes(["title", "authors"])
            .qgram(3)
            .rows_per_band(3)
            .bands(12)
            .seed(0xB10C)
            .semantic(SemanticConfig::new(tree, zeta).with_w(2).with_mode(SemanticMode::Or))
            .threads(threads)
            .into_incremental()
            .unwrap()
    };
    let mut single = build(1);
    let mut quad = build(4);
    let mut offset = 0usize;
    for chunk in dataset.records().chunks(64) {
        let batch_entities = &entities[offset..offset + chunk.len()];
        let delta_1 = single.insert_batch_with_entities(chunk, batch_entities).unwrap().clone();
        let delta_4 = quad.insert_batch_with_entities(chunk, batch_entities).unwrap().clone();
        offset += chunk.len();
        assert_eq!(delta_1, delta_4, "per-batch delta runs differ between 1 and 4 workers");
        assert_eq!(single.running_counts(), quad.running_counts(), "running counters diverged mid-stream");
        // Remove one record per batch so the subtraction path (built on the
        // back-references the parallel insert recorded) is exercised too.
        let victim = RecordId(offset as u32 - 1);
        assert_eq!(single.remove(victim).unwrap(), quad.remove(victim).unwrap());
        assert_eq!(single.running_counts(), quad.running_counts(), "removal subtraction diverged");
    }
    assert_eq!(single.snapshot().blocks(), quad.snapshot().blocks(), "1 vs 4 ingest workers");
}
