//! Determinism regression tests: the entire pipeline — data generation,
//! signature computation and blocking — must be a pure function of its
//! configured seed, independent of thread count. Every experiment, test and
//! bench in this workspace relies on that reproducibility.

use sablock::core::minhash::shingle::RecordShingler;
use sablock::core::parallel::parallel_map;
use sablock::prelude::*;

fn small_cora() -> Dataset {
    CoraGenerator::new(CoraConfig { num_records: 250, seed: 0xD5EED, ..CoraConfig::default() })
        .generate()
        .unwrap()
}

fn salsh_blocker() -> SaLshBlocker {
    let tree = bibliographic_taxonomy();
    let zeta = PatternSemanticFunction::cora_default(&tree).unwrap();
    SaLshBlocker::builder()
        .attributes(["title", "authors"])
        .qgram(3)
        .rows_per_band(3)
        .bands(12)
        .seed(0xB10C)
        .semantic(SemanticConfig::new(tree, zeta).with_w(2).with_mode(SemanticMode::Or))
        .build()
        .unwrap()
}

/// The generator is a pure function of its seed: two runs with the same
/// config produce identical records and ground truth.
#[test]
fn generation_is_deterministic_for_a_fixed_seed() {
    let a = small_cora();
    let b = small_cora();
    assert_eq!(a.len(), b.len());
    assert_eq!(a.records(), b.records());
    assert_eq!(a.ground_truth().num_entities(), b.ground_truth().num_entities());
    let pairs = |d: &Dataset| d.ground_truth().true_match_pairs().collect::<Vec<_>>();
    assert_eq!(pairs(&a), pairs(&b));

    // And a different seed actually produces different data (the test would
    // be vacuous if the generator ignored its seed).
    let c = CoraGenerator::new(CoraConfig { num_records: 250, seed: 0x0DD5EED, ..CoraConfig::default() })
        .generate()
        .unwrap();
    assert_ne!(a.records(), c.records());
}

/// Blocking the same dataset twice with identically-configured blockers
/// yields byte-for-byte identical block collections.
#[test]
fn blocking_is_deterministic_for_a_fixed_seed() {
    let dataset = small_cora();
    let first = salsh_blocker().block(&dataset).unwrap();
    let second = salsh_blocker().block(&dataset).unwrap();
    assert_eq!(first.blocks(), second.blocks());
    assert_eq!(first.num_distinct_pairs(), second.num_distinct_pairs());
}

/// `parallel_map` splits work across scoped threads but must stitch results
/// back in input order: 1 worker and 4 workers give identical output, both
/// for a plain function and for the real signature pipeline.
#[test]
fn parallel_map_is_thread_count_invariant() {
    let numbers: Vec<u64> = (0..1_000).collect();
    let sequential = parallel_map(&numbers, 1, |x| x.wrapping_mul(2654435761).rotate_left(13));
    let parallel = parallel_map(&numbers, 4, |x| x.wrapping_mul(2654435761).rotate_left(13));
    assert_eq!(sequential, parallel);

    let dataset = small_cora();
    let shingler = RecordShingler::new(["title", "authors"], 3).unwrap();
    let hasher = MinHasher::new(36, 0x5EED);
    let shingles: Vec<_> = dataset.records().iter().map(|r| shingler.shingles(r)).collect();
    let signatures_1 = parallel_map(&shingles, 1, |set| hasher.signature(set));
    let signatures_4 = parallel_map(&shingles, 4, |set| hasher.signature(set));
    assert_eq!(signatures_1, signatures_4);
}

/// The sharded bucket phase must be thread-count invariant: blocking with 1
/// worker and with 4 workers produces byte-identical block collections
/// (same keys, same members, same order), for both plain LSH and SA-LSH.
#[test]
fn bucket_phase_is_thread_count_invariant() {
    let dataset = small_cora();
    let blocker_with = |threads: usize, semantic: bool| {
        let mut builder = SaLshBlocker::builder()
            .attributes(["title", "authors"])
            .qgram(3)
            .rows_per_band(3)
            .bands(12)
            .seed(0xB10C)
            .threads(threads);
        if semantic {
            let tree = bibliographic_taxonomy();
            let zeta = PatternSemanticFunction::cora_default(&tree).unwrap();
            builder = builder.semantic(SemanticConfig::new(tree, zeta).with_w(2).with_mode(SemanticMode::Or));
        }
        builder.build().unwrap()
    };
    for semantic in [false, true] {
        let single = blocker_with(1, semantic).block(&dataset).unwrap();
        let quad = blocker_with(4, semantic).block(&dataset).unwrap();
        assert_eq!(single.blocks(), quad.blocks(), "semantic={semantic}");
        assert_eq!(single.distinct_pairs(), quad.distinct_pairs(), "semantic={semantic}");
    }
}

/// End-to-end: the full SA-LSH pipeline (which decides its own worker count
/// from the dataset size) produces the same blocks as a rerun, and its
/// evaluation metrics are stable.
#[test]
fn end_to_end_metrics_are_reproducible() {
    let dataset = small_cora();
    let blocker = salsh_blocker();
    let first = BlockingMetrics::evaluate(&blocker.block(&dataset).unwrap(), dataset.ground_truth());
    let second = BlockingMetrics::evaluate(&blocker.block(&dataset).unwrap(), dataset.ground_truth());
    assert_eq!(first.pc(), second.pc());
    assert_eq!(first.pq(), second.pq());
    assert_eq!(first.rr(), second.rr());
    assert_eq!(first.candidate_pairs, second.candidate_pairs);
}
