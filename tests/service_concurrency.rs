//! Concurrency differential: N reader threads hammer a [`CandidateService`]
//! while one writer applies a scripted insert/remove op sequence. Every
//! sample a reader takes — `(epoch, probe, result)` — must afterwards match
//! an **offline replay** of that epoch: a fresh mirror blocker fed exactly
//! the first `epoch` ops. That is the linearizability contract of epoch
//! publication: a reader never sees a torn index, only some applied prefix.
//!
//! The file is deliberately *not* gated on `check-invariants`; CI runs the
//! whole workspace test suite a second time with
//! `--features sablock_core/check-invariants`, arming the runtime sanitizer
//! under these same interleavings.

use std::sync::Arc;

use sablock::core::parallel::join_all;
use sablock::core::lsh::salsh::SaLshBlockerBuilder;
use sablock::prelude::*;
use sablock::serve::{FailpointPlan, FsyncPolicy, WalOptions};

fn builder() -> SaLshBlockerBuilder {
    SaLshBlocker::builder().attributes(["title", "authors"]).qgram(3).rows_per_band(2).bands(8).seed(0xB10C)
}

fn schema() -> Arc<Schema> {
    Schema::shared(["title", "authors"]).unwrap()
}

const TITLE_WORDS: &[&str] =
    &["theory", "record", "linkage", "entity", "resolution", "semantic", "blocking", "errors"];

fn row(index: usize) -> Vec<Option<String>> {
    let first = TITLE_WORDS[index % TITLE_WORDS.len()];
    let second = TITLE_WORDS[(index / 2) % TITLE_WORDS.len()];
    vec![Some(format!("{first} {second} study")), Some(format!("author{}", index % 5))]
}

/// The scripted write load, applied once by the writer thread and replayed
/// op-by-op by the offline mirror.
#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<Vec<Option<String>>>),
    Remove(RecordId),
}

/// Deterministic mixed load: batched inserts with interleaved removals of
/// the oldest still-live record every third op.
fn scripted_ops() -> Vec<Op> {
    let mut ops = Vec::new();
    let mut inserted = 0usize;
    let mut next_victim = 0u32;
    for step in 0..24usize {
        if step % 3 == 2 && u64::from(next_victim) < inserted as u64 {
            ops.push(Op::Remove(RecordId(next_victim)));
            next_victim += 1;
        } else {
            let batch: Vec<Vec<Option<String>>> = (0..1 + step % 3).map(|offset| row(inserted + offset)).collect();
            inserted += batch.len();
            ops.push(Op::Insert(batch));
        }
    }
    ops
}

/// The probe rows readers cycle through.
fn probes() -> Vec<Vec<Option<String>>> {
    vec![row(0), row(7), vec![Some("unrelated zebra quartz".into()), None]]
}

/// One reader observation: which epoch it queried, which probe, what came
/// back.
type Sample = (u64, usize, Vec<RecordId>);

/// Replays `ops[..prefix]` into a fresh mirror blocker and computes, for
/// every probe, what a query over that exact prefix must return.
fn replay_expectations(ops: &[Op]) -> Vec<Vec<Vec<RecordId>>> {
    let schema = schema();
    let probe_rows = probes();
    let mut mirror = builder().into_incremental().unwrap();
    let mut next_index = 0usize;
    let mut per_epoch = Vec::with_capacity(ops.len() + 1);
    let expectations = |mirror: &IncrementalSaLshBlocker, next_index: usize| {
        probe_rows
            .iter()
            .map(|values| {
                let probe = Record::new(
                    RecordId::try_from_index(next_index).unwrap(),
                    Arc::clone(&schema),
                    values.clone(),
                )
                .unwrap();
                mirror.query_candidates(&probe).unwrap()
            })
            .collect::<Vec<_>>()
    };
    per_epoch.push(expectations(&mirror, next_index));
    for op in ops {
        match op {
            Op::Insert(rows) => {
                let records: Vec<Record> = rows
                    .iter()
                    .map(|values| {
                        let id = RecordId::try_from_index(next_index).unwrap();
                        next_index += 1;
                        Record::new(id, Arc::clone(&schema), values.clone()).unwrap()
                    })
                    .collect();
                mirror.insert_batch(&records).unwrap();
            }
            Op::Remove(id) => {
                mirror.remove(*id).unwrap();
            }
        }
        per_epoch.push(expectations(&mirror, next_index));
    }
    per_epoch
}

#[test]
fn concurrent_reads_always_match_a_published_epoch_replay() {
    let ops = scripted_ops();
    let probe_rows = probes();
    let service = CandidateService::new(builder().into_incremental().unwrap(), schema()).unwrap();
    let final_epoch = ops.len() as u64;

    type Task<'scope> = Box<dyn FnOnce() -> Vec<Sample> + Send + 'scope>;
    let writer_ops = ops.clone();
    let service_ref = &service;
    let probes_ref = &probe_rows;
    let mut tasks: Vec<Task> = vec![Box::new(move || {
        for op in writer_ops {
            match op {
                Op::Insert(rows) => {
                    service_ref.insert_rows(rows).unwrap();
                }
                Op::Remove(id) => {
                    service_ref.remove(id).unwrap();
                }
            }
        }
        Vec::new()
    })];
    for reader in 0..4usize {
        tasks.push(Box::new(move || {
            let mut samples: Vec<Sample> = Vec::new();
            let mut probe_index = reader; // stagger the probe cycle per reader
            loop {
                let state = service_ref.current();
                let values = &probes_ref[probe_index % probes_ref.len()];
                let probe = service_ref.probe_record(&state, values.clone()).unwrap();
                samples.push((state.epoch(), probe_index % probes_ref.len(), state.query(&probe).unwrap()));
                if state.epoch() >= final_epoch {
                    return samples;
                }
                probe_index += 1;
            }
        }));
    }

    let sampled: Vec<Sample> = join_all(tasks).into_iter().flatten().collect();
    assert!(
        sampled.iter().any(|(epoch, _, _)| *epoch == final_epoch),
        "every reader runs until the final epoch is visible"
    );

    // Offline recount: epoch e is exactly `ops[..e]` applied to a fresh
    // index, so each sample must equal the replay of its epoch.
    let per_epoch = replay_expectations(&ops);
    let mut epochs_seen = vec![false; per_epoch.len()];
    for (epoch, probe_index, result) in &sampled {
        let epoch = usize::try_from(*epoch).unwrap();
        assert!(epoch < per_epoch.len(), "published epoch {epoch} beyond the op script");
        epochs_seen[epoch] = true;
        assert_eq!(
            result, &per_epoch[epoch][*probe_index],
            "reader sample at epoch {epoch} / probe {probe_index} diverged from the offline replay"
        );
    }
    assert!(epochs_seen[ops.len()], "the final epoch was sampled");

    // The published end state agrees with the mirror wholesale, not just on
    // the sampled probes.
    let final_state = service.current();
    assert_eq!(final_state.epoch(), final_epoch);
    let mut mirror = builder().into_incremental().unwrap();
    let mut next_index = 0usize;
    for op in &ops {
        match op {
            Op::Insert(rows) => {
                let records: Vec<Record> = rows
                    .iter()
                    .map(|values| {
                        let id = RecordId::try_from_index(next_index).unwrap();
                        next_index += 1;
                        Record::new(id, Arc::clone(&schema()), values.clone()).unwrap()
                    })
                    .collect();
                mirror.insert_batch(&records).unwrap();
            }
            Op::Remove(id) => {
                mirror.remove(*id).unwrap();
            }
        }
    }
    assert_eq!(final_state.view().snapshot().blocks(), mirror.snapshot().blocks());
    assert_eq!(final_state.view().running_counts(), mirror.running_counts());
}

/// The durable variant of the harness: the same scripted load runs against
/// a WAL-backed service under concurrent readers, then the process "dies"
/// (the service is dropped) and recovery must land on the final epoch with
/// the exact mirror-replay state. Epoch publication and durability share
/// one contract: epoch n ≡ `ops[..n]`, live or recovered.
#[test]
fn a_durable_writer_recovers_the_replayed_epoch_after_restart() {
    let dir = std::env::temp_dir().join(format!("sablock-concurrency-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let options =
        WalOptions { fsync: FsyncPolicy::Never, failpoints: FailpointPlan::none(), ..WalOptions::default() };

    let ops = scripted_ops();
    let probe_rows = probes();
    let final_epoch = ops.len() as u64;
    {
        let (service, report) =
            CandidateService::open_durable(builder().into_incremental().unwrap(), schema(), &dir, options.clone())
                .unwrap();
        assert_eq!(report.recovered_seq, 0, "a fresh WAL directory starts at epoch 0");

        type Task<'scope> = Box<dyn FnOnce() -> Vec<Sample> + Send + 'scope>;
        let writer_ops = ops.clone();
        let service_ref = &service;
        let probes_ref = &probe_rows;
        let mut tasks: Vec<Task> = vec![Box::new(move || {
            for op in writer_ops {
                match op {
                    Op::Insert(rows) => {
                        service_ref.insert_rows(rows).unwrap();
                    }
                    Op::Remove(id) => {
                        service_ref.remove(id).unwrap();
                    }
                }
            }
            Vec::new()
        })];
        for reader in 0..2usize {
            tasks.push(Box::new(move || {
                let mut samples: Vec<Sample> = Vec::new();
                let mut probe_index = reader;
                loop {
                    let state = service_ref.current();
                    let values = &probes_ref[probe_index % probes_ref.len()];
                    let probe = service_ref.probe_record(&state, values.clone()).unwrap();
                    samples.push((state.epoch(), probe_index % probes_ref.len(), state.query(&probe).unwrap()));
                    if state.epoch() >= final_epoch {
                        return samples;
                    }
                    probe_index += 1;
                }
            }));
        }
        let sampled: Vec<Sample> = join_all(tasks).into_iter().flatten().collect();

        // WAL appends on the write path must not weaken the epoch contract.
        let per_epoch = replay_expectations(&ops);
        for (epoch, probe_index, result) in &sampled {
            let epoch = usize::try_from(*epoch).unwrap();
            assert!(epoch < per_epoch.len(), "published epoch {epoch} beyond the op script");
            assert_eq!(
                result, &per_epoch[epoch][*probe_index],
                "durable-writer sample at epoch {epoch} / probe {probe_index} diverged from the replay"
            );
        }
    }

    // "Restart": recover from the WAL directory alone.
    let (recovered, report) =
        CandidateService::open_durable(builder().into_incremental().unwrap(), schema(), &dir, options).unwrap();
    assert_eq!(report.recovered_seq, final_epoch, "recovery lands on the last durable epoch");
    assert_eq!(report.replayed_records, final_epoch, "no checkpoint was taken, so every batch replays");
    assert_eq!(report.replay_rejected_batches, 0);

    let final_state = recovered.current();
    assert_eq!(final_state.epoch(), final_epoch);
    let mut mirror = builder().into_incremental().unwrap();
    let mut next_index = 0usize;
    for op in &ops {
        match op {
            Op::Insert(rows) => {
                let records: Vec<Record> = rows
                    .iter()
                    .map(|values| {
                        let id = RecordId::try_from_index(next_index).unwrap();
                        next_index += 1;
                        Record::new(id, Arc::clone(&schema()), values.clone()).unwrap()
                    })
                    .collect();
                mirror.insert_batch(&records).unwrap();
            }
            Op::Remove(id) => {
                mirror.remove(*id).unwrap();
            }
        }
    }
    assert_eq!(final_state.view().snapshot().blocks(), mirror.snapshot().blocks());
    assert_eq!(final_state.view().running_counts(), mirror.running_counts());
    let _ = std::fs::remove_dir_all(&dir);
}
