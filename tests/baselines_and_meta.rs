//! Cross-crate integration tests: the baseline techniques, the parameter
//! sweep machinery and meta-blocking, all evaluated through the same harness
//! as SA-LSH.

use sablock::baselines::params::{meta_blocking_grid, reduced_grids};
use sablock::eval::sweep_grids;
use sablock::prelude::*;

fn voter(records: usize) -> Dataset {
    NcVoterGenerator::new(NcVoterConfig {
        num_records: records,
        ..NcVoterConfig::default()
    })
    .generate()
    .unwrap()
}

fn cora(records: usize) -> Dataset {
    CoraGenerator::new(CoraConfig {
        num_records: records,
        ..CoraConfig::default()
    })
    .generate()
    .unwrap()
}

#[test]
fn every_baseline_produces_sane_metrics_on_voter_data() {
    let dataset = voter(800);
    let grids = reduced_grids(&BlockingKey::ncvoter());
    let results = sweep_grids(&grids, &dataset).unwrap();
    assert_eq!(results.len(), 12);
    for result in &results {
        let m = &result.metrics;
        assert!(m.pc() >= 0.0 && m.pc() <= 1.0);
        assert!(m.pq() >= 0.0 && m.pq() <= 1.0);
        assert!(m.rr() <= 1.0);
        assert!(m.pc() > 0.0, "{} recovered no matches at all", result.technique);
        assert!(m.candidate_pairs > 0, "{} produced no candidates", result.technique);
    }
}

#[test]
fn standard_blocking_misses_what_lsh_recovers() {
    // The motivating limitation from the paper's introduction: records of the
    // same entity with transposed or typo'd names have different blocking
    // keys, so standard blocking loses them while LSH-style blocking keeps
    // them. On a corrupted corpus TBlo's PC is therefore below LSH's.
    let dataset = cora(500);
    let tblo = run_blocker("TBlo", &StandardBlocking::new(BlockingKey::cora()), &dataset).unwrap();
    let lsh = SaLshBlocker::builder()
        .attributes(["title", "authors"])
        .qgram(4)
        .rows_per_band(4)
        .bands(63)
        .build()
        .unwrap();
    let lsh = run_blocker("LSH", &lsh, &dataset).unwrap();
    assert!(
        lsh.metrics.pc() > tblo.metrics.pc(),
        "LSH PC {} should exceed standard blocking PC {}",
        lsh.metrics.pc(),
        tblo.metrics.pc()
    );
}

#[test]
fn token_blocking_feeds_meta_blocking_which_improves_pq_star() {
    let dataset = cora(400);
    let key = BlockingKey::cora();
    let token = run_blocker("Token", &TokenBlocking::new(key.clone()), &dataset).unwrap();
    let meta = MetaBlocking::new(TokenBlocking::new(key), WeightingScheme::Cbs, PruningAlgorithm::WeightedEdgePruning);
    let pruned = run_blocker("Meta", &meta, &dataset).unwrap();
    assert!(pruned.metrics.candidate_pairs <= token.metrics.candidate_pairs);
    assert!(
        pruned.metrics.pq_star() >= token.metrics.pq_star(),
        "meta-blocking must improve PQ* ({} vs {})",
        pruned.metrics.pq_star(),
        token.metrics.pq_star()
    );
}

#[test]
fn all_twenty_meta_blocking_configurations_run() {
    let dataset = voter(400);
    let grid = meta_blocking_grid(&BlockingKey::ncvoter());
    assert_eq!(grid.len(), 20);
    for blocker in &grid {
        let result = run_blocker("Meta", blocker.as_ref(), &dataset).unwrap();
        assert!(result.metrics.pc() <= 1.0);
        assert!(result.metrics.candidate_pairs > 0, "{} produced nothing", blocker.name());
    }
}

#[test]
fn salsh_produces_fewer_candidates_than_most_baselines_at_similar_pc() {
    // Table 3's shape: SA-LSH has the smallest candidate set of the LSH
    // family, and far fewer candidates than permissive baselines like SorA
    // with a big window or token blocking.
    let dataset = voter(1_000);
    let zeta = VoterSemanticFunction::default_voter();
    let tree = sablock::core::taxonomy::voter::voter_taxonomy();
    let salsh = SaLshBlocker::builder()
        .attributes(["first_name", "last_name"])
        .qgram(2)
        .rows_per_band(9)
        .bands(15)
        .semantic(SemanticConfig::new(tree, zeta).with_w(12).with_mode(SemanticMode::Or))
        .build()
        .unwrap();
    let salsh = run_blocker("SA-LSH", &salsh, &dataset).unwrap();
    let token = run_blocker("Token", &TokenBlocking::new(BlockingKey::ncvoter()), &dataset).unwrap();
    assert!(salsh.metrics.candidate_pairs < token.metrics.candidate_pairs);
    assert!(salsh.metrics.pq() > token.metrics.pq());
}
