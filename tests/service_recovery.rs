//! Crash-recovery differential for the durable [`CandidateService`].
//!
//! The acceptance contract of the WAL layer: for a scripted op sequence,
//! *killing the log at every byte offset* and recovering must yield a
//! service state identical to an op-by-op mirror replay of the recovered
//! prefix — and recovery must never panic, whether the tail is torn
//! (truncated mid-record) or bit-flipped anywhere in the file. The mirror
//! is the same offline-replay oracle `tests/service_concurrency.rs` uses
//! for its linearizability check, so "epoch ≡ applied-op-prefix" holds
//! across crashes exactly as it holds across concurrent readers.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use sablock::core::lsh::salsh::SaLshBlockerBuilder;
use sablock::prelude::*;
use sablock::serve::wal::snapshot_path;
use sablock::serve::{FailpointPlan, FsyncPolicy, RecoveryReport, WalOptions};

fn builder() -> SaLshBlockerBuilder {
    SaLshBlocker::builder().attributes(["title", "authors"]).qgram(3).rows_per_band(2).bands(8).seed(0xB10C)
}

fn schema() -> Arc<Schema> {
    Schema::shared(["title", "authors"]).unwrap()
}

const TITLE_WORDS: &[&str] = &["theory", "record", "linkage", "entity", "semantic", "blocking"];

fn row(index: usize) -> Vec<Option<String>> {
    let first = TITLE_WORDS[index % TITLE_WORDS.len()];
    let second = TITLE_WORDS[(index / 2) % TITLE_WORDS.len()];
    vec![Some(format!("{first} {second} study")), Some(format!("author{}", index % 3))]
}

/// The scripted write load; each op is one batch, so epoch n ≡ `ops[..n]`.
#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<Vec<Option<String>>>),
    Remove(RecordId),
}

/// Ten batches of mixed inserts and removals — small enough that the
/// exhaustive per-byte kill loop stays fast, varied enough to cover batch
/// sizes 1–3 and tombstones.
fn scripted_ops() -> Vec<Op> {
    let mut ops = Vec::new();
    let mut inserted = 0usize;
    let mut next_victim = 0u32;
    for step in 0..10usize {
        if step % 3 == 2 && u64::from(next_victim) < inserted as u64 {
            ops.push(Op::Remove(RecordId(next_victim)));
            next_victim += 1;
        } else {
            let batch: Vec<Vec<Option<String>>> = (0..1 + step % 3).map(|offset| row(inserted + offset)).collect();
            inserted += batch.len();
            ops.push(Op::Insert(batch));
        }
    }
    ops
}

/// A self-deleting scratch directory for one recovery scenario.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!("sablock-recovery-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        Self(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn open_service(dir: &Path, failpoints: FailpointPlan) -> sablock::serve::Result<(CandidateService, RecoveryReport)> {
    CandidateService::open_durable(
        builder().into_incremental().unwrap(),
        schema(),
        dir,
        WalOptions { fsync: FsyncPolicy::Never, failpoints, ..WalOptions::default() },
    )
}

/// Applies ops until the first failure; returns how many were acknowledged.
fn apply_ops(service: &CandidateService, ops: &[Op]) -> usize {
    for (acked, op) in ops.iter().enumerate() {
        let result = match op {
            Op::Insert(rows) => service.insert_rows(rows.clone()).map(|_| ()),
            Op::Remove(id) => service.remove(*id).map(|_| ()),
        };
        if result.is_err() {
            return acked;
        }
    }
    ops.len()
}

/// One mirror blocker per op prefix: `mirrors[n]` is `ops[..n]` replayed
/// into a fresh index, the ground truth for the state recovered at epoch n.
fn mirrors(ops: &[Op]) -> Vec<IncrementalSaLshBlocker> {
    let schema = schema();
    (0..=ops.len())
        .map(|prefix| {
            let mut mirror = builder().into_incremental().unwrap();
            let mut next_index = 0usize;
            for op in &ops[..prefix] {
                match op {
                    Op::Insert(rows) => {
                        let records: Vec<Record> = rows
                            .iter()
                            .map(|values| {
                                let id = RecordId::try_from_index(next_index).unwrap();
                                next_index += 1;
                                Record::new(id, Arc::clone(&schema), values.clone()).unwrap()
                            })
                            .collect();
                        mirror.insert_batch(&records).unwrap();
                    }
                    Op::Remove(id) => {
                        mirror.remove(*id).unwrap();
                    }
                }
            }
            mirror
        })
        .collect()
}

/// The recovered service must match its prefix mirror wholesale: same
/// blocking, same running counters, same epoch.
fn assert_matches_mirror(service: &CandidateService, mirror: &IncrementalSaLshBlocker, prefix: usize, context: &str) {
    let state = service.current();
    assert_eq!(state.epoch(), prefix as u64, "recovered epoch ≠ replayed prefix ({context})");
    assert_eq!(
        state.view().snapshot().blocks(),
        mirror.snapshot().blocks(),
        "recovered blocking diverged from the mirror replay ({context})"
    );
    assert_eq!(
        state.view().running_counts(),
        mirror.running_counts(),
        "recovered running counts diverged from the mirror replay ({context})"
    );
}

/// Measures the byte length of the clean, single-segment log for `ops`.
fn clean_log_bytes(ops: &[Op]) -> u64 {
    let dir = TempDir::new("measure");
    let (service, _) = open_service(dir.path(), FailpointPlan::none()).unwrap();
    assert_eq!(apply_ops(&service, ops), ops.len());
    let (base, bytes) = service.wal_position().expect("durable services report a WAL position");
    assert_eq!(base, 0, "the measuring run must stay in one segment");
    bytes
}

#[test]
fn killing_the_wal_at_every_byte_offset_recovers_exactly_the_acked_prefix() {
    let ops = scripted_ops();
    let mirrors = mirrors(&ops);
    let total_bytes = clean_log_bytes(&ops);

    for kill in 0..=total_bytes {
        let dir = TempDir::new("kill");
        // Phase 1: run against a log that dies at byte `kill`. Opening can
        // itself fail (the kill lands inside the segment header) — then
        // nothing was acknowledged.
        let acked = match open_service(dir.path(), FailpointPlan::kill_at_byte(kill)) {
            Ok((service, _)) => apply_ops(&service, &ops),
            Err(_) => 0,
        };
        // Phase 2: recover failpoint-free. This must never panic and never
        // error — a torn tail is an expected crash artefact, not corruption.
        let (recovered, report) = open_service(dir.path(), FailpointPlan::none())
            .unwrap_or_else(|error| panic!("recovery failed after kill at byte {kill}: {error}"));
        assert_eq!(
            report.recovered_seq, acked as u64,
            "kill at byte {kill}: acknowledged batches must be exactly the durable ones (fsync-free log)"
        );
        assert!(report.recovered_seq <= ops.len() as u64);
        assert_matches_mirror(
            &recovered,
            &mirrors[report.recovered_seq as usize],
            report.recovered_seq as usize,
            &format!("kill at byte {kill}"),
        );
    }
}

#[test]
fn bit_flips_anywhere_in_the_log_recover_a_verified_prefix_without_panicking() {
    let ops = scripted_ops();
    let mirrors = mirrors(&ops);

    // Write one clean log, then corrupt copies of it byte by byte.
    let clean_dir = TempDir::new("bitflip-clean");
    let segment_name = "wal-0000000000000000.log";
    {
        let (service, _) = open_service(clean_dir.path(), FailpointPlan::none()).unwrap();
        assert_eq!(apply_ops(&service, &ops), ops.len());
    }
    let clean = std::fs::read(clean_dir.path().join(segment_name)).unwrap();

    for index in 0..clean.len() {
        let mut corrupt = clean.clone();
        corrupt[index] ^= 1 << (index % 8);
        let dir = TempDir::new("bitflip");
        std::fs::create_dir_all(dir.path()).unwrap();
        std::fs::write(dir.path().join(segment_name), &corrupt).unwrap();

        // A single-segment log can lose a suffix to a flip but can never
        // become a typed recovery error (holes need multiple segments) —
        // and it must never panic.
        let (recovered, report) = open_service(dir.path(), FailpointPlan::none())
            .unwrap_or_else(|error| panic!("bit flip at byte {index} broke recovery: {error}"));
        assert!(report.recovered_seq <= ops.len() as u64);
        assert_matches_mirror(
            &recovered,
            &mirrors[report.recovered_seq as usize],
            report.recovered_seq as usize,
            &format!("bit flip at byte {index}"),
        );
    }
}

#[test]
fn checkpoints_compact_the_log_and_recovery_resumes_past_them() {
    let ops = scripted_ops();
    let mirrors = mirrors(&ops);
    let half = ops.len() / 2;
    let dir = TempDir::new("checkpoint");
    {
        let (service, _) = open_service(dir.path(), FailpointPlan::none()).unwrap();
        assert_eq!(apply_ops(&service, &ops[..half]), half);
        assert_eq!(service.checkpoint().unwrap(), half as u64);
        assert!(snapshot_path(dir.path(), half as u64).exists(), "checkpoint writes its snapshot");
        assert!(
            !dir.path().join("wal-0000000000000000.log").exists(),
            "checkpoint prunes segments the snapshot supersedes"
        );
        assert_eq!(apply_ops(&service, &ops[half..]), ops.len() - half);
    }
    let (recovered, report) = open_service(dir.path(), FailpointPlan::none()).unwrap();
    assert_eq!(report.snapshot_ops, half as u64, "recovery adopts the checkpoint snapshot");
    assert_eq!(report.skipped_snapshots, 0);
    assert_eq!(report.replayed_records, (ops.len() - half) as u64);
    assert_eq!(report.recovered_seq, ops.len() as u64);
    assert_matches_mirror(&recovered, &mirrors[ops.len()], ops.len(), "checkpoint + suffix replay");
}

#[test]
fn a_corrupt_checkpoint_over_a_pruned_log_is_a_typed_recovery_error() {
    let ops = scripted_ops();
    let half = ops.len() / 2;
    let dir = TempDir::new("corrupt-checkpoint");
    {
        let (service, _) = open_service(dir.path(), FailpointPlan::none()).unwrap();
        assert_eq!(apply_ops(&service, &ops[..half]), half);
        assert_eq!(service.checkpoint().unwrap(), half as u64);
        assert_eq!(apply_ops(&service, &ops[half..]), ops.len() - half);
    }
    // Destroy the only snapshot. The surviving segments start past batch 0,
    // so the log provably cannot reproduce the full history: recovery must
    // refuse with a typed error instead of silently serving a partial state.
    std::fs::write(snapshot_path(dir.path(), half as u64), b"not a snapshot").unwrap();
    let error = open_service(dir.path(), FailpointPlan::none()).unwrap_err();
    assert!(
        matches!(error, ServeError::Recovery(_)),
        "expected ServeError::Recovery for a hole, got: {error}"
    );
    assert!(error.to_string().contains("hole"), "{error}");
}
