//! Golden regression test for the candidate-pair path: exact Cora metric
//! counts (`candidate_pairs`, `redundant_pairs`, `true_positives`) for LSH,
//! SA-LSH and the representative setting of every baseline technique.
//!
//! Every count below is produced by the *streaming* Γ evaluation
//! (`BlockingMetrics::evaluate` → `BlockCollection::stream_pair_counts`), so
//! any refactor of pair enumeration, deduplication, slicing or counting that
//! silently shifts a single pair fails this test. The generators and
//! blockers are pure functions of their fixed seeds, so the numbers are
//! stable across platforms and thread counts.
//!
//! If a change *intentionally* alters blocking output (new default
//! parameters, a generator fix), re-run with
//! `cargo test --test golden_metrics -- --nocapture` and update the table
//! from the printed actual values.

use sablock::baselines::params::reduced_grids;
use sablock::core::blocking::Blocker;
use sablock::core::lsh::semantic_hash::SemanticMode;
use sablock::core::taxonomy::bib::BibVariant;
use sablock::eval::experiments::{cora_dataset, cora_lsh, cora_salsh, Scale, CORA_SEMANTIC_BITS};
use sablock::prelude::*;

/// One pinned row: technique, |Γ|, |Γ_m|, |Γ_tp|.
const GOLDEN: &[(&str, u64, u64, u64)] = &[
    ("LSH", 3014, 21954, 2186),
    ("SA-LSH", 2641, 34499, 2186),
    ("TBlo", 22, 22, 22),
    ("SorA", 797, 1194, 323),
    ("SorII", 853, 1311, 340),
    ("ASor", 817, 817, 489),
    ("QGr", 27, 1413, 27),
    ("CaTh", 4080, 23161, 2411),
    ("CaNN", 3617, 7535, 1965),
    ("StMT", 422, 735, 407),
    ("StMNN", 2087, 5832, 363),
    ("SuA", 897, 17631, 818),
    ("SuAS", 6235, 150753, 1911),
    ("RSuA", 6506, 60612, 2155),
];

/// The blockers under golden pinning: the Fig. 11/12 LSH and SA-LSH
/// operating points plus the first (representative) setting of every
/// baseline technique grid.
fn golden_blockers() -> Vec<(String, Box<dyn Blocker>)> {
    let mut blockers: Vec<(String, Box<dyn Blocker>)> = vec![
        ("LSH".into(), Box::new(cora_lsh(4, 63).unwrap())),
        (
            "SA-LSH".into(),
            Box::new(cora_salsh(4, 63, CORA_SEMANTIC_BITS, SemanticMode::Or, BibVariant::Full, 0x1212).unwrap()),
        ),
    ];
    for grid in reduced_grids(&BlockingKey::cora()) {
        let mut settings = grid.settings;
        blockers.push((grid.technique.to_string(), settings.remove(0)));
    }
    blockers
}

#[test]
fn cora_pair_counts_are_pinned() {
    let dataset = cora_dataset(Scale::Quick).unwrap();
    let truth = dataset.ground_truth();
    let mut failures = Vec::new();
    let blockers = golden_blockers();
    assert_eq!(blockers.len(), GOLDEN.len(), "golden table covers every technique");
    for ((name, blocker), &(golden_name, pairs, redundant, tps)) in blockers.into_iter().zip(GOLDEN) {
        assert_eq!(name, golden_name, "technique order matches the golden table");
        let blocks = blocker.block(&dataset).unwrap();
        let m = BlockingMetrics::evaluate(&blocks, truth);
        println!(
            "    (\"{name}\", {}, {}, {}),",
            m.candidate_pairs, m.redundant_pairs, m.true_positives
        );
        if (m.candidate_pairs, m.redundant_pairs, m.true_positives) != (pairs, redundant, tps) {
            failures.push(format!(
                "{name}: got (|Γ|={}, |Γ_m|={}, |Γ_tp|={}), golden (|Γ|={pairs}, |Γ_m|={redundant}, |Γ_tp|={tps})",
                m.candidate_pairs, m.redundant_pairs, m.true_positives
            ));
        }
        // The streaming counts being pinned must also agree with the
        // materialised reference — a golden shift can then only mean the
        // *blocks* changed, never a silent pair-path divergence.
        assert_eq!(m, BlockingMetrics::evaluate_materialised(&blocks, truth), "{name}: streaming vs materialised");
    }
    assert!(failures.is_empty(), "golden Cora counts shifted:\n{}", failures.join("\n"));
}
