//! Differential tests of the O(delta) running counters: after **every**
//! operation of a randomized `insert_batch` / `remove` / re-insert
//! interleaving, the blocker's [`RunningCounts`] must equal a from-scratch
//! recount of the live corpus (streamed Γ/Γ_tp over a fresh snapshot against
//! the blocker's own entity table). The suite also pins the edge cases the
//! random walk could miss — remove-then-reinsert of the same entity, removal
//! of a record that never entered any pair — and proves bucket-local
//! tombstone compaction observation-equivalent at the threshold boundaries
//! (0 %, just-below, at, just-above the dead fraction, and 100 % dead).
//!
//! CI runs this file with `--features sablock_core/check-invariants`, so the
//! runtime sanitizer (counter underflow, bucket tombstone accounting,
//! cross-batch delta disjointness) is armed under the same interleavings.
//! The vendored `proptest` derives its RNG seed from the test name, so every
//! run replays the same fixed-seed case set.

use std::sync::Arc;

use proptest::prelude::*;

use sablock::core::blocking::PairCounts;
use sablock::core::incremental::{IncrementalBlocker, IncrementalSaLshBlocker, RunningCounts};
use sablock::core::lsh::salsh::SaLshBlockerBuilder;
use sablock::core::semantic::semhash::SemhashFamily;
use sablock::prelude::*;

fn cora_dataset(records: usize) -> Dataset {
    CoraGenerator::new(CoraConfig { num_records: records, seed: 0xD5EED, ..CoraConfig::default() })
        .generate()
        .unwrap()
}

fn lsh_builder() -> SaLshBlockerBuilder {
    SaLshBlocker::builder().attributes(["title", "authors"]).qgram(3).rows_per_band(2).bands(8).seed(0xB10C)
}

fn salsh_builder() -> SaLshBlockerBuilder {
    let tree = bibliographic_taxonomy();
    let zeta = PatternSemanticFunction::cora_default(&tree).unwrap();
    let family = SemhashFamily::from_all_leaves(&tree).unwrap();
    lsh_builder().semantic(
        SemanticConfig::new(tree, zeta)
            .with_w(2)
            .with_mode(SemanticMode::Or)
            .with_seed(11)
            .with_pinned_family(family),
    )
}

/// The ground truth the running counters must always agree with: a
/// from-scratch streamed recount of the **live** corpus — fresh snapshot,
/// every candidate pair probed against the blocker's own entity table.
fn recount(blocker: &IncrementalSaLshBlocker) -> PairCounts {
    blocker
        .snapshot()
        .stream_packed_counts(EntityTableProbe::new(blocker.entity_table()))
}

fn assert_counts_exact(blocker: &IncrementalSaLshBlocker, context: &str) {
    let expected = recount(blocker);
    let running = blocker.running_counts();
    assert_eq!(running.pairs, expected.distinct, "running |Γ| drifted from the live recount {context}");
    assert_eq!(
        running.true_positives, expected.matching,
        "running |Γ_tp| drifted from the live recount {context}"
    );
}

/// One record's resurrectable payload: its row values and its entity.
type Resurrectable = (Vec<Option<String>>, EntityId);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole differential: a seeded random interleaving of fresh
    /// inserts, removals of live records, and re-inserts of previously
    /// removed payloads (same entity, fresh id — ids are never reused).
    /// After every single operation the running counters must equal the
    /// from-scratch recount.
    #[test]
    fn randomized_interleavings_keep_running_counts_exact(
        kinds in proptest::collection::vec(any::<u8>(), 1..28),
        params in proptest::collection::vec(any::<u8>(), 1..28),
        semantic in any::<bool>(),
    ) {
        let ops: Vec<(u8, u8)> = kinds.iter().copied().zip(params.iter().copied()).collect();
        let dataset = cora_dataset(60);
        let entities = dataset.ground_truth().entity_table().to_vec();
        let schema = Arc::clone(dataset.records()[0].schema());
        let builder = if semantic { salsh_builder() } else { lsh_builder() };
        let mut blocker = builder.into_incremental().unwrap();

        let mut source = 0usize; // next unseen dataset record
        let mut live: Vec<RecordId> = Vec::new();
        let mut graveyard: Vec<Resurrectable> = Vec::new();
        let mut expected_entities: Vec<EntityId> = Vec::new();

        for (step, &(kind, param)) in ops.iter().enumerate() {
            let param = param as usize;
            match kind % 3 {
                // Insert a fresh batch of 1–4 unseen records.
                0 => {
                    let take = (1 + param % 4).min(dataset.len() - source);
                    if take == 0 {
                        continue;
                    }
                    let mut rows = Vec::with_capacity(take);
                    let mut batch_entities = Vec::with_capacity(take);
                    for record in &dataset.records()[source..source + take] {
                        rows.push(record.values().to_vec());
                        batch_entities.push(entities[record.id().index()]);
                    }
                    source += take;
                    let first = blocker.next_record_id();
                    blocker.insert_values_with_entities(&schema, rows, &batch_entities).unwrap();
                    for offset in 0..take {
                        // Ids are dense, so the batch occupies first..first+take.
                        live.push(RecordId(first.0 + u32::try_from(offset).unwrap()));
                    }
                    expected_entities.extend_from_slice(&batch_entities);
                }
                // Remove a live record.
                1 => {
                    if live.is_empty() {
                        continue;
                    }
                    let victim = live.swap_remove(param % live.len());
                    let entity = expected_entities[victim.index()];
                    let values = dataset.records()[..]
                        .iter()
                        .find(|r| r.id() == victim)
                        .map(|r| r.values().to_vec());
                    // Re-inserted copies are not in the source dataset; fall
                    // back to remembering nothing extra for them (their
                    // payload is already in the graveyard rotation).
                    if let Some(values) = values {
                        graveyard.push((values, entity));
                    }
                    prop_assert!(blocker.remove(victim).unwrap());
                    prop_assert!(!blocker.remove(victim).unwrap(), "double removal must report false");
                }
                // Re-insert a removed payload under a fresh id — the
                // remove-then-reinsert-same-entity scenario.
                _ => {
                    if graveyard.is_empty() {
                        continue;
                    }
                    let (values, entity) = graveyard.swap_remove(param % graveyard.len());
                    let id = blocker.next_record_id();
                    blocker
                        .insert_values_with_entities(&schema, vec![values], &[entity])
                        .unwrap();
                    live.push(id);
                    expected_entities.push(entity);
                }
            }
            prop_assert_eq!(
                blocker.entity_table(),
                &expected_entities[..],
                "entity table mirrors the ingest"
            );
            assert_counts_exact(&blocker, &format!("after op {step}"));
        }

        // Drain: removing everything must land the counters exactly on zero.
        for id in live.drain(..) {
            blocker.remove(id).unwrap();
        }
        assert_counts_exact(&blocker, "after draining every live record");
        prop_assert_eq!(blocker.running_counts(), RunningCounts::default());
    }

    /// Compaction is observation-equivalent under random interleavings: a
    /// twin blocker that compacts aggressively (threshold 0.0, every
    /// removal-touched bucket rebuilt at once) stays byte-identical — in
    /// snapshots, running counts, and subsequent deltas — to a twin that
    /// never compacts (threshold 2.0), and a forced mid-stream `compact()`
    /// changes nothing observable either.
    #[test]
    fn compaction_is_observation_equivalent_under_interleavings(
        sizes in proptest::collection::vec(1usize..20, 1..6),
        removals in proptest::collection::vec(0u32..50, 1..14),
        semantic in any::<bool>(),
    ) {
        let dataset = cora_dataset(50);
        let builder = if semantic { salsh_builder() } else { lsh_builder() };
        let mut lazy = builder.clone().into_incremental().unwrap().with_compaction_threshold(2.0);
        let mut eager = builder.into_incremental().unwrap().with_compaction_threshold(0.0);

        let mut offset = 0usize;
        let mut sizes_iter = sizes.iter().copied();
        let mut removal_queue: Vec<RecordId> = removals.iter().map(|&id| RecordId(id)).collect();
        while offset < dataset.len() {
            let size = sizes_iter.next().unwrap_or(dataset.len() - offset).clamp(1, dataset.len() - offset);
            let batch = &dataset.records()[offset..offset + size];
            let lazy_delta = lazy.insert_batch(batch).unwrap().clone();
            let eager_delta = eager.insert_batch(batch).unwrap().clone();
            prop_assert_eq!(lazy_delta, eager_delta, "deltas must not depend on compaction");
            offset += size;
            removal_queue.retain(|&id| {
                if id.index() < offset {
                    assert_eq!(lazy.remove(id).unwrap(), eager.remove(id).unwrap());
                    false
                } else {
                    true
                }
            });
            // Immediately before/after a forced compaction: byte-identical.
            let before = lazy.snapshot();
            let mut forced = lazy.clone();
            forced.compact();
            prop_assert_eq!(forced.snapshot().blocks(), before.blocks());
            prop_assert_eq!(forced.running_counts(), lazy.running_counts());

            prop_assert_eq!(lazy.snapshot().blocks(), eager.snapshot().blocks());
            prop_assert_eq!(lazy.running_counts(), eager.running_counts());
        }
        prop_assert_eq!(lazy.num_compactions(), 0, "threshold 2.0 must never compact");
        assert_counts_exact(&eager, "on the eagerly compacted twin");
    }
}

/// Removing a record that never entered any candidate pair (its text is
/// empty, so it was never indexed into any bucket) must subtract nothing and
/// leave the counters exact.
#[test]
fn removing_a_never_paired_record_subtracts_nothing() {
    let schema = Schema::shared(["title", "authors"]).unwrap();
    let mut blocker = lsh_builder().into_incremental().unwrap();
    let rows = vec![
        vec![Some("a theory for record linkage".into()), Some("fellegi".into())],
        vec![None, None], // never shingled → never in any bucket
        vec![Some("a theory of record linkage".into()), Some("fellegi".into())],
    ];
    let entities = [EntityId(0), EntityId(7), EntityId(0)];
    blocker.insert_values_with_entities(&schema, rows, &entities).unwrap();
    let before = blocker.running_counts();
    assert!(before.pairs > 0 && before.true_positives > 0);

    assert!(blocker.remove(RecordId(1)).unwrap());
    assert_eq!(blocker.running_counts(), before, "a pairless record contributes nothing to subtract");
    assert_counts_exact(&blocker, "after removing the never-paired record");
    assert_eq!(blocker.compact(), 0, "no bucket holds the never-indexed record");
}

/// Remove-then-reinsert of the same entity: the pairs disappear from the
/// counters with the removal and come back (under the fresh id) with the
/// re-insert, exactly.
#[test]
fn remove_then_reinsert_same_entity_restores_the_counts() {
    let schema = Schema::shared(["title", "authors"]).unwrap();
    let mut blocker = salsh_builder().into_incremental().unwrap();
    let payload = vec![Some("efficient clustering of high dimensional data sets".to_string()), Some("cluto".to_string())];
    let rows = vec![
        payload.clone(),
        vec![Some("efficient clustering of high dimensional data".into()), Some("cluto".into())],
    ];
    blocker.insert_values_with_entities(&schema, rows, &[EntityId(3), EntityId(3)]).unwrap();
    let full = blocker.running_counts();
    assert!(full.true_positives > 0, "the two spellings must collide");

    assert!(blocker.remove(RecordId(0)).unwrap());
    assert_eq!(blocker.running_counts(), RunningCounts::default(), "removing one of two live records empties Γ");

    blocker.insert_values_with_entities(&schema, vec![payload], &[EntityId(3)]).unwrap();
    let restored = blocker.running_counts();
    assert_eq!(restored.pairs, full.pairs, "identical payload under a fresh id restores |Γ|");
    assert_eq!(restored.true_positives, full.true_positives, "same entity ⇒ the pair is a true positive again");
    assert_counts_exact(&blocker, "after the re-insert");
}

/// Threshold boundary semantics with an analytically known bucket: ten
/// identical records share every bucket, so each bucket holds exactly ten
/// members and the dead fraction after `r` removals is `r/10`. Compaction
/// must first fire at 1 removal for threshold 0 %, at 5 for just-below and
/// exactly 50 %, at 6 for just-above, and only at 10 (100 % dead) for
/// threshold 1.0 — and never perturb the observable state.
#[test]
fn compaction_threshold_boundaries() {
    let schema = Schema::shared(["title", "authors"]).unwrap();
    let identical = || vec![Some("the cascade correlation learning architecture".to_string()), Some("fahlman".to_string())];
    let cases = [
        (0.0_f64, 1u32),
        (0.499, 5),
        (0.5, 5),
        (0.501, 6),
        (1.0, 10),
    ];
    for (threshold, expected_first_trigger) in cases {
        let mut blocker = lsh_builder().into_incremental().unwrap().with_compaction_threshold(threshold);
        let mut reference = lsh_builder().into_incremental().unwrap().with_compaction_threshold(2.0);
        let rows: Vec<Vec<Option<String>>> = (0..10).map(|_| identical()).collect();
        let entities: Vec<EntityId> = (0..10).map(EntityId).collect();
        blocker.insert_values_with_entities(&schema, rows.clone(), &entities).unwrap();
        reference.insert_values_with_entities(&schema, rows, &entities).unwrap();

        let mut first_trigger: Option<u32> = None;
        for victim in 0u32..10 {
            blocker.remove(RecordId(victim)).unwrap();
            reference.remove(RecordId(victim)).unwrap();
            if first_trigger.is_none() && blocker.num_compactions() > 0 {
                first_trigger = Some(victim + 1);
            }
            assert_eq!(
                blocker.snapshot().blocks(),
                reference.snapshot().blocks(),
                "threshold {threshold} after {} removals",
                victim + 1
            );
            assert_eq!(blocker.running_counts(), reference.running_counts());
        }
        assert_eq!(
            first_trigger,
            Some(expected_first_trigger),
            "threshold {threshold}: first compaction at the wrong dead fraction"
        );
        assert_eq!(reference.num_compactions(), 0);
        assert_eq!(blocker.running_counts(), RunningCounts::default());
    }
}
