//! Cross-crate property-based tests of the framework's structural invariants:
//! random taxonomy trees, random interpretations, random block collections and
//! random blocker configurations must all respect the propositions of the
//! paper and the algebra of the evaluation measures.

use proptest::prelude::*;

use sablock::core::blocking::{merge_count_packed_runs, radix_sort_packed, Block, BlockCollection, PairCounts};
use sablock::core::lsh::probability::{banding_collision_probability, salsh_collision_probability, w_way_probability};
use sablock::core::semantic::semhash::SemhashFamily;
use sablock::core::semantic::similarity::{concept_similarity, record_semantic_similarity};
use sablock::core::semantic::Interpretation;
use sablock::core::taxonomy::{ConceptId, TaxonomyTree};
use sablock::datasets::record::RecordPair;
use sablock::prelude::*;

/// Builds a random taxonomy tree from a parent-pointer list: node `i + 1`
/// attaches to node `parents[i] % (i + 1)`, guaranteeing a valid tree.
fn tree_from_parents(parents: &[u8]) -> TaxonomyTree {
    let mut tree = TaxonomyTree::new("random");
    let root = tree.add_root("n0").unwrap();
    let mut nodes = vec![root];
    for (i, &p) in parents.iter().enumerate() {
        let parent = nodes[(p as usize) % nodes.len()];
        let id = tree.add_child(parent, format!("n{}", i + 1)).unwrap();
        nodes.push(id);
    }
    tree
}

fn arb_tree() -> impl Strategy<Value = TaxonomyTree> {
    proptest::collection::vec(any::<u8>(), 1..20).prop_map(|parents| tree_from_parents(&parents))
}

/// Interprets a flat id list as consecutive `(a, b)` pairs, dropping the
/// self-pairs (the vendored proptest has no tuple strategies).
fn ids_to_pairs(ids: &[u32]) -> Vec<RecordPair> {
    ids.chunks_exact(2)
        .filter_map(|ab| RecordPair::new(RecordId(ab[0]), RecordId(ab[1])))
        .collect()
}

/// Builds a sorted, deduplicated packed run from arbitrary id pairs (the
/// invariant every input run of the merge counter satisfies).
fn packed_run(ids: &[u32]) -> Vec<u64> {
    let mut keys: Vec<u64> = ids_to_pairs(ids).into_iter().map(RecordPair::pack).collect();
    keys.sort_unstable();
    keys.dedup();
    keys
}

/// The PR-3 reference merge: a binary heap of `(key, run)` heads, pop + push
/// per redundant key, deduplicating on emission. The loser-tree/galloping
/// merge must be observationally identical to this on every input.
fn heap_merge_reference<F: Fn(u64) -> bool>(runs: &[Vec<u64>], probe: F) -> PairCounts {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut iters: Vec<_> = runs.iter().map(|run| run.iter().copied()).collect();
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::with_capacity(iters.len());
    for (idx, iter) in iters.iter_mut().enumerate() {
        if let Some(key) = iter.next() {
            heap.push(Reverse((key, idx)));
        }
    }
    let mut counts = PairCounts::default();
    let mut last: Option<u64> = None;
    while let Some(Reverse((key, idx))) = heap.pop() {
        if last != Some(key) {
            counts.distinct += 1;
            if probe(key) {
                counts.matching += 1;
            }
            last = Some(key);
        }
        if let Some(next) = iters[idx].next() {
            heap.push(Reverse((next, idx)));
        }
    }
    counts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Structural invariants of random taxonomy trees: validation passes, the
    /// leaves of the root are all leaves of the tree, and every concept's leaf
    /// set is a subset of its ancestors' leaf sets.
    #[test]
    fn random_trees_are_structurally_sound(tree in arb_tree()) {
        prop_assert!(tree.validate().is_ok());
        let root = tree.root().unwrap();
        prop_assert_eq!(tree.leaves_under(root).len(), tree.all_leaves().len());
        for concept in tree.concepts() {
            let leaves = tree.leaves_under(concept);
            prop_assert!(!leaves.is_empty());
            if let Some(parent) = tree.parent(concept) {
                let parent_leaves = tree.leaves_under(parent);
                prop_assert!(leaves.iter().all(|l| parent_leaves.contains(l)));
                prop_assert!(tree.subsumed_by(concept, parent));
                prop_assert!(!tree.subsumed_by(parent, concept) || parent == concept);
            }
        }
    }

    /// Eq. 4 on random trees: concept similarity is symmetric, bounded,
    /// reflexive, zero for unrelated siblings and monotone along chains.
    #[test]
    fn concept_similarity_axioms_hold_on_random_trees(tree in arb_tree()) {
        let concepts: Vec<ConceptId> = tree.concepts().collect();
        for &a in &concepts {
            prop_assert_eq!(concept_similarity(&tree, a, a), 1.0);
            for &b in &concepts {
                let s = concept_similarity(&tree, a, b);
                prop_assert!((0.0..=1.0).contains(&s));
                prop_assert!((s - concept_similarity(&tree, b, a)).abs() < 1e-12);
                // Unrelated concepts have disjoint leaf sets => similarity 0.
                if !tree.related(a, b) {
                    prop_assert_eq!(s, 0.0);
                }
                // Related concepts always share the descendant's leaves => > 0.
                if tree.related(a, b) {
                    prop_assert!(s > 0.0);
                }
            }
        }
    }

    /// Eq. 5 and Proposition 4.2 on random trees and random interpretations.
    #[test]
    fn record_similarity_axioms_hold_on_random_trees(
        tree in arb_tree(),
        picks_a in proptest::collection::vec(any::<u8>(), 1..4),
        picks_b in proptest::collection::vec(any::<u8>(), 1..4),
    ) {
        let concepts: Vec<ConceptId> = tree.concepts().collect();
        let pick = |choices: &[u8]| -> Interpretation {
            Interpretation::new(&tree, choices.iter().map(|&c| concepts[(c as usize) % concepts.len()]))
        };
        let zeta_a = pick(&picks_a);
        let zeta_b = pick(&picks_b);
        let s_ab = record_semantic_similarity(&tree, &zeta_a, &zeta_b);
        let s_ba = record_semantic_similarity(&tree, &zeta_b, &zeta_a);
        prop_assert!((0.0..=1.0).contains(&s_ab));
        prop_assert!((s_ab - s_ba).abs() < 1e-12);
        // Self-similarity of a non-empty interpretation is 1.
        prop_assert!((record_semantic_similarity(&tree, &zeta_a, &zeta_a) - 1.0).abs() < 1e-12);
        // Proposition 4.3-style compatibility: zero semantic similarity iff the
        // semhash signatures share no bit (over the full-leaf family).
        let family = SemhashFamily::from_all_leaves(&tree).unwrap();
        let sig_a = family.signature(&tree, &zeta_a);
        let sig_b = family.signature(&tree, &zeta_b);
        prop_assert_eq!(s_ab == 0.0, !sig_a.intersects(&sig_b));
    }

    /// The closed-form collision model: monotone in every argument and
    /// consistent between the plain and semantic-aware families.
    #[test]
    fn collision_model_is_monotone(
        s in 0.0f64..1.0,
        s_prime in 0.0f64..1.0,
        k in 1usize..8,
        l in 1usize..100,
        w in 1usize..10,
    ) {
        let base = banding_collision_probability(s, k, l);
        prop_assert!((0.0..=1.0).contains(&base));
        // More bands help, more rows hurt.
        prop_assert!(banding_collision_probability(s, k, l + 1) + 1e-12 >= base);
        prop_assert!(banding_collision_probability(s, k + 1, l) <= base + 1e-12);
        // The semantic factor can only lower the probability, and OR dominates AND.
        for mode in [SemanticMode::And, SemanticMode::Or] {
            let sa = salsh_collision_probability(s, s_prime, k, l, w, mode);
            prop_assert!(sa <= base + 1e-12);
            prop_assert!((0.0..=1.0).contains(&sa));
        }
        prop_assert!(
            w_way_probability(s_prime, w, SemanticMode::Or) + 1e-12 >= w_way_probability(s_prime, w, SemanticMode::And)
        );
    }

    /// The packed pair key is a faithful, order-preserving encoding: packing
    /// round-trips exactly and the numeric order of packed keys is the
    /// derived `Ord` on [`RecordPair`].
    #[test]
    fn packed_keys_round_trip_and_preserve_ordering(
        ids in proptest::collection::vec(any::<u32>(), 2..128),
    ) {
        let pairs = ids_to_pairs(&ids);
        for &pair in &pairs {
            prop_assert_eq!(RecordPair::from_packed(pair.pack()), pair);
            prop_assert_eq!(RecordPair::pack_ascending(pair.first(), pair.second()), pair.pack());
        }
        for &a in &pairs {
            for &b in &pairs {
                prop_assert_eq!(a.cmp(&b), a.pack().cmp(&b.pack()), "{} vs {}", a, b);
            }
        }
    }

    /// The radix sort used for packed run construction is observationally
    /// `sort_unstable` (keys have no identity, so stability is moot), across
    /// the comparison-fallback threshold and beyond it.
    #[test]
    fn radix_sort_equals_comparison_sort(
        ids in proptest::collection::vec(0u32..2_000, 0..6_000),
    ) {
        let mut keys: Vec<u64> = ids_to_pairs(&ids).into_iter().map(RecordPair::pack).collect();
        let mut expected = keys.clone();
        expected.sort_unstable();
        radix_sort_packed(&mut keys);
        prop_assert_eq!(keys, expected);
    }

    /// The loser-tree/galloping merge counter is observationally identical
    /// to the PR-3 binary-heap merge on duplicate-heavy run sets: many runs
    /// drawn from a tiny id universe, so most keys repeat across runs and
    /// cross-run ties are the common case.
    #[test]
    fn loser_tree_merge_matches_heap_merge_on_duplicate_heavy_runs(
        runs in proptest::collection::vec(
            proptest::collection::vec(0u32..6, 0..40),
            0..12,
        ),
    ) {
        let runs: Vec<Vec<u64>> = runs.iter().map(|ids| packed_run(ids)).collect();
        let probe = |p: &RecordPair| p.first().0 % 2 == 0;
        let reference = heap_merge_reference(&runs, |key| probe(&RecordPair::from_packed(key)));
        prop_assert_eq!(merge_count_packed_runs(&runs, &probe), reference);
        // A BTreeSet union is a second, independent witness for |Γ|.
        let union: std::collections::BTreeSet<u64> = runs.iter().flatten().copied().collect();
        prop_assert_eq!(reference.distinct, union.len() as u64);
    }

    /// The same equivalence on the gallop-friendly adversarial shape: one
    /// long run (which the gallop path should swallow in large bites) plus
    /// many short runs, with empty runs mixed in.
    #[test]
    fn loser_tree_merge_matches_heap_merge_on_one_long_many_short_runs(
        long in proptest::collection::vec(0u32..1_000, 0..800),
        shorts in proptest::collection::vec(
            proptest::collection::vec(0u32..1_000, 0..6),
            0..10,
        ),
        empty_positions in proptest::collection::vec(0usize..12, 0..4),
    ) {
        let mut runs: Vec<Vec<u64>> = Vec::new();
        runs.push(packed_run(&long));
        runs.extend(shorts.iter().map(|ids| packed_run(ids)));
        for &at in &empty_positions {
            runs.insert(at.min(runs.len()), Vec::new());
        }
        let probe = |p: &RecordPair| p.second().0 % 3 == 0;
        let reference = heap_merge_reference(&runs, |key| probe(&RecordPair::from_packed(key)));
        prop_assert_eq!(merge_count_packed_runs(&runs, &probe), reference);
    }

    /// The sort-dedup/sorted-merge pair enumeration is a drop-in replacement
    /// for the old per-collection HashSet: on random block collections —
    /// including empty blocks, singleton blocks and overlap-heavy collections
    /// drawn from a tiny record universe so most pairs repeat across blocks —
    /// `distinct_pairs` yields exactly the reference set, in sorted order.
    #[test]
    fn sorted_merge_enumeration_matches_hashset_semantics(
        // Up to 600 blocks of 0..6 members over only 9 records: heavy overlap,
        // with empty and singleton blocks mixed in. 600 blocks also exceeds
        // one enumeration shard, exercising the parallel merge path.
        blocks in proptest::collection::vec(proptest::collection::vec(0u32..9, 0..6), 0..600),
    ) {
        let collection = BlockCollection::from_blocks(
            blocks
                .iter()
                .enumerate()
                .map(|(i, members)| Block::new(format!("b{i}"), members.iter().copied().map(RecordId).collect()))
                .collect(),
        );
        // Reference: the pre-refactor semantics — a hash set accumulated
        // per block, here ordered through a BTreeSet for comparison.
        let reference: std::collections::BTreeSet<_> =
            collection.blocks().iter().flat_map(|b| b.pairs()).collect();
        let enumerated = collection.distinct_pairs();
        prop_assert!(enumerated.windows(2).all(|w| w[0] < w[1]), "sorted and deduplicated");
        prop_assert_eq!(enumerated.len(), reference.len());
        prop_assert_eq!(enumerated, reference.into_iter().collect::<Vec<_>>());
    }

    /// Streaming Γ evaluation is a drop-in replacement for the materialised
    /// computation: on random block collections — overlap-heavy (blocks drawn
    /// from a 9-record universe), with singleton and empty blocks mixed in,
    /// and spanning multiple enumeration shards — `BlockingMetrics::evaluate`
    /// equals `evaluate_materialised` field for field, for every thread count
    /// and every forced pair-space slice count.
    #[test]
    fn streaming_evaluation_matches_materialised_evaluation(
        blocks in proptest::collection::vec(proptest::collection::vec(0u32..9, 0..6), 0..600),
        entities in proptest::collection::vec(0u32..4, 9),
    ) {
        let collection = BlockCollection::from_blocks(
            blocks
                .iter()
                .enumerate()
                .map(|(i, members)| Block::new(format!("b{i}"), members.iter().copied().map(RecordId).collect()))
                .collect(),
        );
        let truth = GroundTruth::from_assignments(entities.into_iter().map(EntityId).collect());
        let reference = BlockingMetrics::evaluate_materialised(&collection, &truth);
        let streamed = BlockingMetrics::evaluate(&collection, &truth);
        prop_assert_eq!(streamed, reference);
        for threads in [1usize, 4] {
            prop_assert_eq!(BlockingMetrics::evaluate_with_threads(&collection, &truth, threads), reference);
        }
        // Forcing the sliced pair-space partitioning (which the automatic
        // heuristic only engages at paper scale) must not change any count.
        for slices in [2usize, 3, 8, 64] {
            let counts = collection.stream_pair_counts_sliced(4, slices, |p| truth.is_match_pair(p));
            prop_assert_eq!(counts.distinct, reference.candidate_pairs, "slices={}", slices);
            prop_assert_eq!(counts.matching, reference.true_positives, "slices={}", slices);
        }
    }

    /// Degenerate inputs of the streaming evaluation: singleton-only and
    /// empty block collections yield all-zero pair counts no matter how the
    /// counter is partitioned.
    #[test]
    fn streaming_evaluation_handles_degenerate_collections(
        singletons in proptest::collection::vec(0u32..50, 0..12),
        entities in proptest::collection::vec(0u32..4, 50),
    ) {
        let collection = BlockCollection::from_blocks(
            singletons
                .iter()
                .enumerate()
                .map(|(i, &m)| Block::new(format!("s{i}"), vec![RecordId(m)]))
                .collect(),
        );
        prop_assert!(collection.is_empty(), "singleton blocks are dropped at construction");
        let truth = GroundTruth::from_assignments(entities.into_iter().map(EntityId).collect());
        let streamed = BlockingMetrics::evaluate(&collection, &truth);
        prop_assert_eq!(streamed, BlockingMetrics::evaluate_materialised(&collection, &truth));
        prop_assert_eq!(streamed.candidate_pairs, 0);
        prop_assert_eq!(streamed.true_positives, 0);
        let empty = BlockCollection::new();
        for slices in [1usize, 4] {
            let counts = empty.stream_pair_counts_sliced(2, slices, |_| true);
            prop_assert_eq!(counts.distinct, 0);
            prop_assert_eq!(counts.matching, 0);
        }
    }

    /// BlockCollection algebra on random block structures: θ is symmetric and
    /// consistent with the distinct-pair set, counts are consistent, and the
    /// membership index covers exactly the blocked records.
    #[test]
    fn block_collection_algebra(blocks in proptest::collection::vec(proptest::collection::vec(0u32..20, 2..6), 0..10)) {
        let collection = BlockCollection::from_blocks(
            blocks
                .iter()
                .enumerate()
                .map(|(i, members)| Block::new(format!("b{i}"), members.iter().copied().map(RecordId).collect()))
                .collect(),
        );
        let pairs = collection.distinct_pairs();
        prop_assert_eq!(pairs.len() as u64, collection.num_distinct_pairs());
        prop_assert!(collection.num_distinct_pairs() <= collection.redundant_pair_count());
        for pair in pairs.iter().take(50) {
            prop_assert!(collection.theta(pair.first(), pair.second()));
            prop_assert!(collection.theta(pair.second(), pair.first()));
        }
        let membership = collection.membership();
        for block in collection.blocks() {
            for member in block.members() {
                prop_assert!(membership.contains_key(member));
            }
        }
        prop_assert!(collection.max_block_size() <= 6);
    }
}
