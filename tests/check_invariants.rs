//! Cora-scale exercise of the `check-invariants` runtime sanitizer.
//!
//! These tests always run and always assert the observable contracts
//! (delta totals matching one-shot counts, snapshot/merge consistency,
//! removal bookkeeping). Built with `--features
//! sablock_core/check-invariants` — the way CI runs them — they
//! additionally drive every internal invariant assertion in
//! `sablock_core::invariants`: packed runs strictly ascending, loser-tree
//! emissions nondecreasing, per-batch deltas pairwise disjoint, and the
//! tombstone set staying inside the inserted id range.

use sablock::core::incremental::IncrementalBlocker;
use sablock::core::lsh::salsh::SaLshBlockerBuilder;
use sablock::core::semantic::semhash::SemhashFamily;
use sablock::datasets::record::RecordPair;
use sablock::prelude::*;

fn cora_dataset(records: usize) -> Dataset {
    CoraGenerator::new(CoraConfig { num_records: records, seed: 0xD5EED, ..CoraConfig::default() })
        .generate()
        .unwrap()
}

fn salsh_builder() -> SaLshBlockerBuilder {
    let tree = bibliographic_taxonomy();
    let zeta = PatternSemanticFunction::cora_default(&tree).unwrap();
    let family = SemhashFamily::from_all_leaves(&tree).unwrap();
    SaLshBlocker::builder()
        .attributes(["title", "authors"])
        .qgram(3)
        .rows_per_band(2)
        .bands(8)
        .seed(0xB10C)
        .semantic(
            SemanticConfig::new(tree, zeta)
                .with_w(2)
                .with_mode(SemanticMode::Or)
                .with_seed(11)
                .with_pinned_family(family),
        )
}

/// One-shot SA-LSH blocking at Cora scale drives the full packed-run
/// pipeline — radix sort, dedup, loser-tree merge with galloping — under
/// the sanitizer, and its streamed counts must agree with the materialised
/// pair set.
#[test]
fn one_shot_blocking_under_sanitizer_matches_materialised_counts() {
    let dataset = cora_dataset(600);
    let blocker = salsh_builder().build().unwrap();
    let blocks = blocker.block(&dataset).unwrap();

    let truth = dataset.ground_truth();
    let streamed = blocks.stream_pair_counts(|pair: &RecordPair| truth.is_match(pair.first(), pair.second()));

    let mut distinct: Vec<_> = blocks.blocks().iter().flat_map(|b| b.pairs()).collect();
    distinct.sort_unstable();
    distinct.dedup();
    assert_eq!(streamed.distinct, distinct.len() as u64);
}

/// Batched ingest with interleaved removals at Cora scale: cumulative
/// per-batch delta counts must equal the one-shot distinct pair count, and
/// the tombstone bookkeeping must stay exact throughout. Under the
/// sanitizer this additionally proves every batch's delta disjoint from
/// all earlier ones.
#[test]
fn batched_ingest_under_sanitizer_sums_to_one_shot_counts() {
    let dataset = cora_dataset(500);
    let one_shot = salsh_builder().build().unwrap().block(&dataset).unwrap();
    let one_shot_distinct = one_shot.stream_pair_counts(|_: &RecordPair| false).distinct;

    let mut incremental = salsh_builder().into_incremental().unwrap();
    let mut cumulative = 0u64;
    let sizes = [1usize, 7, 64, 128, 300];
    let mut offset = 0usize;
    let mut batch = 0usize;
    while offset < dataset.len() {
        let size = sizes.get(batch).copied().unwrap_or(97).min(dataset.len() - offset);
        let delta = incremental.insert_batch(&dataset.records()[offset..offset + size]).unwrap();
        cumulative += delta.num_pairs();
        offset += size;
        batch += 1;
    }
    assert_eq!(cumulative, one_shot_distinct, "cumulative deltas must sum to the one-shot distinct pairs");

    // Tombstone a few records afterwards so the tombstone checks run
    // against a bitmap that changes, including double-removal.
    for victim in [0u32, 17, 499] {
        assert!(incremental.remove(RecordId(victim)).unwrap());
        assert!(!incremental.remove(RecordId(victim)).unwrap());
    }
    assert_eq!(incremental.num_removed(), 3);
}

/// Snapshots taken mid-stream re-run the merge machinery over the live
/// index; their streamed counts must never exceed the unfiltered total and
/// must be reproducible.
#[test]
fn snapshots_under_sanitizer_are_reproducible() {
    let dataset = cora_dataset(300);
    let mut incremental = salsh_builder().into_incremental().unwrap();
    incremental.insert_batch(&dataset.records()[..150]).unwrap();
    incremental.insert_batch(&dataset.records()[150..]).unwrap();
    incremental.remove(RecordId(10)).unwrap();

    let a = incremental.snapshot().stream_pair_counts(|_: &RecordPair| false).distinct;
    let b = incremental.snapshot().stream_pair_counts(|_: &RecordPair| false).distinct;
    assert_eq!(a, b, "snapshot pair counts must be reproducible");
}

/// Running counters + compaction at Cora scale under the sanitizer: an
/// annotated ingest followed by a removal storm (threshold 0.0, so every
/// touched bucket compacts immediately) drives the counter-subtraction and
/// bucket-tombstone-accounting checks on real data, and the counters must
/// land exactly on a from-scratch recount of the survivors.
#[test]
fn removal_storm_with_compaction_under_sanitizer_keeps_counts_exact() {
    let dataset = cora_dataset(400);
    let entities = dataset.ground_truth().entity_table();
    let mut incremental = salsh_builder().into_incremental().unwrap().with_compaction_threshold(0.0);
    let mut offset = 0usize;
    for chunk in dataset.records().chunks(80) {
        incremental
            .insert_batch_with_entities(chunk, &entities[offset..offset + chunk.len()])
            .unwrap();
        offset += chunk.len();
    }
    // Remove every third record — each removal subtracts its live pairs and
    // compacts every bucket it touched.
    for victim in (0..400u32).step_by(3) {
        assert!(incremental.remove(RecordId(victim)).unwrap());
    }
    assert!(incremental.num_compactions() > 0, "threshold 0.0 must have compacted buckets");
    // Forced compaction afterwards finds nothing left to do.
    assert_eq!(incremental.compact(), 0);

    let recount = incremental
        .snapshot()
        .stream_packed_counts(EntityTableProbe::new(incremental.entity_table()));
    assert_eq!(incremental.running_counts().pairs, recount.distinct);
    assert_eq!(incremental.running_counts().true_positives, recount.matching);
}
