//! Behavioural tests for the concurrent TCP front-end: a stalled client is
//! reaped without blocking anyone else, overload sheds with a typed `RETRY`
//! hint, degraded answers are flagged and byte-equal to the cheap path, the
//! client honours `RETRY` backpressure, and overlong lines get one `ERR`
//! and a closed session.
//!
//! All concurrency goes through `sablock::core::parallel` (`join_all`,
//! `sleep`) — the `thread-confinement` lint forbids raw `std::thread` use
//! here just as it does in library code.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use sablock::core::lsh::salsh::SaLshBlockerBuilder;
use sablock::core::parallel::{join_all, sleep};
use sablock::prelude::*;
use sablock::serve::client::Response;
use sablock::serve::protocol::RequestLimits;
use sablock::serve::{serve_tcp, Client, FrontendOptions, RetryPolicy};

fn builder() -> SaLshBlockerBuilder {
    SaLshBlocker::builder().attributes(["title", "authors"]).qgram(3).rows_per_band(2).bands(8).seed(0xB10C)
}

fn row(index: usize) -> Vec<Option<String>> {
    vec![Some(format!("semantic blocking study {}", index % 2)), Some(format!("author{}", index % 2))]
}

/// A service pre-loaded with a few near-duplicate rows so probes collide.
fn populated_service() -> CandidateService {
    let service =
        CandidateService::new(builder().into_incremental().unwrap(), Schema::shared(["title", "authors"]).unwrap())
            .unwrap();
    service.insert_rows((0..6).map(row).collect()).unwrap();
    service
}

/// The tab-separated request line for a verb over a probe row.
fn line_for(verb: &str, values: &[Option<String>]) -> String {
    let mut line = verb.to_string();
    for value in values {
        line.push('\t');
        line.push_str(value.as_deref().unwrap_or(""));
    }
    line
}

/// `OK <n> <id>…` exactly as the protocol renders an id list.
fn render_ids(prefix: &str, ids: &[RecordId]) -> String {
    let mut out = format!("{prefix} {}", ids.len());
    for id in ids {
        out.push_str(&format!(" {}", id.0));
    }
    out
}

/// A raw protocol connection: writes lines, reads single-line replies.
struct Conn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn open(addr: std::net::SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        stream.set_write_timeout(Some(Duration::from_secs(10))).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Self { stream, reader }
    }

    fn send(&mut self, line: &str) {
        self.stream.write_all(format!("{line}\n").as_bytes()).unwrap();
    }

    fn reply(&mut self) -> String {
        let mut reply = String::new();
        self.reader.read_line(&mut reply).unwrap();
        reply.trim_end().to_string()
    }

    /// Reads expecting the peer to have closed the connection.
    fn expect_closed(&mut self) {
        let mut reply = String::new();
        let closed = matches!(self.reader.read_line(&mut reply), Ok(0) | Err(_));
        assert!(closed, "expected a closed connection, read {reply:?}");
    }
}

#[test]
fn a_stalled_client_is_reaped_while_others_are_served() {
    let service = populated_service();
    let state = service.current();
    let probe = service.probe_record(&state, row(0)).unwrap();
    let expected = render_ids("OK", &state.query(&probe).unwrap());

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let options = FrontendOptions {
        workers: 2,
        read_timeout: Duration::from_millis(300),
        max_sessions: Some(2),
        ..FrontendOptions::default()
    };

    let service_ref = &service;
    let listener_ref = &listener;
    let options_ref = &options;
    type Task<'scope> = Box<dyn FnOnce() -> u64 + Send + 'scope>;
    let tasks: Vec<Task> = vec![
        Box::new(move || serve_tcp(service_ref, listener_ref, options_ref).unwrap()),
        Box::new(move || {
            // The stalled peer connects first and never sends a byte.
            let mut stalled = Conn::open(addr);
            sleep(Duration::from_millis(50));
            // A live client on the second worker is served immediately,
            // well inside the stalled peer's read timeout.
            let mut live = Conn::open(addr);
            let started = Instant::now();
            live.send(&line_for("QUERY", &row(0)));
            assert_eq!(live.reply(), expected, "the live client's answer matches the direct query");
            assert!(
                started.elapsed() < Duration::from_secs(5),
                "a stalled peer must not delay other connections"
            );
            live.send("QUIT");
            assert_eq!(live.reply(), "OK bye");
            // The front-end reaps the stalled peer once its read timeout
            // fires; this read observes the closure.
            stalled.expect_closed();
            0
        }),
    ];
    let results = join_all(tasks);
    assert_eq!(results[0], 2, "both connections were accepted");
    assert_eq!(service.metrics().reaped(), 1, "exactly the stalled connection was reaped");
}

#[test]
fn overload_sheds_with_a_retry_hint_instead_of_queueing_unboundedly() {
    let service = populated_service();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let options = FrontendOptions {
        workers: 1,
        queue_depth: 1,
        retry_after_ms: 100,
        read_timeout: Duration::from_secs(5),
        max_sessions: Some(3),
        ..FrontendOptions::default()
    };

    let service_ref = &service;
    let listener_ref = &listener;
    let options_ref = &options;
    type Task<'scope> = Box<dyn FnOnce() -> u64 + Send + 'scope>;
    let tasks: Vec<Task> = vec![
        Box::new(move || serve_tcp(service_ref, listener_ref, options_ref).unwrap()),
        Box::new(move || {
            // One silent connection occupies the only worker…
            let first = Conn::open(addr);
            sleep(Duration::from_millis(100));
            // …a second fills the depth-1 queue…
            let mut second = Conn::open(addr);
            sleep(Duration::from_millis(100));
            // …so the third is shed: one RETRY line with the configured
            // hint, then the connection closes. It never waits for a worker.
            let mut third = Conn::open(addr);
            assert_eq!(third.reply(), "RETRY 100", "the shed connection gets the backoff hint");
            third.expect_closed();
            // Releasing the worker lets the queued connection be served.
            drop(first);
            second.send("STATS");
            assert!(second.reply().starts_with("OK epoch"), "the queued connection is served after the stall");
            second.send("QUIT");
            assert_eq!(second.reply(), "OK bye");
            0
        }),
    ];
    let results = join_all(tasks);
    assert_eq!(results[0], 3, "all three connections were accepted (two admitted, one shed)");
    assert_eq!(service.metrics().shed(), 1);
}

#[test]
fn degraded_responses_are_flagged_and_equal_the_cheap_path() {
    let service = populated_service();
    let state = service.current();
    let probe = service.probe_record(&state, row(0)).unwrap();
    let candidates = state.query(&probe).unwrap();
    assert!(!candidates.is_empty(), "the probe must collide for degradation to be observable");

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let options = FrontendOptions {
        workers: 1,
        limits: RequestLimits { candidate_budget: Some(0), ..RequestLimits::default() },
        max_sessions: Some(1),
        ..FrontendOptions::default()
    };

    let service_ref = &service;
    let listener_ref = &listener;
    let options_ref = &options;
    let expected_degraded = render_ids("OK DEGRADED", &candidates);
    let expected_cheap = render_ids("OK", &candidates);
    type Task<'scope> = Box<dyn FnOnce() -> u64 + Send + 'scope>;
    let tasks: Vec<Task> = vec![
        Box::new(move || serve_tcp(service_ref, listener_ref, options_ref).unwrap()),
        Box::new(move || {
            let mut conn = Conn::open(addr);
            // Over budget, the ranked query degrades: explicitly flagged,
            // and its id list is byte-for-byte the cheap path's answer.
            conn.send(&line_for("QUERYK\t5", &row(0)));
            assert_eq!(conn.reply(), expected_degraded);
            // The unranked query is never budgeted and stays exact.
            conn.send(&line_for("QUERY", &row(0)));
            assert_eq!(conn.reply(), expected_cheap);
            conn.send("QUIT");
            assert_eq!(conn.reply(), "OK bye");
            0
        }),
    ];
    join_all(tasks);
    assert_eq!(service.metrics().degraded(), 1, "the degraded answer was counted");
}

#[test]
fn the_client_honours_retry_hints_with_backoff() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    type Task<'scope> = Box<dyn FnOnce() -> u64 + Send + 'scope>;
    let listener_ref = &listener;
    let tasks: Vec<Task> = vec![
        Box::new(move || {
            // A scripted server: shed the first request with a hint, serve
            // the retried one.
            let (mut shed, _) = listener_ref.accept().unwrap();
            shed.write_all(b"RETRY 30\n").unwrap();
            drop(shed);
            let (served, _) = listener_ref.accept().unwrap();
            let mut reader = BufReader::new(served.try_clone().unwrap());
            let mut request = String::new();
            reader.read_line(&mut request).unwrap();
            assert_eq!(request.trim_end(), "STATS");
            let mut served = served;
            served.write_all(b"OK epoch 0\n").unwrap();
            0
        }),
        Box::new(move || {
            let mut client = Client::new(
                addr.to_string(),
                RetryPolicy {
                    attempts: 3,
                    base_delay: Duration::from_millis(5),
                    max_delay: Duration::from_secs(1),
                },
            )
            .with_timeout(Duration::from_secs(5));
            let started = Instant::now();
            let response = client.request("STATS").unwrap();
            assert_eq!(response, Response::Ok("epoch 0".into()));
            assert!(
                started.elapsed() >= Duration::from_millis(30),
                "the client must wait out the server's RETRY hint before retrying"
            );
            0
        }),
    ];
    join_all(tasks);
}

#[test]
fn overlong_lines_over_tcp_get_one_typed_error_and_a_closed_session() {
    let service = populated_service();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let options = FrontendOptions { workers: 1, max_sessions: Some(1), ..FrontendOptions::default() };
    let limit = options.limits.max_line_bytes;

    let service_ref = &service;
    let listener_ref = &listener;
    let options_ref = &options;
    type Task<'scope> = Box<dyn FnOnce() -> u64 + Send + 'scope>;
    let tasks: Vec<Task> = vec![
        Box::new(move || serve_tcp(service_ref, listener_ref, options_ref).unwrap()),
        Box::new(move || {
            let mut conn = Conn::open(addr);
            let mut flood = vec![b'a'; limit + 4096];
            flood.push(b'\n');
            conn.stream.write_all(&flood).unwrap();
            assert_eq!(
                conn.reply(),
                format!("ERR protocol line exceeds the {limit}-byte limit"),
                "the overlong line is rejected with the typed error"
            );
            // The rest of the flooded line is unread garbage, so the server
            // closes the session rather than misparse it as requests.
            conn.expect_closed();
            0
        }),
    ];
    join_all(tasks);
}
