//! End-to-end pipeline test over the NC-Voter-like workload, including the
//! parameter-tuning path and a scalability smoke test.

use rand::rngs::StdRng;
use rand::SeedableRng;

use sablock::core::tuning::{choose_parameters, SimilarityDistribution, TuningGoal};
use sablock::prelude::*;

fn voter(records: usize) -> Dataset {
    NcVoterGenerator::new(NcVoterConfig {
        num_records: records,
        ..NcVoterConfig::default()
    })
    .generate()
    .expect("generator configuration is valid")
}

fn voter_salsh(k: usize, l: usize, w: usize) -> SaLshBlocker {
    let zeta = VoterSemanticFunction::default_voter();
    let tree = sablock::core::taxonomy::voter::voter_taxonomy();
    SaLshBlocker::builder()
        .attributes(["first_name", "last_name"])
        .qgram(2)
        .rows_per_band(k)
        .bands(l)
        .semantic(SemanticConfig::new(tree, zeta).with_w(w).with_mode(SemanticMode::Or))
        .build()
        .expect("valid configuration")
}

fn voter_lsh(k: usize, l: usize) -> SaLshBlocker {
    SaLshBlocker::builder()
        .attributes(["first_name", "last_name"])
        .qgram(2)
        .rows_per_band(k)
        .bands(l)
        .build()
        .expect("valid configuration")
}

#[test]
fn voter_semantics_preserve_pc_and_improve_pq() {
    let dataset = voter(4_000);
    let lsh = run_blocker("LSH", &voter_lsh(9, 15), &dataset).unwrap();
    let salsh = run_blocker("SA-LSH", &voter_salsh(9, 15, 12), &dataset).unwrap();
    // The paper: "the PC values of LSH and SA-LSH are the same" because the
    // voter semantic features are not noisy (uncertain values are stable per
    // person), while PQ improves significantly.
    assert!((lsh.metrics.pc() - salsh.metrics.pc()).abs() < 0.02, "PC {} vs {}", lsh.metrics.pc(), salsh.metrics.pc());
    assert!(salsh.metrics.pq() >= lsh.metrics.pq());
    assert!(salsh.metrics.candidate_pairs <= lsh.metrics.candidate_pairs);
    assert!(salsh.metrics.rr() > 0.99, "RR = {}", salsh.metrics.rr());
}

#[test]
fn tuned_parameters_hit_the_requested_operating_point() {
    let dataset = voter(3_000);
    let shingler = RecordShingler::new(["first_name", "last_name"], 2).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let dist = SimilarityDistribution::estimate_from_matches(&dataset, &shingler, 1_000, 20, &mut rng).unwrap();
    // NC-Voter-like matches are nearly identical strings, so the learned
    // distribution concentrates at high similarity.
    assert!(dist.mean() > 0.75, "mean match similarity {}", dist.mean());

    let goal = TuningGoal {
        s_low: 0.4,
        s_high: 0.8,
        p_low: 0.05,
        p_high: 0.9,
    };
    let (k, l) = choose_parameters(&goal, 15).unwrap();
    // Blocking with the tuned parameters recovers the bulk of the matches.
    let result = run_blocker("LSH", &voter_lsh(k, l), &dataset).unwrap();
    assert!(result.metrics.pc() > 0.7, "PC = {} with k={k}, l={l}", result.metrics.pc());
}

#[test]
fn scalability_prefixes_preserve_quality() {
    let full = voter(6_000);
    let blocker = voter_salsh(9, 15, 12);
    let mut previous_pairs = 0u64;
    for size in [1_500usize, 3_000, 6_000] {
        let subset = full.prefix(size);
        let result = run_blocker("SA-LSH", &blocker, &subset).unwrap();
        assert!(result.metrics.rr() > 0.99);
        assert!(result.metrics.pc() > 0.6, "PC = {} at n = {size}", result.metrics.pc());
        assert!(result.metrics.candidate_pairs >= previous_pairs, "candidate pairs should grow with input size");
        previous_pairs = result.metrics.candidate_pairs;
    }
}

#[test]
fn different_race_gender_records_are_never_paired_by_salsh() {
    // Proposition 5.3 (1) end-to-end: semantically dissimilar records (known,
    // different race/gender) never share a block, even with identical names.
    let dataset = voter(2_000);
    let blocker = voter_salsh(9, 15, 12);
    let blocks = blocker.block(&dataset).unwrap();
    let zeta = VoterSemanticFunction::default_voter();
    let tree = sablock::core::taxonomy::voter::voter_taxonomy();
    for block in blocks.blocks().iter().take(200) {
        for pair in block.pairs() {
            let a = dataset.record(pair.first()).unwrap();
            let b = dataset.record(pair.second()).unwrap();
            let sim = sablock::core::semantic::similarity::record_semantic_similarity(
                &tree,
                &sablock::core::semantic::SemanticFunction::interpret(&zeta, a),
                &sablock::core::semantic::SemanticFunction::interpret(&zeta, b),
            );
            assert!(sim > 0.0, "{} and {} share a block but are semantically dissimilar", a.id(), b.id());
        }
    }
}
