//! # sablock — Semantic-Aware LSH Blocking for Entity Resolution
//!
//! A Rust reproduction of Wang, Cui & Liang, *Semantic-Aware Blocking for
//! Entity Resolution* (IEEE TKDE 28(1), 2016). This facade crate re-exports
//! the workspace's public API:
//!
//! * [`datasets`] — record model, ground truth and the synthetic Cora-like /
//!   NC-Voter-like data generators,
//! * [`textual`] — string similarity substrate (q-grams, Jaro-Winkler, edit
//!   distance, TF-IDF, …),
//! * [`core`] — the paper's contribution: taxonomy trees, semantic
//!   similarity, semhash signatures, minhash LSH and the SA-LSH blocker,
//! * [`baselines`] — the 12 comparison techniques of the paper's evaluation
//!   plus meta-blocking,
//! * [`eval`] — PC/PQ/RR/FM measures and the per-figure experiment harness,
//! * [`serve`] — blocking as a service: the epoch-published candidate-lookup
//!   engine, snapshot persistence and the `sablock-serve` line protocol.
//!
//! ## Quick start
//!
//! ```
//! use sablock::prelude::*;
//!
//! // 1. A Cora-like bibliographic dataset (1,879 noisy citations by default;
//! //    a small configuration is used here to keep the doctest fast).
//! let dataset = CoraGenerator::new(CoraConfig::small()).generate().unwrap();
//!
//! // 2. Domain knowledge: the bibliographic taxonomy tree of Fig. 3 and the
//! //    missing-value-pattern semantic function of Table 1.
//! let tree = bibliographic_taxonomy();
//! let zeta = PatternSemanticFunction::cora_default(&tree).unwrap();
//!
//! // 3. The semantic-aware LSH blocker (k = 4 rows per band, l = 63 bands,
//! //    4-grams, 2-way OR semantic hash).
//! let blocker = SaLshBlocker::builder()
//!     .attributes(["title", "authors"])
//!     .qgram(4)
//!     .rows_per_band(4)
//!     .bands(63)
//!     .semantic(SemanticConfig::new(tree, zeta).with_w(2).with_mode(SemanticMode::Or))
//!     .build()
//!     .unwrap();
//!
//! // 4. Block and evaluate. With the deterministic small Cora config this
//! //    yields PC ≈ 0.78, RR ≈ 0.95, FM ≈ 0.86; the thresholds below leave
//! //    a small margin while still witnessing the paper's trade-off.
//! let blocks = blocker.block(&dataset).unwrap();
//! let metrics = BlockingMetrics::evaluate(&blocks, dataset.ground_truth());
//! assert!(metrics.pc() > 0.7);
//! assert!(metrics.rr() > 0.93);
//! assert!(metrics.fm() > 0.8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sablock_baselines as baselines;
pub use sablock_core as core;
pub use sablock_datasets as datasets;
pub use sablock_eval as eval;
pub use sablock_serve as serve;
pub use sablock_textual as textual;

/// The most commonly used types, re-exported for glob imports.
pub mod prelude {
    pub use sablock_baselines::key::{BlockingKey, KeyEncoding};
    pub use sablock_baselines::meta::{MetaBlocking, PruningAlgorithm, WeightingScheme};
    pub use sablock_baselines::standard::{StandardBlocking, TokenBlocking};
    pub use sablock_core::prelude::*;
    pub use sablock_datasets::{
        CoraConfig, CoraGenerator, Dataset, DatasetError, EntityId, GroundTruth, NcVoterConfig, NcVoterGenerator,
        NcVoterStream, Record, RecordId, Schema,
    };
    pub use sablock_eval::experiments::Scale;
    pub use sablock_eval::{run_blocker, BlockingMetrics, IncrementalEvaluation, RunResult, TextTable};
    pub use sablock_serve::{CandidateService, EpochState, ServeError, WriteOp};
    pub use sablock_textual::{jaccard, jaro_winkler, levenshtein, qgram_similarity, SimilarityFunction};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_the_core_workflow() {
        let dataset = NcVoterGenerator::new(NcVoterConfig {
            num_records: 200,
            ..NcVoterConfig::small()
        })
        .generate()
        .unwrap();
        let blocker = SaLshBlocker::builder()
            .attributes(["first_name", "last_name"])
            .qgram(2)
            .rows_per_band(3)
            .bands(10)
            .build()
            .unwrap();
        let result = run_blocker("LSH", &blocker, &dataset).unwrap();
        assert!(result.metrics.rr() > 0.5);
    }
}
