//! Compares SA-LSH with the survey baselines and with meta-blocking
//! (a runnable, reduced-size version of Table 3, Fig. 11 and Fig. 12).
//!
//! Run with `cargo run --release --example baseline_comparison`.

use std::error::Error;

use sablock::eval::experiments::tab03::GridScale;
use sablock::eval::experiments::{fig11, fig12, tab03, Scale};

fn main() -> Result<(), Box<dyn Error>> {
    // Table 3: blocking time and candidate pairs per technique over an
    // NC-Voter-like timing subset.
    let tab3 = tab03::run(Scale::Quick, GridScale::Reduced)?;
    println!("{}", tab3.to_table().render());

    // Fig. 11: quality comparison over both datasets (best-FM setting each).
    let fig11_output = fig11::run(Scale::Quick, GridScale::Reduced)?;
    println!("{}", fig11_output.cora.to_table().render());
    println!("{}", fig11_output.ncvoter.to_table().render());
    if let Some(best) = fig11_output.cora.best_fm_technique() {
        println!("best FM on the Cora-like corpus: {} ({:.3})\n", best.technique, best.fm());
    }

    // Fig. 12: SA-LSH vs meta-blocking under PC / PQ* / FM*.
    let fig12_output = fig12::run(Scale::Quick)?;
    println!("{}", fig12_output.cora.to_table().render());
    println!("{}", fig12_output.ncvoter.to_table().render());

    println!("Run the Criterion benches (`cargo bench -p sablock_bench`) for the paper-scale version");
    println!("of these comparisons; EXPERIMENTS.md records paper-vs-measured numbers for every figure.");
    Ok(())
}
