//! Streaming ingest walk-through: incremental SA-LSH blocking over a live
//! NC-Voter record stream, batch by batch.
//!
//! Run with `cargo run --release --example streaming_ingest`.
//!
//! By default the example ingests a 10,000-record stream in 1,024-record
//! batches so it finishes in seconds and cross-checks every invariant
//! against a from-scratch rebuild. Set `SABLOCK_STREAM_FULL=1` (and use
//! `--release`) to ingest the full 292,892-record voter roll of Fig. 13's
//! right-most point in 16,384-record batches:
//!
//! ```sh
//! SABLOCK_STREAM_FULL=1 cargo run --release --example streaming_ingest
//! ```
//!
//! The walk-through demonstrates:
//!
//! 1. **Bounded-batch ingest** — `NcVoterStream::next_chunk` hands out
//!    records in bounded batches; `IncrementalBlocker::insert_batch` appends
//!    them to the per-band bucket index without recomputing anything about
//!    the records already ingested.
//! 2. **Delta evaluation** — each batch emits its delta candidate pairs as
//!    sorted packed runs; `IncrementalEvaluation` folds them into cumulative
//!    PC/RR without ever touching old pairs again.
//! 3. **Incremental ≡ one-shot** — after the last batch, the streamed totals
//!    and a snapshot's streamed Γ count are asserted equal to a from-scratch
//!    `SaLshBlocker::block` of the very same records (byte-identical pair
//!    counts; at full scale that is the 56,156,606 of `BENCH_fig13.json`).
//!
//! Per-batch insert latencies (p50/p99/max) and the rebuild comparison are
//! written to `BENCH_fig13.json` under the `"incremental"` section
//! (`"incremental_quick"` for default runs).

use std::error::Error;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use sablock::core::incremental::IncrementalBlocker;
use sablock::eval::experiments::VOTER_SEMANTIC_BITS;
use sablock::eval::perf::{peak_rss_bytes, upsert_section, JsonValue, LatencyStats};
use sablock::prelude::*;

/// The full NC Voter extract size used by the paper (Fig. 13).
const FULL_SCALE: usize = 292_892;
/// The affordable default for a debug-friendly walk-through.
const QUICK_SCALE: usize = 10_000;

fn main() -> Result<(), Box<dyn Error>> {
    let full = std::env::var("SABLOCK_STREAM_FULL").is_ok_and(|v| v == "1");
    let num_records = if full { FULL_SCALE } else { QUICK_SCALE };
    let batch_size = if full { 16_384 } else { 1_024 };
    println!(
        "streaming_ingest: {} records in batches of {}{}",
        num_records,
        batch_size,
        if full { " (full Fig. 13 scale)" } else { " (set SABLOCK_STREAM_FULL=1 for the full 292,892)" }
    );

    // The paper's NC Voter operating point (k = 9, l = 15; the same
    // parameters as `voter_salsh(9, 15, …)`), with the semhash family pinned
    // to all 12 taxonomy leaves *up front* so the incremental index and the
    // one-shot rebuild below share it by construction — the documented
    // contract for byte-level comparison. For NC Voter the pinned family is
    // also exactly what an unpinned one-shot run derives, which the
    // full-scale pair-count assertion below additionally witnesses.
    let zeta = VoterSemanticFunction::default_voter();
    let tree = zeta.taxonomy().clone();
    let family = SemhashFamily::from_all_leaves(&tree)?;
    let semantic = SemanticConfig::new(tree, zeta)
        .with_w(VOTER_SEMANTIC_BITS)
        .with_mode(SemanticMode::Or)
        .with_seed(0x5eed)
        .with_pinned_family(family);
    let builder = SaLshBlocker::builder()
        .attributes(["first_name", "last_name"])
        .qgram(2)
        .rows_per_band(9)
        .bands(15)
        .seed(0x7013)
        .semantic(semantic);
    let blocker = builder.clone().build()?;
    let mut incremental = builder.into_incremental()?;

    // --- 1. Ingest the stream batch by batch ---------------------------------
    let generator = NcVoterGenerator::new(NcVoterConfig { num_records, ..NcVoterConfig::default() });
    let mut stream = generator.stream()?;
    let schema = Arc::clone(stream.schema());

    // Kept only for ground truth and the final rebuild cross-check — the
    // incremental index itself never needs the history.
    let mut entities: Vec<EntityId> = Vec::with_capacity(num_records);
    let mut all_rows: Vec<Vec<Option<String>>> = Vec::with_capacity(num_records);

    let mut evaluation = IncrementalEvaluation::new();
    let mut latencies = LatencyStats::new();
    let mut batch_index = 0usize;
    while let Some(chunk) = stream.next_chunk(batch_size) {
        let mut rows = Vec::with_capacity(chunk.len());
        for (values, entity) in chunk {
            entities.push(entity);
            all_rows.push(values.clone());
            rows.push(values);
        }
        let batch_records = rows.len();
        let start = Instant::now();
        let _ = incremental.insert_values(&schema, rows)?;
        let elapsed = start.elapsed();
        latencies.record(elapsed);

        // Cumulative quality so far: fold the batch's delta against the
        // ground truth ingested up to now.
        let truth = GroundTruth::from_assignments(entities.clone());
        let batch_counts = evaluation.observe(incremental.delta_pairs(), &truth);
        let cumulative = evaluation.metrics(&truth, 0);
        batch_index += 1;
        println!(
            "batch {:>3}: +{:>7} records in {:>8.2} ms | +{:>9} delta pairs | cumulative PC={:.4} RR={:.4}",
            batch_index,
            batch_records,
            elapsed.as_secs_f64() * 1e3,
            batch_counts.distinct,
            cumulative.pc(),
            cumulative.rr(),
        );
    }
    println!(
        "ingested {} records in {} batches: insert p50 {:.2} ms, p99 {:.2} ms, max {:.2} ms, total {:.2} s",
        incremental.num_records(),
        incremental.num_batches(),
        latencies.p50_secs() * 1e3,
        latencies.p99_secs() * 1e3,
        latencies.max_secs() * 1e3,
        latencies.total_secs(),
    );

    // --- 2. Cross-check the cumulative deltas against a snapshot -------------
    let truth = GroundTruth::from_assignments(entities.clone());
    let snapshot = incremental.snapshot();
    let stream_start = Instant::now();
    let snapshot_counts = snapshot.stream_packed_counts(EntityTableProbe::new(truth.entity_table()));
    let snapshot_count_time = stream_start.elapsed();
    assert_eq!(
        snapshot_counts.distinct,
        evaluation.candidate_pairs(),
        "summed per-batch deltas must equal the snapshot's streamed Γ count"
    );
    assert_eq!(snapshot_counts.matching, evaluation.true_positives());
    println!(
        "snapshot: {} blocks, {} distinct pairs, {} true positives (streamed in {:.2}s) — matches the delta sum",
        snapshot.num_blocks(),
        snapshot_counts.distinct,
        snapshot_counts.matching,
        snapshot_count_time.as_secs_f64(),
    );

    // --- 3. Rebuild from scratch and require byte-identical blocking ---------
    let mut builder = sablock::datasets::dataset::DatasetBuilder::new("ncvoter-streamed", Arc::clone(&schema));
    builder.reserve(all_rows.len());
    for (values, entity) in all_rows.into_iter().zip(entities.iter()) {
        builder.push_values(values, *entity)?;
    }
    let dataset = builder.build()?;
    let rebuild_start = Instant::now();
    let rebuilt = blocker.block(&dataset)?;
    let rebuild_time = rebuild_start.elapsed();
    assert_eq!(
        rebuilt.blocks(),
        snapshot.blocks(),
        "incremental snapshot must be byte-identical to a from-scratch rebuild"
    );
    let reference = BlockingMetrics::evaluate(&rebuilt, dataset.ground_truth());
    assert_eq!(reference.candidate_pairs, evaluation.candidate_pairs(), "delta ≡ rebuild |Γ|");
    assert_eq!(reference.true_positives, evaluation.true_positives(), "delta ≡ rebuild |Γ_tp|");
    println!(
        "rebuild: blocked {} records from scratch in {:.2}s — blocks and pair counts identical \
         (|Γ| = {}, final PC={:.4} RR={:.4})",
        dataset.len(),
        rebuild_time.as_secs_f64(),
        reference.candidate_pairs,
        reference.pc(),
        reference.rr(),
    );
    if full {
        assert_eq!(
            reference.candidate_pairs, 56_156_606,
            "full-scale SA-LSH pair count must match BENCH_fig13.json's one-shot run"
        );
    }

    // --- 4. Record the measurements machine-readably -------------------------
    let peak_rss = peak_rss_bytes();
    let report = JsonValue::Object(vec![
        ("records".into(), JsonValue::UInt(incremental.num_records() as u64)), // sablock-lint: allow(lossy-id-cast): usize count → u64 widens losslessly
        ("batch_size".into(), JsonValue::UInt(batch_size as u64)), // sablock-lint: allow(lossy-id-cast): usize count → u64 widens losslessly
        ("batches".into(), JsonValue::UInt(incremental.num_batches() as u64)), // sablock-lint: allow(lossy-id-cast): usize count → u64 widens losslessly
        ("insert_p50_s".into(), JsonValue::Float(latencies.p50_secs())),
        ("insert_p99_s".into(), JsonValue::Float(latencies.p99_secs())),
        ("insert_max_s".into(), JsonValue::Float(latencies.max_secs())),
        ("insert_total_s".into(), JsonValue::Float(latencies.total_secs())),
        ("rebuild_blocking_s".into(), JsonValue::Float(rebuild_time.as_secs_f64())),
        ("snapshot_count_s".into(), JsonValue::Float(snapshot_count_time.as_secs_f64())),
        ("salsh_candidate_pairs".into(), JsonValue::UInt(evaluation.candidate_pairs())),
        ("salsh_true_positives".into(), JsonValue::UInt(evaluation.true_positives())),
        ("peak_rss_bytes".into(), peak_rss.map_or(JsonValue::Null, JsonValue::UInt)),
    ]);
    let section = if full { "incremental" } else { "incremental_quick" };
    let path = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_fig13.json"));
    match upsert_section(path, section, &report) {
        Ok(()) => println!("wrote the measurements to {} (section \"{section}\")", path.display()),
        Err(err) => eprintln!("could not write {}: {err}", path.display()),
    }
    Ok(())
}
