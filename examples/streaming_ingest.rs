//! Streaming ingest walk-through: incremental SA-LSH blocking over a live
//! NC-Voter record stream, batch by batch, with O(delta) running metrics.
//!
//! Run with `cargo run --release --example streaming_ingest`.
//!
//! By default the example ingests a 10,000-record stream in 1,024-record
//! batches so it finishes in seconds and cross-checks every invariant
//! against a from-scratch rebuild. Set `SABLOCK_STREAM_FULL=1` (and use
//! `--release`) to ingest the full 292,892-record voter roll of Fig. 13's
//! right-most point in 16,384-record batches:
//!
//! ```sh
//! SABLOCK_STREAM_FULL=1 cargo run --release --example streaming_ingest
//! ```
//!
//! The walk-through demonstrates:
//!
//! 1. **Bounded-batch ingest** — `NcVoterStream::next_chunk` hands out
//!    records in bounded batches; `insert_values_with_entities` appends them
//!    to the cached per-band bucket shards (each insert touches only the
//!    buckets it lands in) without recomputing anything about the records
//!    already ingested.
//! 2. **O(delta) running metrics** — the blocker folds each batch's delta
//!    pairs and true positives into its `RunningCounts` as they are
//!    produced, so cumulative PC/RR per batch — and the final snapshot
//!    metrics — are an O(1) read, not an O(corpus) re-count. The ground
//!    truth denominators (`|Ω_tp|`, `|Ω|`) are likewise maintained
//!    incrementally from per-entity tallies.
//! 3. **Incremental ≡ one-shot** — after the last batch, the running
//!    counters are asserted equal to a from-scratch streamed re-count of the
//!    snapshot AND to a from-scratch `SaLshBlocker::block` of the very same
//!    records (byte-identical blocks; at full scale the 56,156,606 pairs /
//!    112,220 true positives of `BENCH_fig13.json`).
//! 4. **Removal + compaction** (quick mode) — tombstoning records subtracts
//!    exactly their live pairs from the running counters by walking only the
//!    buckets they occupy, and bucket-local compaction reclaims dead members
//!    without observable effect.
//!
//! Per-batch insert latencies (p50/p99/max), the O(1) snapshot-metrics time,
//! and the rebuild comparison (including the ingest / rebuild-end-to-end
//! ratio) are written to `BENCH_fig13.json` under the `"incremental"`
//! section (`"incremental_quick"` for default runs). Set
//! `SABLOCK_STREAM_BUDGET=1` to additionally *assert* that total ingest
//! stays within 2× of the one-shot rebuild end-to-end (blocking + Γ count) —
//! the CI streaming smoke runs with the assertion on.

use std::error::Error;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use sablock::core::incremental::IncrementalBlocker;
use sablock::eval::experiments::VOTER_SEMANTIC_BITS;
use sablock::eval::perf::{peak_rss_bytes, upsert_section, JsonValue, LatencyStats};
use sablock::prelude::*;

/// The full NC Voter extract size used by the paper (Fig. 13).
const FULL_SCALE: usize = 292_892;
/// The affordable default for a debug-friendly walk-through.
const QUICK_SCALE: usize = 10_000;

/// Incrementally maintained ground-truth denominators: appending a record of
/// entity `e` to a cluster of current size `c` adds `c` true-match pairs to
/// `|Ω_tp|` and `n−1` pairs to `|Ω|` — no per-batch `GroundTruth`
/// materialisation needed.
#[derive(Default)]
struct TruthTotals {
    cluster_sizes: Vec<u64>,
    records: u64,
    true_matches: u64,
    total_pairs: u64,
}

impl TruthTotals {
    fn push(&mut self, entity: EntityId) {
        let slot = entity.0 as usize;
        if slot >= self.cluster_sizes.len() {
            self.cluster_sizes.resize(slot + 1, 0);
        }
        self.true_matches += self.cluster_sizes[slot];
        self.cluster_sizes[slot] += 1;
        self.total_pairs += self.records;
        self.records += 1;
    }
}

fn main() -> Result<(), Box<dyn Error>> {
    let full = std::env::var("SABLOCK_STREAM_FULL").is_ok_and(|v| v == "1");
    let enforce_budget = std::env::var("SABLOCK_STREAM_BUDGET").is_ok_and(|v| v == "1");
    let num_records = if full { FULL_SCALE } else { QUICK_SCALE };
    let batch_size = if full { 16_384 } else { 1_024 };
    println!(
        "streaming_ingest: {} records in batches of {}{}",
        num_records,
        batch_size,
        if full { " (full Fig. 13 scale)" } else { " (set SABLOCK_STREAM_FULL=1 for the full 292,892)" }
    );

    // The paper's NC Voter operating point (k = 9, l = 15; the same
    // parameters as `voter_salsh(9, 15, …)`), with the semhash family pinned
    // to all 12 taxonomy leaves *up front* so the incremental index and the
    // one-shot rebuild below share it by construction — the documented
    // contract for byte-level comparison. For NC Voter the pinned family is
    // also exactly what an unpinned one-shot run derives, which the
    // full-scale pair-count assertion below additionally witnesses.
    let zeta = VoterSemanticFunction::default_voter();
    let tree = zeta.taxonomy().clone();
    let family = SemhashFamily::from_all_leaves(&tree)?;
    let semantic = SemanticConfig::new(tree, zeta)
        .with_w(VOTER_SEMANTIC_BITS)
        .with_mode(SemanticMode::Or)
        .with_seed(0x5eed)
        .with_pinned_family(family);
    let builder = SaLshBlocker::builder()
        .attributes(["first_name", "last_name"])
        .qgram(2)
        .rows_per_band(9)
        .bands(15)
        .seed(0x7013)
        .semantic(semantic);
    let blocker = builder.clone().build()?;
    let mut incremental = builder.into_incremental()?;

    // --- 1. Ingest the stream batch by batch ---------------------------------
    let generator = NcVoterGenerator::new(NcVoterConfig { num_records, ..NcVoterConfig::default() });
    let mut stream = generator.stream()?;
    let schema = Arc::clone(stream.schema());

    // Kept only for the final rebuild cross-check — the incremental index
    // itself never needs the history.
    let mut entities: Vec<EntityId> = Vec::with_capacity(num_records);
    let mut all_rows: Vec<Vec<Option<String>>> = Vec::with_capacity(num_records);

    let mut truth_totals = TruthTotals::default();
    let mut evaluation = IncrementalEvaluation::new();
    let mut latencies = LatencyStats::new();
    let mut batch_index = 0usize;
    while let Some(chunk) = stream.next_chunk(batch_size) {
        let mut rows = Vec::with_capacity(chunk.len());
        let mut batch_entities = Vec::with_capacity(chunk.len());
        for (values, entity) in chunk {
            entities.push(entity);
            truth_totals.push(entity);
            batch_entities.push(entity);
            all_rows.push(values.clone());
            rows.push(values);
        }
        let batch_records = rows.len();
        let start = Instant::now();
        let delta_pairs = incremental.insert_values_with_entities(&schema, rows, &batch_entities)?.num_pairs();
        let elapsed = start.elapsed();
        latencies.record(elapsed);

        // Cumulative quality so far: the running counters already fold the
        // delta — reading them is O(1), no pair is ever re-probed.
        evaluation.sync_with(incremental.running_counts());
        let cumulative =
            evaluation.metrics_with_totals(truth_totals.true_matches, truth_totals.total_pairs, 0);
        batch_index += 1;
        println!(
            "batch {:>3}: +{:>7} records in {:>8.2} ms | +{:>9} delta pairs | cumulative PC={:.4} RR={:.4}",
            batch_index,
            batch_records,
            elapsed.as_secs_f64() * 1e3,
            delta_pairs,
            cumulative.pc(),
            cumulative.rr(),
        );
    }
    let insert_total_s = latencies.total_secs();
    println!(
        "ingested {} records in {} batches: insert p50 {:.2} ms, p99 {:.2} ms, max {:.2} ms, total {:.2} s",
        incremental.num_records(),
        incremental.num_batches(),
        latencies.p50_secs() * 1e3,
        latencies.p99_secs() * 1e3,
        latencies.max_secs() * 1e3,
        insert_total_s,
    );

    // --- 2. Snapshot metrics in O(delta): an O(1) counter read ---------------
    let metrics_start = Instant::now();
    let running = incremental.running_counts();
    let final_metrics = IncrementalEvaluation::from(running).metrics_with_totals(
        truth_totals.true_matches,
        truth_totals.total_pairs,
        0,
    );
    let snapshot_metrics_time = metrics_start.elapsed();
    println!(
        "snapshot metrics (running counters): |Γ| = {}, |Γ_tp| = {}, PC={:.4} RR={:.4} in {:.6}s",
        running.pairs,
        running.true_positives,
        final_metrics.pc(),
        final_metrics.rr(),
        snapshot_metrics_time.as_secs_f64(),
    );
    assert!(
        snapshot_metrics_time.as_secs_f64() < 1.0,
        "running-counter snapshot metrics must be an O(1) read, not an O(corpus) re-count"
    );

    // --- 3. Cross-check the counters against a from-scratch snapshot count ---
    let truth = GroundTruth::from_assignments(entities.clone());
    assert_eq!(truth.num_true_matches(), truth_totals.true_matches, "incremental |Ω_tp| is exact");
    assert_eq!(truth.num_total_pairs(), truth_totals.total_pairs, "incremental |Ω| is exact");
    let snapshot = incremental.snapshot();
    let stream_start = Instant::now();
    let snapshot_counts = snapshot.stream_packed_counts(EntityTableProbe::new(truth.entity_table()));
    let snapshot_count_time = stream_start.elapsed();
    assert_eq!(
        snapshot_counts.distinct,
        running.pairs,
        "running |Γ| must equal the snapshot's streamed re-count"
    );
    assert_eq!(snapshot_counts.matching, running.true_positives, "running |Γ_tp| must match too");
    println!(
        "snapshot re-count: {} blocks, {} distinct pairs, {} true positives (streamed in {:.2}s) — matches \
         the running counters",
        snapshot.num_blocks(),
        snapshot_counts.distinct,
        snapshot_counts.matching,
        snapshot_count_time.as_secs_f64(),
    );

    // --- 4. Rebuild from scratch and require byte-identical blocking ---------
    let mut dataset_builder =
        sablock::datasets::dataset::DatasetBuilder::new("ncvoter-streamed", Arc::clone(&schema));
    dataset_builder.reserve(all_rows.len());
    for (values, entity) in all_rows.into_iter().zip(entities.iter()) {
        dataset_builder.push_values(values, *entity)?;
    }
    let dataset = dataset_builder.build()?;
    let rebuild_start = Instant::now();
    let rebuilt = blocker.block(&dataset)?;
    let rebuild_time = rebuild_start.elapsed();
    assert_eq!(
        rebuilt.blocks(),
        snapshot.blocks(),
        "incremental snapshot must be byte-identical to a from-scratch rebuild"
    );
    let reference = BlockingMetrics::evaluate(&rebuilt, dataset.ground_truth());
    assert_eq!(reference.candidate_pairs, running.pairs, "running |Γ| ≡ rebuild |Γ|");
    assert_eq!(reference.true_positives, running.true_positives, "running |Γ_tp| ≡ rebuild |Γ_tp|");
    // A one-shot deployment pays blocking *plus* a full Γ count to get the
    // numbers the running counters deliver for free — that is the
    // end-to-end cost streaming ingest is budgeted against.
    let rebuild_end_to_end_s = rebuild_time.as_secs_f64() + snapshot_count_time.as_secs_f64();
    let ingest_ratio = insert_total_s / rebuild_end_to_end_s;
    println!(
        "rebuild: blocked {} records from scratch in {:.2}s (+{:.2}s one-shot Γ count = {:.2}s end-to-end) — \
         blocks and pair counts identical (|Γ| = {}, final PC={:.4} RR={:.4}); ingest/rebuild ratio {:.2}×",
        dataset.len(),
        rebuild_time.as_secs_f64(),
        snapshot_count_time.as_secs_f64(),
        rebuild_end_to_end_s,
        reference.candidate_pairs,
        reference.pc(),
        reference.rr(),
        ingest_ratio,
    );
    if full {
        assert_eq!(
            reference.candidate_pairs, 56_156_606,
            "full-scale SA-LSH pair count must match BENCH_fig13.json's one-shot run"
        );
        assert_eq!(
            running.true_positives, 112_220,
            "full-scale SA-LSH true positives must match BENCH_fig13.json's one-shot run"
        );
    }
    if enforce_budget {
        assert!(
            ingest_ratio <= 2.0,
            "streaming ingest ({insert_total_s:.2}s) exceeded 2× the one-shot rebuild end-to-end \
             ({rebuild_end_to_end_s:.2}s)"
        );
        println!("budget check: ingest within 2× of rebuild end-to-end ✓");
    }

    // --- 5. Removal + compaction demo (quick mode only) ----------------------
    if !full {
        let victims = [RecordId(17), RecordId(512), RecordId(513)];
        for victim in victims {
            incremental.remove(victim)?;
        }
        let after_removal = incremental.running_counts();
        let live_truth = GroundTruth::from_assignments(entities.clone());
        let recount = incremental
            .snapshot()
            .stream_packed_counts(EntityTableProbe::new(live_truth.entity_table()));
        assert_eq!(after_removal.pairs, recount.distinct, "removal subtracts exactly the retired pairs");
        assert_eq!(after_removal.true_positives, recount.matching);
        let before_compaction = incremental.snapshot();
        let compacted = incremental.compact();
        assert_eq!(
            incremental.snapshot().blocks(),
            before_compaction.blocks(),
            "compaction is observation-equivalent"
        );
        assert_eq!(incremental.running_counts(), after_removal);
        println!(
            "removals: tombstoned {} records, running counters subtracted exactly ({} pairs live); \
             compacted {} buckets ({} total so far) with no observable change",
            victims.len(),
            after_removal.pairs,
            compacted,
            incremental.num_compactions(),
        );
    }

    // --- 6. Record the measurements machine-readably -------------------------
    let peak_rss = peak_rss_bytes();
    let report = JsonValue::Object(vec![
        ("records".into(), JsonValue::UInt(dataset.len() as u64)),
        ("batch_size".into(), JsonValue::UInt(batch_size as u64)),
        ("batches".into(), JsonValue::UInt(batch_index as u64)),
        ("insert_p50_s".into(), JsonValue::Float(latencies.p50_secs())),
        ("insert_p99_s".into(), JsonValue::Float(latencies.p99_secs())),
        ("insert_max_s".into(), JsonValue::Float(latencies.max_secs())),
        ("insert_total_s".into(), JsonValue::Float(insert_total_s)),
        ("snapshot_metrics_s".into(), JsonValue::Float(snapshot_metrics_time.as_secs_f64())),
        ("rebuild_blocking_s".into(), JsonValue::Float(rebuild_time.as_secs_f64())),
        ("snapshot_count_s".into(), JsonValue::Float(snapshot_count_time.as_secs_f64())),
        ("rebuild_end_to_end_s".into(), JsonValue::Float(rebuild_end_to_end_s)),
        ("ingest_vs_rebuild_ratio".into(), JsonValue::Float(ingest_ratio)),
        ("salsh_candidate_pairs".into(), JsonValue::UInt(running.pairs)),
        ("salsh_true_positives".into(), JsonValue::UInt(running.true_positives)),
        ("peak_rss_bytes".into(), peak_rss.map_or(JsonValue::Null, JsonValue::UInt)),
    ]);
    let section = if full { "incremental" } else { "incremental_quick" };
    let path = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_fig13.json"));
    match upsert_section(path, section, &report) {
        Ok(()) => println!("wrote the measurements to {} (section \"{section}\")", path.display()),
        Err(err) => eprintln!("could not write {}: {err}", path.display()),
    }
    Ok(())
}
