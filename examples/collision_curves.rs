//! Prints the analytic collision-probability curves of Fig. 5 and Fig. 6.
//!
//! Run with `cargo run --release --example collision_curves`.

use std::error::Error;

use sablock::core::lsh::probability::{banding_collision_probability, banding_threshold};
use sablock::eval::experiments::fig05;
use sablock::prelude::*;

fn main() -> Result<(), Box<dyn Error>> {
    // Fig. 5: the w-way AND/OR amplification curves.
    let fig5 = fig05::run(15);
    println!("{}", fig5.to_table().render());

    // Fig. 6 (lower subplots): the banding S-curves for the Cora ladder and
    // the NC Voter k-sweep.
    let mut cora = TextTable::new(
        "Banding collision probability (Cora ladder)",
        &["s", "k=1 l=2", "k=2 l=6", "k=3 l=19", "k=4 l=63", "k=5 l=210", "k=6 l=701"],
    );
    for i in 0..=10 {
        let s = i as f64 / 10.0;
        let mut row = vec![format!("{s:.1}")];
        for (k, l) in [(1, 2), (2, 6), (3, 19), (4, 63), (5, 210), (6, 701)] {
            row.push(format!("{:.3}", banding_collision_probability(s, k, l)));
        }
        cora.add_row(row);
    }
    println!("{}", cora.render());

    let mut voter = TextTable::new(
        "Banding collision probability (NC Voter, l = 15)",
        &["s", "k=4", "k=5", "k=6", "k=7", "k=8", "k=9"],
    );
    for i in 0..=10 {
        let s = i as f64 / 10.0;
        let mut row = vec![format!("{s:.1}")];
        for k in 4..=9 {
            row.push(format!("{:.3}", banding_collision_probability(s, k, 15)));
        }
        voter.add_row(row);
    }
    println!("{}", voter.render());

    // Where each family places its 50% threshold.
    let mut thresholds = TextTable::new("50% collision thresholds", &["k", "l", "threshold"]);
    for (k, l) in [(1, 2), (2, 6), (3, 19), (4, 63), (5, 210), (6, 701), (9, 15)] {
        thresholds.add_row(vec![k.to_string(), l.to_string(), format!("{:.3}", banding_threshold(k, l))]);
    }
    println!("{}", thresholds.render());
    println!("Reading guide: the Cora family (k=4, l=63) crosses 50% around s ≈ 0.33, matching the");
    println!("paper's choice of s_h = 0.3; the NC Voter family (k=9, l=15) crosses around s ≈ 0.77,");
    println!("matching the observation that most NC Voter matches have similarity above 0.8.");
    Ok(())
}
