//! Parameter tuning walkthrough (paper §5.3 and §6.1).
//!
//! Run with `cargo run --release --example parameter_tuning`.
//!
//! Reproduces the paper's parameter derivation: learn the match-similarity
//! distribution of a Cora-like corpus under different q-gram sizes, pick the
//! thresholds s_l / s_h for a desired error ratio ε, and derive (k, l) —
//! arriving at the published k = 4, l = 63 — plus the Fig. 9 ladder and an
//! empirical γ-robustness estimate.

use std::error::Error;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sablock::core::robustness::{estimate_gamma, LabelledSimilarity};
use sablock::core::tuning::{choose_bands_for_target, choose_parameters, SimilarityDistribution, TuningGoal};
use sablock::prelude::*;

fn main() -> Result<(), Box<dyn Error>> {
    let dataset = CoraGenerator::new(CoraConfig::default()).generate()?;

    // --- Match-similarity distribution under different q ---------------------
    let mut table = TextTable::new("Match-similarity distribution by q-gram size", &["q", "mean", "5%-quantile", "25%-quantile"]);
    for q in [2usize, 3, 4] {
        let shingler = RecordShingler::new(["title", "authors"], q)?;
        let mut rng = StdRng::seed_from_u64(7);
        let dist = SimilarityDistribution::estimate_from_matches(&dataset, &shingler, 3_000, 20, &mut rng)?;
        table.add_row(vec![
            format!("{q}"),
            format!("{:.3}", dist.mean()),
            format!("{:.3}", dist.quantile(0.05)),
            format!("{:.3}", dist.quantile(0.25)),
        ]);
    }
    println!("{}", table.render());

    // --- The paper's Cora goal and the resulting (k, l) ----------------------
    let goal = TuningGoal::cora_paper();
    let (k, l) = choose_parameters(&goal, 10)?;
    println!("paper goal (s_l=0.2, s_h=0.3, p_l=0.1, p_h=0.4)  ->  k = {k}, l = {l}   (published: k = 4, l = 63)\n");

    // --- The Fig. 9 ladder ----------------------------------------------------
    let mut ladder = TextTable::new("Fig. 9 ladder: minimal l per k for the same goal", &["k", "l"]);
    for k in 1..=6 {
        ladder.add_row(vec![k.to_string(), choose_bands_for_target(0.3, 0.4, k)?.to_string()]);
    }
    println!("{}", ladder.render());

    // --- Empirical γ-robustness of the q=4 textual similarity ----------------
    let shingler = RecordShingler::new(["title", "authors"], 4)?;
    let mut rng = StdRng::seed_from_u64(11);
    let mut observations = Vec::new();
    // Sample labelled pairs: all matches from the ground truth plus random non-matches.
    for pair in dataset.ground_truth().true_match_pairs().take(2_000) {
        let a = dataset.record(pair.first()).unwrap();
        let b = dataset.record(pair.second()).unwrap();
        observations.push(LabelledSimilarity::new(shingler.jaccard(a, b), true));
    }
    use rand::Rng;
    let num_records = u32::try_from(dataset.len()).expect("dataset record ids are validated at construction");
    for _ in 0..4_000 {
        let i = RecordId(rng.gen_range(0..num_records));
        let j = RecordId(rng.gen_range(0..num_records));
        if i == j || dataset.ground_truth().is_match(i, j) {
            continue;
        }
        let a = dataset.record(i).unwrap();
        let b = dataset.record(j).unwrap();
        observations.push(LabelledSimilarity::new(shingler.jaccard(a, b), false));
    }
    let robustness = estimate_gamma(&observations, 10)?;
    println!(
        "empirical γ-robustness of the 4-gram Jaccard similarity: γ = {:.2} over {} labelled pairs",
        robustness.gamma,
        observations.len()
    );
    println!("(γ close to 1 means the match probability is monotone in textual similarity, which is");
    println!(" exactly the property Proposition 5.1 needs for LSH blocking to be effective.)");
    Ok(())
}
