//! Voter-roll deduplication scenario (the paper's NC Voter workload).
//!
//! Run with `cargo run --release --example voter_deduplication`.
//!
//! The example deduplicates a synthetic voter registration roll:
//!
//! 1. It learns the match-similarity distribution from a labelled sample and
//!    derives the (k, l) operating point (§5.3 / §6.1).
//! 2. It blocks the roll with plain LSH and with SA-LSH over the race×gender
//!    taxonomy (12 semantic features).
//! 3. It scales the input up and reports blocking time, reproducing the shape
//!    of Fig. 13.

use std::error::Error;

use sablock::core::tuning::{choose_parameters, SimilarityDistribution, TuningGoal};
use sablock::eval::experiments::fig13;
use sablock::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn Error>> {
    // --- 1. Parameter tuning from a labelled sample --------------------------
    let training = NcVoterGenerator::new(NcVoterConfig {
        num_records: 5_000,
        ..NcVoterConfig::default()
    })
    .generate()?;
    let shingler = RecordShingler::new(["first_name", "last_name"], 2)?;
    let mut rng = StdRng::seed_from_u64(42);
    let distribution = SimilarityDistribution::estimate_from_matches(&training, &shingler, 2_000, 20, &mut rng)?;
    println!(
        "learned match-similarity distribution from {} sampled matches: mean = {:.2}, 5%-quantile = {:.2}",
        distribution.total(),
        distribution.mean(),
        distribution.quantile(0.05)
    );
    let goal = TuningGoal {
        s_low: 0.5,
        s_high: distribution.quantile(0.05).max(0.6),
        p_low: 0.05,
        p_high: 0.9,
    };
    let (k, l) = choose_parameters(&goal, 15)?;
    println!("chosen operating point: k = {k}, l = {l} (the paper uses k = 9, l = 15)\n");

    // --- 2. Deduplicate a 20,000-record roll ---------------------------------
    let roll = NcVoterGenerator::new(NcVoterConfig {
        num_records: 20_000,
        ..NcVoterConfig::default()
    })
    .generate()?;
    let zeta = VoterSemanticFunction::default_voter();
    let tree = zeta.taxonomy().clone();
    let lsh = SaLshBlocker::builder()
        .attributes(["first_name", "last_name"])
        .qgram(2)
        .rows_per_band(k)
        .bands(l)
        .build()?;
    let salsh = SaLshBlocker::builder()
        .attributes(["first_name", "last_name"])
        .qgram(2)
        .rows_per_band(k)
        .bands(l)
        .semantic(SemanticConfig::new(tree, zeta).with_w(12).with_mode(SemanticMode::Or))
        .build()?;
    for (name, blocker) in [("LSH", &lsh), ("SA-LSH", &salsh)] {
        let result = run_blocker(name, blocker, &roll)?;
        println!("{}", result.summary());
    }

    // --- 3. Scalability (a small version of Fig. 13) -------------------------
    println!();
    let scalability = fig13::run_sizes(&[5_000, 10_000, 20_000])?;
    println!("{}", scalability.quality_table().render());
    println!("{}", scalability.time_table().render());
    println!("Blocking time grows roughly linearly with the number of records — the probabilistic");
    println!("O(n) behaviour that makes LSH blocking attractive for large rolls (Fig. 13 (d)).");
    Ok(())
}
