//! Blocking-as-a-service under mixed load: one writer streams NC-Voter
//! batches (with interleaved removals) into a [`CandidateService`] while
//! several reader threads run candidate queries against whatever epoch is
//! published — exactly the deployment shape the serve layer exists for.
//!
//! Run with `cargo run --release --example mixed_load`. The default is a
//! quick 6,000-record load that finishes in seconds; set
//! `SABLOCK_SERVICE_FULL=1` for a 50,000-record run.
//!
//! The example is also a **differential harness**: every reader records
//! `(epoch, probe, result)` samples, and after the threads join, the write
//! script is replayed op-by-op into a fresh mirror index — each sample must
//! equal the mirror's answer at that exact epoch, proving readers only ever
//! observe fully-applied write prefixes. Per-query latencies (merged across
//! readers, p50/p99) and insert throughput land in `BENCH_fig13.json` under
//! the `"service"` section (`"service_quick"` for default runs).

use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use sablock::core::parallel::join_all;
use sablock::eval::experiments::VOTER_SEMANTIC_BITS;
use sablock::eval::perf::{peak_rss_bytes, upsert_section, JsonValue, LatencyStats};
use sablock::prelude::*;

const QUICK_SCALE: usize = 6_000;
const FULL_SCALE: usize = 50_000;
const NUM_READERS: usize = 4;
const NUM_PROBES: usize = 32;

/// The scripted write load: batched inserts with a removal of the oldest
/// still-live record interleaved every sixth op.
enum Op {
    Insert(Vec<Vec<Option<String>>>),
    Remove(RecordId),
}

/// One reader observation, checked against the offline replay afterwards.
type Sample = (u64, usize, Vec<RecordId>);

fn builder() -> Result<sablock::core::lsh::salsh::SaLshBlockerBuilder, Box<dyn Error>> {
    // The paper's NC-Voter operating point (k = 9, l = 15), semhash family
    // pinned up front so the service head and the replay mirror share it by
    // construction.
    let zeta = VoterSemanticFunction::default_voter();
    let tree = zeta.taxonomy().clone();
    let family = SemhashFamily::from_all_leaves(&tree)?;
    let semantic = SemanticConfig::new(tree, zeta)
        .with_w(VOTER_SEMANTIC_BITS)
        .with_mode(SemanticMode::Or)
        .with_seed(0x5eed)
        .with_pinned_family(family);
    Ok(SaLshBlocker::builder()
        .attributes(["first_name", "last_name"])
        .qgram(2)
        .rows_per_band(9)
        .bands(15)
        .seed(0x7013)
        .semantic(semantic))
}

fn main() -> Result<(), Box<dyn Error>> {
    let full = std::env::var("SABLOCK_SERVICE_FULL").is_ok_and(|v| v == "1");
    let num_records = if full { FULL_SCALE } else { QUICK_SCALE };
    let batch_size = if full { 2_048 } else { 256 };
    println!(
        "mixed_load: {num_records} records in batches of {batch_size}, {NUM_READERS} readers{}",
        if full { " (full scale)" } else { " (set SABLOCK_SERVICE_FULL=1 for 50,000)" }
    );

    // --- Script the write load and the probe pool up front -------------------
    let generator =
        NcVoterGenerator::new(NcVoterConfig { num_records: num_records + NUM_PROBES, ..NcVoterConfig::default() });
    let mut stream = generator.stream()?;
    let schema = Arc::clone(stream.schema());
    let mut rows: Vec<Vec<Option<String>>> = Vec::with_capacity(num_records + NUM_PROBES);
    while let Some(chunk) = stream.next_chunk(8_192) {
        rows.extend(chunk.into_iter().map(|(values, _entity)| values));
    }
    let probe_rows: Vec<Vec<Option<String>>> = rows.split_off(num_records);

    let mut ops: Vec<Op> = Vec::new();
    let mut next_victim = 0u32;
    let mut cursor = 0usize;
    while cursor < rows.len() {
        if ops.len() % 6 == 5 && (next_victim as usize) < cursor {
            ops.push(Op::Remove(RecordId(next_victim)));
            next_victim += 1;
        } else {
            let end = (cursor + batch_size).min(rows.len());
            ops.push(Op::Insert(rows[cursor..end].to_vec()));
            cursor = end;
        }
    }
    let final_epoch = ops.len() as u64;

    // --- Run the mixed load ---------------------------------------------------
    let sample_stride = if full { 16 } else { 1 };
    let service = CandidateService::new(builder()?.into_incremental()?, Arc::clone(&schema))?;
    let service_ref = &service;
    let probes_ref = &probe_rows;

    type Task<'scope> = Box<dyn FnOnce() -> (LatencyStats, Vec<Sample>) + Send + 'scope>;
    let writer_ops: Vec<&Op> = ops.iter().collect();
    let mut tasks: Vec<Task> = vec![Box::new(move || {
        let mut inserts = LatencyStats::new();
        for op in writer_ops {
            let start = Instant::now();
            match op {
                Op::Insert(batch) => {
                    service_ref.insert_rows(batch.clone()).expect("scripted insert");
                }
                Op::Remove(id) => {
                    service_ref.remove(*id).expect("scripted removal");
                }
            }
            inserts.record(start.elapsed());
        }
        (inserts, Vec::new())
    })];
    for reader in 0..NUM_READERS {
        tasks.push(Box::new(move || {
            let mut latencies = LatencyStats::new();
            let mut samples: Vec<Sample> = Vec::new();
            let mut turn = reader; // stagger the probe cycle per reader
            loop {
                let state = service_ref.current();
                let probe_index = turn % probes_ref.len();
                let start = Instant::now();
                let probe =
                    service_ref.probe_record(&state, probes_ref[probe_index].clone()).expect("probe row");
                let result = state.query(&probe).expect("published epochs always answer");
                latencies.record(start.elapsed());
                // Keep a bounded differential trace: every 16th query in
                // full, every query in quick mode.
                if turn % sample_stride == 0 {
                    samples.push((state.epoch(), probe_index, result));
                }
                if state.epoch() >= final_epoch {
                    return (latencies, samples);
                }
                turn += NUM_READERS;
            }
        }));
    }

    let wall_start = Instant::now();
    let mut outcomes = join_all(tasks).into_iter();
    let wall_s = wall_start.elapsed().as_secs_f64();
    let (insert_latencies, _) = outcomes.next().expect("writer outcome");
    let mut query_latencies = LatencyStats::new();
    let mut samples: Vec<Sample> = Vec::new();
    for (latencies, reader_samples) in outcomes {
        query_latencies.merge(&latencies);
        samples.extend(reader_samples);
    }
    let insert_throughput = num_records as f64 / insert_latencies.total_secs();
    println!(
        "mixed load done in {wall_s:.2}s wall: {} write ops ({:.0} records/s insert), {} queries \
         (p50 {:.3} ms, p99 {:.3} ms)",
        ops.len(),
        insert_throughput,
        query_latencies.len(),
        query_latencies.p50_secs() * 1e3,
        query_latencies.p99_secs() * 1e3,
    );
    assert!(query_latencies.len() >= NUM_READERS, "every reader completes at least one query");
    assert!(insert_throughput > 0.0 && insert_throughput.is_finite());

    // --- Differential replay: every sample must match its epoch exactly ------
    let mut needed: BTreeMap<u64, BTreeSet<usize>> = BTreeMap::new();
    for (epoch, probe_index, _) in &samples {
        needed.entry(*epoch).or_default().insert(*probe_index);
    }
    let mut expected: BTreeMap<(u64, usize), Vec<RecordId>> = BTreeMap::new();
    let mut mirror = builder()?.into_incremental()?;
    let mut next_index = 0usize;
    for epoch in 0..=ops.len() {
        if let Some(probe_indices) = needed.get(&(epoch as u64)) {
            for &probe_index in probe_indices {
                let probe = Record::new(
                    RecordId::try_from_index(next_index)?,
                    Arc::clone(&schema),
                    probe_rows[probe_index].clone(),
                )?;
                expected.insert((epoch as u64, probe_index), mirror.query_candidates(&probe)?);
            }
        }
        if let Some(op) = ops.get(epoch) {
            match op {
                Op::Insert(batch) => {
                    let records: Vec<Record> = batch
                        .iter()
                        .map(|values| {
                            let id = RecordId::try_from_index(next_index).expect("dense ids");
                            next_index += 1;
                            Record::new(id, Arc::clone(&schema), values.clone()).expect("scripted row")
                        })
                        .collect();
                    mirror.insert_batch(&records)?;
                }
                Op::Remove(id) => {
                    mirror.remove(*id)?;
                }
            }
        }
    }
    for (epoch, probe_index, result) in &samples {
        assert_eq!(
            result,
            &expected[&(*epoch, *probe_index)],
            "reader sample at epoch {epoch} / probe {probe_index} diverged from the offline replay"
        );
    }
    println!(
        "differential replay: {} samples across {} distinct epochs all match the op-by-op mirror",
        samples.len(),
        needed.len(),
    );

    // --- Final-state equivalence: service ≡ mirror wholesale ------------------
    let final_state = service.current();
    assert_eq!(final_state.epoch(), final_epoch);
    assert_eq!(final_state.view().snapshot().blocks(), mirror.snapshot().blocks());
    assert_eq!(final_state.view().running_counts(), mirror.running_counts());
    println!(
        "final epoch {}: {} records ({} live), |Γ| = {} — byte-identical to the mirror",
        final_state.epoch(),
        final_state.view().num_records(),
        final_state.view().num_live_records(),
        final_state.view().running_counts().pairs,
    );

    // --- Record the measurements machine-readably -----------------------------
    let total_records = u64::try_from(num_records)?;
    let batch_records = u64::try_from(batch_size)?;
    let total_ops = u64::try_from(ops.len())?;
    let reader_count = u64::try_from(NUM_READERS)?;
    let query_count = u64::try_from(query_latencies.len())?;
    let sample_count = u64::try_from(samples.len())?;
    let report = JsonValue::Object(vec![
        ("records".into(), JsonValue::UInt(total_records)),
        ("batch_size".into(), JsonValue::UInt(batch_records)),
        ("write_ops".into(), JsonValue::UInt(total_ops)),
        ("readers".into(), JsonValue::UInt(reader_count)),
        ("queries".into(), JsonValue::UInt(query_count)),
        ("query_p50_s".into(), JsonValue::Float(query_latencies.p50_secs())),
        ("query_p99_s".into(), JsonValue::Float(query_latencies.p99_secs())),
        ("query_mean_s".into(), JsonValue::Float(query_latencies.mean_secs())),
        ("insert_p50_s".into(), JsonValue::Float(insert_latencies.p50_secs())),
        ("insert_p99_s".into(), JsonValue::Float(insert_latencies.p99_secs())),
        ("insert_total_s".into(), JsonValue::Float(insert_latencies.total_secs())),
        ("insert_throughput_rps".into(), JsonValue::Float(insert_throughput)),
        ("wall_s".into(), JsonValue::Float(wall_s)),
        ("samples_verified".into(), JsonValue::UInt(sample_count)),
        ("peak_rss_bytes".into(), peak_rss_bytes().map_or(JsonValue::Null, JsonValue::UInt)),
    ]);
    let section = if full { "service" } else { "service_quick" };
    let path = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_fig13.json"));
    match upsert_section(path, section, &report) {
        Ok(()) => println!("wrote the measurements to {} (section \"{section}\")", path.display()),
        Err(err) => eprintln!("could not write {}: {err}", path.display()),
    }
    Ok(())
}
