//! Quickstart: block a noisy bibliographic dataset with semantic-aware LSH.
//!
//! Run with `cargo run --release --example quickstart`.
//!
//! The example walks through the whole pipeline of the paper:
//! generate a Cora-like corpus, build the bibliographic taxonomy (Fig. 3) and
//! the missing-value-pattern semantic function (Table 1), block with plain
//! LSH and with SA-LSH, and compare the blocking quality (PC/PQ/RR/FM).

use std::error::Error;

use sablock::prelude::*;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. A Cora-like corpus: ~1,900 citations of a few hundred papers, with
    //    typos, reordered authors and missing venue information.
    let dataset = CoraGenerator::new(CoraConfig::default()).generate()?;
    println!(
        "dataset: {} records, {} entities, {} true-match pairs",
        dataset.len(),
        dataset.ground_truth().num_entities(),
        dataset.ground_truth().num_true_matches()
    );

    // 2. Domain knowledge: taxonomy tree + semantic function.
    let tree = bibliographic_taxonomy();
    let zeta = PatternSemanticFunction::cora_default(&tree)?;

    // 3. Two blockers with the paper's Cora parameters (k=4, l=63, q=4):
    //    plain textual LSH, and SA-LSH with a 2-way OR semantic hash.
    let lsh = SaLshBlocker::builder()
        .attributes(["title", "authors"])
        .qgram(4)
        .rows_per_band(4)
        .bands(63)
        .build()?;
    let salsh = SaLshBlocker::builder()
        .attributes(["title", "authors"])
        .qgram(4)
        .rows_per_band(4)
        .bands(63)
        .semantic(SemanticConfig::new(tree, zeta).with_w(2).with_mode(SemanticMode::Or))
        .build()?;

    // 4. Block and evaluate.
    let mut table = TextTable::new("LSH vs SA-LSH on a Cora-like corpus", &["blocker", "PC", "PQ", "RR", "FM", "pairs", "time (s)"]);
    for blocker in [&lsh, &salsh] {
        let result = run_blocker(if blocker.is_semantic() { "SA-LSH" } else { "LSH" }, blocker, &dataset)?;
        println!("{}", result.summary());
        table.add_row(vec![
            result.technique.clone(),
            format!("{:.3}", result.metrics.pc()),
            format!("{:.3}", result.metrics.pq()),
            format!("{:.4}", result.metrics.rr()),
            format!("{:.3}", result.metrics.fm()),
            result.metrics.candidate_pairs.to_string(),
            format!("{:.3}", result.blocking_time.as_secs_f64()),
        ]);
    }
    println!("\n{}", table.render());

    println!("The semantic component removes textually-similar but semantically-different candidates");
    println!("(e.g. a technical report citing the same title as a conference paper), so PQ and FM rise");
    println!("while PC drops only slightly — the trade-off reported in Fig. 7 and Fig. 9 of the paper.");
    Ok(())
}
