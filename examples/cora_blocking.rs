//! Bibliographic deduplication scenario (the paper's Cora workload).
//!
//! Run with `cargo run --release --example cora_blocking`.
//!
//! This example exercises the semantic machinery in more depth than the
//! quickstart:
//!
//! 1. It inspects the semantic interpretation and semhash signature of a few
//!    records (Table 1 / Algorithm 1 in action).
//! 2. It sweeps the five semantic hash configurations of Fig. 7 (H11-H15).
//! 3. It compares the full bibliographic taxonomy with the three degraded
//!    variants of Fig. 10 (Table 2's experiment).

use std::error::Error;

use sablock::core::semantic::semhash::SemhashFamily;
use sablock::core::semantic::SemanticFunction;
use sablock::eval::experiments::{fig07, tab02};
use sablock::prelude::*;

fn main() -> Result<(), Box<dyn Error>> {
    let dataset = CoraGenerator::new(CoraConfig {
        num_records: 800,
        ..CoraConfig::default()
    })
    .generate()?;

    // --- 1. Semantic interpretations and semhash signatures -----------------
    let tree = bibliographic_taxonomy();
    let zeta = PatternSemanticFunction::cora_default(&tree)?;
    let interpretations: Vec<_> = dataset.records().iter().map(|r| zeta.interpret(r)).collect();
    let family = SemhashFamily::build(&tree, interpretations.iter())?;
    println!(
        "semhash family: {} features (the paper reports a 5-bit signature for Cora)\n",
        family.len()
    );
    println!("first five records, their interpretations and signatures:");
    for record in dataset.records().iter().take(5) {
        let interp = zeta.interpret(record);
        let labels: Vec<&str> = interp.concepts().filter_map(|c| tree.label(c)).collect();
        let signature = family.signature(&tree, &interp);
        println!(
            "  {}: venue=[j:{} b:{} i:{}] -> concepts {:?} bits {:?}",
            record.id(),
            record.value("journal").unwrap_or("-"),
            record.value("booktitle").unwrap_or("-"),
            record.value("institution").unwrap_or("-"),
            labels,
            signature.ones()
        );
    }

    // --- 2. The semantic hash configurations of Fig. 7 ----------------------
    let fig07_output = fig07::run_on(&dataset)?;
    println!("\n{}", fig07_output.to_table().render());

    // --- 3. Taxonomy variants (Table 2 / Fig. 10) ---------------------------
    let tab02_output = tab02::run_on(&dataset, 3)?;
    println!("{}", tab02_output.to_table().render());
    println!("Positive ΔPQ/ΔRR/ΔFM with a small negative ΔPC is the trade-off the paper reports;");
    println!("removing concepts from the taxonomy (t_bib,1..3) shrinks but does not destroy the gain.");
    Ok(())
}
