//! Paper-scale blocking walk-through: the streaming NC-Voter generator and
//! the Fig. 13 operating point, end to end.
//!
//! Run with `cargo run --release --example paper_scale`.
//!
//! By default the example runs a 20,000-record slice so it finishes in
//! seconds. Set `SABLOCK_PAPER_FULL=1` (and do use `--release`) to run the
//! full 292,892-record voter roll of Fig. 13's right-most point:
//!
//! ```sh
//! SABLOCK_PAPER_FULL=1 cargo run --release --example paper_scale
//! ```
//!
//! The walk-through demonstrates:
//!
//! 1. **Streaming generation** — `NcVoterGenerator::stream` yields records in
//!    bounded chunks; only the assembled dataset itself is ever resident.
//! 2. **Parallel blocking** — signatures are computed per record and the
//!    banding/bucket phase is sharded per band, merged deterministically.
//! 3. **Streaming Γ evaluation** — candidate pairs are counted (and probed
//!    against ground truth) by a loser-tree/galloping merge fold over
//!    radix-sorted packed pair runs, one pair-space slice at a time; the
//!    full pair set is never materialised, so peak memory stays at one
//!    slice per worker even at 236M+ LSH pairs.
//!
//! The measured numbers (records, blocking times, Γ-count time, peak RSS)
//! are also written to `BENCH_fig13.json` in the working directory — the
//! machine-readable companion of `BENCH_NOTES.md` — under the
//! `"paper_scale"` section (`"quick_scale"` for default runs, so quick
//! smoke runs never clobber committed paper-scale numbers).

use std::error::Error;
use std::path::Path;
use std::time::Instant;

use sablock::eval::experiments::{voter_lsh, voter_salsh, VOTER_SEMANTIC_BITS};
use sablock::eval::perf::{peak_rss_bytes, upsert_section, JsonValue};
use sablock::prelude::*;

/// The full NC Voter extract size used by the paper (Fig. 13).
const FULL_SCALE: usize = 292_892;
/// The affordable default for a debug-friendly walk-through.
const QUICK_SCALE: usize = 20_000;

fn main() -> Result<(), Box<dyn Error>> {
    let full = std::env::var("SABLOCK_PAPER_FULL").is_ok_and(|v| v == "1");
    let num_records = if full { FULL_SCALE } else { QUICK_SCALE };
    println!(
        "paper_scale: {} records{}",
        num_records,
        if full { " (full Fig. 13 scale)" } else { " (set SABLOCK_PAPER_FULL=1 for the full 292,892)" }
    );

    // --- 1. Stream the voter roll in bounded chunks --------------------------
    let generator = NcVoterGenerator::new(NcVoterConfig {
        num_records,
        ..NcVoterConfig::default()
    });
    let start = Instant::now();
    let mut stream = generator.stream()?;
    let schema = std::sync::Arc::clone(stream.schema());
    let mut builder = sablock::datasets::dataset::DatasetBuilder::new("ncvoter-streamed", schema);
    builder.reserve(num_records);
    let chunk_size = 16_384;
    let mut chunks = 0usize;
    while let Some(chunk) = stream.next_chunk(chunk_size) {
        chunks += 1;
        for (values, entity) in chunk {
            builder.push_values(values, entity)?;
        }
    }
    let dataset = builder.build()?;
    println!(
        "streamed {} records in {} chunks of ≤{} rows in {:.2}s (transient state: one duplicate cluster)",
        dataset.len(),
        chunks,
        chunk_size,
        start.elapsed().as_secs_f64()
    );

    // --- 2. Block at the paper's operating point (k = 9, l = 15) -------------
    let lsh_result = run_blocker("LSH", &voter_lsh(9, 15)?, &dataset)?;
    println!("{}", lsh_result.summary());
    // Block SA-LSH once and keep the collection so step 3 can reuse it
    // instead of repeating the most expensive phase at full scale.
    let salsh = voter_salsh(9, 15, VOTER_SEMANTIC_BITS, SemanticMode::Or)?;
    let blocking_start = Instant::now();
    let blocks = salsh.block(&dataset)?;
    let blocking_time = blocking_start.elapsed();
    let salsh_result =
        sablock::eval::runner::evaluate_blocks("SA-LSH", &salsh.name(), &dataset, &blocks, blocking_time);
    println!("{}", salsh_result.summary());

    // --- 3. Stream the candidate-pair counts ---------------------------------
    // `stream_packed_counts` folds per-shard radix-sorted packed pair runs
    // through the loser-tree/galloping merge counter, probing the dense
    // ground-truth entity table per distinct pair — Γ itself is never
    // resident.
    let stream_start = Instant::now();
    let truth = dataset.ground_truth();
    let counts = blocks.stream_packed_counts(EntityTableProbe::new(truth.entity_table()));
    let gamma_count_time = stream_start.elapsed();
    println!(
        "{} blocks → {} distinct candidate pairs, {} true positives (streamed in {:.2}s, Γ never materialised)",
        blocks.num_blocks(),
        counts.distinct,
        counts.matching,
        gamma_count_time.as_secs_f64(),
    );
    assert_eq!(counts.distinct, salsh_result.metrics.candidate_pairs);
    assert_eq!(counts.matching, salsh_result.metrics.true_positives);
    if !full {
        // At the quick scale it is affordable to cross-check the streaming
        // counts against the materialised enumeration.
        let pairs = blocks.distinct_pairs();
        assert_eq!(pairs.len() as u64, counts.distinct, "streaming counts match the materialised Γ");
        assert!(pairs.windows(2).all(|w| w[0] < w[1]), "enumeration is sorted and deduplicated");
    }

    // --- 4. Record the measurements machine-readably -------------------------
    let peak_rss = peak_rss_bytes();
    let report = JsonValue::Object(vec![
        ("records".into(), JsonValue::UInt(dataset.len() as u64)),
        ("lsh_blocking_s".into(), JsonValue::Float(lsh_result.blocking_time.as_secs_f64())),
        ("salsh_blocking_s".into(), JsonValue::Float(blocking_time.as_secs_f64())),
        ("gamma_count_s".into(), JsonValue::Float(gamma_count_time.as_secs_f64())),
        ("lsh_candidate_pairs".into(), JsonValue::UInt(lsh_result.metrics.candidate_pairs)),
        ("salsh_candidate_pairs".into(), JsonValue::UInt(counts.distinct)),
        ("salsh_true_positives".into(), JsonValue::UInt(counts.matching)),
        ("salsh_blocks".into(), JsonValue::UInt(blocks.num_blocks() as u64)),
        (
            "peak_rss_bytes".into(),
            peak_rss.map_or(JsonValue::Null, JsonValue::UInt),
        ),
    ]);
    let section = if full { "paper_scale" } else { "quick_scale" };
    // The facade crate's manifest dir *is* the workspace root, so the report
    // lands next to BENCH_NOTES.md no matter where the example is run from.
    // The write is best-effort: an unwritable workspace must not fail a run
    // whose results were already computed and printed.
    let path = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_fig13.json"));
    match upsert_section(path, section, &report) {
        Ok(()) => println!(
            "wrote the measurements to {} (section \"{}\"{})",
            path.display(),
            section,
            peak_rss.map_or(String::new(), |b| format!(", peak RSS {:.2} GB", b as f64 / 1e9)),
        ),
        Err(err) => eprintln!("could not write {}: {err}", path.display()),
    }
    Ok(())
}
