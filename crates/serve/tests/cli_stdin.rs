//! End-to-end tests of the `sablock-serve` binary's stdin session: the
//! bounded line reader applies to the stdin transport exactly as it does
//! over TCP — an overlong line gets one typed `ERR` and ends the session —
//! and the ordinary protocol round-trips.

use std::io::Write;
use std::process::{Command, Stdio};

fn run_session(args: &[&str], input: &[u8]) -> (String, bool) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_serve"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("the serve binary spawns");
    child.stdin.take().expect("stdin is piped").write_all(input).expect("the session accepts input");
    let output = child.wait_with_output().expect("the serve binary exits");
    (String::from_utf8(output.stdout).expect("protocol replies are UTF-8"), output.status.success())
}

#[test]
fn the_stdin_session_answers_the_protocol_and_exits_cleanly() {
    let input = b"INSERT\tsemantic blocking study\tauthor1\n\
                  QUERY\tsemantic blocking study\tauthor1\n\
                  QUIT\n";
    let (stdout, success) = run_session(&["--profile", "cora"], input);
    assert!(success, "a clean session exits 0");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 3, "one reply per request: {stdout:?}");
    assert_eq!(lines[0], "OK 0 epoch 1", "INSERT echoes the assigned id and new epoch");
    assert_eq!(lines[1], "OK 1 0", "the identical probe finds its stored duplicate");
    assert_eq!(lines[2], "OK bye");
}

#[test]
fn an_overlong_stdin_line_gets_one_typed_error_and_ends_the_session() {
    let mut input = Vec::new();
    input.extend_from_slice(b"QUERY\tsemantic blocking\t\n");
    input.extend_from_slice(&[b'a'; 200]);
    input.push(b'\n');
    // Anything after the flood must not be parsed as a request.
    input.extend_from_slice(b"QUERY\tnever seen\t\n");
    let (stdout, success) = run_session(&["--profile", "cora", "--max-line-bytes", "64"], &input);
    assert!(success, "rejecting a flood is an orderly session end, not a crash");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2, "the reply to the flood is the session's last line: {stdout:?}");
    assert_eq!(lines[0], "OK 0", "the in-limit request is served first");
    assert_eq!(lines[1], "ERR protocol line exceeds the 64-byte limit");
}

#[test]
fn malformed_requests_report_and_the_session_continues() {
    let input = b"NOSUCH\tthing\nSTATS\nQUIT\n";
    let (stdout, success) = run_session(&["--profile", "voter"], input);
    assert!(success);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 3, "{stdout:?}");
    assert_eq!(lines[0], "ERR protocol error: unknown request verb 'NOSUCH'");
    assert!(lines[1].starts_with("OK epoch 0 records 0"), "STATS still answers after a typo: {}", lines[1]);
    assert_eq!(lines[2], "OK bye");
}
