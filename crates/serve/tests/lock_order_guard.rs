//! The runtime lock-order guard (`check-invariants` only): the dynamic twin
//! of `cargo xtask analyze`'s static `lock-order` rule. One test proves the
//! guard trips on the forbidden order (epoch guard held, then the writer
//! mutex), one proves the canonical order stays silent under real traffic.
#![cfg(feature = "check-invariants")]

use std::sync::Arc;

use sablock_core::prelude::SaLshBlocker;
use sablock_datasets::{Record, RecordId, Schema};
use sablock_serve::CandidateService;

fn service() -> CandidateService {
    let schema = Schema::shared(["title"]).expect("valid schema");
    let head = SaLshBlocker::builder()
        .attributes(["title"])
        .qgram(2)
        .bands(12)
        .rows_per_band(2)
        .seed(0xB10C)
        .into_incremental()
        .expect("valid builder configuration");
    CandidateService::new(head, schema).expect("schema matches the index attributes")
}

fn record(service: &CandidateService, id: u32, title: &str) -> Record {
    Record::new(RecordId(id), Arc::clone(service.schema()), vec![Some(title.to_string())])
        .expect("record matches the service schema")
}

#[test]
#[should_panic(expected = "lock-order violation")]
fn guard_trips_on_inverted_acquisition() {
    service().debug_trip_lock_order();
}

#[test]
fn canonical_order_never_trips() {
    let service = service();
    for round in 0..4u32 {
        let batch = (0..8u32)
            .map(|i| record(&service, round * 8 + i, &format!("record {round} {i}")))
            .collect();
        // Writer path: mutex first, epoch RwLock second (inside publish).
        let epoch = service.insert_batch(batch).expect("insert publishes an epoch");
        // Reader path: epoch guard alone, then lock-free queries.
        let probe = service
            .probe_record(&epoch, vec![Some(format!("record {round} 0"))])
            .expect("probe record matches the schema");
        let candidates = epoch.query(&probe).expect("query over the published epoch");
        assert!(
            candidates.contains(&RecordId(round * 8)),
            "the exact duplicate must be a candidate"
        );
    }
    assert_eq!(service.current().epoch(), 4);
}
