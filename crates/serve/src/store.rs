//! Append-only record storage shared across epochs.
//!
//! The candidate service keeps the full records around (scoring needs their
//! text; the protocol echoes them back), but an epoch publication must not
//! copy the corpus. [`RecordStore`] is a chunked append-only log: each write
//! batch seals one immutable [`Arc`]'d chunk, so cloning the store for a new
//! epoch copies only the chunk table — O(batches), never O(records) — and
//! all epochs share the record allocations.

use std::sync::Arc;

use sablock_datasets::{Record, RecordId};

use crate::error::{Result, ServeError};

/// An immutable-chunk record log with O(log chunks) id lookup and
/// O(chunks) clone (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct RecordStore {
    chunks: Vec<Arc<Vec<Record>>>,
    /// First record id of each chunk, ascending — the lookup index.
    starts: Vec<u32>,
    len: usize,
}

impl RecordStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of records appended so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one batch as a sealed chunk. The batch must continue the
    /// dense id space (`len(), len()+1, …`) — the same contract the
    /// incremental blocker enforces — so lookups stay a binary search plus
    /// an offset. Empty batches are accepted and store nothing.
    pub fn append(&mut self, batch: Vec<Record>) -> Result<()> {
        for (offset, record) in batch.iter().enumerate() {
            let expected = self.len + offset;
            if record.id().index() != expected {
                return Err(ServeError::Protocol(format!(
                    "record batch does not continue the dense id space: offset {offset} carries id {} but the \
                     store holds {} records",
                    record.id(),
                    self.len
                )));
            }
        }
        let Some(first) = batch.first().map(|record| record.id().0) else {
            return Ok(());
        };
        self.len += batch.len();
        self.starts.push(first);
        self.chunks.push(Arc::new(batch));
        Ok(())
    }

    /// The record with the given id, if it was appended.
    pub fn get(&self, id: RecordId) -> Option<&Record> {
        if id.index() >= self.len {
            return None;
        }
        // The last chunk whose first id is ≤ the probe id.
        let chunk = self.starts.partition_point(|&start| start <= id.0).checked_sub(1)?;
        let start = *self.starts.get(chunk)?;
        self.chunks.get(chunk)?.get(id.index() - start as usize)
    }

    /// Iterates all records in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Record> {
        self.chunks.iter().flat_map(|chunk| chunk.iter())
    }

    /// Number of sealed chunks (what a clone copies).
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sablock_datasets::Schema;

    fn record(schema: &Arc<Schema>, id: u32, title: &str) -> Record {
        Record::new(RecordId(id), Arc::clone(schema), vec![Some(title.to_string())]).unwrap()
    }

    #[test]
    fn chunked_append_and_lookup() {
        let schema = Schema::shared(["title"]).unwrap();
        let mut store = RecordStore::new();
        assert!(store.is_empty());
        assert!(store.get(RecordId(0)).is_none());

        store.append(vec![record(&schema, 0, "a"), record(&schema, 1, "b")]).unwrap();
        store.append(Vec::new()).unwrap();
        store.append(vec![record(&schema, 2, "c")]).unwrap();
        assert_eq!(store.len(), 3);
        assert_eq!(store.num_chunks(), 2, "empty batches seal no chunk");
        assert_eq!(store.get(RecordId(1)).unwrap().value("title"), Some("b"));
        assert_eq!(store.get(RecordId(2)).unwrap().value("title"), Some("c"));
        assert!(store.get(RecordId(3)).is_none());
        let titles: Vec<_> = store.iter().map(|r| r.value("title").unwrap().to_string()).collect();
        assert_eq!(titles, ["a", "b", "c"]);

        // Clones share chunks: cheap, and lookups agree.
        let clone = store.clone();
        assert_eq!(clone.get(RecordId(0)).unwrap().value("title"), Some("a"));

        // A gap in the id space is rejected.
        let err = store.append(vec![record(&schema, 5, "x")]).unwrap_err();
        assert!(matches!(err, ServeError::Protocol(_)));
        assert_eq!(store.len(), 3, "a rejected batch appends nothing");
    }
}
