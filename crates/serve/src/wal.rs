//! Write-ahead durability for the candidate service.
//!
//! A WAL directory makes the service's epoch sequence crash-safe: every
//! write batch is appended to a checksummed log *before* it is applied, and
//! recovery replays `snapshot + WAL suffix` to exactly the last batch whose
//! record survived on disk intact. The epoch contract extends across
//! restarts — after recovery, the published epoch equals the recovered
//! op-prefix length, the same `epoch ≡ applied-op-prefix` invariant the
//! in-memory service pins.
//!
//! # Directory layout
//!
//! ```text
//! wal-dir/
//!   snap-0000000000000000.snap   checkpoint snapshot covering 0 batches
//!   snap-0000000000000012.snap   checkpoint snapshot covering 12 batches
//!   wal-0000000000000012.log     segment whose first record is seq 12
//!   wal-0000000000000040.log     the active segment (first record seq 40)
//! ```
//!
//! Snapshots are ordinary [`persist`] files (same magic, version, and
//! checksum discipline), named by the number of batches they cover and
//! written atomically (temp + fsync + rename). Segments hold consecutive
//! batch records; a checkpoint rotates to a fresh segment and prunes
//! everything the new snapshot supersedes.
//!
//! # Segment format (version 1)
//!
//! All integers little-endian. A segment is a 28-byte header followed by
//! zero or more records:
//!
//! ```text
//! header:
//!   magic     8 bytes   b"SABLKWAL"
//!   version   u32       1
//!   base      u64       sequence number of the segment's first record
//!   checksum  u64       FNV-1a 64 over the preceding 20 bytes
//! record:
//!   seq       u64       global 0-based batch index (contiguous within a segment)
//!   len       u32       payload length in bytes
//!   payload   len bytes  the batch's ops (persist-format primitives)
//!   checksum  u64       FNV-1a 64 over seq ‖ len ‖ payload (all little-endian)
//! ```
//!
//! The payload is `u32` op count, then per op a `u8` tag: `0` = insert
//! (`u32` record count, then per record `u32` id, `u32` value count, and per
//! value a `u8` presence flag optionally followed by a string), `1` = remove
//! (`u32` id). Strings are `u32`-length-prefixed UTF-8, exactly as in the
//! snapshot format.
//!
//! # Recovery semantics
//!
//! [`recover`] adopts the newest parsable snapshot (corrupt ones are
//! counted and skipped, never trusted), then scans segments forward from
//! the last one starting at or before the snapshot's coverage. Records are
//! believed only while every check holds: header intact, sequence numbers
//! contiguous, length within bounds, checksum matching. The first failed
//! check is treated as the crash point — the tail from there on is
//! discarded (its byte count is reported) unless another segment begins at
//! exactly the expected sequence, which happens when an *earlier* recovery
//! already sealed this tear and rotated; then the scan continues there.
//! A segment beginning *beyond* the expected sequence is a gap — ops exist
//! past a hole — and surfaces as the typed [`ServeError::Recovery`], never
//! a silent skip. Recovery itself never panics on torn, truncated, or
//! bit-flipped files; the exhaustive kill-at-every-byte differential in
//! `tests/service_recovery.rs` drives this for every prefix of a real log.
//!
//! [`persist`]: crate::persist

use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::error::{Result, ServeError};
use crate::fault::FailpointPlan;
use crate::persist::{self, fnv1a64, SnapshotFile};

/// The 8-byte magic every WAL segment starts with.
pub const MAGIC: [u8; 8] = *b"SABLKWAL";

/// The segment format version this build reads and writes.
pub const VERSION: u32 = 1;

/// Segment header length in bytes: magic, version, base, header checksum.
const HEADER_BYTES: usize = 8 + 4 + 8 + 8;

/// Hard cap on a single record payload — a corrupted length field can never
/// drive a larger allocation.
pub const MAX_RECORD_BYTES: u32 = 64 * 1024 * 1024;

/// One durable write batch, the serializable mirror of
/// [`WriteOp`](crate::service::WriteOp) with record ids made explicit so
/// replay re-creates exactly the ids the writer assigned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoggedOp {
    /// Ingest these rows under these (dense) record ids.
    Insert(Vec<(u32, Vec<Option<String>>)>),
    /// Tombstone one record id.
    Remove(u32),
}

/// When the WAL calls `fsync` on its active segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// After every append — strongest durability, one fsync per batch.
    Always,
    /// After every `n` appends (clamped to at least 1). A crash can lose up
    /// to the last `n - 1` *acknowledged* batches, never more.
    EveryN(u64),
    /// Never — durability is left to the OS page cache (tests, bulk loads).
    Never,
}

/// Configuration for a [`Wal`] — fsync cadence, rotation threshold, and the
/// fault-injection plan (armed only in tests).
#[derive(Debug, Clone)]
pub struct WalOptions {
    /// When to fsync the active segment.
    pub fsync: FsyncPolicy,
    /// Rotate to a fresh segment once the active one exceeds this many
    /// bytes. Records are never split: a segment always ends on a record
    /// boundary, so this is a soft threshold.
    pub segment_bytes: u64,
    /// Deterministic fault injection for the write path.
    pub failpoints: FailpointPlan,
}

impl Default for WalOptions {
    fn default() -> Self {
        Self { fsync: FsyncPolicy::Always, segment_bytes: 8 * 1024 * 1024, failpoints: FailpointPlan::none() }
    }
}

/// An open write-ahead log: the active segment plus the counters that name
/// the next record and segment. Owned by the service's writer half; all
/// methods take `&mut self`.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    options: WalOptions,
    file: File,
    segment_base: u64,
    segment_len: u64,
    next_seq: u64,
    /// Lifetime bytes written across all segments — the failpoint clock.
    written_total: u64,
    fsyncs: u64,
    appends_since_sync: u64,
}

/// What [`recover`] found: the adopted snapshot (if any), the surviving
/// records past it, the re-opened log ready for appends, and the report.
#[derive(Debug)]
pub struct Recovered {
    /// The newest parsable checkpoint snapshot, if one existed.
    pub snapshot: Option<SnapshotFile>,
    /// The batches each surviving record carries, ascending and contiguous
    /// from the snapshot's coverage.
    pub records: Vec<(u64, Vec<LoggedOp>)>,
    /// The log, re-opened on a fresh segment at the recovered sequence.
    pub wal: Wal,
    /// What recovery saw and discarded.
    pub report: RecoveryReport,
}

/// Statistics from one recovery pass — surfaced to operators so silent
/// discards do not look like clean starts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Batches covered by the adopted snapshot (0 when none was adopted).
    pub snapshot_ops: u64,
    /// Snapshot files that failed to parse and were skipped.
    pub skipped_snapshots: u64,
    /// Surviving WAL records replayed past the snapshot.
    pub replayed_records: u64,
    /// Bytes of torn/corrupt tail discarded at the crash point.
    pub discarded_bytes: u64,
    /// The recovered sequence — the service's epoch after replay.
    pub recovered_seq: u64,
    /// Replayed batches the index rejected mid-batch (their applied prefix
    /// still counts, mirroring live `apply` semantics). Filled in by the
    /// service layer, not by [`recover`] itself.
    pub replay_rejected_batches: u64,
}

fn segment_path(dir: &Path, base: u64) -> PathBuf {
    dir.join(format!("wal-{base:016}.log"))
}

/// The checkpoint snapshot path covering `ops` batches, inside `dir`.
pub fn snapshot_path(dir: &Path, ops: u64) -> PathBuf {
    dir.join(format!("snap-{ops:016}.snap"))
}

/// Parses `wal-{base:016}.log` / `snap-{ops:016}.snap` names; anything else
/// (temp files, strays) is ignored by the directory scan.
fn parse_name(name: &str) -> Option<(FileKind, u64)> {
    let (kind, rest) = if let Some(rest) = name.strip_prefix("wal-") {
        (FileKind::Segment, rest.strip_suffix(".log")?)
    } else if let Some(rest) = name.strip_prefix("snap-") {
        (FileKind::Snapshot, rest.strip_suffix(".snap")?)
    } else {
        return None;
    };
    if rest.len() != 16 || !rest.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    rest.parse::<u64>().ok().map(|number| (kind, number))
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FileKind {
    Segment,
    Snapshot,
}

fn encode_header(base: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_BYTES);
    out.extend_from_slice(&MAGIC);
    persist::push_u32(&mut out, VERSION);
    persist::push_u64(&mut out, base);
    let checksum = fnv1a64(&out);
    persist::push_u64(&mut out, checksum);
    out
}

/// Encodes one batch's ops as a record payload (module docs for the layout).
pub(crate) fn encode_ops(ops: &[LoggedOp]) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    persist::push_len(&mut out, ops.len())?;
    for op in ops {
        match op {
            LoggedOp::Insert(rows) => {
                out.push(0);
                persist::push_len(&mut out, rows.len())?;
                for (id, values) in rows {
                    persist::push_u32(&mut out, *id);
                    persist::push_len(&mut out, values.len())?;
                    for value in values {
                        match value {
                            Some(text) => {
                                out.push(1);
                                persist::push_string(&mut out, text)?;
                            }
                            None => out.push(0),
                        }
                    }
                }
            }
            LoggedOp::Remove(id) => {
                out.push(1);
                persist::push_u32(&mut out, *id);
            }
        }
    }
    Ok(out)
}

/// Decodes a record payload back into its ops. The payload checksum has
/// already been verified; structural failures here still surface as typed
/// corruption, never a panic.
pub(crate) fn decode_ops(payload: &[u8]) -> Result<Vec<LoggedOp>> {
    let mut reader = persist::Reader::new(payload);
    let count = reader.count(1)?;
    let mut ops = Vec::with_capacity(count);
    for _ in 0..count {
        match reader.u8()? {
            0 => {
                let rows = reader.count(9)?;
                let mut records = Vec::with_capacity(rows);
                for _ in 0..rows {
                    let id = reader.u32()?;
                    let num_values = reader.count(1)?;
                    let mut values = Vec::with_capacity(num_values);
                    for _ in 0..num_values {
                        values.push(match reader.u8()? {
                            0 => None,
                            1 => Some(reader.string()?),
                            other => {
                                return Err(reader
                                    .corrupt(format!("value presence flag must be 0 or 1, got {other}")))
                            }
                        });
                    }
                    records.push((id, values));
                }
                ops.push(LoggedOp::Insert(records));
            }
            1 => ops.push(LoggedOp::Remove(reader.u32()?)),
            other => return Err(reader.corrupt(format!("op tag must be 0 or 1, got {other}"))),
        }
    }
    if !reader.done() {
        return Err(reader.corrupt("trailing bytes after the record's ops"));
    }
    Ok(ops)
}

fn encode_record(seq: u64, payload: &[u8]) -> Result<Vec<u8>> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&len| len <= MAX_RECORD_BYTES)
        .ok_or_else(|| {
            ServeError::Protocol(format!(
                "WAL record payload of {} bytes exceeds the {MAX_RECORD_BYTES}-byte record limit",
                payload.len()
            ))
        })?;
    let mut out = Vec::with_capacity(8 + 4 + payload.len() + 8);
    persist::push_u64(&mut out, seq);
    persist::push_u32(&mut out, len);
    out.extend_from_slice(payload);
    let checksum = fnv1a64(&out);
    persist::push_u64(&mut out, checksum);
    Ok(out)
}

impl Wal {
    /// Creates a fresh log in `dir` (created if missing) starting at
    /// sequence 0. Fails if a segment for sequence 0 already exists — use
    /// [`recover`] to adopt existing state.
    pub fn create(dir: &Path, options: WalOptions) -> Result<Self> {
        std::fs::create_dir_all(dir)?;
        let path = segment_path(dir, 0);
        if path.exists() {
            return Err(ServeError::Recovery(format!(
                "WAL directory {} already holds segments; open it with recovery instead of create",
                dir.display()
            )));
        }
        Self::open_segment(dir.to_path_buf(), options, 0, 0, 0, 0)
    }

    /// Opens a brand-new active segment at `base` (truncating any stray file
    /// of the same name — recovery only lands here when that file
    /// contributed nothing) and writes its header.
    fn open_segment(
        dir: PathBuf,
        options: WalOptions,
        base: u64,
        written_total: u64,
        fsyncs: u64,
        appends_since_sync: u64,
    ) -> Result<Self> {
        // sablock-lint: allow(durable-rename): the active segment is append-only and lives at its final name by design; recovery discards a torn tail instead of trusting a rename barrier
        let file = File::create(segment_path(&dir, base))?;
        persist::sync_parent_dir(&segment_path(&dir, base));
        let mut wal = Self {
            dir,
            options,
            file,
            segment_base: base,
            segment_len: 0,
            next_seq: base,
            written_total,
            fsyncs,
            appends_since_sync,
        };
        let header = encode_header(base);
        wal.write_bytes(&header)?;
        Ok(wal)
    }

    /// Appends one batch as a record, rotating to a fresh segment first if
    /// the active one is over the size threshold. Returns the sequence
    /// number the batch was logged under. With [`FsyncPolicy::Always`], the
    /// record is on disk when this returns `Ok`.
    ///
    /// On error the segment may hold a torn record; the caller must treat
    /// the log as unusable (poison its writer) and go through [`recover`].
    pub fn append(&mut self, ops: &[LoggedOp]) -> Result<u64> {
        let payload = encode_ops(ops)?;
        let record = encode_record(self.next_seq, &payload)?;
        // sablock-lint: allow(lossy-id-cast): byte lengths, not record ids — usize → u64 widens losslessly
        if self.segment_len > HEADER_BYTES as u64
            // sablock-lint: allow(lossy-id-cast): byte length of an encoded record, usize → u64 widens losslessly
            && self.segment_len.saturating_add(record.len() as u64) > self.options.segment_bytes
        {
            self.rotate(self.next_seq)?;
        }
        self.write_bytes(&record)?;
        self.appends_since_sync += 1;
        self.maybe_fsync()?;
        let seq = self.next_seq;
        self.next_seq += 1;
        Ok(seq)
    }

    /// Closes the active segment and opens a fresh one whose base is `seq`.
    fn rotate(&mut self, seq: u64) -> Result<()> {
        self.fsync()?;
        let replacement = Self::open_segment(
            self.dir.clone(),
            self.options.clone(),
            seq,
            self.written_total,
            self.fsyncs,
            self.appends_since_sync,
        )?;
        *self = replacement;
        self.next_seq = seq;
        Ok(())
    }

    /// Writes a buffer to the active segment through the failpoint plan:
    /// the allowed prefix really reaches the file before the injected error
    /// is returned, so tests observe honest torn tails.
    fn write_bytes(&mut self, bytes: &[u8]) -> Result<()> {
        let allowed = self.options.failpoints.allowed_write(self.written_total, bytes.len());
        // sablock-lint: allow(panic-reachability): FailpointPlan::allowed_write returns at most bytes.len(), so the slice is always in bounds
        self.file.write_all(&bytes[..allowed])?;
        self.written_total += allowed as u64;
        self.segment_len += allowed as u64;
        if allowed < bytes.len() {
            return Err(ServeError::Io(std::io::Error::other(format!(
                "injected write failure at WAL byte {}",
                self.written_total
            ))));
        }
        Ok(())
    }

    fn maybe_fsync(&mut self) -> Result<()> {
        let due = match self.options.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.appends_since_sync >= n.max(1),
            FsyncPolicy::Never => false,
        };
        if due {
            self.fsync()?;
        }
        Ok(())
    }

    fn fsync(&mut self) -> Result<()> {
        if self.appends_since_sync == 0 {
            return Ok(());
        }
        if !self.options.failpoints.allows_fsync(self.fsyncs) {
            return Err(ServeError::Io(std::io::Error::other(format!(
                "injected fsync failure (fsync #{})",
                self.fsyncs
            ))));
        }
        self.file.sync_all()?;
        self.fsyncs += 1;
        self.appends_since_sync = 0;
        Ok(())
    }

    /// Checkpoint bookkeeping: after the caller has atomically written the
    /// snapshot covering `seq` batches ([`snapshot_path`]), this rotates to
    /// a fresh segment based at `seq` and prunes every segment and snapshot
    /// the new snapshot supersedes. `seq` must equal [`Wal::next_seq`] — a
    /// checkpoint is an epoch boundary.
    pub fn checkpoint_rotate(&mut self, seq: u64) -> Result<()> {
        if seq != self.next_seq {
            return Err(ServeError::Protocol(format!(
                "checkpoint at sequence {seq} but the log is at {} — checkpoints must sit on the current epoch",
                self.next_seq
            )));
        }
        self.rotate(seq)?;
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let stale = match parse_name(name) {
                Some((FileKind::Segment, base)) => base < seq,
                Some((FileKind::Snapshot, ops)) => ops < seq,
                None => false,
            };
            if stale {
                // Best-effort: a surviving stale file costs disk, not
                // correctness — recovery adopts the newest snapshot anyway.
                let _ = std::fs::remove_file(entry.path());
            }
        }
        persist::sync_parent_dir(&segment_path(&self.dir, seq));
        Ok(())
    }

    /// The sequence number the next appended batch will be logged under.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The active segment's base sequence and current byte length — the
    /// `wal <base>:<bytes>` pair `STATS` reports.
    pub fn position(&self) -> (u64, u64) {
        (self.segment_base, self.segment_len)
    }

    /// The log's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// One parsed segment scan: surviving records, where the scan stopped, and
/// why.
struct SegmentScan {
    records: Vec<(u64, Vec<LoggedOp>)>,
    /// The sequence the next record was expected to carry.
    expected_seq: u64,
    /// Bytes from the failure point to the end of the file (0 on a clean
    /// end).
    torn_bytes: u64,
    /// Whether the segment ended cleanly on a record boundary.
    clean: bool,
}

/// Scans one segment's bytes: header first, then records while every check
/// holds (module docs). `min_seq` drops records the snapshot already covers
/// without re-decoding their payloads.
fn scan_segment(bytes: &[u8], expected_base: u64, min_seq: u64) -> Result<SegmentScan> {
    let failed = |pos: usize, expected_seq: u64, records: Vec<(u64, Vec<LoggedOp>)>| SegmentScan {
        records,
        expected_seq,
        // sablock-lint: allow(lossy-id-cast): a byte count, not a record id — usize → u64 widens losslessly
        torn_bytes: (bytes.len() - pos) as u64,
        clean: false,
    };
    // Header checks: a bad header means nothing in the file is believable.
    if bytes.len() < HEADER_BYTES
        || bytes[..8] != MAGIC
        || u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) != VERSION
    {
        return Ok(failed(0, expected_base, Vec::new()));
    }
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&bytes[12..20]);
    let base = u64::from_le_bytes(raw);
    raw.copy_from_slice(&bytes[20..28]);
    let stored = u64::from_le_bytes(raw);
    if fnv1a64(&bytes[..20]) != stored || base != expected_base {
        return Ok(failed(0, expected_base, Vec::new()));
    }

    let mut records = Vec::new();
    let mut expected_seq = base;
    let mut pos = HEADER_BYTES;
    while pos < bytes.len() {
        let start = pos;
        if bytes.len() - pos < 12 {
            return Ok(failed(start, expected_seq, records));
        }
        raw.copy_from_slice(&bytes[pos..pos + 8]);
        let seq = u64::from_le_bytes(raw);
        let len = u32::from_le_bytes([bytes[pos + 8], bytes[pos + 9], bytes[pos + 10], bytes[pos + 11]]);
        pos += 12;
        if seq != expected_seq || len > MAX_RECORD_BYTES || bytes.len() - pos < len as usize + 8 {
            return Ok(failed(start, expected_seq, records));
        }
        let payload = &bytes[pos..pos + len as usize];
        pos += len as usize;
        raw.copy_from_slice(&bytes[pos..pos + 8]);
        let stored = u64::from_le_bytes(raw);
        pos += 8;
        if fnv1a64(&bytes[start..start + 12 + len as usize]) != stored {
            return Ok(failed(start, expected_seq, records));
        }
        if seq >= min_seq {
            // The checksum held, so a decode failure is not a torn tail —
            // but recovery still treats it as the crash point rather than
            // guessing at the writer's intent.
            match decode_ops(payload) {
                Ok(ops) => records.push((seq, ops)),
                Err(_) => return Ok(failed(start, expected_seq, records)),
            }
        }
        expected_seq += 1;
    }
    Ok(SegmentScan { records, expected_seq, torn_bytes: 0, clean: true })
}

/// Recovers a WAL directory (module docs for the full semantics): adopt the
/// newest parsable snapshot, replay the surviving contiguous record suffix,
/// discard the torn tail, and re-open the log on a fresh segment at the
/// recovered sequence. Creates the directory (empty log) if it is missing.
pub fn recover(dir: &Path, options: WalOptions) -> Result<Recovered> {
    std::fs::create_dir_all(dir)?;
    let mut segments: Vec<u64> = Vec::new();
    let mut snapshots: Vec<u64> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        match parse_name(name) {
            Some((FileKind::Segment, base)) => segments.push(base),
            Some((FileKind::Snapshot, ops)) => snapshots.push(ops),
            None => {}
        }
    }
    segments.sort_unstable();
    snapshots.sort_unstable();

    let mut report = RecoveryReport::default();
    let mut snapshot: Option<SnapshotFile> = None;
    for &ops in snapshots.iter().rev() {
        match persist::read_from_path(&snapshot_path(dir, ops)) {
            Ok(parsed) => {
                snapshot = Some(parsed);
                report.snapshot_ops = ops;
                break;
            }
            Err(_) => report.skipped_snapshots += 1,
        }
    }
    let base_ops = report.snapshot_ops;

    // The scan starts at the last segment whose base is ≤ the snapshot's
    // coverage; earlier segments are fully superseded.
    let start = segments.iter().rposition(|&base| base <= base_ops);
    if start.is_none() {
        if let Some(&first) = segments.first() {
            return Err(ServeError::Recovery(format!(
                "no segment covers batch {base_ops} (the adopted snapshot's edge) but segment \
                 wal-{first:016}.log holds later batches — the log has a hole"
            )));
        }
    }

    let mut records: Vec<(u64, Vec<LoggedOp>)> = Vec::new();
    let mut recovered_seq = base_ops;
    if let Some(start) = start {
        let mut index = start;
        loop {
            let base = segments[index];
            let bytes = std::fs::read(segment_path(dir, base))?;
            let scan = scan_segment(&bytes, base, base_ops)?;
            records.extend(scan.records);
            recovered_seq = scan.expected_seq.max(base_ops);
            if scan.clean {
                // Clean end: the next segment must continue exactly here.
                match segments.get(index + 1) {
                    Some(&next) if next == scan.expected_seq => index += 1,
                    Some(&next) => {
                        return Err(ServeError::Recovery(format!(
                            "segment wal-{base:016}.log ends at batch {} but the next segment starts at \
                             {next} — the log has a hole",
                            scan.expected_seq
                        )));
                    }
                    None => break,
                }
            } else {
                // A tear. If a later segment begins exactly at the expected
                // sequence, an earlier recovery already sealed this tear and
                // rotated past it — continue there. Otherwise this is the
                // crash point: discard the tail and stop.
                match segments[index + 1..].iter().position(|&next| next == scan.expected_seq) {
                    Some(offset) => index += 1 + offset,
                    None => {
                        report.discarded_bytes += scan.torn_bytes;
                        break;
                    }
                }
            }
        }
    }

    // sablock-lint: allow(lossy-id-cast): a replay tally, not a record id — usize → u64 widens losslessly
    report.replayed_records = records.len() as u64;
    report.recovered_seq = recovered_seq;
    let wal = Wal::open_segment(dir.to_path_buf(), options, recovered_seq, 0, 0, 0)?;
    Ok(Recovered { snapshot, records, wal, report })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sablock-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_ops(tag: u32) -> Vec<LoggedOp> {
        vec![
            LoggedOp::Insert(vec![
                (tag * 2, vec![Some(format!("record {tag}")), None]),
                (tag * 2 + 1, vec![None, Some("x".into())]),
            ]),
            LoggedOp::Remove(tag),
        ]
    }

    #[test]
    fn ops_round_trip_through_the_payload_format() {
        let ops = sample_ops(3);
        let payload = encode_ops(&ops).unwrap();
        assert_eq!(decode_ops(&payload).unwrap(), ops);
        let empty = encode_ops(&[]).unwrap();
        assert_eq!(decode_ops(&empty).unwrap(), Vec::<LoggedOp>::new());
        // Structural garbage decodes to a typed error, never a panic.
        assert!(decode_ops(&[9, 9, 9]).is_err());
        let mut bad_tag = encode_ops(&[LoggedOp::Remove(1)]).unwrap();
        bad_tag[4] = 7;
        assert!(decode_ops(&bad_tag).is_err());
    }

    #[test]
    fn append_then_recover_replays_every_record() {
        let dir = temp_dir("round-trip");
        let mut wal = Wal::create(&dir, WalOptions::default()).unwrap();
        for tag in 0..5u32 {
            assert_eq!(wal.append(&sample_ops(tag)).unwrap(), u64::from(tag));
        }
        assert_eq!(wal.next_seq(), 5);
        drop(wal);

        let recovered = recover(&dir, WalOptions::default()).unwrap();
        assert!(recovered.snapshot.is_none());
        assert_eq!(recovered.report.recovered_seq, 5);
        assert_eq!(recovered.report.replayed_records, 5);
        assert_eq!(recovered.report.discarded_bytes, 0);
        assert_eq!(recovered.records.len(), 5);
        for (tag, (seq, ops)) in recovered.records.iter().enumerate() {
            assert_eq!(*seq, tag as u64);
            assert_eq!(*ops, sample_ops(tag as u32));
        }
        // The re-opened log continues the sequence.
        let mut wal = recovered.wal;
        assert_eq!(wal.append(&sample_ops(9)).unwrap(), 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tails_are_discarded_at_every_truncation_point() {
        let dir = temp_dir("torn");
        let mut wal = Wal::create(&dir, WalOptions::default()).unwrap();
        for tag in 0..3u32 {
            wal.append(&sample_ops(tag)).unwrap();
        }
        drop(wal);
        let path = segment_path(&dir, 0);
        let full = std::fs::read(&path).unwrap();

        for keep in 0..full.len() {
            std::fs::write(&path, &full[..keep]).unwrap();
            let recovered = recover(&dir, WalOptions::default()).unwrap();
            // Every record either survives whole or is discarded whole.
            assert!(recovered.report.recovered_seq <= 3);
            assert_eq!(recovered.records.len() as u64, recovered.report.recovered_seq);
            for (tag, (seq, ops)) in recovered.records.iter().enumerate() {
                assert_eq!(*seq, tag as u64);
                assert_eq!(*ops, sample_ops(tag as u32));
            }
            // Recovery rotated to a fresh segment; remove it so the next
            // truncation sees only the original.
            let fresh = segment_path(&dir, recovered.report.recovered_seq);
            if fresh != path {
                std::fs::remove_file(fresh).unwrap();
            }
        }
        // The full file recovers everything.
        std::fs::write(&path, &full).unwrap();
        let recovered = recover(&dir, WalOptions::default()).unwrap();
        assert_eq!(recovered.report.recovered_seq, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flips_never_leak_corrupt_records() {
        let dir = temp_dir("flip");
        let mut wal = Wal::create(&dir, WalOptions::default()).unwrap();
        for tag in 0..2u32 {
            wal.append(&sample_ops(tag)).unwrap();
        }
        drop(wal);
        let path = segment_path(&dir, 0);
        let full = std::fs::read(&path).unwrap();

        for position in 0..full.len() {
            let mut flipped = full.clone();
            flipped[position] ^= 0x40;
            std::fs::write(&path, &flipped).unwrap();
            let recovered = recover(&dir, WalOptions::default()).unwrap();
            // Whatever survives must be a verbatim prefix of what was logged.
            for (tag, (seq, ops)) in recovered.records.iter().enumerate() {
                assert_eq!(*seq, tag as u64);
                assert_eq!(*ops, sample_ops(tag as u32), "corrupt record leaked at flip {position}");
            }
            let fresh = segment_path(&dir, recovered.report.recovered_seq);
            if fresh != path {
                std::fs::remove_file(fresh).unwrap();
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_splits_segments_on_record_boundaries() {
        let dir = temp_dir("rotate");
        let options = WalOptions { segment_bytes: 64, ..WalOptions::default() };
        let mut wal = Wal::create(&dir, options.clone()).unwrap();
        for tag in 0..6u32 {
            wal.append(&sample_ops(tag)).unwrap();
        }
        drop(wal);
        let segments: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|entry| parse_name(entry.unwrap().file_name().to_str().unwrap()))
            .filter(|(kind, _)| *kind == FileKind::Segment)
            .collect();
        assert!(segments.len() > 1, "a 64-byte threshold must force rotation");

        let recovered = recover(&dir, options).unwrap();
        assert_eq!(recovered.report.recovered_seq, 6);
        assert_eq!(recovered.records.len(), 6);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_write_failures_leave_recoverable_prefixes() {
        let dir = temp_dir("failpoint");
        // First pass, unfaulted, to learn the full byte extent.
        let mut wal = Wal::create(&dir, WalOptions::default()).unwrap();
        for tag in 0..3u32 {
            wal.append(&sample_ops(tag)).unwrap();
        }
        let (_, extent) = wal.position();
        drop(wal);
        std::fs::remove_dir_all(&dir).unwrap();

        for kill in 0..extent {
            let options = WalOptions { failpoints: FailpointPlan::kill_at_byte(kill), ..WalOptions::default() };
            let mut wal = match Wal::create(&dir, options) {
                Ok(wal) => wal,
                Err(_) => {
                    // The header write itself was killed; recovery of the
                    // (possibly headerless) directory must still work.
                    let recovered = recover(&dir, WalOptions::default()).unwrap();
                    assert_eq!(recovered.report.recovered_seq, 0);
                    std::fs::remove_dir_all(&dir).unwrap();
                    continue;
                }
            };
            let mut acked = 0u64;
            for tag in 0..3u32 {
                match wal.append(&sample_ops(tag)) {
                    Ok(_) => acked += 1,
                    Err(_) => break,
                }
            }
            drop(wal);
            let recovered = recover(&dir, WalOptions::default()).unwrap();
            let seq = recovered.report.recovered_seq;
            assert!(seq >= acked, "kill at byte {kill}: acked {acked} batches but recovered only {seq}");
            for (tag, (got, ops)) in recovered.records.iter().enumerate() {
                assert_eq!(*got, tag as u64);
                assert_eq!(*ops, sample_ops(tag as u32));
            }
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn checkpoints_prune_superseded_files_and_gaps_are_typed_errors() {
        let dir = temp_dir("checkpoint");
        let mut wal = Wal::create(&dir, WalOptions::default()).unwrap();
        for tag in 0..4u32 {
            wal.append(&sample_ops(tag)).unwrap();
        }
        // A checkpoint off the current epoch is refused.
        assert!(wal.checkpoint_rotate(2).is_err());
        // Pretend a snapshot covering 4 batches was written, then rotate.
        std::fs::write(snapshot_path(&dir, 4), b"placeholder").unwrap();
        wal.checkpoint_rotate(4).unwrap();
        wal.append(&sample_ops(9)).unwrap();
        drop(wal);
        assert!(!segment_path(&dir, 0).exists(), "the superseded segment was pruned");
        assert!(segment_path(&dir, 4).exists());

        // The placeholder snapshot is unparsable → skipped, but then batch
        // 0..4 only exist as a hole in the log: a typed gap error.
        let error = recover(&dir, WalOptions::default()).unwrap_err();
        assert!(matches!(error, ServeError::Recovery(_)), "{error}");

        // With a parsable state the pruned prefix is fine: simulate by
        // removing the bogus snapshot and re-basing expectations — recovery
        // from an explicit later snapshot is exercised end-to-end in
        // tests/service_recovery.rs with real snapshots.
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_refuses_a_dirty_directory_and_fsync_failpoints_fire() {
        let dir = temp_dir("dirty");
        let options =
            WalOptions { fsync: FsyncPolicy::Always, failpoints: FailpointPlan::fail_fsyncs_from(0), ..WalOptions::default() };
        let mut wal = Wal::create(&dir, options).unwrap();
        assert!(wal.append(&sample_ops(0)).is_err(), "the first fsync is injected to fail");
        drop(wal);
        assert!(Wal::create(&dir, WalOptions::default()).is_err(), "segments already exist");
        // EveryN batches fsyncs: 3 appends under EveryN(2) → 1 fsync.
        std::fs::remove_dir_all(&dir).unwrap();
        let mut wal = Wal::create(&dir, WalOptions { fsync: FsyncPolicy::EveryN(2), ..WalOptions::default() })
            .unwrap();
        for tag in 0..3u32 {
            wal.append(&sample_ops(tag)).unwrap();
        }
        assert_eq!(wal.fsyncs, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
