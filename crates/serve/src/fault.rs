//! Deterministic fault injection for the durability layer.
//!
//! A [`FailpointPlan`] is a *value*, constructed by the caller and threaded
//! through [`WalOptions`](crate::wal::WalOptions) into every write the WAL
//! performs — no global registry, no environment variables, no
//! thread-locals. Tests build one plan per scenario (e.g. "kill the very
//! first write after byte 173") and the same plan always produces the same
//! torn file, which is what makes the exhaustive
//! kill-at-every-byte-offset recovery differential in
//! `tests/service_recovery.rs` possible.
//!
//! The plan simulates a crash *honestly*: when a write trips the byte
//! failpoint, the allowed prefix of the buffer is still written to the real
//! file before the error is returned, so the on-disk state afterwards is
//! exactly what a power cut mid-`write(2)` leaves behind — a torn record the
//! recovery path must detect and discard.

/// A deterministic schedule of injected I/O faults (see the module docs).
///
/// The default plan ([`FailpointPlan::none`]) injects nothing and costs one
/// branch per write.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FailpointPlan {
    kill_at_byte: Option<u64>,
    fail_fsyncs_from: Option<u64>,
}

impl FailpointPlan {
    /// A plan that never fires.
    pub const fn none() -> Self {
        Self { kill_at_byte: None, fail_fsyncs_from: None }
    }

    /// Kills the write that would produce the `offset`-th byte (0-based,
    /// counted over the WAL's whole lifetime, across segment rotations):
    /// bytes before `offset` are written, the rest of that buffer is not,
    /// and the write returns an I/O error.
    pub const fn kill_at_byte(offset: u64) -> Self {
        Self { kill_at_byte: Some(offset), fail_fsyncs_from: None }
    }

    /// Fails every fsync from the `count`-th one on (0-based): `0` fails the
    /// first fsync already, `2` lets two succeed first.
    pub const fn fail_fsyncs_from(count: u64) -> Self {
        Self { kill_at_byte: None, fail_fsyncs_from: Some(count) }
    }

    /// A seeded plan killing one write at a pseudo-random byte offset in
    /// `[0, horizon)` — SplitMix64 over the seed, so the same seed always
    /// picks the same offset and a seed sweep covers the space without any
    /// global RNG state.
    pub fn seeded_kill(seed: u64, horizon: u64) -> Self {
        if horizon == 0 {
            return Self::none();
        }
        Self::kill_at_byte(splitmix64(seed) % horizon)
    }

    /// Whether this plan can fire at all.
    pub fn is_armed(&self) -> bool {
        self.kill_at_byte.is_some() || self.fail_fsyncs_from.is_some()
    }

    /// The byte offset the kill failpoint is armed at, if any.
    pub fn kill_offset(&self) -> Option<u64> {
        self.kill_at_byte
    }

    /// How many bytes of a `len`-byte write starting at lifetime offset
    /// `written_before` are allowed through. Equal to `len` when the plan
    /// does not fire inside the buffer.
    pub(crate) fn allowed_write(&self, written_before: u64, len: usize) -> usize {
        match self.kill_at_byte {
            Some(kill) if kill < written_before.saturating_add(len as u64) => {
                usize::try_from(kill.saturating_sub(written_before)).unwrap_or(len)
            }
            _ => len,
        }
    }

    /// Whether the `fsyncs_before`-th fsync (0-based) is allowed to succeed.
    pub(crate) fn allows_fsync(&self, fsyncs_before: u64) -> bool {
        match self.fail_fsyncs_from {
            Some(from) => fsyncs_before < from,
            None => true,
        }
    }
}

/// SplitMix64 — the tiny, well-mixed step function used to derive seeded
/// failpoint offsets without touching any RNG machinery.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_plans_allow_everything() {
        let plan = FailpointPlan::none();
        assert!(!plan.is_armed());
        assert_eq!(plan.allowed_write(0, 100), 100);
        assert_eq!(plan.allowed_write(u64::MAX - 10, 100), 100);
        assert!(plan.allows_fsync(0));
        assert!(plan.allows_fsync(u64::MAX));
        assert_eq!(FailpointPlan::default(), plan);
    }

    #[test]
    fn kill_at_byte_truncates_the_crossing_write() {
        let plan = FailpointPlan::kill_at_byte(10);
        assert!(plan.is_armed());
        assert_eq!(plan.kill_offset(), Some(10));
        // Entirely before the failpoint: untouched.
        assert_eq!(plan.allowed_write(0, 10), 10);
        // Crossing it: only the prefix up to the failpoint goes through.
        assert_eq!(plan.allowed_write(0, 11), 10);
        assert_eq!(plan.allowed_write(8, 5), 2);
        // At or past it: nothing goes through.
        assert_eq!(plan.allowed_write(10, 4), 0);
        assert_eq!(plan.allowed_write(12, 4), 0);
        // Byte zero kills the first write outright.
        assert_eq!(FailpointPlan::kill_at_byte(0).allowed_write(0, 7), 0);
    }

    #[test]
    fn fsync_failpoints_count_zero_based() {
        let plan = FailpointPlan::fail_fsyncs_from(2);
        assert!(plan.allows_fsync(0));
        assert!(plan.allows_fsync(1));
        assert!(!plan.allows_fsync(2));
        assert!(!plan.allows_fsync(99));
        assert!(!FailpointPlan::fail_fsyncs_from(0).allows_fsync(0));
    }

    #[test]
    fn seeded_kills_are_deterministic_and_in_range() {
        for seed in 0..64u64 {
            let plan = FailpointPlan::seeded_kill(seed, 1000);
            assert_eq!(plan, FailpointPlan::seeded_kill(seed, 1000), "seed {seed} must be stable");
            let offset = plan.kill_offset().unwrap();
            assert!(offset < 1000, "seed {seed} picked {offset}");
        }
        assert!(!FailpointPlan::seeded_kill(7, 0).is_armed(), "an empty horizon disarms the plan");
    }
}
