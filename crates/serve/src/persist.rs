//! Versioned, checksummed binary snapshots of a service's index state.
//!
//! # File format (version 1)
//!
//! All integers little-endian. The file is:
//!
//! ```text
//! magic      8 bytes   b"SABLKSNP"
//! version    u32       1
//! name       string    index configuration fingerprint (IncrementalBlocker::name)
//! schema     u32 count, then that many strings (attribute names)
//! body       see below
//! checksum   u64       FNV-1a 64 over every preceding byte of the file
//! ```
//!
//! where `string` is a `u32` byte length followed by that many UTF-8 bytes,
//! and the body is:
//!
//! ```text
//! records    u32                     ingested id space (next record id)
//! removed    ⌈records/8⌉ bytes       tombstone bitset, LSB-first
//! entities   u32 count, u32 each     entity annotations (dense prefix)
//! running    u64 pairs, u64 tps      running |Γ| / |Γ_tp|
//! batches    u64                     batches ingested
//! compactions u64                    bucket compactions performed
//! threshold  u64                     compaction threshold (f64 bits)
//! bands      u32 count, per band:
//!   buckets  u32 count, per bucket (ascending key order):
//!     key    u64 textual, u64 semantic sub-key
//!     dead   u32
//!     members u32 count, u32 each    record ids, ascending
//! rows       per record (records of them), per schema attribute:
//!   present  u8 (0 | 1); if 1: string value
//! ```
//!
//! Decoding is fully defensive: every length is bounds-checked against the
//! bytes actually remaining before any allocation, strings are UTF-8
//! validated, and the trailing checksum is verified *before* the body is
//! parsed — truncations and bit flips surface as
//! [`ServeError::ChecksumMismatch`], structural nonsense as
//! [`ServeError::Corrupt`], never as a panic. Semantic validation (member
//! ordering, tombstone accounting) happens later, in
//! [`IncrementalSaLshBlocker::restore`](sablock_core::incremental::IncrementalSaLshBlocker::restore).

use std::path::Path;

use sablock_core::incremental::{BucketDump, IndexDump, RunningCounts};
use sablock_datasets::{RecordId, Schema};

use crate::error::{Result, ServeError};
use crate::store::RecordStore;

/// The 8-byte magic every snapshot starts with.
pub const MAGIC: [u8; 8] = *b"SABLKSNP";

/// The snapshot format version this build reads and writes.
pub const VERSION: u32 = 1;

/// A decoded snapshot file: configuration fingerprint, schema attribute
/// names, the index state dump, and the raw record rows.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotFile {
    /// The fingerprint of the index configuration that wrote the snapshot.
    pub name: String,
    /// The schema attribute names of the stored records.
    pub attributes: Vec<String>,
    /// The index runtime state.
    pub dump: IndexDump,
    /// The stored records' values, dense by record id.
    pub rows: Vec<Vec<Option<String>>>,
}

/// FNV-1a 64 over a byte slice — dependency-free corruption detection (not
/// cryptographic; a snapshot is trusted-origin, checksummed against rot).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

pub(crate) fn push_u32(out: &mut Vec<u8>, value: u32) {
    out.extend_from_slice(&value.to_le_bytes());
}

pub(crate) fn push_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_le_bytes());
}

pub(crate) fn push_len(out: &mut Vec<u8>, len: usize) -> Result<()> {
    let len = u32::try_from(len)
        .map_err(|_| ServeError::Protocol(format!("length {len} exceeds the u32 snapshot format limit")))?;
    push_u32(out, len);
    Ok(())
}

pub(crate) fn push_string(out: &mut Vec<u8>, text: &str) -> Result<()> {
    push_len(out, text.len())?;
    out.extend_from_slice(text.as_bytes());
    Ok(())
}

/// Encodes a snapshot to bytes (see the module docs for the layout).
pub fn to_bytes(name: &str, schema: &Schema, dump: &IndexDump, store: &RecordStore) -> Result<Vec<u8>> {
    let records = dump.removed.len();
    if store.len() != records {
        return Err(ServeError::Protocol(format!(
            "record log holds {} records but the index covers {records} — refusing to write a torn snapshot",
            store.len()
        )));
    }
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    push_u32(&mut out, VERSION);
    push_string(&mut out, name)?;
    push_len(&mut out, schema.names().len())?;
    for attribute in schema.names() {
        push_string(&mut out, attribute)?;
    }

    push_len(&mut out, records)?;
    for flags in dump.removed.chunks(8) {
        let byte = flags
            .iter()
            .enumerate()
            .fold(0u8, |acc, (bit, &removed)| if removed { acc | (1 << bit) } else { acc });
        out.push(byte);
    }
    push_len(&mut out, dump.entity_of.len())?;
    for entity in &dump.entity_of {
        push_u32(&mut out, entity.0);
    }
    push_u64(&mut out, dump.running.pairs);
    push_u64(&mut out, dump.running.true_positives);
    push_u64(&mut out, dump.batches_ingested);
    push_u64(&mut out, dump.compactions);
    push_u64(&mut out, dump.compaction_threshold.to_bits());
    push_len(&mut out, dump.bands.len())?;
    for band in &dump.bands {
        push_len(&mut out, band.len())?;
        for bucket in band {
            push_u64(&mut out, bucket.key.0);
            push_u64(&mut out, bucket.key.1);
            push_u32(&mut out, bucket.dead);
            push_len(&mut out, bucket.members.len())?;
            for member in &bucket.members {
                push_u32(&mut out, member.0);
            }
        }
    }
    for record in store.iter() {
        for value in record.values() {
            match value {
                Some(text) => {
                    out.push(1);
                    push_string(&mut out, text)?;
                }
                None => out.push(0),
            }
        }
    }

    let checksum = fnv1a64(&out);
    push_u64(&mut out, checksum);
    Ok(out)
}

/// A bounds-checked cursor over snapshot bytes. Every read either returns
/// data that is really there or a typed [`ServeError::Corrupt`]. Shared with
/// the WAL module (`wal.rs`), whose record payloads reuse this format's
/// primitives.
pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A cursor over `bytes` starting at offset 0.
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    pub(crate) fn corrupt(&self, reason: impl Into<String>) -> ServeError {
        ServeError::Corrupt { offset: self.pos, reason: reason.into() }
    }

    pub(crate) fn take(&mut self, count: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(count)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| self.corrupt(format!("{count} bytes claimed but the file ends")))?;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.corrupt(format!("{count} bytes claimed but the file ends")))?;
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8> {
        let bytes = self.take(1)?;
        bytes.first().copied().ok_or_else(|| self.corrupt("1 byte claimed but the file ends"))
    }

    pub(crate) fn u32(&mut self) -> Result<u32> {
        let bytes = self.take(4)?;
        let raw: [u8; 4] =
            bytes.try_into().map_err(|_| self.corrupt("4 bytes claimed but the file ends"))?;
        Ok(u32::from_le_bytes(raw))
    }

    pub(crate) fn u64(&mut self) -> Result<u64> {
        let bytes = self.take(8)?;
        let raw: [u8; 8] =
            bytes.try_into().map_err(|_| self.corrupt("8 bytes claimed but the file ends"))?;
        Ok(u64::from_le_bytes(raw))
    }

    /// Reads a `u32` count and sanity-checks it against the bytes remaining
    /// (each counted item occupies at least `floor` bytes), so a corrupted
    /// count cannot drive a pathological allocation.
    pub(crate) fn count(&mut self, floor: usize) -> Result<usize> {
        let claimed = self.u32()? as usize;
        let remaining = self.bytes.len() - self.pos;
        if claimed.checked_mul(floor.max(1)).map_or(true, |need| need > remaining) {
            return Err(self.corrupt(format!("count {claimed} cannot fit in the {remaining} bytes left")));
        }
        Ok(claimed)
    }

    pub(crate) fn string(&mut self) -> Result<String> {
        let len = self.count(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.corrupt("string is not valid UTF-8"))
    }

    pub(crate) fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

/// Decodes snapshot bytes (see the module docs for the check order: magic,
/// checksum, version, then structure).
pub fn from_bytes(bytes: &[u8]) -> Result<SnapshotFile> {
    if bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC {
        return Err(ServeError::BadMagic);
    }
    // Verify the trailing checksum before believing any length field: a
    // truncated or bit-flipped file fails here with the honest error.
    let body_end = bytes.len().checked_sub(8).filter(|&end| end >= MAGIC.len() + 4).ok_or(
        ServeError::Corrupt { offset: bytes.len(), reason: "file too short to carry a checksum".into() },
    )?;
    let mut stored = [0u8; 8];
    stored.copy_from_slice(&bytes[body_end..]);
    let expected = u64::from_le_bytes(stored);
    let found = fnv1a64(&bytes[..body_end]);
    if expected != found {
        return Err(ServeError::ChecksumMismatch { expected, found });
    }

    let mut reader = Reader::new(&bytes[..body_end]);
    reader.take(MAGIC.len())?;
    let version = reader.u32()?;
    if version != VERSION {
        return Err(ServeError::UnsupportedVersion { found: version, supported: VERSION });
    }
    let name = reader.string()?;
    let num_attributes = reader.count(4)?;
    let mut attributes = Vec::with_capacity(num_attributes);
    for _ in 0..num_attributes {
        attributes.push(reader.string()?);
    }

    let records = reader.count(0)?;
    let bitset = reader.take(records.div_ceil(8))?;
    let mut removed = Vec::with_capacity(records);
    for index in 0..records {
        removed.push(bitset[index / 8] & (1 << (index % 8)) != 0);
    }
    let num_entities = reader.count(4)?;
    let mut entity_of = Vec::with_capacity(num_entities);
    for _ in 0..num_entities {
        entity_of.push(sablock_datasets::EntityId(reader.u32()?));
    }
    let running = RunningCounts { pairs: reader.u64()?, true_positives: reader.u64()? };
    let batches_ingested = reader.u64()?;
    let compactions = reader.u64()?;
    let compaction_threshold = f64::from_bits(reader.u64()?);
    let num_bands = reader.count(4)?;
    let mut bands = Vec::with_capacity(num_bands);
    for _ in 0..num_bands {
        let num_buckets = reader.count(24)?;
        let mut buckets = Vec::with_capacity(num_buckets);
        for _ in 0..num_buckets {
            let key = (reader.u64()?, reader.u64()?);
            let dead = reader.u32()?;
            let num_members = reader.count(4)?;
            let mut members = Vec::with_capacity(num_members);
            for _ in 0..num_members {
                members.push(RecordId(reader.u32()?));
            }
            buckets.push(BucketDump { key, members, dead });
        }
        bands.push(buckets);
    }
    let mut rows = Vec::with_capacity(records);
    for _ in 0..records {
        let mut values = Vec::with_capacity(attributes.len());
        for _ in 0..attributes.len() {
            values.push(match reader.u8()? {
                0 => None,
                1 => Some(reader.string()?),
                other => return Err(reader.corrupt(format!("value presence flag must be 0 or 1, got {other}"))),
            });
        }
        rows.push(values);
    }
    if !reader.done() {
        return Err(reader.corrupt("trailing bytes after the snapshot body"));
    }

    let dump = IndexDump {
        bands,
        removed,
        entity_of,
        running,
        batches_ingested,
        compactions,
        compaction_threshold,
    };
    Ok(SnapshotFile { name, attributes, dump, rows })
}

/// Encodes and writes a snapshot file *atomically*: the bytes go to a
/// sibling `.tmp` file which is fsynced and then renamed over the target, so
/// a crash mid-write can leave a stale snapshot or a stray temp file but
/// never a torn one under the target name. The containing directory is
/// fsynced best-effort to persist the rename itself.
pub fn save_to_path(path: &Path, name: &str, schema: &Schema, dump: &IndexDump, store: &RecordStore) -> Result<()> {
    let bytes = to_bytes(name, schema, dump, store)?;
    write_atomically(path, &bytes)
}

/// The temp-write/fsync/rename discipline behind [`save_to_path`], shared
/// with the WAL module's checkpoint snapshots.
pub(crate) fn write_atomically(path: &Path, bytes: &[u8]) -> Result<()> {
    let mut tmp = path.to_path_buf();
    let file_name = tmp
        .file_name()
        .map(|name| name.to_string_lossy().into_owned())
        .unwrap_or_else(|| "snapshot".to_string());
    tmp.set_file_name(format!("{file_name}.tmp"));
    {
        use std::io::Write;
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    sync_parent_dir(path);
    Ok(())
}

/// Best-effort fsync of the directory containing `path`, persisting renames
/// and creations. Failures are ignored: not every filesystem supports
/// opening directories, and the rename itself already succeeded.
pub(crate) fn sync_parent_dir(path: &Path) {
    if let Some(parent) = path.parent() {
        let dir = if parent.as_os_str().is_empty() { Path::new(".") } else { parent };
        if let Ok(handle) = std::fs::File::open(dir) {
            let _ = handle.sync_all();
        }
    }
}

/// Reads and decodes a snapshot file.
pub fn read_from_path(path: &Path) -> Result<SnapshotFile> {
    let bytes = std::fs::read(path)?;
    from_bytes(&bytes)
}
