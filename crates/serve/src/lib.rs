//! # sablock-serve — blocking as a service
//!
//! The online layer over the incremental SA-LSH index
//! ([`sablock_core::incremental`]): a deployment does not want a snapshot of
//! Γ, it wants *"here is a new record — which stored records might match
//! it?"* answered in milliseconds while the corpus keeps growing. This crate
//! provides exactly that:
//!
//! * [`CandidateService`] — a single-writer/many-reader candidate-lookup
//!   engine. Writers batch inserts/removals and atomically publish immutable
//!   [`EpochState`]s; readers query published epochs lock-free, and every
//!   query is observationally equivalent to one-shot blocking over
//!   `corpus ∪ {probe}` ([`IndexView::candidates`]
//!   contract), optionally top-k ranked by shingle-set Jaccard similarity.
//! * [`persist`] — versioned, checksummed binary snapshots
//!   ([`CandidateService::save`] / [`CandidateService::load`]) so a restart
//!   resumes from disk instead of re-blocking the corpus, with corruption
//!   surfacing as typed [`ServeError`]s.
//! * [`protocol`] — the tab-separated line protocol the `sablock-serve`
//!   binary speaks over stdin or TCP, with bounded line reads, per-request
//!   deadlines, and explicit `DEGRADED`/`RETRY` overload responses.
//! * [`wal`] — write-ahead durability: checksummed op records appended
//!   before each batch applies, segment rotation and fsync policy knobs,
//!   and crash recovery that replays `snapshot + WAL suffix` to exactly the
//!   last durable batch ([`CandidateService::open_durable`]).
//! * [`frontend`] / [`client`] — a bounded worker-pool TCP front-end with
//!   per-connection timeouts and queue-depth shedding, and a line client
//!   that honours `RETRY` backpressure with exponential backoff.
//! * [`fault`] — deterministic, value-threaded fault injection
//!   ([`FailpointPlan`]) so tests can kill WAL I/O at every byte offset and
//!   assert recovery to a differential-verified epoch.
//!
//! [`IndexView::candidates`]: sablock_core::incremental::IndexView::candidates
//!
//! ## Quick start
//!
//! ```
//! use sablock_core::prelude::*;
//! use sablock_datasets::Schema;
//! use sablock_serve::CandidateService;
//!
//! let schema = Schema::shared(["title"]).unwrap();
//! let blocker = SaLshBlocker::builder()
//!     .attributes(["title"])
//!     .qgram(2)
//!     .bands(12)
//!     .rows_per_band(2)
//!     .into_incremental()
//!     .unwrap();
//! let service = CandidateService::new(blocker, schema).unwrap();
//!
//! service.insert_rows(vec![
//!     vec![Some("a theory for record linkage".into())],
//!     vec![Some("a theory of record linkage".into())],
//! ]).unwrap();
//!
//! let state = service.current();
//! let probe = service.probe_record(&state, vec![Some("a theory of record linkage".into())]).unwrap();
//! let ranked = state.query_top_k(&probe, 5).unwrap();
//! assert_eq!(ranked[0].0.0, 1, "the exact duplicate ranks first");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod error;
pub mod fault;
pub mod frontend;
pub(crate) mod lockorder;
pub mod metrics;
pub mod persist;
pub mod protocol;
pub mod service;
pub mod store;
pub mod wal;

pub use client::{Client, RetryPolicy};
pub use error::{Result, ServeError};
pub use fault::FailpointPlan;
pub use frontend::{serve_tcp, FrontendOptions};
pub use metrics::ServiceMetrics;
pub use service::{CandidateService, DegradeReason, EpochState, QueryBudget, QueryOutcome, WriteOp};
pub use store::RecordStore;
pub use wal::{FsyncPolicy, RecoveryReport, WalOptions};
