//! `sablock-serve` — a long-running candidate-lookup server.
//!
//! Speaks the [`sablock_serve::protocol`] line protocol over **stdin**
//! (default) or a **TCP listener** (`--tcp ADDR`). The index configuration
//! comes from a named profile; `--load` resumes from a checksummed snapshot
//! written by a previous `SAVE` request, and `--wal DIR` makes the service
//! *durable*: every write batch is logged before it applies, `CHECKPOINT`
//! compacts the log, and a restart recovers to exactly the last durable
//! batch.
//!
//! ```text
//! sablock-serve [--profile cora|voter] [--tcp ADDR] [--load SNAPSHOT]
//!               [--wal DIR] [--fsync always|never|every=N] [--segment-bytes N]
//!               [--workers N] [--queue-depth N] [--max-sessions N]
//!               [--read-timeout-ms N] [--write-timeout-ms N]
//!               [--deadline-ms N] [--budget N] [--max-line-bytes N] [--retry-ms N]
//! ```
//!
//! The TCP front-end is a bounded worker pool ([`sablock_serve::frontend`]):
//! admitted connections are served concurrently under per-connection
//! timeouts and per-request deadlines, and connections past the queue depth
//! get a `RETRY` backoff line instead of waiting unboundedly.

use std::io::Write;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use sablock_core::prelude::*;
use sablock_datasets::generators::cora::CORA_ATTRIBUTES;
use sablock_datasets::generators::ncvoter::NCVOTER_ATTRIBUTES;
use sablock_datasets::Schema;
use sablock_serve::protocol::{handle_line_with, read_bounded_line, Outcome, RequestLimits};
use sablock_serve::{
    serve_tcp, CandidateService, FrontendOptions, FsyncPolicy, Result, ServeError, WalOptions,
};

/// A named index configuration the server can start with.
struct Profile {
    schema: Arc<Schema>,
    blocker: IncrementalSaLshBlocker,
}

fn profile(name: &str) -> Result<Profile> {
    match name {
        "cora" => {
            let tree = bibliographic_taxonomy();
            let zeta = PatternSemanticFunction::cora_default(&tree)?;
            let family = SemhashFamily::from_all_leaves(&tree)?;
            let semantic = SemanticConfig::new(tree, zeta)
                .with_w(2)
                .with_mode(SemanticMode::Or)
                .with_seed(11)
                .with_pinned_family(family);
            let blocker = SaLshBlocker::builder()
                .attributes(["title", "authors"])
                .qgram(3)
                .bands(8)
                .rows_per_band(2)
                .seed(0xB10C)
                .semantic(semantic)
                .into_incremental()?;
            Ok(Profile { schema: Schema::shared(CORA_ATTRIBUTES)?, blocker })
        }
        "voter" => {
            let blocker = SaLshBlocker::builder()
                .attributes(["first_name", "last_name", "city"])
                .qgram(2)
                .bands(10)
                .rows_per_band(3)
                .seed(0xB10C)
                .into_incremental()?;
            Ok(Profile { schema: Schema::shared(NCVOTER_ATTRIBUTES)?, blocker })
        }
        other => Err(ServeError::Protocol(format!("unknown profile '{other}' (expected cora or voter)"))),
    }
}

struct Options {
    profile: String,
    tcp: Option<String>,
    load: Option<String>,
    wal: Option<String>,
    wal_options: WalOptions,
    frontend: FrontendOptions,
}

fn parse_fsync(raw: &str) -> Result<FsyncPolicy> {
    match raw {
        "always" => Ok(FsyncPolicy::Always),
        "never" => Ok(FsyncPolicy::Never),
        other => match other.strip_prefix("every=").and_then(|n| n.parse::<u64>().ok()) {
            Some(n) if n > 0 => Ok(FsyncPolicy::EveryN(n)),
            _ => Err(ServeError::Protocol(format!(
                "--fsync must be always, never, or every=N (N ≥ 1), got '{raw}'"
            ))),
        },
    }
}

fn parse_args(args: &[String]) -> Result<Option<Options>> {
    let mut options = Options {
        profile: "cora".into(),
        tcp: None,
        load: None,
        wal: None,
        wal_options: WalOptions::default(),
        frontend: FrontendOptions::default(),
    };
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| ServeError::Protocol(format!("{name} needs a value")))
        };
        let mut number = |name: &str| -> Result<u64> {
            value(name)?
                .parse()
                .map_err(|_| ServeError::Protocol(format!("{name} needs a non-negative integer")))
        };
        match flag.as_str() {
            "--profile" => options.profile = value("--profile")?,
            "--tcp" => options.tcp = Some(value("--tcp")?),
            "--load" => options.load = Some(value("--load")?),
            "--wal" => options.wal = Some(value("--wal")?),
            "--fsync" => options.wal_options.fsync = parse_fsync(&value("--fsync")?)?,
            "--segment-bytes" => options.wal_options.segment_bytes = number("--segment-bytes")?.max(1),
            "--workers" => options.frontend.workers = number("--workers")?.max(1) as usize,
            "--queue-depth" => options.frontend.queue_depth = number("--queue-depth")?.max(1) as usize,
            "--max-sessions" => options.frontend.max_sessions = Some(number("--max-sessions")?),
            "--read-timeout-ms" => {
                options.frontend.read_timeout = Duration::from_millis(number("--read-timeout-ms")?)
            }
            "--write-timeout-ms" => {
                options.frontend.write_timeout = Duration::from_millis(number("--write-timeout-ms")?)
            }
            "--deadline-ms" => {
                options.frontend.limits.deadline = Some(Duration::from_millis(number("--deadline-ms")?))
            }
            "--budget" => options.frontend.limits.candidate_budget = Some(number("--budget")? as usize),
            "--max-line-bytes" => {
                options.frontend.limits.max_line_bytes = number("--max-line-bytes")?.max(1) as usize
            }
            "--retry-ms" => options.frontend.retry_after_ms = number("--retry-ms")?,
            "--help" | "-h" => return Ok(None),
            other => return Err(ServeError::Protocol(format!("unknown flag '{other}' (try --help)"))),
        }
    }
    if options.wal.is_some() && options.load.is_some() {
        return Err(ServeError::Protocol(
            "--wal and --load conflict: a WAL directory recovers its own snapshots \
             (checkpoint into the directory instead)"
                .into(),
        ));
    }
    Ok(Some(options))
}

const USAGE: &str = "sablock-serve [--profile cora|voter] [--tcp ADDR] [--load SNAPSHOT]\n\
                     \x20             [--wal DIR] [--fsync always|never|every=N] [--segment-bytes N]\n\
                     \x20             [--workers N] [--queue-depth N] [--max-sessions N]\n\
                     \x20             [--read-timeout-ms N] [--write-timeout-ms N]\n\
                     \x20             [--deadline-ms N] [--budget N] [--max-line-bytes N] [--retry-ms N]\n\
                     Serves the line protocol (QUERY/QUERYK/INSERT/REMOVE/STATS/SAVE/CHECKPOINT/QUIT,\n\
                     tab-separated fields) on stdin, or concurrently on ADDR with --tcp.\n\
                     --wal makes writes durable: batches are logged before applying and a\n\
                     restart recovers to the last durable batch.";

/// Drains one bounded line-protocol session from `input`, replying on
/// `output`. An overlong line gets one `ERR` and ends the session (the rest
/// of the line is unread garbage); other malformed input is reported and
/// the session continues.
fn serve_session(
    service: &CandidateService,
    limits: &RequestLimits,
    mut input: impl std::io::BufRead,
    mut output: impl Write,
) -> Result<()> {
    loop {
        match read_bounded_line(&mut input, limits.max_line_bytes) {
            Ok(None) => return Ok(()),
            Ok(Some(line)) => {
                match handle_line_with(service, limits, &line) {
                    Outcome::Reply(reply) => writeln!(output, "{reply}")?,
                    Outcome::Quit(reply) => {
                        writeln!(output, "{reply}")?;
                        return Ok(());
                    }
                }
                output.flush()?;
            }
            Err(error @ ServeError::LineTooLong { .. }) => {
                writeln!(output, "ERR {error}")?;
                return Ok(());
            }
            Err(error @ ServeError::Protocol(_)) => {
                writeln!(output, "ERR {error}")?;
                output.flush()?;
            }
            Err(error) => return Err(error),
        }
    }
}

fn run() -> Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(options) = parse_args(&args)? else {
        println!("{USAGE}");
        return Ok(());
    };
    let Profile { schema, blocker } = profile(&options.profile)?;
    let service = match (&options.wal, &options.load) {
        (Some(dir), _) => {
            let (service, report) =
                CandidateService::open_durable(blocker, schema, Path::new(dir), options.wal_options.clone())?;
            eprintln!(
                "sablock-serve: recovered epoch {} (snapshot covered {}, replayed {} batches, \
                 discarded {} torn bytes)",
                report.recovered_seq, report.snapshot_ops, report.replayed_records, report.discarded_bytes
            );
            service
        }
        (None, Some(path)) => CandidateService::load(blocker, schema, Path::new(path))?,
        (None, None) => CandidateService::new(blocker, schema)?,
    };
    let state = service.current();
    eprintln!(
        "sablock-serve: profile {} ({}), {} records live",
        options.profile,
        service.name(),
        state.view().num_live_records()
    );

    match &options.tcp {
        Some(address) => {
            let listener = std::net::TcpListener::bind(address)?;
            eprintln!(
                "sablock-serve: listening on {} ({} workers, queue depth {})",
                listener.local_addr()?,
                options.frontend.workers,
                options.frontend.queue_depth
            );
            let accepted = serve_tcp(&service, &listener, &options.frontend)?;
            eprintln!("sablock-serve: served {accepted} connections");
            Ok(())
        }
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            serve_session(&service, &options.frontend.limits, stdin.lock(), stdout.lock())
        }
    }
}

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(error) => {
            eprintln!("sablock-serve: {error}");
            std::process::ExitCode::FAILURE
        }
    }
}
