//! `sablock-serve` — a long-running candidate-lookup server.
//!
//! Speaks the [`sablock_serve::protocol`] line protocol over **stdin**
//! (default) or a **TCP listener** (`--tcp ADDR`). The index configuration
//! comes from a named profile; `--load` resumes from a checksummed snapshot
//! written by a previous `SAVE` request.
//!
//! ```text
//! sablock-serve [--profile cora|voter] [--tcp 127.0.0.1:7878] [--load PATH]
//! ```
//!
//! The TCP loop serves one connection at a time (accept → drain → next);
//! it is a demonstration front-end for the epoch machinery, not a
//! production network stack — concurrency lives inside [`CandidateService`]
//! (lock-free readers over published epochs), not in socket handling.

use std::io::{BufRead, BufReader, Write};
use std::path::Path;
use std::sync::Arc;

use sablock_core::prelude::*;
use sablock_datasets::generators::cora::CORA_ATTRIBUTES;
use sablock_datasets::generators::ncvoter::NCVOTER_ATTRIBUTES;
use sablock_datasets::Schema;
use sablock_serve::protocol::{handle_line, Outcome};
use sablock_serve::{CandidateService, Result, ServeError};

/// A named index configuration the server can start with.
struct Profile {
    schema: Arc<Schema>,
    blocker: IncrementalSaLshBlocker,
}

fn profile(name: &str) -> Result<Profile> {
    match name {
        "cora" => {
            let tree = bibliographic_taxonomy();
            let zeta = PatternSemanticFunction::cora_default(&tree)?;
            let family = SemhashFamily::from_all_leaves(&tree)?;
            let semantic = SemanticConfig::new(tree, zeta)
                .with_w(2)
                .with_mode(SemanticMode::Or)
                .with_seed(11)
                .with_pinned_family(family);
            let blocker = SaLshBlocker::builder()
                .attributes(["title", "authors"])
                .qgram(3)
                .bands(8)
                .rows_per_band(2)
                .seed(0xB10C)
                .semantic(semantic)
                .into_incremental()?;
            Ok(Profile { schema: Schema::shared(CORA_ATTRIBUTES)?, blocker })
        }
        "voter" => {
            let blocker = SaLshBlocker::builder()
                .attributes(["first_name", "last_name", "city"])
                .qgram(2)
                .bands(10)
                .rows_per_band(3)
                .seed(0xB10C)
                .into_incremental()?;
            Ok(Profile { schema: Schema::shared(NCVOTER_ATTRIBUTES)?, blocker })
        }
        other => Err(ServeError::Protocol(format!("unknown profile '{other}' (expected cora or voter)"))),
    }
}

struct Options {
    profile: String,
    tcp: Option<String>,
    load: Option<String>,
}

fn parse_args(args: &[String]) -> Result<Option<Options>> {
    let mut options = Options { profile: "cora".into(), tcp: None, load: None };
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| ServeError::Protocol(format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--profile" => options.profile = value("--profile")?,
            "--tcp" => options.tcp = Some(value("--tcp")?),
            "--load" => options.load = Some(value("--load")?),
            "--help" | "-h" => return Ok(None),
            other => return Err(ServeError::Protocol(format!("unknown flag '{other}' (try --help)"))),
        }
    }
    Ok(Some(options))
}

const USAGE: &str = "sablock-serve [--profile cora|voter] [--tcp ADDR] [--load SNAPSHOT]\n\
                     Serves the line protocol (QUERY/QUERYK/INSERT/REMOVE/STATS/SAVE/QUIT,\n\
                     tab-separated fields) on stdin, or on ADDR with --tcp.";

/// Drains one line-protocol session from `input`, replying on `output`.
fn serve_session(service: &CandidateService, input: impl BufRead, mut output: impl Write) -> Result<()> {
    for line in input.lines() {
        let line = line?;
        match handle_line(service, &line) {
            Outcome::Reply(reply) => writeln!(output, "{reply}")?,
            Outcome::Quit(reply) => {
                writeln!(output, "{reply}")?;
                break;
            }
        }
        output.flush()?;
    }
    Ok(())
}

fn run() -> Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(options) = parse_args(&args)? else {
        println!("{USAGE}");
        return Ok(());
    };
    let Profile { schema, blocker } = profile(&options.profile)?;
    let service = match &options.load {
        Some(path) => CandidateService::load(blocker, schema, Path::new(path))?,
        None => CandidateService::new(blocker, schema)?,
    };
    let state = service.current();
    eprintln!(
        "sablock-serve: profile {} ({}), {} records live",
        options.profile,
        service.name(),
        state.view().num_live_records()
    );

    match &options.tcp {
        Some(address) => {
            let listener = std::net::TcpListener::bind(address)?;
            eprintln!("sablock-serve: listening on {}", listener.local_addr()?);
            for stream in listener.incoming() {
                let stream = stream?;
                let reader = BufReader::new(stream.try_clone()?);
                // One session at a time: a failed client session is logged
                // and the listener moves on to the next connection.
                if let Err(error) = serve_session(&service, reader, &stream) {
                    eprintln!("sablock-serve: session error: {error}");
                }
            }
            Ok(())
        }
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            serve_session(&service, stdin.lock(), stdout.lock())
        }
    }
}

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(error) => {
            eprintln!("sablock-serve: {error}");
            std::process::ExitCode::FAILURE
        }
    }
}
