//! The concurrent TCP front-end: a bounded worker pool over the line
//! protocol.
//!
//! [`serve_tcp`] lifts the protocol loop onto
//! [`sablock_core::parallel::worker_pool`]: the accepting thread produces
//! connections into a bounded [`JobQueue`] and a fixed set of workers
//! serves them. Overload is handled at two gates, both explicit:
//!
//! 1. **Admission** — when every worker is busy and the queue is full, the
//!    connection is *shed*: it gets a one-line `RETRY <ms>` response (the
//!    suggested backoff) and is closed. Nothing queues unboundedly; shed
//!    counts surface in `STATS`.
//! 2. **Per-request budgets** — admitted requests run under the
//!    [`RequestLimits`] in the options: bounded line length, a ranked-query
//!    deadline, and a candidate budget, degrading (never silently failing)
//!    as described in [`crate::protocol`].
//!
//! Per-connection socket read/write timeouts bound how long a stalled or
//! dead peer can hold a worker: when the timeout fires the connection is
//! reaped (counted in `STATS`) and the worker moves on. One stuck client
//! therefore delays its own requests, never the service.
//!
//! [`JobQueue`]: sablock_core::parallel::JobQueue

use std::io::{BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use sablock_core::parallel::worker_pool;

use crate::error::{Result, ServeError};
use crate::protocol::{handle_line_with, read_bounded_line, Outcome, RequestLimits};
use crate::service::CandidateService;

/// Configuration for [`serve_tcp`].
#[derive(Debug, Clone)]
pub struct FrontendOptions {
    /// Worker threads serving admitted connections.
    pub workers: usize,
    /// Connections allowed to wait for a worker before shedding starts.
    pub queue_depth: usize,
    /// Per-connection socket read timeout — a peer silent for this long is
    /// reaped.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout — a peer not draining its
    /// responses for this long is reaped.
    pub write_timeout: Duration,
    /// The backoff hint sent with `RETRY` responses, in milliseconds.
    pub retry_after_ms: u64,
    /// Per-request limits threaded into every admitted request.
    pub limits: RequestLimits,
    /// Stop accepting after this many connections (tests and drains); `None`
    /// serves until the process ends.
    pub max_sessions: Option<u64>,
}

impl Default for FrontendOptions {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_depth: 64,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            retry_after_ms: 100,
            limits: RequestLimits::default(),
            max_sessions: None,
        }
    }
}

/// Serves the line protocol on `listener` with a bounded worker pool (see
/// the module docs). Blocks until the accept loop ends — which it only does
/// when [`FrontendOptions::max_sessions`] is set — then drains the queued
/// connections and joins the workers. Returns the number of connections
/// accepted (admitted + shed).
pub fn serve_tcp(service: &CandidateService, listener: &TcpListener, options: &FrontendOptions) -> Result<u64> {
    worker_pool(
        options.workers.max(1),
        options.queue_depth.max(1),
        |queue| {
            let mut accepted: u64 = 0;
            for stream in listener.incoming() {
                let Ok(stream) = stream else { continue };
                accepted += 1;
                if let Err(rejected) = queue.try_push(stream) {
                    shed(service, rejected, options);
                }
                if options.max_sessions.is_some_and(|limit| accepted >= limit) {
                    break;
                }
            }
            Ok(accepted)
        },
        |stream| serve_connection(service, stream, options),
    )
}

/// The shed path: best-effort `RETRY <ms>` so the peer knows to back off,
/// then drop. A peer that cannot even take that line is dropped silently —
/// shedding must never block the accept loop.
fn shed(service: &CandidateService, mut stream: TcpStream, options: &FrontendOptions) {
    service.metrics().record_shed();
    let _ = stream.set_write_timeout(Some(Duration::from_millis(50)));
    let _ = stream.write_all(format!("RETRY {}\n", options.retry_after_ms).as_bytes());
}

/// Serves one admitted connection until `QUIT`, EOF, an overlong line, or a
/// socket timeout/failure (the last reaps the connection).
fn serve_connection(service: &CandidateService, stream: TcpStream, options: &FrontendOptions) {
    // Timeout configuration failing means the socket is already dead;
    // reap it rather than serving it untimed.
    if stream.set_read_timeout(Some(options.read_timeout)).is_err()
        || stream.set_write_timeout(Some(options.write_timeout)).is_err()
    {
        service.metrics().record_reaped();
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(writer) => writer,
        Err(_) => {
            service.metrics().record_reaped();
            return;
        }
    };
    let mut reader = BufReader::new(stream);
    loop {
        match read_bounded_line(&mut reader, options.limits.max_line_bytes) {
            Ok(None) => return,
            Ok(Some(line)) => {
                let outcome = handle_line_with(service, &options.limits, &line);
                if writer.write_all(format!("{}\n", outcome.reply()).as_bytes()).is_err() {
                    service.metrics().record_reaped();
                    return;
                }
                if matches!(outcome, Outcome::Quit(_)) {
                    return;
                }
            }
            Err(error @ ServeError::LineTooLong { .. }) => {
                // The rest of the oversized line is unread garbage: answer
                // once, then close so it cannot be misparsed as requests.
                let _ = writer.write_all(format!("ERR {error}\n").as_bytes());
                return;
            }
            Err(error @ ServeError::Protocol(_)) => {
                // Non-UTF-8 noise on an otherwise intact line: report and
                // keep serving — a typo must not cost the session.
                if writer.write_all(format!("ERR {error}\n").as_bytes()).is_err() {
                    service.metrics().record_reaped();
                    return;
                }
            }
            Err(_) => {
                // Timeout or transport failure: reap.
                service.metrics().record_reaped();
                return;
            }
        }
    }
}
