//! The line-delimited request protocol of the server binary.
//!
//! One request per line, fields separated by tabs (record values may contain
//! spaces; they may not contain tabs or newlines). Responses are single
//! lines starting with `OK` or `ERR`. The verbs:
//!
//! | request | response |
//! |---|---|
//! | `QUERY\t<v1>\t<v2>…` | `OK <n> <id:score>…` — all candidates of the probe row |
//! | `QUERYK\t<k>\t<v1>…` | `OK <n> <id:score>…` — top-`k` candidates by Jaccard |
//! | `INSERT\t<v1>\t<v2>…` | `OK <id> epoch <e>` — ingests the row, echoes its id |
//! | `REMOVE\t<id>` | `OK removed <id> epoch <e>` (`OK absent …` when already removed) |
//! | `STATS` | `OK epoch <e> records <n> live <l> pairs <Γ>` |
//! | `SAVE\t<path>` | `OK saved <path>` — checksummed snapshot of the index |
//! | `QUIT` | `OK bye` and the connection/loop ends |
//!
//! An empty value field means the attribute is missing (`None`); rows
//! shorter than the schema are padded with missing values. Malformed
//! requests get `ERR <reason>` and the loop continues — a client typo must
//! not take the service down.

use sablock_datasets::RecordId;

use crate::error::{Result, ServeError};
use crate::service::CandidateService;

/// A parsed protocol request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// All candidates of a probe row.
    Query(Vec<Option<String>>),
    /// Top-k candidates of a probe row.
    QueryK(usize, Vec<Option<String>>),
    /// Ingest one row.
    Insert(Vec<Option<String>>),
    /// Tombstone one record.
    Remove(RecordId),
    /// Service counters.
    Stats,
    /// Persist a snapshot to the given path.
    Save(String),
    /// End the session.
    Quit,
}

/// What [`handle_line`] tells the caller to do next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Send this single-line reply and keep serving.
    Reply(String),
    /// Send this reply, then end the session.
    Quit(String),
}

impl Outcome {
    /// The reply line, whichever variant carries it.
    pub fn reply(&self) -> &str {
        match self {
            Self::Reply(line) | Self::Quit(line) => line,
        }
    }
}

fn values_from(fields: &[&str], width: usize) -> Vec<Option<String>> {
    let mut values: Vec<Option<String>> = fields
        .iter()
        .map(|field| if field.is_empty() { None } else { Some((*field).to_string()) })
        .collect();
    values.resize(width, None);
    values
}

/// Parses one request line (verb and fields; see the module docs). The
/// schema width pads short rows with missing values.
pub fn parse_request(line: &str, schema_width: usize) -> Result<Request> {
    let mut fields = line.split('\t');
    let verb = fields.next().unwrap_or("");
    let rest: Vec<&str> = fields.collect();
    match verb {
        "QUERY" => Ok(Request::Query(values_from(&rest, schema_width))),
        "QUERYK" => {
            let (k, rest) = rest
                .split_first()
                .ok_or_else(|| ServeError::Protocol("QUERYK needs a k field".into()))?;
            let k: usize = k
                .parse()
                .map_err(|_| ServeError::Protocol(format!("QUERYK k must be a non-negative integer, got '{k}'")))?;
            Ok(Request::QueryK(k, values_from(rest, schema_width)))
        }
        "INSERT" => Ok(Request::Insert(values_from(&rest, schema_width))),
        "REMOVE" => {
            let [raw] = rest.as_slice() else {
                return Err(ServeError::Protocol("REMOVE takes exactly one record id".into()));
            };
            let id: u32 = raw
                .parse()
                .map_err(|_| ServeError::Protocol(format!("REMOVE id must be a u32, got '{raw}'")))?;
            Ok(Request::Remove(RecordId(id)))
        }
        "STATS" if rest.is_empty() => Ok(Request::Stats),
        "SAVE" => {
            let [path] = rest.as_slice() else {
                return Err(ServeError::Protocol("SAVE takes exactly one path".into()));
            };
            if path.is_empty() {
                return Err(ServeError::Protocol("SAVE path must not be empty".into()));
            }
            Ok(Request::Save((*path).to_string()))
        }
        "QUIT" if rest.is_empty() => Ok(Request::Quit),
        other => Err(ServeError::Protocol(format!("unknown request verb '{other}'"))),
    }
}

fn render_scored(scored: &[(RecordId, f64)]) -> String {
    let mut out = format!("OK {}", scored.len());
    for (id, score) in scored {
        out.push_str(&format!(" {}:{score:.4}", id.0));
    }
    out
}

fn execute(service: &CandidateService, request: Request) -> Result<Outcome> {
    match request {
        Request::Query(values) => {
            let state = service.current();
            let probe = service.probe_record(&state, values)?;
            let scored = state.query_top_k(&probe, usize::MAX)?;
            Ok(Outcome::Reply(render_scored(&scored)))
        }
        Request::QueryK(k, values) => {
            let state = service.current();
            let probe = service.probe_record(&state, values)?;
            let scored = state.query_top_k(&probe, k)?;
            Ok(Outcome::Reply(render_scored(&scored)))
        }
        Request::Insert(values) => {
            let state = service.insert_rows(vec![values])?;
            let id = state.view().num_records() - 1;
            Ok(Outcome::Reply(format!("OK {id} epoch {}", state.epoch())))
        }
        Request::Remove(id) => {
            let before = service.current();
            let live_before = before.view().is_live(id);
            let state = service.remove(id)?;
            let word = if live_before { "removed" } else { "absent" };
            Ok(Outcome::Reply(format!("OK {word} {} epoch {}", id.0, state.epoch())))
        }
        Request::Stats => {
            let state = service.current();
            let view = state.view();
            Ok(Outcome::Reply(format!(
                "OK epoch {} records {} live {} pairs {}",
                state.epoch(),
                view.num_records(),
                view.num_live_records(),
                view.running_counts().pairs
            )))
        }
        Request::Save(path) => {
            service.save(std::path::Path::new(&path))?;
            Ok(Outcome::Reply(format!("OK saved {path}")))
        }
        Request::Quit => Ok(Outcome::Quit("OK bye".into())),
    }
}

/// Parses and executes one protocol line against the service. Every failure
/// — parse or execution — becomes an `ERR` reply; the session always gets
/// exactly one line back and only `QUIT` ends it.
pub fn handle_line(service: &CandidateService, line: &str) -> Outcome {
    let line = line.trim_end_matches(['\r', '\n']);
    match parse_request(line, service.schema().len()).and_then(|request| execute(service, request)) {
        Ok(outcome) => outcome,
        Err(error) => Outcome::Reply(format!("ERR {error}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sablock_core::prelude::SaLshBlocker;
    use sablock_datasets::Schema;

    fn service() -> CandidateService {
        let schema = Schema::shared(["title", "authors"]).unwrap();
        let blocker = SaLshBlocker::builder()
            .attributes(["title"])
            .qgram(2)
            .bands(12)
            .rows_per_band(2)
            .seed(0xB10C)
            .into_incremental()
            .unwrap();
        CandidateService::new(blocker, schema).unwrap()
    }

    #[test]
    fn parses_and_rejects_requests() {
        assert_eq!(
            parse_request("QUERY\ta theory\tsmith", 2).unwrap(),
            Request::Query(vec![Some("a theory".into()), Some("smith".into())])
        );
        assert_eq!(
            parse_request("QUERY\ta theory", 2).unwrap(),
            Request::Query(vec![Some("a theory".into()), None]),
            "short rows pad with missing values"
        );
        assert_eq!(parse_request("QUERYK\t3\tx", 1).unwrap(), Request::QueryK(3, vec![Some("x".into())]));
        assert_eq!(parse_request("INSERT\t\tsmith", 2).unwrap(), Request::Insert(vec![None, Some("smith".into())]));
        assert_eq!(parse_request("REMOVE\t7", 2).unwrap(), Request::Remove(RecordId(7)));
        assert_eq!(parse_request("STATS", 2).unwrap(), Request::Stats);
        assert_eq!(parse_request("SAVE\t/tmp/x.snap", 2).unwrap(), Request::Save("/tmp/x.snap".into()));
        assert_eq!(parse_request("QUIT", 2).unwrap(), Request::Quit);
        for bad in ["", "NOPE", "QUERYK\tx\ty", "REMOVE\tnot-a-number", "REMOVE\t1\t2", "SAVE\t", "STATS\textra"] {
            assert!(parse_request(bad, 2).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn end_to_end_session() {
        let service = service();
        assert_eq!(handle_line(&service, "INSERT\ta theory for record linkage\tfellegi").reply(), "OK 0 epoch 1");
        assert_eq!(handle_line(&service, "INSERT\ta theory of record linkage\tsunter\n").reply(), "OK 1 epoch 2");
        let reply = handle_line(&service, "QUERY\ta theory of record linkage");
        assert!(reply.reply().starts_with("OK 2 "), "both stored records are candidates: {}", reply.reply());
        let top1 = handle_line(&service, "QUERYK\t1\ta theory of record linkage");
        assert!(top1.reply().starts_with("OK 1 1:"), "record 1 is the best match: {}", top1.reply());
        assert_eq!(handle_line(&service, "STATS").reply(), "OK epoch 2 records 2 live 2 pairs 1");
        assert_eq!(handle_line(&service, "REMOVE\t0").reply(), "OK removed 0 epoch 3");
        assert_eq!(handle_line(&service, "REMOVE\t0").reply(), "OK absent 0 epoch 4");
        assert!(handle_line(&service, "REMOVE\t99").reply().starts_with("ERR "), "unknown ids report an error");
        assert!(handle_line(&service, "BOGUS\tx").reply().starts_with("ERR "));
        assert_eq!(handle_line(&service, "QUIT"), Outcome::Quit("OK bye".into()));
    }
}
