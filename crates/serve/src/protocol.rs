//! The line-delimited request protocol of the server binary.
//!
//! One request per line, fields separated by tabs (record values may contain
//! spaces; they may not contain tabs or newlines). Responses are single
//! lines starting with `OK`, `ERR`, or the backpressure verb `RETRY`. The
//! verbs:
//!
//! | request | response |
//! |---|---|
//! | `QUERY\t<v1>\t<v2>…` | `OK <n> <id>…` — the probe row's unranked candidate ids (the cheap path) |
//! | `QUERYK\t<k>\t<v1>…` | `OK <n> <id:score>…` — top-`k` by Jaccard; over budget: `OK DEGRADED <n> <id>…` (unranked) |
//! | `INSERT\t<v1>\t<v2>…` | `OK <id> epoch <e>` — ingests the row, echoes its id |
//! | `REMOVE\t<id>` | `OK removed <id> epoch <e>` (`OK absent …` when already removed) |
//! | `STATS` | `OK epoch <e> records <n> live <l> tombstoned <t> compactions <c> pairs <Γ> shed <s> degraded <d> wal <base>:<bytes> q50us <p50> q99us <p99>` |
//! | `SAVE\t<path>` | `OK saved <path>` — checksummed snapshot of the index |
//! | `CHECKPOINT` | `OK checkpoint <epoch>` — durable services only: snapshot + WAL rotation |
//! | `QUIT` | `OK bye` and the connection/loop ends |
//!
//! `STATS` reports `wal -` for an in-memory service and latencies as whole
//! microseconds over the queries served so far. An overloaded front-end may
//! answer any request with `RETRY <ms>` — resend after the suggested delay
//! ([`crate::client`] does this automatically).
//!
//! An empty value field means the attribute is missing (`None`); rows
//! shorter than the schema are padded with missing values. Malformed
//! requests get `ERR <reason>` and the loop continues — a client typo must
//! not take the service down. Lines are read through
//! [`read_bounded_line`], which rejects anything over
//! [`RequestLimits::max_line_bytes`] *before* buffering it, so a malicious
//! client cannot drive unbounded allocation.

use std::io::BufRead;
use std::time::{Duration, Instant};

use sablock_datasets::RecordId;

use crate::error::{Result, ServeError};
use crate::service::{CandidateService, QueryBudget, QueryOutcome};

/// The default cap on one protocol line: 64 KiB.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Per-request admission limits, owned by whatever drives the session loop
/// (the TCP front-end, the stdin loop, a test).
#[derive(Debug, Clone, Copy)]
pub struct RequestLimits {
    /// Reject lines longer than this many bytes (newline excluded) with
    /// [`ServeError::LineTooLong`].
    pub max_line_bytes: usize,
    /// Per-request deadline for ranked queries: scoring still running this
    /// long after the request started degrades to the unranked answer.
    pub deadline: Option<Duration>,
    /// Candidate budget for ranked queries ([`QueryBudget::max_candidates`]).
    pub candidate_budget: Option<usize>,
}

impl Default for RequestLimits {
    fn default() -> Self {
        Self { max_line_bytes: MAX_LINE_BYTES, deadline: None, candidate_budget: None }
    }
}

/// A parsed protocol request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// The unranked candidate ids of a probe row (the cheap path).
    Query(Vec<Option<String>>),
    /// Top-k ranked candidates of a probe row.
    QueryK(usize, Vec<Option<String>>),
    /// Ingest one row.
    Insert(Vec<Option<String>>),
    /// Tombstone one record.
    Remove(RecordId),
    /// Service counters.
    Stats,
    /// Persist a snapshot to the given path.
    Save(String),
    /// Snapshot + WAL rotation at the current epoch (durable services).
    Checkpoint,
    /// End the session.
    Quit,
}

/// What [`handle_line`] tells the caller to do next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Send this single-line reply and keep serving.
    Reply(String),
    /// Send this reply, then end the session.
    Quit(String),
}

impl Outcome {
    /// The reply line, whichever variant carries it.
    pub fn reply(&self) -> &str {
        match self {
            Self::Reply(line) | Self::Quit(line) => line,
        }
    }
}

/// Reads one newline-terminated line without ever buffering more than
/// `max_bytes + 1` bytes: an overlong line surfaces as
/// [`ServeError::LineTooLong`] (the caller should reply `ERR` and drop the
/// connection — the rest of the oversized line is unread garbage), EOF
/// before any byte as `None`. Invalid UTF-8 is a typed protocol error.
pub fn read_bounded_line(reader: &mut impl BufRead, max_bytes: usize) -> Result<Option<String>> {
    let mut raw = Vec::new();
    let mut limited = std::io::Read::take(&mut *reader, max_bytes as u64 + 1);
    let read = limited.read_until(b'\n', &mut raw)?;
    if read == 0 {
        return Ok(None);
    }
    if raw.last() == Some(&b'\n') {
        raw.pop();
        if raw.last() == Some(&b'\r') {
            raw.pop();
        }
    }
    if raw.len() > max_bytes {
        return Err(ServeError::LineTooLong { limit: max_bytes });
    }
    match String::from_utf8(raw) {
        Ok(line) => Ok(Some(line)),
        Err(_) => Err(ServeError::Protocol("request line is not valid UTF-8".into())),
    }
}

fn values_from(fields: &[&str], width: usize) -> Vec<Option<String>> {
    let mut values: Vec<Option<String>> = fields
        .iter()
        .map(|field| if field.is_empty() { None } else { Some((*field).to_string()) })
        .collect();
    values.resize(width, None);
    values
}

/// Parses one request line (verb and fields; see the module docs). The
/// schema width pads short rows with missing values.
pub fn parse_request(line: &str, schema_width: usize) -> Result<Request> {
    let mut fields = line.split('\t');
    let verb = fields.next().unwrap_or("");
    let rest: Vec<&str> = fields.collect();
    match verb {
        "QUERY" => Ok(Request::Query(values_from(&rest, schema_width))),
        "QUERYK" => {
            let (k, rest) = rest
                .split_first()
                .ok_or_else(|| ServeError::Protocol("QUERYK needs a k field".into()))?;
            let k: usize = k
                .parse()
                .map_err(|_| ServeError::Protocol(format!("QUERYK k must be a non-negative integer, got '{k}'")))?;
            Ok(Request::QueryK(k, values_from(rest, schema_width)))
        }
        "INSERT" => Ok(Request::Insert(values_from(&rest, schema_width))),
        "REMOVE" => {
            let [raw] = rest.as_slice() else {
                return Err(ServeError::Protocol("REMOVE takes exactly one record id".into()));
            };
            let id: u32 = raw
                .parse()
                .map_err(|_| ServeError::Protocol(format!("REMOVE id must be a u32, got '{raw}'")))?;
            Ok(Request::Remove(RecordId(id)))
        }
        "STATS" if rest.is_empty() => Ok(Request::Stats),
        "SAVE" => {
            let [path] = rest.as_slice() else {
                return Err(ServeError::Protocol("SAVE takes exactly one path".into()));
            };
            if path.is_empty() {
                return Err(ServeError::Protocol("SAVE path must not be empty".into()));
            }
            Ok(Request::Save((*path).to_string()))
        }
        "CHECKPOINT" if rest.is_empty() => Ok(Request::Checkpoint),
        "QUIT" if rest.is_empty() => Ok(Request::Quit),
        other => Err(ServeError::Protocol(format!("unknown request verb '{other}'"))),
    }
}

fn render_ids(prefix: &str, ids: &[RecordId]) -> String {
    let mut out = format!("{prefix} {}", ids.len());
    for id in ids {
        out.push_str(&format!(" {}", id.0));
    }
    out
}

fn render_scored(scored: &[(RecordId, f64)]) -> String {
    let mut out = format!("OK {}", scored.len());
    for (id, score) in scored {
        out.push_str(&format!(" {}:{score:.4}", id.0));
    }
    out
}

fn render_stats(service: &CandidateService) -> String {
    let state = service.current();
    let view = state.view();
    let metrics = service.metrics();
    let latency = metrics.query_latency_snapshot();
    let to_us = |secs: f64| (secs * 1e6).round() as u64;
    let wal = match service.wal_position() {
        Some((base, bytes)) => format!("{base}:{bytes}"),
        None => "-".to_string(),
    };
    format!(
        "OK epoch {} records {} live {} tombstoned {} compactions {} pairs {} shed {} degraded {} \
         wal {wal} q50us {} q99us {}",
        state.epoch(),
        view.num_records(),
        view.num_live_records(),
        view.num_removed(),
        view.num_compactions(),
        view.running_counts().pairs,
        metrics.shed(),
        metrics.degraded(),
        to_us(latency.p50_secs()),
        to_us(latency.p99_secs()),
    )
}

fn execute(service: &CandidateService, limits: &RequestLimits, request: Request) -> Result<Outcome> {
    match request {
        Request::Query(values) => {
            let started = Instant::now();
            let state = service.current();
            let probe = service.probe_record(&state, values)?;
            let candidates = state.query(&probe)?;
            service.metrics().record_query_latency(started.elapsed());
            Ok(Outcome::Reply(render_ids("OK", &candidates)))
        }
        Request::QueryK(k, values) => {
            let started = Instant::now();
            let budget = QueryBudget {
                max_candidates: limits.candidate_budget,
                deadline: limits.deadline.map(|deadline| started + deadline),
            };
            let state = service.current();
            let probe = service.probe_record(&state, values)?;
            let outcome = state.query_top_k_budgeted(&probe, k, &budget)?;
            service.metrics().record_query_latency(started.elapsed());
            Ok(Outcome::Reply(match outcome {
                QueryOutcome::Ranked(scored) => render_scored(&scored),
                QueryOutcome::Degraded { candidates, .. } => {
                    service.metrics().record_degraded();
                    render_ids("OK DEGRADED", &candidates)
                }
            }))
        }
        Request::Insert(values) => {
            let state = service.insert_rows(vec![values])?;
            let id = state.view().num_records() - 1;
            Ok(Outcome::Reply(format!("OK {id} epoch {}", state.epoch())))
        }
        Request::Remove(id) => {
            let before = service.current();
            let live_before = before.view().is_live(id);
            let state = service.remove(id)?;
            let word = if live_before { "removed" } else { "absent" };
            Ok(Outcome::Reply(format!("OK {word} {} epoch {}", id.0, state.epoch())))
        }
        Request::Stats => Ok(Outcome::Reply(render_stats(service))),
        Request::Save(path) => {
            service.save(std::path::Path::new(&path))?;
            Ok(Outcome::Reply(format!("OK saved {path}")))
        }
        Request::Checkpoint => {
            let epoch = service.checkpoint()?;
            Ok(Outcome::Reply(format!("OK checkpoint {epoch}")))
        }
        Request::Quit => Ok(Outcome::Quit("OK bye".into())),
    }
}

/// [`handle_line`] with explicit per-request limits (the front-end threads
/// its deadline and candidate budget through here).
pub fn handle_line_with(service: &CandidateService, limits: &RequestLimits, line: &str) -> Outcome {
    let line = line.trim_end_matches(['\r', '\n']);
    match parse_request(line, service.schema().len()).and_then(|request| execute(service, limits, request)) {
        Ok(outcome) => outcome,
        Err(error) => Outcome::Reply(format!("ERR {error}")),
    }
}

/// Parses and executes one protocol line against the service with default
/// limits (no deadline, no candidate budget). Every failure — parse or
/// execution — becomes an `ERR` reply; the session always gets exactly one
/// line back and only `QUIT` ends it.
pub fn handle_line(service: &CandidateService, line: &str) -> Outcome {
    handle_line_with(service, &RequestLimits::default(), line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sablock_core::prelude::SaLshBlocker;
    use sablock_datasets::Schema;

    fn service() -> CandidateService {
        let schema = Schema::shared(["title", "authors"]).unwrap();
        let blocker = SaLshBlocker::builder()
            .attributes(["title"])
            .qgram(2)
            .bands(12)
            .rows_per_band(2)
            .seed(0xB10C)
            .into_incremental()
            .unwrap();
        CandidateService::new(blocker, schema).unwrap()
    }

    #[test]
    fn parses_and_rejects_requests() {
        assert_eq!(
            parse_request("QUERY\ta theory\tsmith", 2).unwrap(),
            Request::Query(vec![Some("a theory".into()), Some("smith".into())])
        );
        assert_eq!(
            parse_request("QUERY\ta theory", 2).unwrap(),
            Request::Query(vec![Some("a theory".into()), None]),
            "short rows pad with missing values"
        );
        assert_eq!(parse_request("QUERYK\t3\tx", 1).unwrap(), Request::QueryK(3, vec![Some("x".into())]));
        assert_eq!(parse_request("INSERT\t\tsmith", 2).unwrap(), Request::Insert(vec![None, Some("smith".into())]));
        assert_eq!(parse_request("REMOVE\t7", 2).unwrap(), Request::Remove(RecordId(7)));
        assert_eq!(parse_request("STATS", 2).unwrap(), Request::Stats);
        assert_eq!(parse_request("SAVE\t/tmp/x.snap", 2).unwrap(), Request::Save("/tmp/x.snap".into()));
        assert_eq!(parse_request("CHECKPOINT", 2).unwrap(), Request::Checkpoint);
        assert_eq!(parse_request("QUIT", 2).unwrap(), Request::Quit);
        for bad in [
            "",
            "NOPE",
            "QUERYK\tx\ty",
            "REMOVE\tnot-a-number",
            "REMOVE\t1\t2",
            "SAVE\t",
            "STATS\textra",
            "CHECKPOINT\tnow",
        ] {
            assert!(parse_request(bad, 2).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn end_to_end_session() {
        let service = service();
        assert_eq!(handle_line(&service, "INSERT\ta theory for record linkage\tfellegi").reply(), "OK 0 epoch 1");
        assert_eq!(handle_line(&service, "INSERT\ta theory of record linkage\tsunter\n").reply(), "OK 1 epoch 2");
        let reply = handle_line(&service, "QUERY\ta theory of record linkage");
        assert_eq!(reply.reply(), "OK 2 0 1", "the cheap path returns unranked candidate ids");
        let top1 = handle_line(&service, "QUERYK\t1\ta theory of record linkage");
        assert!(top1.reply().starts_with("OK 1 1:"), "record 1 is the best match: {}", top1.reply());
        assert_eq!(handle_line(&service, "REMOVE\t0").reply(), "OK removed 0 epoch 3");
        assert_eq!(handle_line(&service, "REMOVE\t0").reply(), "OK absent 0 epoch 4");
        assert!(handle_line(&service, "REMOVE\t99").reply().starts_with("ERR "), "unknown ids report an error");
        assert!(handle_line(&service, "BOGUS\tx").reply().starts_with("ERR "));
        assert!(
            handle_line(&service, "CHECKPOINT").reply().starts_with("ERR "),
            "in-memory services refuse checkpoints"
        );
        assert_eq!(handle_line(&service, "QUIT"), Outcome::Quit("OK bye".into()));
    }

    #[test]
    fn stats_format_is_pinned() {
        let service = service();
        // Freshly built, nothing counted: every field renders, in order.
        assert_eq!(
            handle_line(&service, "STATS").reply(),
            "OK epoch 0 records 0 live 0 tombstoned 0 compactions 0 pairs 0 shed 0 degraded 0 \
             wal - q50us 0 q99us 0"
        );
        handle_line(&service, "INSERT\ta theory for record linkage\tfellegi");
        handle_line(&service, "INSERT\ta theory of record linkage\tsunter");
        handle_line(&service, "REMOVE\t0");
        let stats = handle_line(&service, "STATS");
        assert_eq!(
            stats.reply().split(" q50us ").next().unwrap(),
            "OK epoch 3 records 2 live 1 tombstoned 1 compactions 12 pairs 0 shed 0 degraded 0 wal -"
        );

        // Queries move the latency percentiles off zero...
        handle_line(&service, "QUERYK\t5\ta theory of record linkage");
        let stats = handle_line(&service, "STATS");
        let fields: Vec<&str> = stats.reply().split(' ').collect();
        let q99 = fields.last().unwrap().parse::<u64>().unwrap();
        assert!(q99 > 0, "a served query must register a latency: {}", stats.reply());
        // ...and a degraded query bumps the degraded counter.
        let limits = RequestLimits { candidate_budget: Some(0), ..RequestLimits::default() };
        let reply = handle_line_with(&service, &limits, "QUERYK\t5\ta theory of record linkage");
        assert!(reply.reply().starts_with("OK DEGRADED 1 "), "{}", reply.reply());
        assert!(handle_line(&service, "STATS").reply().contains(" degraded 1 "));
    }

    #[test]
    fn degraded_queries_flag_and_match_the_cheap_path() {
        let service = service();
        handle_line(&service, "INSERT\ta theory for record linkage\tx");
        handle_line(&service, "INSERT\ta theory of record linkage\ty");
        let cheap = handle_line(&service, "QUERY\ta theory of record linkage");
        let limits = RequestLimits { candidate_budget: Some(1), ..RequestLimits::default() };
        let degraded = handle_line_with(&service, &limits, "QUERYK\t5\ta theory of record linkage");
        assert_eq!(
            degraded.reply().replace("OK DEGRADED ", "OK "),
            cheap.reply(),
            "the degraded answer is exactly the cheap path's answer"
        );
        // Within budget the same limits rank normally.
        let roomy = RequestLimits { candidate_budget: Some(100), ..RequestLimits::default() };
        let ranked = handle_line_with(&service, &roomy, "QUERYK\t5\ta theory of record linkage");
        assert!(ranked.reply().contains(':'), "{}", ranked.reply());
    }

    #[test]
    fn bounded_reads_reject_overlong_lines() {
        use std::io::Cursor;
        // Under the limit: read normally, newline stripped.
        let mut input = Cursor::new(b"STATS\r\nQUIT\n".to_vec());
        assert_eq!(read_bounded_line(&mut input, 16).unwrap(), Some("STATS".to_string()));
        assert_eq!(read_bounded_line(&mut input, 16).unwrap(), Some("QUIT".to_string()));
        assert_eq!(read_bounded_line(&mut input, 16).unwrap(), None, "EOF is None");

        // Exactly at the limit is fine; one byte over is a typed error.
        let mut input = Cursor::new(b"1234\n".to_vec());
        assert_eq!(read_bounded_line(&mut input, 4).unwrap(), Some("1234".to_string()));
        let mut input = Cursor::new(b"12345\n".to_vec());
        let error = read_bounded_line(&mut input, 4).unwrap_err();
        assert!(matches!(error, ServeError::LineTooLong { limit: 4 }), "{error}");

        // A huge unterminated flood errors without buffering it all.
        let mut input = Cursor::new(vec![b'x'; 1 << 20]);
        let error = read_bounded_line(&mut input, 64).unwrap_err();
        assert!(matches!(error, ServeError::LineTooLong { limit: 64 }), "{error}");

        // A last line without a newline still arrives.
        let mut input = Cursor::new(b"QUIT".to_vec());
        assert_eq!(read_bounded_line(&mut input, 16).unwrap(), Some("QUIT".to_string()));

        // Invalid UTF-8 is a protocol error, not a panic.
        let mut input = Cursor::new(vec![0xFF, 0xFE, b'\n']);
        assert!(matches!(read_bounded_line(&mut input, 16).unwrap_err(), ServeError::Protocol(_)));
    }
}
