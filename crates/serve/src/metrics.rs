//! Service-side observability counters.
//!
//! [`ServiceMetrics`] is the single sink every layer reports into: the
//! front-end counts shed requests and reaped connections, the protocol
//! layer counts degraded queries and feeds per-query latencies, and `STATS`
//! renders the lot. Counters are atomics (the hot paths never block each
//! other); the latency reservoir sits behind a mutex because
//! [`LatencyStats`] percentile queries need the whole sample set.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

use sablock_eval::perf::LatencyStats;

/// Shared counters for one service instance (see the module docs). Designed
/// to be owned by the [`CandidateService`](crate::CandidateService) and
/// reported by every layer above it.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    shed: AtomicU64,
    degraded: AtomicU64,
    reaped: AtomicU64,
    query_latency: Mutex<LatencyStats>,
}

impl ServiceMetrics {
    /// A zeroed metrics sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one request shed at the admission gate (queue full).
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one query answered in degraded (unranked) mode.
    pub fn record_degraded(&self) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one connection reaped by a timeout or I/O failure.
    pub fn record_reaped(&self) {
        self.reaped.fetch_add(1, Ordering::Relaxed);
    }

    /// Feeds one query's wall-clock latency into the percentile reservoir.
    pub fn record_query_latency(&self, elapsed: Duration) {
        self.query_latency.lock().unwrap_or_else(PoisonError::into_inner).record(elapsed);
    }

    /// Requests shed so far.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Queries degraded so far.
    pub fn degraded(&self) -> u64 {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Connections reaped so far.
    pub fn reaped(&self) -> u64 {
        self.reaped.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the query latency reservoir (for `STATS`
    /// p50/p99 and for merging into offline reports).
    pub fn query_latency_snapshot(&self) -> LatencyStats {
        self.query_latency.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_latencies_summarise() {
        let metrics = ServiceMetrics::new();
        assert_eq!((metrics.shed(), metrics.degraded(), metrics.reaped()), (0, 0, 0));
        metrics.record_shed();
        metrics.record_shed();
        metrics.record_degraded();
        metrics.record_reaped();
        assert_eq!((metrics.shed(), metrics.degraded(), metrics.reaped()), (2, 1, 1));

        assert!(metrics.query_latency_snapshot().is_empty());
        metrics.record_query_latency(Duration::from_micros(100));
        metrics.record_query_latency(Duration::from_micros(300));
        let snapshot = metrics.query_latency_snapshot();
        assert_eq!(snapshot.len(), 2);
        assert!(snapshot.p99_secs() >= snapshot.p50_secs());
        assert!(snapshot.p50_secs() > 0.0);
    }
}
