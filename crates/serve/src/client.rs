//! A line-protocol client that honours the server's backpressure.
//!
//! [`Client`] speaks the [`crate::protocol`] line format over TCP and
//! implements the polite half of overload protection: a `RETRY <ms>`
//! response (or a refused connection — the listener's backlog overflowing)
//! is retried with exponential backoff, capped and bounded by
//! [`RetryPolicy`]. A failure *mid-request* — the connection dying after
//! the request line was written — is **not** retried: the server may have
//! applied a non-idempotent `INSERT` already, and guessing would double it.
//! Such failures surface as [`ServeError::Io`] for the caller to resolve
//! (e.g. with `STATS`/`QUERY` reconciliation).

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use sablock_core::parallel::sleep;

use crate::error::{Result, ServeError};

/// How a [`Client`] backs off when the service pushes back.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts per request (first try included). At least 1.
    pub attempts: u32,
    /// Backoff before the second attempt; doubles each retry.
    pub base_delay: Duration,
    /// Ceiling on any single backoff.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { attempts: 6, base_delay: Duration::from_millis(50), max_delay: Duration::from_secs(2) }
    }
}

impl RetryPolicy {
    /// The backoff before attempt `attempt + 1` (0-based): `base · 2^attempt`,
    /// capped at [`RetryPolicy::max_delay`].
    pub fn delay_for(&self, attempt: u32) -> Duration {
        let factor = 2u32.saturating_pow(attempt.min(16));
        self.base_delay.saturating_mul(factor).min(self.max_delay)
    }
}

/// One server response, with the degradation flag made explicit so callers
/// cannot mistake an unranked answer for a ranked one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// A normal `OK …` reply (the payload after `OK `).
    Ok(String),
    /// An `OK DEGRADED …` reply — the cheap-path answer, explicitly flagged
    /// (the payload after `OK DEGRADED `).
    Degraded(String),
    /// An `ERR …` reply (the reason after `ERR `).
    Err(String),
}

/// A reconnecting line-protocol client (see the module docs).
#[derive(Debug)]
pub struct Client {
    addr: String,
    policy: RetryPolicy,
    timeout: Duration,
    connection: Option<BufReader<TcpStream>>,
}

impl Client {
    /// A client for the given address (`host:port`). No connection is made
    /// until the first request.
    pub fn new(addr: impl Into<String>, policy: RetryPolicy) -> Self {
        Self { addr: addr.into(), policy, timeout: Duration::from_secs(10), connection: None }
    }

    /// Overrides the per-socket read/write timeout (default 10 s).
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    fn connect(&self) -> std::io::Result<BufReader<TcpStream>> {
        let mut last = std::io::Error::other(format!("no socket address resolved for {}", self.addr));
        for addr in self.addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&addr, self.timeout) {
                Ok(stream) => {
                    stream.set_read_timeout(Some(self.timeout))?;
                    stream.set_write_timeout(Some(self.timeout))?;
                    return Ok(BufReader::new(stream));
                }
                Err(error) => last = error,
            }
        }
        Err(last)
    }

    /// Sends one request line and reads the one-line response, retrying
    /// shed requests (`RETRY` responses) and refused connections with
    /// exponential backoff. When every attempt is shed, returns
    /// [`ServeError::Overloaded`] carrying the server's last backoff hint.
    pub fn request(&mut self, line: &str) -> Result<Response> {
        let mut retry_hint_ms = self.policy.retry_hint_floor();
        for attempt in 0..self.policy.attempts.max(1) {
            if attempt > 0 {
                // Honour the server's hint when it exceeds our own schedule.
                let backoff = self.policy.delay_for(attempt - 1).max(Duration::from_millis(retry_hint_ms));
                sleep(backoff.min(self.policy.max_delay));
            }
            let mut connection = match self.connection.take() {
                Some(connection) => connection,
                None => match self.connect() {
                    Ok(connection) => connection,
                    // A refused/unreachable server before anything was sent
                    // is safe to retry.
                    Err(_) => continue,
                },
            };
            connection.get_mut().write_all(format!("{line}\n").as_bytes())?;
            let mut reply = String::new();
            if connection.read_line(&mut reply)? == 0 {
                return Err(ServeError::Io(std::io::Error::other(
                    "connection closed before a response arrived; the request's outcome is unknown",
                )));
            }
            let reply = reply.trim_end_matches(['\r', '\n']);
            if let Some(hint) = reply.strip_prefix("RETRY ") {
                // Shed: the server closed the connection after this line.
                retry_hint_ms = hint.trim().parse().unwrap_or(retry_hint_ms);
                continue;
            }
            let response = if let Some(rest) = reply.strip_prefix("OK DEGRADED ") {
                Response::Degraded(rest.to_string())
            } else if let Some(rest) = reply.strip_prefix("OK ") {
                Response::Ok(rest.to_string())
            } else if reply == "OK" {
                Response::Ok(String::new())
            } else if let Some(rest) = reply.strip_prefix("ERR ") {
                Response::Err(rest.to_string())
            } else {
                return Err(ServeError::Protocol(format!("unrecognised response line '{reply}'")));
            };
            self.connection = Some(connection);
            return Ok(response);
        }
        Err(ServeError::Overloaded { retry_after_ms: retry_hint_ms })
    }
}

impl RetryPolicy {
    /// The starting `RETRY` hint assumed before the server supplies one.
    fn retry_hint_floor(&self) -> u64 {
        u64::try_from(self.base_delay.as_millis()).unwrap_or(50)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RetryPolicy {
            attempts: 5,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_millis(300),
        };
        assert_eq!(policy.delay_for(0), Duration::from_millis(50));
        assert_eq!(policy.delay_for(1), Duration::from_millis(100));
        assert_eq!(policy.delay_for(2), Duration::from_millis(200));
        assert_eq!(policy.delay_for(3), Duration::from_millis(300), "capped");
        assert_eq!(policy.delay_for(30), Duration::from_millis(300), "huge attempts stay capped");
    }

    #[test]
    fn exhausted_retries_surface_as_overloaded() {
        // Nothing listens on a reserved-but-closed port: every connect is
        // refused, every attempt retries, and the typed error comes back.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);
        let mut client = Client::new(
            addr.to_string(),
            RetryPolicy { attempts: 2, base_delay: Duration::from_millis(1), max_delay: Duration::from_millis(2) },
        )
        .with_timeout(Duration::from_millis(200));
        let error = client.request("STATS").unwrap_err();
        assert!(matches!(error, ServeError::Overloaded { .. }), "{error}");
    }
}
