//! The candidate-lookup service: single batched writer, lock-free readers.
//!
//! [`CandidateService`] wraps one [`IncrementalSaLshBlocker`] behind an
//! epoch/snapshot publication scheme:
//!
//! * **Readers** grab the current [`EpochState`] — one `Arc` clone under a
//!   briefly held read lock — and then query it with no locks at all. An
//!   epoch is immutable forever: its [`IndexView`] shares the index shards
//!   by `Arc` and its [`RecordStore`] shares the record chunks, so holding
//!   an old epoch costs memory, never correctness.
//! * **The writer** serialises all mutations through one internal lock,
//!   applies each [`WriteOp`] to its private copy-on-write head (the next
//!   epoch in the making), and **atomically publishes** the new epoch by
//!   swapping the `Arc`. A reader therefore observes either the state
//!   before a batch or after it — never a half-applied batch (the
//!   concurrency differential test recounts every published epoch offline
//!   to pin this down).
//!
//! Query results are observationally equivalent to one-shot blocking: for a
//! published epoch, [`EpochState::query`] returns exactly the candidate set
//! a from-scratch [`SaLshBlocker::block`] over `corpus ∪ {probe}` would
//! pair the probe with (see [`IndexView::candidates`]; property-tested in
//! `tests/service_equivalence.rs`). [`EpochState::query_top_k`] ranks that
//! set by shingle-set Jaccard similarity against the stored records —
//! candidates, not a raw bucket dump.
//!
//! [`SaLshBlocker::block`]: sablock_core::prelude::SaLshBlocker

use std::path::Path;
use std::sync::{Arc, Mutex, PoisonError, RwLock};

use sablock_core::incremental::{IncrementalBlocker, IncrementalSaLshBlocker, IndexView, RunningCounts};
use sablock_core::prelude::BlockCollection;
use sablock_datasets::{Record, RecordId, Schema};
use sablock_textual::jaccard_u64;

use crate::error::{Result, ServeError};
use crate::persist;
use crate::store::RecordStore;

/// One mutation the writer applies: a batch insert (records must continue
/// the dense id space) or a single-record tombstone.
#[derive(Debug, Clone)]
pub enum WriteOp {
    /// Ingest a batch of new records.
    Insert(Vec<Record>),
    /// Tombstone one record. Removing an already-removed id is a no-op.
    Remove(RecordId),
}

/// One published, immutable epoch of the service: the index view, the
/// record log, and the epoch counter. Cheap to clone-by-`Arc`; readers
/// query it without any synchronisation.
#[derive(Debug)]
pub struct EpochState {
    epoch: u64,
    view: IndexView,
    store: RecordStore,
}

impl EpochState {
    /// The epoch counter — 0 is the initial (possibly empty) publication,
    /// and every applied write batch increments it by exactly one.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The frozen index view.
    pub fn view(&self) -> &IndexView {
        &self.view
    }

    /// The candidate partners of a probe record in this epoch — sorted by
    /// id, deduplicated, the probe excluded. Equivalent to the probe's
    /// one-shot partner set (module docs).
    pub fn query(&self, record: &Record) -> Result<Vec<RecordId>> {
        self.view.candidates(record).map_err(ServeError::from)
    }

    /// [`EpochState::query`] ranked by shingle-set Jaccard similarity
    /// against the stored records, best first (ties break on ascending id),
    /// truncated to `k`. Candidates whose record is not in the store — which
    /// cannot happen for epochs this crate publishes — score 0.
    pub fn query_top_k(&self, record: &Record, k: usize) -> Result<Vec<(RecordId, f64)>> {
        let candidates = self.view.candidates(record)?;
        let probe = self.view.shingle_set(record);
        let mut scored: Vec<(RecordId, f64)> = candidates
            .into_iter()
            .map(|id| {
                let score = self
                    .store
                    .get(id)
                    .map(|candidate| jaccard_u64(&probe, &self.view.shingle_set(candidate)))
                    .unwrap_or(0.0);
                (id, score)
            })
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        scored.truncate(k);
        Ok(scored)
    }

    /// The stored record with the given id (present for every ingested id,
    /// including tombstoned ones — the log is append-only).
    pub fn record(&self, id: RecordId) -> Option<&Record> {
        self.store.get(id)
    }

    /// The epoch's blocking as a [`BlockCollection`] — byte-identical to
    /// one-shot blocking of the epoch's live records.
    pub fn snapshot(&self) -> BlockCollection {
        self.view.snapshot()
    }

    /// The epoch's running `|Γ|` / `|Γ_tp|` counters.
    pub fn running_counts(&self) -> RunningCounts {
        self.view.running_counts()
    }
}

/// The writer's private side: the mutable head index, the record log, and
/// the epoch counter. Guarded by [`CandidateService`]'s writer mutex.
#[derive(Debug)]
struct WriterState {
    head: IncrementalSaLshBlocker,
    store: RecordStore,
    epoch: u64,
}

/// Blocking as a service (see the module docs). `Send + Sync`: share it by
/// reference (or `Arc`) between one writer role and any number of readers.
#[derive(Debug)]
pub struct CandidateService {
    schema: Arc<Schema>,
    name: String,
    writer: Mutex<WriterState>,
    published: RwLock<Arc<EpochState>>,
}

impl CandidateService {
    /// Wraps a freshly built (empty) incremental blocker. Epoch 0 — the
    /// empty index — is published immediately, so readers always find a
    /// state. Errors when the blocker has already ingested records (its
    /// corpus would be missing from the record log).
    pub fn new(head: IncrementalSaLshBlocker, schema: Arc<Schema>) -> Result<Self> {
        if head.num_records() != 0 {
            return Err(ServeError::Protocol(format!(
                "CandidateService::new requires an empty index, got one with {} records \
                 (use CandidateService::load to adopt persisted state)",
                head.num_records()
            )));
        }
        Ok(Self::from_parts(head, schema, RecordStore::new()))
    }

    /// Assembles a service around an index head and the matching record log
    /// (the log must hold exactly the head's ingested records).
    fn from_parts(head: IncrementalSaLshBlocker, schema: Arc<Schema>, store: RecordStore) -> Self {
        let name = head.name();
        let initial = Arc::new(EpochState { epoch: 0, view: head.publish_view(), store: store.clone() });
        Self {
            schema,
            name,
            writer: Mutex::new(WriterState { head, store, epoch: 0 }),
            published: RwLock::new(initial),
        }
    }

    /// The service's schema — every ingested and probe record must carry it
    /// (or one with the same attributes).
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The configuration fingerprint of the wrapped index
    /// ([`IncrementalBlocker::name`]); persisted snapshots embed it and
    /// refuse to load into a differently configured index.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The current published epoch — one `Arc` clone under a briefly held
    /// read lock; everything after that is lock-free.
    pub fn current(&self) -> Arc<EpochState> {
        Arc::clone(&self.published.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Applies a batch of write ops to the private head and publishes the
    /// result as one new epoch. Returns the published epoch.
    ///
    /// On a mid-batch failure the *applied prefix* is still published (the
    /// published sequence always equals some prefix of the accepted ops —
    /// readers never see a torn batch) and the error is returned; the
    /// failing op and everything after it are dropped.
    pub fn apply(&self, ops: Vec<WriteOp>) -> Result<Arc<EpochState>> {
        let mut writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        let mut failure: Option<ServeError> = None;
        for op in ops {
            if let Err(error) = Self::apply_one(&mut writer, op) {
                failure = Some(error);
                break;
            }
        }
        let state = Self::publish(&self.published, &mut writer);
        match failure {
            Some(error) => Err(error),
            None => Ok(state),
        }
    }

    fn apply_one(writer: &mut WriterState, op: WriteOp) -> Result<()> {
        match op {
            WriteOp::Insert(records) => {
                // The head validates the batch (dense ids, schema attributes)
                // before mutating anything; only then does the log grow, so
                // head and log never disagree.
                writer.head.insert_batch(&records)?;
                writer.store.append(records)?;
                Ok(())
            }
            WriteOp::Remove(id) => {
                writer.head.remove(id)?;
                Ok(())
            }
        }
    }

    fn publish(published: &RwLock<Arc<EpochState>>, writer: &mut WriterState) -> Arc<EpochState> {
        writer.epoch += 1;
        let state = Arc::new(EpochState {
            epoch: writer.epoch,
            view: writer.head.publish_view(),
            store: writer.store.clone(),
        });
        *published.write().unwrap_or_else(PoisonError::into_inner) = Arc::clone(&state);
        state
    }

    /// Inserts one batch of records ([`WriteOp::Insert`]) as its own epoch.
    pub fn insert_batch(&self, records: Vec<Record>) -> Result<Arc<EpochState>> {
        self.apply(vec![WriteOp::Insert(records)])
    }

    /// Inserts raw value rows: each row is wrapped in a [`Record`] carrying
    /// the service schema and the next dense id (assigned under the writer
    /// lock, so concurrent callers cannot race the id space), then ingested
    /// as one batch/epoch.
    pub fn insert_rows(&self, rows: Vec<Vec<Option<String>>>) -> Result<Arc<EpochState>> {
        let mut writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        let base = writer.head.num_records();
        let records = rows
            .into_iter()
            .enumerate()
            .map(|(offset, values)| {
                let id = RecordId::try_from_index(base + offset)?;
                Record::new(id, Arc::clone(&self.schema), values)
            })
            .collect::<std::result::Result<Vec<Record>, _>>()?;
        let outcome = Self::apply_one(&mut writer, WriteOp::Insert(records));
        let state = Self::publish(&self.published, &mut writer);
        outcome.map(|()| state)
    }

    /// Tombstones one record ([`WriteOp::Remove`]) as its own epoch.
    pub fn remove(&self, id: RecordId) -> Result<Arc<EpochState>> {
        self.apply(vec![WriteOp::Remove(id)])
    }

    /// Convenience: [`EpochState::query`] on the current epoch.
    pub fn query(&self, record: &Record) -> Result<Vec<RecordId>> {
        self.current().query(record)
    }

    /// Convenience: [`EpochState::query_top_k`] on the current epoch.
    pub fn query_top_k(&self, record: &Record, k: usize) -> Result<Vec<(RecordId, f64)>> {
        self.current().query_top_k(record, k)
    }

    /// Wraps probe values in a [`Record`] against the given epoch: the probe
    /// carries the service schema and the epoch's next record id — the id it
    /// *would* get if ingested, which is how the equivalence contract is
    /// phrased (one-shot blocking over `corpus ∪ {probe}`).
    pub fn probe_record(&self, state: &EpochState, values: Vec<Option<String>>) -> Result<Record> {
        Record::new(state.view().next_record_id(), Arc::clone(&self.schema), values).map_err(ServeError::from)
    }

    /// Persists the current index state (shards, tombstones, counters,
    /// record log) as a versioned, checksummed snapshot file. Taken under
    /// the writer lock, so the snapshot is a real epoch boundary.
    pub fn save(&self, path: &Path) -> Result<()> {
        let writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        persist::save_to_path(path, &self.name, &self.schema, &writer.head.dump(), &writer.store)
    }

    /// Restores a service from a snapshot file written by
    /// [`CandidateService::save`]. The caller supplies a freshly built
    /// (empty) blocker of the *same configuration* and the expected schema;
    /// fingerprint or schema disagreement is a typed error
    /// ([`ServeError::ConfigMismatch`] / [`ServeError::SchemaMismatch`]),
    /// as is any corruption of the file. The restored service is
    /// byte-identical to the saved one: same snapshots, same query results,
    /// same behaviour under every future write sequence.
    pub fn load(head: IncrementalSaLshBlocker, schema: Arc<Schema>, path: &Path) -> Result<Self> {
        if head.num_records() != 0 {
            return Err(ServeError::Protocol(
                "CandidateService::load requires a freshly built, empty index to restore into".into(),
            ));
        }
        let snapshot = persist::read_from_path(path)?;
        if head.name() != snapshot.name {
            return Err(ServeError::ConfigMismatch { expected: head.name(), found: snapshot.name });
        }
        if schema.names() != snapshot.attributes.as_slice() {
            return Err(ServeError::SchemaMismatch {
                expected: schema.names().to_vec(),
                found: snapshot.attributes,
            });
        }
        let claimed = snapshot.dump.removed.len();
        if snapshot.rows.len() != claimed {
            return Err(ServeError::Corrupt {
                offset: 0,
                reason: format!(
                    "snapshot stores {} records but its index covers {claimed}",
                    snapshot.rows.len()
                ),
            });
        }
        let head = head.restore(snapshot.dump)?;
        let records = snapshot
            .rows
            .into_iter()
            .enumerate()
            .map(|(index, values)| {
                let id = RecordId::try_from_index(index)?;
                Record::new(id, Arc::clone(&schema), values)
            })
            .collect::<std::result::Result<Vec<Record>, _>>()?;
        let mut store = RecordStore::new();
        store.append(records)?;
        Ok(Self::from_parts(head, schema, store))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sablock_core::prelude::SaLshBlocker;

    fn builder() -> sablock_core::prelude::SaLshBlockerBuilder {
        SaLshBlocker::builder().attributes(["title"]).qgram(2).bands(12).rows_per_band(2).seed(0xB10C)
    }

    fn service() -> CandidateService {
        let schema = Schema::shared(["title"]).unwrap();
        CandidateService::new(builder().into_incremental().unwrap(), schema).unwrap()
    }

    fn row(title: &str) -> Vec<Option<String>> {
        vec![if title.is_empty() { None } else { Some(title.to_string()) }]
    }

    #[test]
    fn epochs_advance_and_old_epochs_stay_frozen() {
        let service = service();
        let initial = service.current();
        assert_eq!(initial.epoch(), 0);
        assert_eq!(initial.view().num_records(), 0);

        let first = service
            .insert_rows(vec![row("a theory for record linkage"), row("a theory of record linkage")])
            .unwrap();
        assert_eq!(first.epoch(), 1);
        assert_eq!(first.view().num_records(), 2);
        assert_eq!(service.current().epoch(), 1);

        let second = service.remove(RecordId(1)).unwrap();
        assert_eq!(second.epoch(), 2);
        assert_eq!(second.view().num_live_records(), 1);
        // The earlier epochs still render their own state.
        assert_eq!(first.view().num_live_records(), 2);
        assert_eq!(initial.view().num_records(), 0);
        assert_eq!(first.record(RecordId(1)).unwrap().value("title"), Some("a theory of record linkage"));

        // Removing an unknown id errors but still publishes (a no-op epoch).
        assert!(service.remove(RecordId(99)).is_err());
        assert_eq!(service.current().epoch(), 3);
        assert_eq!(service.current().snapshot().blocks(), second.snapshot().blocks());
    }

    #[test]
    fn queries_rank_by_similarity_and_exclude_the_probe() {
        let service = service();
        service
            .insert_rows(vec![
                row("a theory for record linkage"),
                row("a theory of record linkage"),
                row("efficient clustering of high dimensional data sets"),
                row(""),
            ])
            .unwrap();
        let state = service.current();
        let probe = service.probe_record(&state, row("a theory of record linkage!")).unwrap();
        assert_eq!(probe.id(), RecordId(4));

        let candidates = state.query(&probe).unwrap();
        assert!(candidates.contains(&RecordId(0)) && candidates.contains(&RecordId(1)), "{candidates:?}");
        assert!(!candidates.contains(&RecordId(4)));

        let ranked = state.query_top_k(&probe, 10).unwrap();
        assert_eq!(ranked.len(), candidates.len());
        assert_eq!(ranked[0].0, RecordId(1), "the near-duplicate ranks first");
        assert!(ranked[0].1 > 0.8);
        assert!(ranked.windows(2).all(|w| w[0].1 >= w[1].1), "scores are descending");
        assert_eq!(state.query_top_k(&probe, 1).unwrap().len(), 1);

        // Service-level conveniences hit the current epoch.
        assert_eq!(service.query(&probe).unwrap(), candidates);
        assert_eq!(service.query_top_k(&probe, 10).unwrap(), ranked);

        // An empty probe matches nothing; a wrong-schema probe errors.
        let empty = service.probe_record(&state, row("")).unwrap();
        assert!(state.query(&empty).unwrap().is_empty());
        let wrong_schema = Schema::shared(["name"]).unwrap();
        let wrong = Record::new(RecordId(4), wrong_schema, vec![Some("x".into())]).unwrap();
        assert!(state.query(&wrong).is_err());
    }

    #[test]
    fn a_failing_op_publishes_the_applied_prefix() {
        let service = service();
        let good = Record::new(RecordId(0), Arc::clone(service.schema()), row("a theory for record linkage")).unwrap();
        let gap = Record::new(RecordId(7), Arc::clone(service.schema()), row("a theory of record linkage")).unwrap();
        let err = service
            .apply(vec![WriteOp::Insert(vec![good]), WriteOp::Insert(vec![gap]), WriteOp::Remove(RecordId(0))])
            .unwrap_err();
        assert!(matches!(err, ServeError::Core(_)), "{err}");
        let state = service.current();
        assert_eq!(state.epoch(), 1, "the prefix before the failure was published");
        assert_eq!(state.view().num_records(), 1, "ops after the failure were dropped");
        assert!(state.view().is_live(RecordId(0)), "the remove after the failing op was not applied");

        // A service must start from an empty index.
        let mut seeded = builder().into_incremental().unwrap();
        seeded
            .insert_values(&Schema::shared(["title"]).unwrap(), vec![row("x")])
            .unwrap();
        assert!(CandidateService::new(seeded, Schema::shared(["title"]).unwrap()).is_err());
    }
}
