//! The candidate-lookup service: single batched writer, lock-free readers.
//!
//! [`CandidateService`] wraps one [`IncrementalSaLshBlocker`] behind an
//! epoch/snapshot publication scheme:
//!
//! * **Readers** grab the current [`EpochState`] — one `Arc` clone under a
//!   briefly held read lock — and then query it with no locks at all. An
//!   epoch is immutable forever: its [`IndexView`] shares the index shards
//!   by `Arc` and its [`RecordStore`] shares the record chunks, so holding
//!   an old epoch costs memory, never correctness.
//! * **The writer** serialises all mutations through one internal lock,
//!   applies each [`WriteOp`] to its private copy-on-write head (the next
//!   epoch in the making), and **atomically publishes** the new epoch by
//!   swapping the `Arc`. A reader therefore observes either the state
//!   before a batch or after it — never a half-applied batch (the
//!   concurrency differential test recounts every published epoch offline
//!   to pin this down).
//!
//! Query results are observationally equivalent to one-shot blocking: for a
//! published epoch, [`EpochState::query`] returns exactly the candidate set
//! a from-scratch [`SaLshBlocker::block`] over `corpus ∪ {probe}` would
//! pair the probe with (see [`IndexView::candidates`]; property-tested in
//! `tests/service_equivalence.rs`). [`EpochState::query_top_k`] ranks that
//! set by shingle-set Jaccard similarity against the stored records —
//! candidates, not a raw bucket dump.
//!
//! [`SaLshBlocker::block`]: sablock_core::prelude::SaLshBlocker

use std::path::Path;
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::time::Instant;

use sablock_core::incremental::{IncrementalBlocker, IncrementalSaLshBlocker, IndexView, RunningCounts};
use sablock_core::prelude::BlockCollection;
use sablock_datasets::{Record, RecordId, Schema};
use sablock_textual::jaccard_u64;

use crate::error::{Result, ServeError};
use crate::lockorder;
use crate::metrics::ServiceMetrics;
use crate::persist::{self, SnapshotFile};
use crate::store::RecordStore;
use crate::wal::{self, LoggedOp, RecoveryReport, Wal, WalOptions};

/// One mutation the writer applies: a batch insert (records must continue
/// the dense id space) or a single-record tombstone.
#[derive(Debug, Clone)]
pub enum WriteOp {
    /// Ingest a batch of new records.
    Insert(Vec<Record>),
    /// Tombstone one record. Removing an already-removed id is a no-op.
    Remove(RecordId),
}

/// Admission limits for one ranked query — how much scoring work the caller
/// is willing to pay before the query degrades to its unranked candidate
/// set. The default budget is unlimited.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryBudget {
    /// Degrade if the probe collides with more than this many candidates —
    /// the scoring pass is O(candidates × shingles) and this bound caps it
    /// before any scoring happens.
    pub max_candidates: Option<usize>,
    /// Degrade as soon as scoring is still running at this instant. Checked
    /// between scoring chunks, so overrun is bounded by one chunk.
    pub deadline: Option<Instant>,
}

impl QueryBudget {
    /// No limits: the query always ranks.
    pub fn unlimited() -> Self {
        Self::default()
    }
}

/// Why a ranked query degraded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeReason {
    /// The candidate set exceeded [`QueryBudget::max_candidates`].
    CandidateBudget {
        /// How many candidates the probe collided with.
        candidates: usize,
        /// The configured budget it exceeded.
        budget: usize,
    },
    /// The [`QueryBudget::deadline`] fired mid-scoring.
    Deadline,
}

/// The result of a budgeted ranked query: the full ranking when the budget
/// held, or the cheap unranked candidate set — explicitly flagged, never a
/// silent downgrade — when it did not.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutcome {
    /// Scored within budget: candidates ranked best-first, truncated to `k`.
    Ranked(Vec<(RecordId, f64)>),
    /// Over budget: the unranked candidate set (sorted by id), plus why.
    Degraded {
        /// The probe's unranked candidate ids.
        candidates: Vec<RecordId>,
        /// Which budget was exceeded.
        reason: DegradeReason,
    },
}

/// One published, immutable epoch of the service: the index view, the
/// record log, and the epoch counter. Cheap to clone-by-`Arc`; readers
/// query it without any synchronisation.
#[derive(Debug)]
pub struct EpochState {
    epoch: u64,
    view: IndexView,
    store: RecordStore,
}

impl EpochState {
    /// The epoch counter — 0 is the initial (possibly empty) publication,
    /// and every applied write batch increments it by exactly one.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The frozen index view.
    pub fn view(&self) -> &IndexView {
        &self.view
    }

    /// The candidate partners of a probe record in this epoch — sorted by
    /// id, deduplicated, the probe excluded. Equivalent to the probe's
    /// one-shot partner set (module docs).
    pub fn query(&self, record: &Record) -> Result<Vec<RecordId>> {
        self.view.candidates(record).map_err(ServeError::from)
    }

    /// [`EpochState::query`] ranked by shingle-set Jaccard similarity
    /// against the stored records, best first (ties break on ascending id),
    /// truncated to `k`. Candidates whose record is not in the store — which
    /// cannot happen for epochs this crate publishes — score 0. `k = 0`
    /// returns the empty ranking without scoring anything; `k` beyond the
    /// candidate count returns the full ranked set.
    pub fn query_top_k(&self, record: &Record, k: usize) -> Result<Vec<(RecordId, f64)>> {
        match self.query_top_k_budgeted(record, k, &QueryBudget::unlimited())? {
            QueryOutcome::Ranked(ranked) => Ok(ranked),
            QueryOutcome::Degraded { .. } => Err(ServeError::Protocol(
                "an unlimited query budget cannot degrade".into(),
            )),
        }
    }

    /// [`EpochState::query_top_k`] under an admission [`QueryBudget`]: when
    /// the candidate set is over budget or the deadline fires mid-scoring,
    /// the query returns [`QueryOutcome::Degraded`] with the *unranked*
    /// candidates — the cheap path's exact answer — instead of erroring or
    /// silently truncating.
    pub fn query_top_k_budgeted(&self, record: &Record, k: usize, budget: &QueryBudget) -> Result<QueryOutcome> {
        let candidates = self.view.candidates(record)?;
        if k == 0 {
            return Ok(QueryOutcome::Ranked(Vec::new()));
        }
        if let Some(max) = budget.max_candidates {
            if candidates.len() > max {
                let reason = DegradeReason::CandidateBudget { candidates: candidates.len(), budget: max };
                return Ok(QueryOutcome::Degraded { candidates, reason });
            }
        }
        let probe = self.view.shingle_set(record);
        let mut scored: Vec<(RecordId, f64)> = Vec::with_capacity(candidates.len());
        let mut deadline_hit = false;
        for chunk in candidates.chunks(SCORE_CHUNK) {
            if let Some(deadline) = budget.deadline {
                if Instant::now() >= deadline {
                    deadline_hit = true;
                    break;
                }
            }
            for &id in chunk {
                let score = self
                    .store
                    .get(id)
                    .map(|candidate| jaccard_u64(&probe, &self.view.shingle_set(candidate)))
                    .unwrap_or(0.0);
                scored.push((id, score));
            }
        }
        if deadline_hit {
            return Ok(QueryOutcome::Degraded { candidates, reason: DegradeReason::Deadline });
        }
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        scored.truncate(k);
        Ok(QueryOutcome::Ranked(scored))
    }

    /// The stored record with the given id (present for every ingested id,
    /// including tombstoned ones — the log is append-only).
    pub fn record(&self, id: RecordId) -> Option<&Record> {
        self.store.get(id)
    }

    /// The epoch's blocking as a [`BlockCollection`] — byte-identical to
    /// one-shot blocking of the epoch's live records.
    pub fn snapshot(&self) -> BlockCollection {
        self.view.snapshot()
    }

    /// The epoch's running `|Γ|` / `|Γ_tp|` counters.
    pub fn running_counts(&self) -> RunningCounts {
        self.view.running_counts()
    }
}

/// Deadline checks during scoring happen every this many candidates — large
/// enough to amortise the clock read, small enough to bound overrun.
const SCORE_CHUNK: usize = 64;

/// The writer's private side: the mutable head index, the record log, the
/// epoch counter, and (for durable services) the write-ahead log. Guarded
/// by [`CandidateService`]'s writer mutex.
#[derive(Debug)]
struct WriterState {
    head: IncrementalSaLshBlocker,
    store: RecordStore,
    epoch: u64,
    /// `Some` for durable services: every batch is appended here before it
    /// is applied. The epoch always equals the log's next sequence number.
    wal: Option<Wal>,
    /// Set when a durability write failed partway: the on-disk log no
    /// longer provably extends the in-memory state, so further writes are
    /// refused ([`ServeError::WriterPoisoned`]) until re-opened through
    /// recovery. Reads keep serving the last published epoch.
    poisoned: Option<String>,
}

/// Blocking as a service (see the module docs). `Send + Sync`: share it by
/// reference (or `Arc`) between one writer role and any number of readers.
#[derive(Debug)]
pub struct CandidateService {
    schema: Arc<Schema>,
    name: String,
    writer: Mutex<WriterState>,
    published: RwLock<Arc<EpochState>>,
    metrics: ServiceMetrics,
}

impl CandidateService {
    /// Wraps a freshly built (empty) incremental blocker. Epoch 0 — the
    /// empty index — is published immediately, so readers always find a
    /// state. Errors when the blocker has already ingested records (its
    /// corpus would be missing from the record log).
    pub fn new(head: IncrementalSaLshBlocker, schema: Arc<Schema>) -> Result<Self> {
        if head.num_records() != 0 {
            return Err(ServeError::Protocol(format!(
                "CandidateService::new requires an empty index, got one with {} records \
                 (use CandidateService::load to adopt persisted state)",
                head.num_records()
            )));
        }
        Ok(Self::from_parts(head, schema, RecordStore::new(), 0, None))
    }

    /// Opens a *durable* service on a WAL directory: adopts the newest
    /// parsable checkpoint snapshot, replays the surviving log suffix, and
    /// resumes appending. The caller supplies a freshly built (empty)
    /// blocker of the same configuration, exactly as for
    /// [`CandidateService::load`]. The initial published epoch equals the
    /// recovered batch count, extending the `epoch ≡ applied-op-prefix`
    /// contract across the crash.
    ///
    /// Replayed batches the index rejects mid-batch keep their applied
    /// prefix and count into [`RecoveryReport::replay_rejected_batches`] —
    /// the exact semantics the live [`CandidateService::apply`] had when the
    /// batch was first accepted, so replay is deterministic.
    pub fn open_durable(
        head: IncrementalSaLshBlocker,
        schema: Arc<Schema>,
        dir: &Path,
        options: WalOptions,
    ) -> Result<(Self, RecoveryReport)> {
        if head.num_records() != 0 {
            return Err(ServeError::Protocol(
                "CandidateService::open_durable requires a freshly built, empty index to recover into".into(),
            ));
        }
        let recovered = wal::recover(dir, options)?;
        let mut report = recovered.report;
        let (head, store) = match recovered.snapshot {
            Some(snapshot) => Self::adopt_snapshot(head, &schema, snapshot)?,
            None => (head, RecordStore::new()),
        };
        let mut writer = WriterState {
            head,
            store,
            epoch: report.snapshot_ops,
            wal: Some(recovered.wal),
            poisoned: None,
        };
        for (_, logged) in &recovered.records {
            let mut rejected = false;
            for op in logged {
                let applied = Self::replay_op(&schema, op)
                    // sablock-lint: allow(wal-append-before-apply): recovery replay — these ops are already durable in the log being read
                    .and_then(|op| Self::apply_one(&mut writer, op));
                if applied.is_err() {
                    // The live writer dropped this op and the rest of its
                    // batch but still published the prefix; replay mirrors
                    // that exactly.
                    rejected = true;
                    break;
                }
            }
            if rejected {
                report.replay_rejected_batches += 1;
            }
            writer.epoch += 1;
        }
        let service = Self::assemble(writer, schema);
        Ok((service, report))
    }

    /// Decodes one logged op back into a live [`WriteOp`], re-creating the
    /// records under their original ids.
    fn replay_op(schema: &Arc<Schema>, op: &LoggedOp) -> Result<WriteOp> {
        match op {
            LoggedOp::Insert(rows) => {
                let records = rows
                    .iter()
                    .map(|(id, values)| Record::new(RecordId(*id), Arc::clone(schema), values.clone()))
                    .collect::<std::result::Result<Vec<Record>, _>>()?;
                Ok(WriteOp::Insert(records))
            }
            LoggedOp::Remove(id) => Ok(WriteOp::Remove(RecordId(*id))),
        }
    }

    /// The serializable mirror of a live op batch — record ids made
    /// explicit so replay reassigns exactly what the writer assigned.
    fn log_ops(ops: &[WriteOp]) -> Vec<LoggedOp> {
        ops.iter()
            .map(|op| match op {
                WriteOp::Insert(records) => LoggedOp::Insert(
                    records.iter().map(|record| (record.id().0, record.values().to_vec())).collect(),
                ),
                WriteOp::Remove(id) => LoggedOp::Remove(id.0),
            })
            .collect()
    }

    /// Validates a snapshot against the supplied head/schema and restores
    /// it (shared between [`CandidateService::load`] and
    /// [`CandidateService::open_durable`]).
    fn adopt_snapshot(
        head: IncrementalSaLshBlocker,
        schema: &Arc<Schema>,
        snapshot: SnapshotFile,
    ) -> Result<(IncrementalSaLshBlocker, RecordStore)> {
        if head.name() != snapshot.name {
            return Err(ServeError::ConfigMismatch { expected: head.name(), found: snapshot.name });
        }
        if schema.names() != snapshot.attributes.as_slice() {
            return Err(ServeError::SchemaMismatch {
                expected: schema.names().to_vec(),
                found: snapshot.attributes,
            });
        }
        let claimed = snapshot.dump.removed.len();
        if snapshot.rows.len() != claimed {
            return Err(ServeError::Corrupt {
                offset: 0,
                reason: format!(
                    "snapshot stores {} records but its index covers {claimed}",
                    snapshot.rows.len()
                ),
            });
        }
        let head = head.restore(snapshot.dump)?;
        let records = snapshot
            .rows
            .into_iter()
            .enumerate()
            .map(|(index, values)| {
                let id = RecordId::try_from_index(index)?;
                Record::new(id, Arc::clone(schema), values)
            })
            .collect::<std::result::Result<Vec<Record>, _>>()?;
        let mut store = RecordStore::new();
        store.append(records)?;
        Ok((head, store))
    }

    /// Assembles a service around an index head and the matching record log
    /// (the log must hold exactly the head's ingested records).
    fn from_parts(
        head: IncrementalSaLshBlocker,
        schema: Arc<Schema>,
        store: RecordStore,
        epoch: u64,
        wal: Option<Wal>,
    ) -> Self {
        Self::assemble(WriterState { head, store, epoch, wal, poisoned: None }, schema)
    }

    fn assemble(writer: WriterState, schema: Arc<Schema>) -> Self {
        let name = writer.head.name();
        let initial = Arc::new(EpochState {
            epoch: writer.epoch,
            view: writer.head.publish_view(),
            store: writer.store.clone(),
        });
        Self {
            schema,
            name,
            writer: Mutex::new(writer),
            published: RwLock::new(initial),
            metrics: ServiceMetrics::new(),
        }
    }

    /// The service's schema — every ingested and probe record must carry it
    /// (or one with the same attributes).
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The configuration fingerprint of the wrapped index
    /// ([`IncrementalBlocker::name`]); persisted snapshots embed it and
    /// refuse to load into a differently configured index.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The current published epoch — one `Arc` clone under a briefly held
    /// read lock; everything after that is lock-free.
    pub fn current(&self) -> Arc<EpochState> {
        let _epoch_guard = lockorder::note_epoch_guard();
        Arc::clone(&self.published.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires the writer mutex — the one entry point for every write-side
    /// path, so the `check-invariants` lock-order guard (the runtime twin of
    /// the static `lock-order` rule) sees every acquisition.
    fn lock_writer(&self) -> std::sync::MutexGuard<'_, WriterState> {
        lockorder::check_writer_lock();
        self.writer.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Deliberately acquires the locks in the forbidden order (epoch guard
    /// held, then the writer mutex) so tests can prove the runtime guard
    /// trips. Compiled only under `check-invariants` — calling it panics by
    /// design.
    #[cfg(feature = "check-invariants")]
    pub fn debug_trip_lock_order(&self) {
        let _epoch_guard = lockorder::note_epoch_guard();
        let _published = self.published.read().unwrap_or_else(PoisonError::into_inner);
        // sablock-lint: allow(lock-order): deliberate inversion — the check-invariants trip seam proving the runtime guard fires
        let _writer = self.lock_writer();
    }

    /// Applies a batch of write ops to the private head and publishes the
    /// result as one new epoch. Returns the published epoch.
    ///
    /// On a mid-batch failure the *applied prefix* is still published (the
    /// published sequence always equals some prefix of the accepted ops —
    /// readers never see a torn batch) and the error is returned; the
    /// failing op and everything after it are dropped.
    ///
    /// For durable services the batch is appended to the WAL *before*
    /// anything applies. A WAL failure poisons the writer: nothing is
    /// applied or published, the error is returned, and every later write
    /// fails with [`ServeError::WriterPoisoned`] — the outcome of the
    /// failed batch is unknown until the directory is re-opened through
    /// [`CandidateService::open_durable`], which recovers exactly the
    /// durable prefix. Reads keep serving the last published epoch
    /// throughout.
    pub fn apply(&self, ops: Vec<WriteOp>) -> Result<Arc<EpochState>> {
        let mut writer = self.lock_writer();
        self.apply_locked(&mut writer, ops)
    }

    /// The shared write path (writer lock held): WAL append first, then
    /// apply-prefix-and-publish.
    fn apply_locked(&self, writer: &mut WriterState, ops: Vec<WriteOp>) -> Result<Arc<EpochState>> {
        if let Some(reason) = &writer.poisoned {
            return Err(ServeError::WriterPoisoned { reason: reason.clone() });
        }
        if writer.wal.is_some() {
            let logged = Self::log_ops(&ops);
            // Borrow dance: the append must not hold `writer` borrowed when
            // poisoning it on failure.
            let appended = match writer.wal.as_mut() {
                Some(wal) => wal.append(&logged),
                None => Ok(0),
            };
            if let Err(error) = appended {
                writer.poisoned = Some(error.to_string());
                return Err(error);
            }
        }
        let mut failure: Option<ServeError> = None;
        for op in ops {
            if let Err(error) = Self::apply_one(writer, op) {
                failure = Some(error);
                break;
            }
        }
        let state = Self::publish(&self.published, writer);
        match failure {
            Some(error) => Err(error),
            None => Ok(state),
        }
    }

    fn apply_one(writer: &mut WriterState, op: WriteOp) -> Result<()> {
        match op {
            WriteOp::Insert(records) => {
                // The head validates the batch (dense ids, schema attributes)
                // before mutating anything; only then does the log grow, so
                // head and log never disagree.
                writer.head.insert_batch(&records)?;
                writer.store.append(records)?;
                Ok(())
            }
            WriteOp::Remove(id) => {
                writer.head.remove(id)?;
                Ok(())
            }
        }
    }

    fn publish(published: &RwLock<Arc<EpochState>>, writer: &mut WriterState) -> Arc<EpochState> {
        writer.epoch += 1;
        let state = Arc::new(EpochState {
            epoch: writer.epoch,
            view: writer.head.publish_view(),
            store: writer.store.clone(),
        });
        {
            let _epoch_guard = lockorder::note_epoch_guard();
            *published.write().unwrap_or_else(PoisonError::into_inner) = Arc::clone(&state);
        }
        state
    }

    /// Inserts one batch of records ([`WriteOp::Insert`]) as its own epoch.
    pub fn insert_batch(&self, records: Vec<Record>) -> Result<Arc<EpochState>> {
        self.apply(vec![WriteOp::Insert(records)])
    }

    /// Inserts raw value rows: each row is wrapped in a [`Record`] carrying
    /// the service schema and the next dense id (assigned under the writer
    /// lock, so concurrent callers cannot race the id space), then ingested
    /// as one batch/epoch.
    pub fn insert_rows(&self, rows: Vec<Vec<Option<String>>>) -> Result<Arc<EpochState>> {
        let mut writer = self.lock_writer();
        let base = writer.head.num_records();
        let records = rows
            .into_iter()
            .enumerate()
            .map(|(offset, values)| {
                let id = RecordId::try_from_index(base + offset)?;
                Record::new(id, Arc::clone(&self.schema), values)
            })
            .collect::<std::result::Result<Vec<Record>, _>>()?;
        self.apply_locked(&mut writer, vec![WriteOp::Insert(records)])
    }

    /// Tombstones one record ([`WriteOp::Remove`]) as its own epoch.
    pub fn remove(&self, id: RecordId) -> Result<Arc<EpochState>> {
        self.apply(vec![WriteOp::Remove(id)])
    }

    /// Convenience: [`EpochState::query`] on the current epoch.
    pub fn query(&self, record: &Record) -> Result<Vec<RecordId>> {
        self.current().query(record)
    }

    /// Convenience: [`EpochState::query_top_k`] on the current epoch.
    pub fn query_top_k(&self, record: &Record, k: usize) -> Result<Vec<(RecordId, f64)>> {
        self.current().query_top_k(record, k)
    }

    /// Wraps probe values in a [`Record`] against the given epoch: the probe
    /// carries the service schema and the epoch's next record id — the id it
    /// *would* get if ingested, which is how the equivalence contract is
    /// phrased (one-shot blocking over `corpus ∪ {probe}`).
    pub fn probe_record(&self, state: &EpochState, values: Vec<Option<String>>) -> Result<Record> {
        Record::new(state.view().next_record_id(), Arc::clone(&self.schema), values).map_err(ServeError::from)
    }

    /// Persists the current index state (shards, tombstones, counters,
    /// record log) as a versioned, checksummed snapshot file. Taken under
    /// the writer lock, so the snapshot is a real epoch boundary.
    pub fn save(&self, path: &Path) -> Result<()> {
        let writer = self.lock_writer();
        persist::save_to_path(path, &self.name, &self.schema, &writer.head.dump(), &writer.store)
    }

    /// Restores a service from a snapshot file written by
    /// [`CandidateService::save`]. The caller supplies a freshly built
    /// (empty) blocker of the *same configuration* and the expected schema;
    /// fingerprint or schema disagreement is a typed error
    /// ([`ServeError::ConfigMismatch`] / [`ServeError::SchemaMismatch`]),
    /// as is any corruption of the file. The restored service is
    /// byte-identical to the saved one: same snapshots, same query results,
    /// same behaviour under every future write sequence.
    pub fn load(head: IncrementalSaLshBlocker, schema: Arc<Schema>, path: &Path) -> Result<Self> {
        if head.num_records() != 0 {
            return Err(ServeError::Protocol(
                "CandidateService::load requires a freshly built, empty index to restore into".into(),
            ));
        }
        let snapshot = persist::read_from_path(path)?;
        let (head, store) = Self::adopt_snapshot(head, &schema, snapshot)?;
        Ok(Self::from_parts(head, schema, store, 0, None))
    }

    /// Checkpoints a durable service: atomically writes a snapshot covering
    /// the current epoch into the WAL directory, rotates the log, and
    /// prunes everything the snapshot supersedes. Returns the epoch the
    /// checkpoint covers. Taken under the writer lock, so it is a real
    /// epoch boundary; recovery after a checkpoint replays only the ops
    /// past it. Errors on a non-durable service; a post-snapshot rotation
    /// failure poisons the writer (the snapshot itself is atomic, so the
    /// directory is never torn).
    pub fn checkpoint(&self) -> Result<u64> {
        let mut writer = self.lock_writer();
        if let Some(reason) = &writer.poisoned {
            return Err(ServeError::WriterPoisoned { reason: reason.clone() });
        }
        let epoch = writer.epoch;
        let Some(wal) = writer.wal.as_mut() else {
            return Err(ServeError::Protocol("CHECKPOINT requires a durable (WAL-backed) service".into()));
        };
        let path = wal::snapshot_path(wal.dir(), epoch);
        persist::save_to_path(&path, &self.name, &self.schema, &writer.head.dump(), &writer.store)?;
        if let Some(wal) = writer.wal.as_mut() {
            if let Err(error) = wal.checkpoint_rotate(epoch) {
                writer.poisoned = Some(error.to_string());
                return Err(error);
            }
        }
        Ok(epoch)
    }

    /// The durable log's `(segment base, segment byte length)` position, or
    /// `None` for an in-memory service. What `STATS` reports as `wal`.
    pub fn wal_position(&self) -> Option<(u64, u64)> {
        let writer = self.lock_writer();
        writer.wal.as_ref().map(Wal::position)
    }

    /// The service's observability counters (shed/degraded/reaped counts,
    /// query latency percentiles).
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sablock_core::prelude::SaLshBlocker;

    fn builder() -> sablock_core::prelude::SaLshBlockerBuilder {
        SaLshBlocker::builder().attributes(["title"]).qgram(2).bands(12).rows_per_band(2).seed(0xB10C)
    }

    fn service() -> CandidateService {
        let schema = Schema::shared(["title"]).unwrap();
        CandidateService::new(builder().into_incremental().unwrap(), schema).unwrap()
    }

    fn row(title: &str) -> Vec<Option<String>> {
        vec![if title.is_empty() { None } else { Some(title.to_string()) }]
    }

    #[test]
    fn epochs_advance_and_old_epochs_stay_frozen() {
        let service = service();
        let initial = service.current();
        assert_eq!(initial.epoch(), 0);
        assert_eq!(initial.view().num_records(), 0);

        let first = service
            .insert_rows(vec![row("a theory for record linkage"), row("a theory of record linkage")])
            .unwrap();
        assert_eq!(first.epoch(), 1);
        assert_eq!(first.view().num_records(), 2);
        assert_eq!(service.current().epoch(), 1);

        let second = service.remove(RecordId(1)).unwrap();
        assert_eq!(second.epoch(), 2);
        assert_eq!(second.view().num_live_records(), 1);
        // The earlier epochs still render their own state.
        assert_eq!(first.view().num_live_records(), 2);
        assert_eq!(initial.view().num_records(), 0);
        assert_eq!(first.record(RecordId(1)).unwrap().value("title"), Some("a theory of record linkage"));

        // Removing an unknown id errors but still publishes (a no-op epoch).
        assert!(service.remove(RecordId(99)).is_err());
        assert_eq!(service.current().epoch(), 3);
        assert_eq!(service.current().snapshot().blocks(), second.snapshot().blocks());
    }

    #[test]
    fn queries_rank_by_similarity_and_exclude_the_probe() {
        let service = service();
        service
            .insert_rows(vec![
                row("a theory for record linkage"),
                row("a theory of record linkage"),
                row("efficient clustering of high dimensional data sets"),
                row(""),
            ])
            .unwrap();
        let state = service.current();
        let probe = service.probe_record(&state, row("a theory of record linkage!")).unwrap();
        assert_eq!(probe.id(), RecordId(4));

        let candidates = state.query(&probe).unwrap();
        assert!(candidates.contains(&RecordId(0)) && candidates.contains(&RecordId(1)), "{candidates:?}");
        assert!(!candidates.contains(&RecordId(4)));

        let ranked = state.query_top_k(&probe, 10).unwrap();
        assert_eq!(ranked.len(), candidates.len());
        assert_eq!(ranked[0].0, RecordId(1), "the near-duplicate ranks first");
        assert!(ranked[0].1 > 0.8);
        assert!(ranked.windows(2).all(|w| w[0].1 >= w[1].1), "scores are descending");
        assert_eq!(state.query_top_k(&probe, 1).unwrap().len(), 1);

        // Service-level conveniences hit the current epoch.
        assert_eq!(service.query(&probe).unwrap(), candidates);
        assert_eq!(service.query_top_k(&probe, 10).unwrap(), ranked);

        // An empty probe matches nothing; a wrong-schema probe errors.
        let empty = service.probe_record(&state, row("")).unwrap();
        assert!(state.query(&empty).unwrap().is_empty());
        let wrong_schema = Schema::shared(["name"]).unwrap();
        let wrong = Record::new(RecordId(4), wrong_schema, vec![Some("x".into())]).unwrap();
        assert!(state.query(&wrong).is_err());
    }

    #[test]
    fn a_failing_op_publishes_the_applied_prefix() {
        let service = service();
        let good = Record::new(RecordId(0), Arc::clone(service.schema()), row("a theory for record linkage")).unwrap();
        let gap = Record::new(RecordId(7), Arc::clone(service.schema()), row("a theory of record linkage")).unwrap();
        let err = service
            .apply(vec![WriteOp::Insert(vec![good]), WriteOp::Insert(vec![gap]), WriteOp::Remove(RecordId(0))])
            .unwrap_err();
        assert!(matches!(err, ServeError::Core(_)), "{err}");
        let state = service.current();
        assert_eq!(state.epoch(), 1, "the prefix before the failure was published");
        assert_eq!(state.view().num_records(), 1, "ops after the failure were dropped");
        assert!(state.view().is_live(RecordId(0)), "the remove after the failing op was not applied");

        // A service must start from an empty index.
        let mut seeded = builder().into_incremental().unwrap();
        seeded
            .insert_values(&Schema::shared(["title"]).unwrap(), vec![row("x")])
            .unwrap();
        assert!(CandidateService::new(seeded, Schema::shared(["title"]).unwrap()).is_err());
    }

    fn populated_service() -> CandidateService {
        let service = service();
        service
            .insert_rows(vec![
                row("a theory for record linkage"),
                row("a theory of record linkage"),
                row("the theory of record linkage"),
            ])
            .unwrap();
        service
    }

    #[test]
    fn top_k_clamps_at_both_boundaries() {
        let service = populated_service();
        let state = service.current();
        let probe = service.probe_record(&state, row("a theory of record linkage")).unwrap();
        let candidates = state.query(&probe).unwrap();
        assert!(candidates.len() >= 2, "{candidates:?}");

        // k = 0: empty ranking, no scoring.
        assert!(state.query_top_k(&probe, 0).unwrap().is_empty());
        assert_eq!(
            state.query_top_k_budgeted(&probe, 0, &QueryBudget::unlimited()).unwrap(),
            QueryOutcome::Ranked(Vec::new())
        );
        // k beyond the candidate count: the full ranked set, no padding.
        let all = state.query_top_k(&probe, usize::MAX).unwrap();
        assert_eq!(all.len(), candidates.len());
        // k exactly at the count matches k beyond it.
        assert_eq!(state.query_top_k(&probe, candidates.len()).unwrap(), all);
        assert_eq!(state.query_top_k(&probe, 1).unwrap().as_slice(), &all[..1]);
    }

    #[test]
    fn over_budget_queries_degrade_to_the_unranked_candidate_set() {
        let service = populated_service();
        let state = service.current();
        let probe = service.probe_record(&state, row("a theory of record linkage")).unwrap();
        let candidates = state.query(&probe).unwrap();

        // A candidate budget below the collision count degrades...
        let tight = QueryBudget { max_candidates: Some(candidates.len() - 1), ..QueryBudget::default() };
        match state.query_top_k_budgeted(&probe, 5, &tight).unwrap() {
            QueryOutcome::Degraded { candidates: got, reason } => {
                assert_eq!(got, candidates, "the degraded answer is the exact cheap-path answer");
                assert_eq!(
                    reason,
                    DegradeReason::CandidateBudget { candidates: candidates.len(), budget: candidates.len() - 1 }
                );
            }
            other => panic!("expected degradation, got {other:?}"),
        }
        // ...a budget at the count does not.
        let exact = QueryBudget { max_candidates: Some(candidates.len()), ..QueryBudget::default() };
        assert!(matches!(state.query_top_k_budgeted(&probe, 5, &exact).unwrap(), QueryOutcome::Ranked(_)));

        // An already-expired deadline degrades before any scoring.
        let expired = QueryBudget { deadline: Some(Instant::now() - std::time::Duration::from_secs(1)), ..QueryBudget::default() };
        match state.query_top_k_budgeted(&probe, 5, &expired).unwrap() {
            QueryOutcome::Degraded { reason: DegradeReason::Deadline, candidates: got } => {
                assert_eq!(got, candidates);
            }
            other => panic!("expected a deadline degradation, got {other:?}"),
        }
        // k = 0 wins over every budget: an empty ranking is always in budget.
        assert_eq!(
            state.query_top_k_budgeted(&probe, 0, &expired).unwrap(),
            QueryOutcome::Ranked(Vec::new())
        );
    }

    fn temp_wal_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sablock-service-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn durable_services_recover_their_epoch_sequence() {
        let dir = temp_wal_dir("durable");
        let schema = Schema::shared(["title"]).unwrap();
        let (service, report) = CandidateService::open_durable(
            builder().into_incremental().unwrap(),
            Arc::clone(&schema),
            &dir,
            WalOptions::default(),
        )
        .unwrap();
        assert_eq!(report.recovered_seq, 0);
        service.insert_rows(vec![row("a theory for record linkage")]).unwrap();
        service.insert_rows(vec![row("a theory of record linkage")]).unwrap();
        service.remove(RecordId(0)).unwrap();
        assert_eq!(service.current().epoch(), 3);
        let before = service.current().snapshot();
        assert!(service.wal_position().is_some());
        drop(service);

        // Re-open: same epoch, same state, and the log keeps extending.
        let (service, report) = CandidateService::open_durable(
            builder().into_incremental().unwrap(),
            Arc::clone(&schema),
            &dir,
            WalOptions::default(),
        )
        .unwrap();
        assert_eq!(report.recovered_seq, 3);
        assert_eq!(report.replayed_records, 3);
        assert_eq!(report.replay_rejected_batches, 0);
        let state = service.current();
        assert_eq!(state.epoch(), 3);
        assert_eq!(state.snapshot().blocks(), before.blocks());
        assert!(!state.view().is_live(RecordId(0)));
        assert_eq!(state.record(RecordId(0)).unwrap().value("title"), Some("a theory for record linkage"));

        // Checkpoint, write past it, recover again: snapshot + suffix.
        assert_eq!(service.checkpoint().unwrap(), 3);
        service.insert_rows(vec![row("the theory of record linkage")]).unwrap();
        drop(service);
        let (service, report) = CandidateService::open_durable(
            builder().into_incremental().unwrap(),
            Arc::clone(&schema),
            &dir,
            WalOptions::default(),
        )
        .unwrap();
        assert_eq!(report.snapshot_ops, 3, "the checkpoint snapshot was adopted");
        assert_eq!(report.replayed_records, 1, "only the post-checkpoint batch replays");
        assert_eq!(service.current().epoch(), 4);
        assert_eq!(service.current().view().num_records(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_wal_failure_poisons_the_writer_but_not_the_readers() {
        use crate::fault::FailpointPlan;
        let dir = temp_wal_dir("poison");
        let schema = Schema::shared(["title"]).unwrap();
        // Let the header and first record through, then kill mid-second-record.
        let (service, _) = CandidateService::open_durable(
            builder().into_incremental().unwrap(),
            Arc::clone(&schema),
            &dir,
            WalOptions { failpoints: FailpointPlan::fail_fsyncs_from(1), ..WalOptions::default() },
        )
        .unwrap();
        service.insert_rows(vec![row("a theory for record linkage")]).unwrap();
        let error = service.insert_rows(vec![row("a theory of record linkage")]).unwrap_err();
        assert!(matches!(error, ServeError::Io(_)), "{error}");

        // Readers still serve the last published epoch...
        let state = service.current();
        assert_eq!(state.epoch(), 1);
        assert_eq!(state.view().num_records(), 1);
        // ...but every further write (and checkpoint) is refused, typed.
        let refused = service.insert_rows(vec![row("x")]).unwrap_err();
        assert!(matches!(refused, ServeError::WriterPoisoned { .. }), "{refused}");
        let refused = service.checkpoint().unwrap_err();
        assert!(matches!(refused, ServeError::WriterPoisoned { .. }), "{refused}");
        drop(service);

        // Recovery re-opens cleanly; the un-fsynced batch may or may not
        // have survived (it was never acknowledged), but the acknowledged
        // prefix must.
        let (service, report) = CandidateService::open_durable(
            builder().into_incremental().unwrap(),
            Arc::clone(&schema),
            &dir,
            WalOptions::default(),
        )
        .unwrap();
        assert!(report.recovered_seq >= 1);
        assert!(service.current().view().num_records() >= 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn non_durable_services_refuse_checkpoints() {
        let service = service();
        assert!(service.wal_position().is_none());
        let error = service.checkpoint().unwrap_err();
        assert!(matches!(error, ServeError::Protocol(_)), "{error}");
        // Metrics start zeroed and are reachable through the service.
        assert_eq!(service.metrics().shed(), 0);
    }
}
