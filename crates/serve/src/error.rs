//! Typed errors for the service layer.
//!
//! Everything that can go wrong — protocol misuse, a corrupt or truncated
//! snapshot file, a core-level rejection — surfaces as a [`ServeError`]
//! variant. The crate never panics on untrusted input (I/O, snapshot bytes,
//! protocol lines); the `unwrap-in-lib` lint rule enforces this at the token
//! level and the persistence tests enforce it behaviourally.

use sablock_core::CoreError;

/// Everything the service layer can fail with.
#[derive(Debug)]
pub enum ServeError {
    /// An operating-system I/O failure (file or socket).
    Io(std::io::Error),
    /// A snapshot file that does not start with the `SABLKSNP` magic — not a
    /// snapshot at all.
    BadMagic,
    /// A snapshot written by an unsupported format version.
    UnsupportedVersion {
        /// The version the file claims.
        found: u32,
        /// The version this build reads and writes.
        supported: u32,
    },
    /// The snapshot's trailing checksum does not match its content — the
    /// file was truncated or bit-flipped after writing.
    ChecksumMismatch {
        /// The checksum stored in the file.
        expected: u64,
        /// The checksum recomputed over the file's content.
        found: u64,
    },
    /// A structurally invalid snapshot body (impossible lengths, non-UTF-8
    /// strings, claims that overrun the file).
    Corrupt {
        /// Byte offset at which decoding failed.
        offset: usize,
        /// What was wrong there.
        reason: String,
    },
    /// The snapshot was written by an index with a different configuration
    /// fingerprint than the one it is being loaded into.
    ConfigMismatch {
        /// The fingerprint of the index the caller supplied.
        expected: String,
        /// The fingerprint stored in the snapshot.
        found: String,
    },
    /// The snapshot's schema does not match the schema the caller supplied.
    SchemaMismatch {
        /// The attribute names the caller's schema carries.
        expected: Vec<String>,
        /// The attribute names stored in the snapshot.
        found: Vec<String>,
    },
    /// A malformed protocol line (unknown verb, wrong arity, unparsable id).
    Protocol(String),
    /// A protocol line longer than the configured bound — rejected before
    /// allocation so a malicious client cannot balloon memory.
    LineTooLong {
        /// The configured maximum line length in bytes.
        limit: usize,
    },
    /// The service shed the request under load; the client should retry
    /// after the suggested delay.
    Overloaded {
        /// The server's suggested retry delay in milliseconds.
        retry_after_ms: u64,
    },
    /// The write path is poisoned: a WAL append failed partway, so the
    /// durable log no longer extends the in-memory state and further writes
    /// are refused until the service is re-opened through recovery.
    WriterPoisoned {
        /// The failure that poisoned the writer.
        reason: String,
    },
    /// WAL recovery found the log structurally unrecoverable (e.g. a gap
    /// between the adopted snapshot and the surviving segments).
    Recovery(String),
    /// An error from the core blocking layer (batch validation, restore
    /// validation, probe schema checks).
    Core(CoreError),
    /// An error from the datasets layer (record/schema construction).
    Dataset(sablock_datasets::DatasetError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "I/O error: {e}"),
            Self::BadMagic => write!(f, "not a sablock snapshot (bad magic)"),
            Self::UnsupportedVersion { found, supported } => {
                write!(f, "snapshot format version {found} is not supported (this build reads v{supported})")
            }
            Self::ChecksumMismatch { expected, found } => write!(
                f,
                "snapshot checksum mismatch: file claims {expected:016x}, content hashes to {found:016x} \
                 (truncated or corrupted)"
            ),
            Self::Corrupt { offset, reason } => write!(f, "corrupt snapshot at byte {offset}: {reason}"),
            Self::ConfigMismatch { expected, found } => write!(
                f,
                "snapshot was written by index configuration '{found}' but is being loaded into '{expected}'"
            ),
            Self::SchemaMismatch { expected, found } => {
                write!(f, "snapshot schema {found:?} does not match the supplied schema {expected:?}")
            }
            Self::Protocol(reason) => write!(f, "protocol error: {reason}"),
            Self::LineTooLong { limit } => {
                write!(f, "protocol line exceeds the {limit}-byte limit")
            }
            Self::Overloaded { retry_after_ms } => {
                write!(f, "service overloaded; retry after {retry_after_ms} ms")
            }
            Self::WriterPoisoned { reason } => {
                write!(f, "write path poisoned by a durability failure ({reason}); re-open the service to recover")
            }
            Self::Recovery(reason) => write!(f, "write-ahead log unrecoverable: {reason}"),
            Self::Core(e) => write!(f, "core error: {e}"),
            Self::Dataset(e) => write!(f, "dataset error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Core(e) => Some(e),
            Self::Dataset(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        Self::Core(e)
    }
}

impl From<sablock_datasets::DatasetError> for ServeError {
    fn from(e: sablock_datasets::DatasetError) -> Self {
        Self::Dataset(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ServeError>;
