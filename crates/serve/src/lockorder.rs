//! Runtime twin of the static `lock-order` rule (behind `check-invariants`).
//!
//! The service's canonical acquisition order is **writer mutex before the
//! published-epoch `RwLock`**: `publish` swaps the epoch pointer while the
//! writer mutex is held, so a thread that instead acquires the mutex *while
//! holding* an epoch guard closes a cycle with the writer and can deadlock.
//! `cargo xtask analyze` proves the order statically over the call graph;
//! this module re-checks it dynamically so that code the static pass cannot
//! see — trait objects, callbacks, future refactors that defeat the name
//! heuristics — still trips loudly in `check-invariants` test runs instead
//! of deadlocking silently in production.
//!
//! The mechanism is a thread-local count of live epoch-lock guards:
//! [`note_epoch_guard`] increments it for the lifetime of the returned
//! token, and [`check_writer_lock`] asserts it is zero immediately before
//! every writer-mutex acquisition. Without the feature both are free no-ops
//! (a zero-sized token, an empty check), so the hot read path pays nothing
//! in release builds.

/// RAII token recording that the current thread holds (or is about to take)
/// a guard on the published-epoch `RwLock`. Keep it alive exactly as long
/// as the lock guard itself.
#[must_use = "the token must outlive the epoch lock guard it records"]
pub(crate) struct EpochGuardToken {
    _private: (),
}

#[cfg(feature = "check-invariants")]
mod depth {
    use std::cell::Cell;

    thread_local! {
        /// Live published-epoch guards on this thread.
        pub(super) static EPOCH_GUARDS: Cell<u32> = const { Cell::new(0) };
    }
}

/// Records an epoch-lock acquisition; call just before taking a
/// `published.read()` / `published.write()` guard and bind the token for
/// the guard's lifetime.
pub(crate) fn note_epoch_guard() -> EpochGuardToken {
    #[cfg(feature = "check-invariants")]
    depth::EPOCH_GUARDS.with(|count| count.set(count.get() + 1));
    EpochGuardToken { _private: () }
}

#[cfg(feature = "check-invariants")]
impl Drop for EpochGuardToken {
    fn drop(&mut self) {
        depth::EPOCH_GUARDS.with(|count| count.set(count.get().saturating_sub(1)));
    }
}

/// Asserts the canonical order before a writer-mutex acquisition: the
/// current thread must not already hold a published-epoch guard.
pub(crate) fn check_writer_lock() {
    #[cfg(feature = "check-invariants")]
    depth::EPOCH_GUARDS.with(|count| {
        assert!(
            count.get() == 0,
            "check-invariants: lock-order violation: writer mutex requested while this thread \
             holds {} published-epoch guard(s) (canonical order: writer mutex before the epoch \
             RwLock — see docs/ARCHITECTURE.md, Invariant model)",
            count.get()
        );
    });
}
