//! Attribute schemas.
//!
//! A schema is an ordered list of named attributes; records store their values
//! positionally against it. Blocking techniques are configured with the names
//! of the attributes they should consider (e.g. `title` + `authors` for Cora,
//! `first_name` + `last_name` for NC Voter).

use std::collections::HashMap;
use std::sync::Arc;

use crate::error::{DatasetError, Result};

/// An ordered, named attribute schema shared by all records of a dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    names: Vec<String>,
    index: HashMap<String, usize>,
}

impl Schema {
    /// Builds a schema from attribute names. Duplicate names are rejected.
    ///
    /// # Examples
    /// ```
    /// use sablock_datasets::Schema;
    /// let schema = Schema::new(["title", "authors"]).unwrap();
    /// assert_eq!(schema.len(), 2);
    /// assert_eq!(schema.index_of("authors"), Some(1));
    /// ```
    pub fn new<I, S>(names: I) -> Result<Self>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        let mut index = HashMap::with_capacity(names.len());
        for (i, name) in names.iter().enumerate() {
            if index.insert(name.clone(), i).is_some() {
                return Err(DatasetError::InvalidConfig(format!("duplicate attribute name: {name}")));
            }
        }
        Ok(Self { names, index })
    }

    /// Builds a schema, wrapped in an [`Arc`] for cheap sharing across records.
    pub fn shared<I, S>(names: I) -> Result<Arc<Self>>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Ok(Arc::new(Self::new(names)?))
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The attribute names, in declaration order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Position of an attribute by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// Position of an attribute by name, or an error naming the attribute.
    pub fn require(&self, name: &str) -> Result<usize> {
        self.index_of(name)
            .ok_or_else(|| DatasetError::UnknownAttribute(name.to_string()))
    }

    /// Resolves a list of attribute names to their positions, preserving order.
    pub fn resolve<S: AsRef<str>>(&self, names: &[S]) -> Result<Vec<usize>> {
        names.iter().map(|n| self.require(n.as_ref())).collect()
    }

    /// Name of the attribute at `index`.
    pub fn name_at(&self, index: usize) -> Option<&str> {
        self.names.get(index).map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_indexes() {
        let s = Schema::new(["title", "authors", "year"]).unwrap();
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.index_of("title"), Some(0));
        assert_eq!(s.index_of("year"), Some(2));
        assert_eq!(s.index_of("missing"), None);
        assert_eq!(s.name_at(1), Some("authors"));
        assert_eq!(s.name_at(9), None);
    }

    #[test]
    fn rejects_duplicates() {
        let err = Schema::new(["a", "b", "a"]).unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn require_and_resolve() {
        let s = Schema::new(["first_name", "last_name", "gender", "race"]).unwrap();
        assert_eq!(s.require("gender").unwrap(), 2);
        assert!(s.require("city").is_err());
        assert_eq!(s.resolve(&["last_name", "first_name"]).unwrap(), vec![1, 0]);
        assert!(s.resolve(&["last_name", "zip"]).is_err());
    }

    #[test]
    fn empty_schema_allowed() {
        let s = Schema::new(Vec::<String>::new()).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn shared_schema_is_arc() {
        let s = Schema::shared(["a"]).unwrap();
        let s2 = Arc::clone(&s);
        assert_eq!(s2.index_of("a"), Some(0));
    }
}
