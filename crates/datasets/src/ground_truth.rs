//! Entity-level ground truth: which records refer to the same real-world
//! entity.
//!
//! The evaluation measures of the paper (PC, PQ, RR, FM — Section 6) are all
//! defined against the set of *true matches* `Ω_tp`: record pairs that
//! represent the same entity. We store ground truth as an entity id per
//! record; true-match pairs follow from equality of entity ids.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use crate::record::{RecordId, RecordPair};

/// Identifier of a real-world entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EntityId(pub u32);

impl fmt::Display for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Ground truth: the entity each record represents.
///
/// Clusters are kept in a `BTreeMap` so that every iteration — most
/// importantly [`GroundTruth::true_match_pairs`] — enumerates in a stable,
/// reproducible order across runs and platforms.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    entity_of: Vec<EntityId>,
    clusters: BTreeMap<EntityId, Vec<RecordId>>,
}

impl GroundTruth {
    /// Builds ground truth from a per-record entity assignment, where element
    /// `i` is the entity of record `i`.
    pub fn from_assignments(entity_of: Vec<EntityId>) -> Self {
        let mut clusters: BTreeMap<EntityId, Vec<RecordId>> = BTreeMap::new();
        for (i, &entity) in entity_of.iter().enumerate() {
            // sablock-lint: allow(panic-reachability): dataset generation caps assignments at MAX_RECORD_ID; only a name-heuristic `.truncate` edge makes this request-reachable
            let id = RecordId::try_from_index(i).expect("assignment table exceeds MAX_RECORD_ID records");
            clusters.entry(entity).or_default().push(id);
        }
        Self { entity_of, clusters }
    }

    /// Number of records covered.
    pub fn num_records(&self) -> usize {
        self.entity_of.len()
    }

    /// Number of distinct entities.
    pub fn num_entities(&self) -> usize {
        self.clusters.len()
    }

    /// Entity of a record, if the record id is in range.
    pub fn entity_of(&self, record: RecordId) -> Option<EntityId> {
        self.entity_of.get(record.index()).copied()
    }

    /// Whether two records represent the same entity. Records out of range
    /// (or a record paired with itself) are never a match.
    pub fn is_match(&self, a: RecordId, b: RecordId) -> bool {
        if a == b {
            return false;
        }
        match (self.entity_of(a), self.entity_of(b)) {
            (Some(ea), Some(eb)) => ea == eb,
            _ => false,
        }
    }

    /// Whether a canonical pair is a true match.
    pub fn is_match_pair(&self, pair: &RecordPair) -> bool {
        self.is_match(pair.first(), pair.second())
    }

    /// The dense per-record entity table: element `i` is the entity of record
    /// `i`. Records beyond the table (ids the ground truth never covered) are
    /// unmatched by definition, so a bulk matching probe is two bounds-checked
    /// loads and one compare — the representation the streaming Γ counter
    /// monomorphises into its merge loop instead of a per-pair closure call.
    pub fn entity_table(&self) -> &[EntityId] {
        &self.entity_of
    }

    /// Total number of true-match pairs `|Ω_tp| = Σ_c |c|·(|c|−1)/2`.
    pub fn num_true_matches(&self) -> u64 {
        self.clusters
            .values()
            .map(|members| {
                let n = members.len() as u64;
                n * (n - 1) / 2
            })
            .sum()
    }

    /// Total number of distinct record pairs `|Ω| = n·(n−1)/2`.
    pub fn num_total_pairs(&self) -> u64 {
        let n = self.entity_of.len() as u64;
        n * (n.saturating_sub(1)) / 2
    }

    /// Iterates over all true-match pairs.
    pub fn true_match_pairs(&self) -> impl Iterator<Item = RecordPair> + '_ {
        self.clusters.values().flat_map(|members| {
            let members = members.clone();
            (0..members.len()).flat_map(move |i| {
                let members = members.clone();
                ((i + 1)..members.len()).filter_map(move |j| RecordPair::new(members[i], members[j]))
            })
        })
    }

    /// The duplicate clusters (entity → member records), for statistics.
    pub fn clusters(&self) -> &BTreeMap<EntityId, Vec<RecordId>> {
        &self.clusters
    }

    /// Distribution of cluster sizes: `size → number of entities of that size`.
    pub fn cluster_size_histogram(&self) -> HashMap<usize, usize> {
        let mut hist = HashMap::new();
        for members in self.clusters.values() {
            *hist.entry(members.len()).or_insert(0) += 1;
        }
        hist
    }

    /// Restricts the ground truth to the first `n` records (used by the
    /// scalability experiment when slicing datasets into prefixes).
    pub fn truncate(&self, n: usize) -> Self {
        Self::from_assignments(self.entity_of.iter().take(n).copied().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GroundTruth {
        // records 0,1,2 -> entity 0; records 3,4 -> entity 1; record 5 -> entity 2
        GroundTruth::from_assignments(vec![
            EntityId(0),
            EntityId(0),
            EntityId(0),
            EntityId(1),
            EntityId(1),
            EntityId(2),
        ])
    }

    #[test]
    fn counts_are_correct() {
        let gt = sample();
        assert_eq!(gt.num_records(), 6);
        assert_eq!(gt.num_entities(), 3);
        assert_eq!(gt.num_true_matches(), 3 + 1); // C(3,2) + C(2,2)
        assert_eq!(gt.num_total_pairs(), 15);
    }

    #[test]
    fn match_queries() {
        let gt = sample();
        assert!(gt.is_match(RecordId(0), RecordId(2)));
        assert!(gt.is_match(RecordId(3), RecordId(4)));
        assert!(!gt.is_match(RecordId(0), RecordId(3)));
        assert!(!gt.is_match(RecordId(5), RecordId(5)));
        assert!(!gt.is_match(RecordId(0), RecordId(99)));
        let pair = RecordPair::new(RecordId(1), RecordId(0)).unwrap();
        assert!(gt.is_match_pair(&pair));
    }

    #[test]
    fn true_match_pairs_enumerated() {
        let gt = sample();
        let pairs: Vec<RecordPair> = gt.true_match_pairs().collect();
        assert_eq!(pairs.len() as u64, gt.num_true_matches());
        assert!(pairs.iter().all(|p| gt.is_match_pair(p)));
    }

    #[test]
    fn histogram_and_clusters() {
        let gt = sample();
        let hist = gt.cluster_size_histogram();
        assert_eq!(hist[&3], 1);
        assert_eq!(hist[&2], 1);
        assert_eq!(hist[&1], 1);
        assert_eq!(gt.clusters().len(), 3);
    }

    #[test]
    fn truncation_preserves_prefix() {
        let gt = sample().truncate(4);
        assert_eq!(gt.num_records(), 4);
        assert_eq!(gt.num_entities(), 2);
        assert_eq!(gt.num_true_matches(), 3); // C(3,2) + C(1,2) = 3 + 0
    }

    #[test]
    fn empty_ground_truth() {
        let gt = GroundTruth::from_assignments(vec![]);
        assert_eq!(gt.num_records(), 0);
        assert_eq!(gt.num_true_matches(), 0);
        assert_eq!(gt.num_total_pairs(), 0);
        assert_eq!(gt.true_match_pairs().count(), 0);
    }

    #[test]
    fn entity_display() {
        assert_eq!(EntityId(3).to_string(), "e3");
    }
}
