//! Dataset statistics used to document and sanity-check generated data.
//!
//! The experiments in the paper are driven by characteristics of the data:
//! how noisy it is, how many values are missing, and how duplicate clusters
//! are shaped. [`DatasetStats`] summarises those characteristics so that
//! `EXPERIMENTS.md` can report them next to the paper's description.

use std::collections::BTreeMap;

use crate::dataset::Dataset;

/// Summary statistics of a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Number of records.
    pub records: usize,
    /// Number of distinct entities.
    pub entities: usize,
    /// Number of true-match pairs.
    pub true_matches: u64,
    /// Fraction of attribute cells that are missing, per attribute name.
    pub missing_rate_per_attribute: BTreeMap<String, f64>,
    /// Histogram of duplicate-cluster sizes (size → count of entities).
    pub cluster_size_histogram: BTreeMap<usize, usize>,
    /// Mean cluster size.
    pub mean_cluster_size: f64,
    /// Largest cluster size.
    pub max_cluster_size: usize,
}

impl DatasetStats {
    /// Computes statistics over a dataset.
    pub fn compute(dataset: &Dataset) -> Self {
        let schema = dataset.schema();
        let n = dataset.len();
        let mut missing_counts = vec![0usize; schema.len()];
        for record in dataset.records() {
            for (i, count) in missing_counts.iter_mut().enumerate() {
                if record.value_at(i).is_none() {
                    *count += 1;
                }
            }
        }
        let missing_rate_per_attribute = schema
            .names()
            .iter()
            .zip(missing_counts.iter())
            .map(|(name, &miss)| {
                let rate = if n == 0 { 0.0 } else { miss as f64 / n as f64 };
                (name.clone(), rate)
            })
            .collect();

        let histogram: BTreeMap<usize, usize> = dataset
            .ground_truth()
            .cluster_size_histogram()
            .into_iter()
            .collect();
        let entities = dataset.ground_truth().num_entities();
        let mean_cluster_size = if entities == 0 { 0.0 } else { n as f64 / entities as f64 };
        let max_cluster_size = histogram.keys().copied().max().unwrap_or(0);

        Self {
            records: n,
            entities,
            true_matches: dataset.ground_truth().num_true_matches(),
            missing_rate_per_attribute,
            cluster_size_histogram: histogram,
            mean_cluster_size,
            max_cluster_size,
        }
    }

    /// Overall fraction of missing attribute cells.
    pub fn overall_missing_rate(&self) -> f64 {
        if self.missing_rate_per_attribute.is_empty() {
            return 0.0;
        }
        self.missing_rate_per_attribute.values().sum::<f64>() / self.missing_rate_per_attribute.len() as f64
    }

    /// Renders the statistics as a small human-readable report.
    pub fn to_report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "records: {}\nentities: {}\ntrue matches: {}\nmean cluster size: {:.2}\nmax cluster size: {}\n",
            self.records, self.entities, self.true_matches, self.mean_cluster_size, self.max_cluster_size
        ));
        out.push_str("missing rates:\n");
        for (attr, rate) in &self.missing_rate_per_attribute {
            out.push_str(&format!("  {attr}: {:.1}%\n", rate * 100.0));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use crate::ground_truth::EntityId;
    use crate::schema::Schema;

    fn sample() -> Dataset {
        let schema = Schema::shared(["title", "venue"]).unwrap();
        let mut b = DatasetBuilder::new("s", schema);
        b.push_values(vec![Some("a".into()), Some("nips".into())], EntityId(0)).unwrap();
        b.push_values(vec![Some("a!".into()), None], EntityId(0)).unwrap();
        b.push_values(vec![Some("b".into()), None], EntityId(1)).unwrap();
        b.push_values(vec![Some("c".into()), Some("tr".into())], EntityId(2)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn computes_counts_and_rates() {
        let stats = DatasetStats::compute(&sample());
        assert_eq!(stats.records, 4);
        assert_eq!(stats.entities, 3);
        assert_eq!(stats.true_matches, 1);
        assert_eq!(stats.missing_rate_per_attribute["title"], 0.0);
        assert_eq!(stats.missing_rate_per_attribute["venue"], 0.5);
        assert!((stats.overall_missing_rate() - 0.25).abs() < 1e-12);
        assert_eq!(stats.max_cluster_size, 2);
        assert!((stats.mean_cluster_size - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(stats.cluster_size_histogram[&2], 1);
        assert_eq!(stats.cluster_size_histogram[&1], 2);
    }

    #[test]
    fn report_mentions_key_numbers() {
        let report = DatasetStats::compute(&sample()).to_report();
        assert!(report.contains("records: 4"));
        assert!(report.contains("venue"));
        assert!(report.contains("50.0%"));
    }

    #[test]
    fn empty_dataset() {
        let schema = Schema::shared(["a"]).unwrap();
        let ds = DatasetBuilder::new("empty", schema).build().unwrap();
        let stats = DatasetStats::compute(&ds);
        assert_eq!(stats.records, 0);
        assert_eq!(stats.entities, 0);
        assert_eq!(stats.mean_cluster_size, 0.0);
        assert_eq!(stats.overall_missing_rate(), 0.0);
    }
}
