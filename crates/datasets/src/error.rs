//! Error types for dataset construction and I/O.

use std::fmt;

/// Errors raised while building, reading or writing datasets.
#[derive(Debug)]
pub enum DatasetError {
    /// An attribute name was referenced that does not exist in the schema.
    UnknownAttribute(String),
    /// A record was added whose number of values does not match the schema.
    ArityMismatch {
        /// Number of attributes declared by the schema.
        expected: usize,
        /// Number of values supplied for the record.
        actual: usize,
    },
    /// A referenced record id is out of bounds.
    UnknownRecord(u32),
    /// A record id would exceed the 32-bit id space the packed-pair fast path
    /// relies on (`u32::MAX` itself is reserved as a merge sentinel).
    /// Assigning such an id would silently truncate and corrupt pair counts
    /// downstream, so construction fails with this typed error instead.
    RecordIdOverflow(u64),
    /// A CSV document could not be parsed.
    Csv {
        /// 1-based line number where parsing failed.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// An underlying I/O error.
    Io(std::io::Error),
    /// A generator or dataset configuration value is invalid.
    InvalidConfig(String),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownAttribute(name) => write!(f, "unknown attribute: {name}"),
            Self::ArityMismatch { expected, actual } => {
                write!(f, "record has {actual} values but the schema declares {expected} attributes")
            }
            Self::UnknownRecord(id) => write!(f, "unknown record id: {id}"),
            Self::RecordIdOverflow(id) => write!(
                f,
                "record id {id} exceeds the maximum representable record id {} (u32::MAX is reserved)",
                crate::record::MAX_RECORD_ID
            ),
            Self::Csv { line, message } => write!(f, "CSV parse error at line {line}: {message}"),
            Self::Io(err) => write!(f, "I/O error: {err}"),
            Self::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for DatasetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DatasetError {
    fn from(err: std::io::Error) -> Self {
        Self::Io(err)
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, DatasetError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = DatasetError::UnknownAttribute("venue".into());
        assert!(e.to_string().contains("venue"));
        let e = DatasetError::ArityMismatch { expected: 5, actual: 3 };
        assert!(e.to_string().contains('5') && e.to_string().contains('3'));
        let e = DatasetError::Csv { line: 7, message: "unterminated quote".into() };
        assert!(e.to_string().contains("line 7"));
        let e = DatasetError::InvalidConfig("records must be > 0".into());
        assert!(e.to_string().contains("records"));
        let e = DatasetError::RecordIdOverflow(u64::from(u32::MAX) + 7);
        assert!(e.to_string().contains("reserved"));
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: DatasetError = io.into();
        assert!(matches!(e, DatasetError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
