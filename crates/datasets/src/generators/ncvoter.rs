//! An NC-Voter-like registration corpus generator.
//!
//! The NC Voter benchmark used in the paper is a 292,892-record extract of the
//! North Carolina voter registration roll: person records with first/last
//! name, gender and race (including the uncertain value `u`). It is *large
//! and relatively clean* — most duplicates differ only by small typos — and
//! its semantic features come from the small categorical space race × gender,
//! which yields the 12-bit semhash signature mentioned in Section 6.2.
//!
//! [`NcVoterGenerator`] synthesises a corpus with those properties at any
//! requested size, which the scalability experiment (Fig. 13) slices into
//! increasing prefixes. At paper scale (292,892 records) the generator
//! streams: [`NcVoterGenerator::stream`] yields records in duplicate-cluster
//! order with only one cluster buffered at a time, and
//! [`NcVoterStream::next_chunk`] hands them out in bounded-size chunks, so
//! generation-side transient memory stays constant no matter how large the
//! corpus grows. [`NcVoterGenerator::generate`] is built on the same stream
//! and therefore produces identical records.

use std::collections::VecDeque;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::corruption::{CorruptionConfig, Corruptor};
use crate::dataset::{Dataset, DatasetBuilder};
use crate::error::{DatasetError, Result};
use crate::generators::sample_cluster_size;
use crate::generators::vocabulary as vocab;
use crate::ground_truth::EntityId;
use crate::schema::Schema;

/// Default number of records per streamed chunk — small enough to keep the
/// working set of chunk consumers in cache, large enough to amortise
/// per-chunk overhead at paper scale.
pub const DEFAULT_STREAM_CHUNK: usize = 16_384;

/// The attribute names of the NC-Voter-like schema, in order.
pub const NCVOTER_ATTRIBUTES: [&str; 8] =
    ["first_name", "last_name", "middle_name", "age", "gender", "race", "city", "street"];

/// Configuration of the NC-Voter-like generator.
#[derive(Debug, Clone)]
pub struct NcVoterConfig {
    /// Target number of records. The paper uses a 30,000-record subset for the
    /// quality experiments and 292,892 records for scalability.
    pub num_records: usize,
    /// Probability that a voter appears more than once in the roll.
    pub duplicate_probability: f64,
    /// Mean number of extra registrations for duplicated voters.
    pub mean_extra_duplicates: f64,
    /// Maximum cluster size.
    pub max_cluster_size: usize,
    /// Corruption profile applied to duplicate registrations.
    pub corruption: CorruptionConfig,
    /// Probability that the `gender` attribute of a record carries the
    /// uncertain value `u` instead of the person's true gender.
    pub uncertain_gender_probability: f64,
    /// Probability that the `race` attribute of a record carries `u`.
    pub uncertain_race_probability: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NcVoterConfig {
    fn default() -> Self {
        Self {
            num_records: 30_000,
            duplicate_probability: 0.25,
            mean_extra_duplicates: 0.6,
            max_cluster_size: 4,
            corruption: CorruptionConfig::clean(),
            uncertain_gender_probability: 0.05,
            uncertain_race_probability: 0.08,
            seed: 0x5eed_0007,
        }
    }
}

impl NcVoterConfig {
    /// A small configuration for unit tests and doc examples.
    pub fn small() -> Self {
        Self {
            num_records: 1_000,
            ..Self::default()
        }
    }

    /// The full-scale configuration matching the paper's 292,892-record
    /// extract (Fig. 13's right-most point).
    pub fn full_scale() -> Self {
        Self {
            num_records: 292_892,
            ..Self::default()
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.num_records == 0 {
            return Err(DatasetError::InvalidConfig("num_records must be > 0".into()));
        }
        if self.max_cluster_size == 0 {
            return Err(DatasetError::InvalidConfig("max_cluster_size must be > 0".into()));
        }
        for (name, p) in [
            ("duplicate_probability", self.duplicate_probability),
            ("uncertain_gender_probability", self.uncertain_gender_probability),
            ("uncertain_race_probability", self.uncertain_race_probability),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(DatasetError::InvalidConfig(format!("{name} must be in [0, 1]")));
            }
        }
        self.corruption.validate().map_err(DatasetError::InvalidConfig)
    }
}

/// A clean voter entity.
///
/// `recorded_gender` / `recorded_race` are what the registration roll stores
/// for this person — possibly the uncertain value `u`. Uncertainty is decided
/// *per entity*, not per record: a person registered with race `u` carries
/// that value in every duplicate registration, which is why the paper calls
/// the NC Voter semantic features "not noisy, although they may contain
/// uncertain values".
#[derive(Debug, Clone)]
struct Voter {
    first_name: String,
    last_name: String,
    middle_name: Option<String>,
    age: u32,
    recorded_gender: String,
    recorded_race: String,
    city: String,
    street: String,
}

/// Generates NC-Voter-like datasets.
#[derive(Debug, Clone)]
pub struct NcVoterGenerator {
    config: NcVoterConfig,
}

impl NcVoterGenerator {
    /// Creates a generator with the given configuration.
    pub fn new(config: NcVoterConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &NcVoterConfig {
        &self.config
    }

    /// Generates the dataset deterministically from the configured seed.
    ///
    /// Implemented on top of [`NcVoterGenerator::stream`], consuming the
    /// record stream in [`DEFAULT_STREAM_CHUNK`]-sized chunks, so the only
    /// unbounded allocation is the returned [`Dataset`] itself.
    pub fn generate(&self) -> Result<Dataset> {
        let mut stream = self.stream()?;
        let mut builder = DatasetBuilder::new("ncvoter-synthetic", Arc::clone(stream.schema()));
        builder.reserve(self.config.num_records);
        while let Some(chunk) = stream.next_chunk(DEFAULT_STREAM_CHUNK) {
            for (values, entity) in chunk {
                builder.push_values(values, entity)?;
            }
        }
        builder.build()
    }

    /// Generates the dataset using an external RNG.
    pub fn generate_with_rng<R: Rng>(&self, rng: &mut R) -> Result<Dataset> {
        self.config.validate()?;
        let schema = Schema::shared(NCVOTER_ATTRIBUTES)?;
        let mut builder = DatasetBuilder::new("ncvoter-synthetic", schema);
        builder.reserve(self.config.num_records);
        let corruptor = Corruptor::new(self.config.corruption.clone());

        let mut entity_counter = 0u32;
        while builder.len() < self.config.num_records {
            let entity = EntityId(entity_counter);
            entity_counter += 1;
            let remaining = self.config.num_records - builder.len();
            for (values, entity) in self.next_cluster(rng, &corruptor, entity, remaining) {
                builder.push_values(values, entity)?;
            }
        }
        builder.build()
    }

    /// Opens a record stream over this configuration: an iterator of
    /// `(values, entity)` rows in exactly the order [`generate`] would store
    /// them, holding at most one duplicate cluster of transient state.
    ///
    /// [`generate`]: NcVoterGenerator::generate
    pub fn stream(&self) -> Result<NcVoterStream> {
        self.config.validate()?;
        Ok(NcVoterStream {
            rng: StdRng::seed_from_u64(self.config.seed),
            corruptor: Corruptor::new(self.config.corruption.clone()),
            schema: Schema::shared(NCVOTER_ATTRIBUTES)?,
            pending: VecDeque::new(),
            emitted: 0,
            entity_counter: 0,
            generator: self.clone(),
        })
    }

    /// Generates one duplicate cluster: samples a voter, draws a cluster
    /// size, and renders `min(cluster, remaining)` registrations. The single
    /// source of RNG-draw ordering shared by [`generate_with_rng`] and the
    /// streaming path, which is what keeps the two byte-identical.
    ///
    /// [`generate_with_rng`]: NcVoterGenerator::generate_with_rng
    fn next_cluster<R: Rng>(
        &self,
        rng: &mut R,
        corruptor: &Corruptor,
        entity: EntityId,
        remaining: usize,
    ) -> Vec<(Vec<Option<String>>, EntityId)> {
        let voter = self.sample_voter(rng);
        let cluster = sample_cluster_size(
            rng,
            self.config.duplicate_probability,
            self.config.mean_extra_duplicates,
            self.config.max_cluster_size,
        );
        (0..cluster.min(remaining))
            .map(|copy| (self.render_registration(&voter, copy > 0, corruptor, rng), entity))
            .collect()
    }

    fn sample_voter<R: Rng>(&self, rng: &mut R) -> Voter {
        let gender = match rng.gen_range(0..100) {
            0..=47 => "m",
            48..=95 => "f",
            _ => "u",
        };
        let race = match rng.gen_range(0..100) {
            0..=64 => "w",
            65..=84 => "b",
            85..=88 => "a",
            89..=90 => "i",
            91..=95 => "o",
            _ => "u",
        };
        // The roll may record the person's gender/race as uncertain; this is
        // an entity-level property shared by all of the person's records.
        let recorded_gender = if rng.gen_bool(self.config.uncertain_gender_probability) {
            "u".to_string()
        } else {
            gender.to_string()
        };
        let recorded_race = if rng.gen_bool(self.config.uncertain_race_probability) {
            "u".to_string()
        } else {
            race.to_string()
        };
        Voter {
            first_name: vocab::zipf_pick(rng, vocab::GIVEN_NAMES).to_string(),
            last_name: vocab::zipf_pick(rng, vocab::SURNAMES).to_string(),
            middle_name: if rng.gen_bool(0.6) {
                Some(vocab::zipf_pick(rng, vocab::GIVEN_NAMES).to_string())
            } else {
                None
            },
            age: rng.gen_range(18..=95),
            recorded_gender,
            recorded_race,
            city: vocab::uniform_pick(rng, vocab::CITIES).to_string(),
            street: format!(
                "{} {} {}",
                rng.gen_range(1..=9999),
                vocab::uniform_pick(rng, vocab::STREETS),
                if rng.gen_bool(0.5) { "st" } else { "rd" }
            ),
        }
    }

    fn render_registration<R: Rng>(
        &self,
        voter: &Voter,
        corrupt: bool,
        corruptor: &Corruptor,
        rng: &mut R,
    ) -> Vec<Option<String>> {
        let mut first = voter.first_name.clone();
        let mut last = voter.last_name.clone();
        let mut middle = voter.middle_name.clone();
        if corrupt {
            first = corruptor.corrupt_token(&first, rng);
            last = corruptor.corrupt_token(&last, rng);
            // Duplicate registrations often abbreviate or drop the middle name.
            middle = match (middle, rng.gen_range(0..3)) {
                (Some(m), 0) => Some(m.chars().take(1).collect()),
                (Some(_), 1) => None,
                (m, _) => m,
            };
        }

        // Gender and race (possibly recorded as uncertain) are stable per
        // person and therefore identical across a person's registrations.
        let gender = voter.recorded_gender.clone();
        let race = voter.recorded_race.clone();

        // Age drifts by a year between registrations; city/street may change
        // when people move, which keeps non-name attributes from being a
        // trivially perfect blocking key.
        let age = if corrupt && rng.gen_bool(0.4) {
            voter.age + 1
        } else {
            voter.age
        };
        let (city, street) = if corrupt && rng.gen_bool(0.15) {
            (
                vocab::uniform_pick(rng, vocab::CITIES).to_string(),
                format!("{} {} st", rng.gen_range(1..=9999), vocab::uniform_pick(rng, vocab::STREETS)),
            )
        } else {
            (voter.city.clone(), voter.street.clone())
        };

        vec![
            Some(first),
            Some(last),
            middle,
            Some(age.to_string()),
            Some(gender),
            Some(race),
            Some(city),
            Some(street),
        ]
    }
}

/// A bounded-memory record stream over an NC-Voter-like configuration.
///
/// Created by [`NcVoterGenerator::stream`]. Yields `(values, entity)` rows in
/// the exact order [`NcVoterGenerator::generate`] would store them; the only
/// buffered state is the current duplicate cluster (at most
/// `max_cluster_size` rows), so streaming 292,892 records costs the same
/// transient memory as streaming 1,000.
#[derive(Debug)]
pub struct NcVoterStream {
    rng: StdRng,
    corruptor: Corruptor,
    schema: Arc<Schema>,
    pending: VecDeque<(Vec<Option<String>>, EntityId)>,
    emitted: usize,
    entity_counter: u32,
    generator: NcVoterGenerator,
}

impl NcVoterStream {
    /// The schema every streamed row conforms to.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of records still to be streamed. Consistent at every point of
    /// consumption: after a partial final chunk it reports exactly 0, never
    /// wraps, and stays 0 on further `next_chunk` calls.
    pub fn records_remaining(&self) -> usize {
        self.generator.config.num_records.saturating_sub(self.emitted)
    }

    /// Pulls the next chunk of up to `chunk_size` records, or `None` once the
    /// stream is exhausted. The final chunk may be shorter.
    ///
    /// A `chunk_size` of 0 would otherwise request nothing and leave callers
    /// looping forever on a stream that never drains; it is clamped to 1, so
    /// every call on a non-exhausted stream makes progress.
    pub fn next_chunk(&mut self, chunk_size: usize) -> Option<Vec<(Vec<Option<String>>, EntityId)>> {
        let chunk: Vec<_> = self.by_ref().take(chunk_size.max(1)).collect();
        if chunk.is_empty() {
            None
        } else {
            Some(chunk)
        }
    }
}

impl Iterator for NcVoterStream {
    type Item = (Vec<Option<String>>, EntityId);

    fn next(&mut self) -> Option<Self::Item> {
        let total = self.generator.config.num_records;
        while self.pending.is_empty() {
            if self.emitted >= total {
                return None;
            }
            let entity = EntityId(self.entity_counter);
            self.entity_counter += 1;
            let remaining = total - self.emitted;
            let cluster = self
                .generator
                .next_cluster(&mut self.rng, &self.corruptor, entity, remaining);
            self.pending.extend(cluster);
        }
        self.emitted += 1;
        self.pending.pop_front()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.records_remaining();
        (remaining, Some(remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DatasetStats;

    fn small_dataset() -> Dataset {
        NcVoterGenerator::new(NcVoterConfig::small()).generate().unwrap()
    }

    #[test]
    fn generates_requested_number_of_records() {
        let ds = small_dataset();
        assert_eq!(ds.len(), 1_000);
        assert_eq!(ds.schema().names(), &NCVOTER_ATTRIBUTES);
        assert_eq!(ds.name(), "ncvoter-synthetic");
    }

    #[test]
    fn default_and_full_scale_configs() {
        assert_eq!(NcVoterConfig::default().num_records, 30_000);
        assert_eq!(NcVoterConfig::full_scale().num_records, 292_892);
        assert!(NcVoterConfig::default().validate().is_ok());
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let a = NcVoterGenerator::new(NcVoterConfig::small()).generate().unwrap();
        let b = NcVoterGenerator::new(NcVoterConfig::small()).generate().unwrap();
        for (ra, rb) in a.records().iter().zip(b.records()) {
            assert_eq!(ra.values(), rb.values());
        }
    }

    #[test]
    fn clusters_are_small_and_data_is_clean() {
        let ds = small_dataset();
        let stats = DatasetStats::compute(&ds);
        assert!(stats.mean_cluster_size < 2.0, "NC Voter clusters must be small, got {}", stats.mean_cluster_size);
        assert!(stats.max_cluster_size <= 4);
        assert!(stats.true_matches > 0);
        // Names are never missing in a registration roll.
        assert_eq!(stats.missing_rate_per_attribute["first_name"], 0.0);
        assert_eq!(stats.missing_rate_per_attribute["last_name"], 0.0);
    }

    #[test]
    fn gender_and_race_use_expected_codes() {
        let ds = small_dataset();
        for record in ds.records() {
            let g = record.value("gender").unwrap();
            let r = record.value("race").unwrap();
            assert!(vocab::GENDER_CODES.contains(&g), "unexpected gender {g}");
            assert!(vocab::RACE_CODES.contains(&r), "unexpected race {r}");
        }
    }

    #[test]
    fn uncertain_values_appear_at_roughly_the_configured_rate() {
        let ds = NcVoterGenerator::new(NcVoterConfig {
            num_records: 5_000,
            uncertain_gender_probability: 0.10,
            uncertain_race_probability: 0.10,
            ..NcVoterConfig::small()
        })
        .generate()
        .unwrap();
        let unknown_gender = ds.records().iter().filter(|r| r.value("gender") == Some("u")).count();
        let rate = unknown_gender as f64 / ds.len() as f64;
        // True 'u' genders (~4%) plus injected uncertainty (~10%).
        assert!(rate > 0.08 && rate < 0.25, "uncertain gender rate {rate}");
    }

    #[test]
    fn duplicates_keep_names_similar() {
        let ds = small_dataset();
        for members in ds.ground_truth().clusters().values() {
            if members.len() < 2 {
                continue;
            }
            let a = ds.record(members[0]).unwrap();
            let b = ds.record(members[1]).unwrap();
            let la = a.value("last_name").unwrap();
            let lb = b.value("last_name").unwrap();
            // Clean corruption: last names differ by at most a couple of characters.
            let len_diff = (la.len() as i64 - lb.len() as i64).abs();
            assert!(len_diff <= 2, "duplicate last names diverged too much: {la} vs {lb}");
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(NcVoterConfig { num_records: 0, ..NcVoterConfig::small() }.validate().is_err());
        assert!(NcVoterConfig { uncertain_race_probability: 2.0, ..NcVoterConfig::small() }.validate().is_err());
        let gen = NcVoterGenerator::new(NcVoterConfig { max_cluster_size: 0, ..NcVoterConfig::small() });
        assert!(gen.generate().is_err());
    }

    #[test]
    fn stream_matches_generate_exactly() {
        let generator = NcVoterGenerator::new(NcVoterConfig { num_records: 1_500, ..NcVoterConfig::small() });
        let dataset = generator.generate().unwrap();
        let streamed: Vec<_> = generator.stream().unwrap().collect();
        assert_eq!(streamed.len(), dataset.len());
        for (i, (values, entity)) in streamed.iter().enumerate() {
            let record = dataset.record(crate::RecordId(i as u32)).unwrap();
            assert_eq!(values, record.values(), "record {i}");
            assert_eq!(Some(*entity), dataset.ground_truth().entity_of(record.id()), "entity of record {i}");
        }
        // And the streaming path agrees with the legacy external-RNG path.
        let mut rng = StdRng::seed_from_u64(generator.config().seed);
        let external = generator.generate_with_rng(&mut rng).unwrap();
        for (a, b) in dataset.records().iter().zip(external.records()) {
            assert_eq!(a.values(), b.values());
        }
    }

    #[test]
    fn stream_chunks_are_bounded_and_cover_everything() {
        let generator = NcVoterGenerator::new(NcVoterConfig { num_records: 1_000, ..NcVoterConfig::small() });
        let mut stream = generator.stream().unwrap();
        assert_eq!(stream.records_remaining(), 1_000);
        assert_eq!(stream.size_hint(), (1_000, Some(1_000)));
        assert_eq!(stream.schema().names(), &NCVOTER_ATTRIBUTES);
        let mut total = 0;
        while let Some(chunk) = stream.next_chunk(256) {
            assert!(chunk.len() <= 256);
            total += chunk.len();
            assert_eq!(stream.records_remaining(), 1_000 - total);
        }
        assert_eq!(total, 1_000);
        assert!(stream.next_chunk(256).is_none(), "exhausted stream stays exhausted");
    }

    #[test]
    fn zero_chunk_size_is_clamped_and_drains() {
        // chunk_size == 0 must not loop forever or hand out empty chunks: it
        // is clamped to 1 and the stream still drains completely.
        let generator = NcVoterGenerator::new(NcVoterConfig { num_records: 25, ..NcVoterConfig::small() });
        let mut stream = generator.stream().unwrap();
        let mut total = 0usize;
        let mut rounds = 0usize;
        while let Some(chunk) = stream.next_chunk(0) {
            assert_eq!(chunk.len(), 1, "clamped chunks hold exactly one record");
            total += chunk.len();
            rounds += 1;
            assert!(rounds <= 25, "a zero chunk size must still make progress");
        }
        assert_eq!(total, 25);
        assert_eq!(stream.records_remaining(), 0);
    }

    #[test]
    fn records_remaining_is_consistent_after_a_partial_final_chunk() {
        // 1,000 records in chunks of 300: the final chunk is partial (100
        // records) and records_remaining must land exactly on 0 — and stay
        // there — rather than going stale or wrapping.
        let generator = NcVoterGenerator::new(NcVoterConfig { num_records: 1_000, ..NcVoterConfig::small() });
        let mut stream = generator.stream().unwrap();
        let mut sizes = Vec::new();
        while let Some(chunk) = stream.next_chunk(300) {
            sizes.push(chunk.len());
            assert_eq!(stream.records_remaining(), 1_000 - sizes.iter().sum::<usize>());
        }
        assert_eq!(sizes, vec![300, 300, 300, 100]);
        assert_eq!(stream.records_remaining(), 0);
        assert_eq!(stream.size_hint(), (0, Some(0)));
        assert!(stream.next_chunk(300).is_none());
        assert_eq!(stream.records_remaining(), 0, "remaining stays 0 after exhaustion");
    }

    #[test]
    fn invalid_config_fails_to_stream() {
        let generator = NcVoterGenerator::new(NcVoterConfig { num_records: 0, ..NcVoterConfig::small() });
        assert!(generator.stream().is_err());
        assert!(generator.generate().is_err());
    }

    #[test]
    fn prefix_slicing_supports_scalability_experiment() {
        let ds = NcVoterGenerator::new(NcVoterConfig { num_records: 2_000, ..NcVoterConfig::small() })
            .generate()
            .unwrap();
        let half = ds.prefix(1_000);
        assert_eq!(half.len(), 1_000);
        assert!(half.ground_truth().num_true_matches() <= ds.ground_truth().num_true_matches());
    }
}
