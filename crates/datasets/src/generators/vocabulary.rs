//! Word pools the synthetic generators sample from.
//!
//! The pools are intentionally small and skewed (Zipf-like sampling) so that
//! generated corpora exhibit the property that makes blocking non-trivial:
//! *different* entities share many tokens (common surnames, common title
//! words), while records of the *same* entity may differ textually because of
//! corruption.

use rand::Rng;

/// Common American surnames (top of the census distribution), used for both
/// author names and voter last names.
pub const SURNAMES: &[&str] = &[
    "smith", "johnson", "williams", "brown", "jones", "garcia", "miller", "davis", "rodriguez",
    "martinez", "hernandez", "lopez", "gonzalez", "wilson", "anderson", "thomas", "taylor",
    "moore", "jackson", "martin", "lee", "perez", "thompson", "white", "harris", "sanchez",
    "clark", "ramirez", "lewis", "robinson", "walker", "young", "allen", "king", "wright",
    "scott", "torres", "nguyen", "hill", "flores", "green", "adams", "nelson", "baker", "hall",
    "rivera", "campbell", "mitchell", "carter", "roberts", "wang", "chen", "kumar", "singh",
    "fahlman", "lebiere", "mccallum", "nigam", "ungar", "hinton", "bengio", "lecun", "jordan",
    "murphy", "koller", "friedman", "bishop", "russell", "norvig", "pearl", "valiant", "vapnik",
];

/// Common given names, used for author first names and voter first names.
pub const GIVEN_NAMES: &[&str] = &[
    "james", "mary", "robert", "patricia", "john", "jennifer", "michael", "linda", "david",
    "elizabeth", "william", "barbara", "richard", "susan", "joseph", "jessica", "thomas", "sarah",
    "charles", "karen", "christopher", "lisa", "daniel", "nancy", "matthew", "betty", "anthony",
    "margaret", "mark", "sandra", "donald", "ashley", "steven", "kimberly", "paul", "emily",
    "andrew", "donna", "joshua", "michelle", "kenneth", "carol", "kevin", "amanda", "brian",
    "dorothy", "george", "melissa", "scott", "deborah", "qing", "mingyuan", "huizhi", "wei",
    "geoffrey", "yann", "yoshua", "andrew", "sebastian", "judea",
];

/// Street name stems for voter addresses.
pub const STREETS: &[&str] = &[
    "oak", "maple", "pine", "cedar", "elm", "main", "church", "mill", "park", "washington",
    "lake", "hill", "ridge", "sunset", "highland", "forest", "river", "spring", "meadow", "valley",
];

/// North Carolina style city names for voter addresses.
pub const CITIES: &[&str] = &[
    "charlotte", "raleigh", "greensboro", "durham", "winston salem", "fayetteville", "cary",
    "wilmington", "high point", "concord", "asheville", "gastonia", "greenville", "jacksonville",
    "chapel hill", "rocky mount", "burlington", "huntersville", "wilson", "kannapolis",
];

/// Machine-learning title vocabulary for the Cora-like generator. The real
/// Cora corpus consists of machine-learning citations, so titles sampled from
/// these words reproduce its heavy token overlap between distinct papers.
pub const TITLE_WORDS: &[&str] = &[
    "learning", "neural", "networks", "cascade", "correlation", "architecture", "genetic",
    "algorithm", "algorithms", "reinforcement", "classification", "bayesian", "inference",
    "models", "model", "probabilistic", "markov", "hidden", "decision", "trees", "boosting",
    "clustering", "high", "dimensional", "data", "sets", "efficient", "fast", "approximate",
    "stochastic", "gradient", "descent", "optimization", "kernel", "support", "vector",
    "machines", "feature", "selection", "dimensionality", "reduction", "supervised",
    "unsupervised", "semi", "induction", "rules", "knowledge", "representation", "reasoning",
    "search", "planning", "control", "adaptive", "recognition", "speech", "vision", "image",
    "analysis", "prediction", "regression", "estimation", "sampling", "monte", "carlo",
    "temporal", "difference", "dynamic", "programming", "evolution", "strategies", "pruning",
    "growth", "controlled", "nets", "recurrent", "backpropagation", "gradient", "entropy",
];

/// Journal names for the bibliographic generator.
pub const JOURNALS: &[&str] = &[
    "machine learning",
    "journal of machine learning research",
    "artificial intelligence",
    "neural computation",
    "ieee transactions on neural networks",
    "ieee transactions on pattern analysis and machine intelligence",
    "journal of artificial intelligence research",
    "data mining and knowledge discovery",
    "pattern recognition",
    "neural networks",
];

/// Conference / proceedings names for the bibliographic generator.
pub const PROCEEDINGS: &[&str] = &[
    "advances in neural information processing systems",
    "proceedings of the international conference on machine learning",
    "proceedings of the national conference on artificial intelligence",
    "proceedings of the international joint conference on artificial intelligence",
    "proceedings of the conference on uncertainty in artificial intelligence",
    "proceedings of the international conference on knowledge discovery and data mining",
    "proceedings of the annual conference on computational learning theory",
    "international conference on genetic algorithms",
];

/// Institutions issuing technical reports and theses.
pub const INSTITUTIONS: &[&str] = &[
    "carnegie mellon university",
    "stanford university",
    "massachusetts institute of technology",
    "university of california berkeley",
    "university of toronto",
    "australian national university",
    "university of edinburgh",
    "cornell university",
    "university of massachusetts amherst",
    "california institute of technology",
];

/// Book publishers.
pub const BOOK_PUBLISHERS: &[&str] = &[
    "morgan kaufmann",
    "mit press",
    "springer",
    "addison wesley",
    "cambridge university press",
    "oxford university press",
    "prentice hall",
    "wiley",
];

/// Race codes used by the NC voter registration format, including the
/// uncertain value `u` the paper calls out explicitly.
pub const RACE_CODES: &[&str] = &["w", "b", "a", "i", "o", "u"];

/// Gender codes used by the NC voter registration format.
pub const GENDER_CODES: &[&str] = &["m", "f", "u"];

/// Samples an element with a Zipf-like skew: the probability of index `i` is
/// proportional to `1 / (i + 1)`. This reproduces the head-heavy frequency
/// distributions of real names and title words, which is what makes blocking
/// keys collide across different entities.
pub fn zipf_pick<'a, R: Rng>(rng: &mut R, pool: &[&'a str]) -> &'a str {
    assert!(!pool.is_empty(), "cannot sample from an empty pool");
    // Total harmonic weight H(n); invert a uniform draw by linear scan (pools
    // are small, so this is plenty fast and has no precomputation to cache).
    let harmonic: f64 = (0..pool.len()).map(|i| 1.0 / (i as f64 + 1.0)).sum();
    let mut target = rng.gen::<f64>() * harmonic;
    for (i, item) in pool.iter().enumerate() {
        target -= 1.0 / (i as f64 + 1.0);
        if target <= 0.0 {
            return item;
        }
    }
    pool[pool.len() - 1]
}

/// Samples an element uniformly.
pub fn uniform_pick<'a, R: Rng>(rng: &mut R, pool: &[&'a str]) -> &'a str {
    assert!(!pool.is_empty(), "cannot sample from an empty pool");
    pool[rng.gen_range(0..pool.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    #[test]
    fn pools_are_nonempty_and_lowercase() {
        for pool in [SURNAMES, GIVEN_NAMES, TITLE_WORDS, JOURNALS, PROCEEDINGS, INSTITUTIONS, BOOK_PUBLISHERS, STREETS, CITIES] {
            assert!(!pool.is_empty());
            for word in pool {
                assert_eq!(*word, word.to_lowercase(), "pool entries must be lowercase: {word}");
            }
        }
        assert_eq!(RACE_CODES.len() * GENDER_CODES.len() / GENDER_CODES.len(), RACE_CODES.len());
    }

    #[test]
    fn race_times_gender_is_twelve_minus_uncertain() {
        // The paper reports a 12-bit semhash signature for NC Voter. Our
        // taxonomy uses race x gender leaves excluding fully-uncertain
        // combinations; the raw cross product here is 6 x 3 = 18, the
        // taxonomy crate selects the 12 certain leaves (see core crate tests).
        assert_eq!(RACE_CODES.len(), 6);
        assert_eq!(GENDER_CODES.len(), 3);
    }

    #[test]
    fn zipf_is_head_heavy() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for _ in 0..20_000 {
            *counts.entry(zipf_pick(&mut rng, SURNAMES)).or_insert(0) += 1;
        }
        let first = counts.get(SURNAMES[0]).copied().unwrap_or(0);
        let last = counts.get(SURNAMES[SURNAMES.len() - 1]).copied().unwrap_or(0);
        assert!(first > last * 5, "zipf head ({first}) should dominate tail ({last})");
    }

    #[test]
    fn uniform_pick_covers_pool() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            seen.insert(uniform_pick(&mut rng, GENDER_CODES));
        }
        assert_eq!(seen.len(), GENDER_CODES.len());
    }

    #[test]
    #[should_panic(expected = "empty pool")]
    fn empty_pool_panics() {
        let mut rng = StdRng::seed_from_u64(9);
        zipf_pick(&mut rng, &[]);
    }
}
