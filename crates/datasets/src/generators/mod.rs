//! Synthetic data generators standing in for the paper's benchmark data sets.
//!
//! * [`cora`] — a Cora-like bibliographic corpus: ~1,900 noisy citation
//!   records drawn from a few hundred publications, with the missing-value
//!   patterns of Table 1 and the venue semantics of the bibliographic
//!   taxonomy tree (Fig. 3).
//! * [`ncvoter`] — an NC-Voter-like registration corpus: large, relatively
//!   clean person records with `gender`/`race` attributes (including the
//!   uncertain value `u`) that drive the 12-bit semhash signature of the
//!   paper's second experiment.
//! * [`vocabulary`] — the word pools (names, title words, venues) the
//!   generators sample from.

pub mod cora;
pub mod ncvoter;
pub mod vocabulary;

use rand::Rng;

/// Samples a duplicate-cluster size: how many records are generated for one
/// entity. `p_dup` is the probability that an entity has any duplicates at
/// all; among duplicated entities the number of *extra* records follows a
/// truncated geometric distribution with mean roughly `mean_extra`, capped at
/// `max_cluster`.
///
/// Cora-like corpora use a high duplication probability and large caps (the
/// real Cora has clusters with dozens of citations of the same paper); the
/// NC-Voter-like corpus uses a low duplication probability and a cap of 2-3.
pub fn sample_cluster_size<R: Rng>(rng: &mut R, p_dup: f64, mean_extra: f64, max_cluster: usize) -> usize {
    debug_assert!(max_cluster >= 1);
    if max_cluster == 1 || !rng.gen_bool(p_dup.clamp(0.0, 1.0)) {
        return 1;
    }
    // Geometric with success probability 1/(1+mean_extra), at least one extra.
    let p = 1.0 / (1.0 + mean_extra.max(0.0));
    let mut extras = 1usize;
    while extras < max_cluster - 1 && !rng.gen_bool(p) {
        extras += 1;
    }
    (1 + extras).min(max_cluster)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cluster_sizes_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let s = sample_cluster_size(&mut rng, 0.8, 3.0, 10);
            assert!((1..=10).contains(&s));
        }
    }

    #[test]
    fn zero_duplication_gives_singletons() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| sample_cluster_size(&mut rng, 0.0, 5.0, 10) == 1));
        assert!((0..100).all(|_| sample_cluster_size(&mut rng, 1.0, 5.0, 1) == 1));
    }

    #[test]
    fn high_duplication_gives_multi_record_clusters() {
        let mut rng = StdRng::seed_from_u64(3);
        let sizes: Vec<usize> = (0..200).map(|_| sample_cluster_size(&mut rng, 1.0, 4.0, 20)).collect();
        let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        assert!(mean > 2.0, "mean cluster size too small: {mean}");
        assert!(sizes.iter().all(|&s| s >= 2));
    }
}
