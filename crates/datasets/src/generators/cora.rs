//! A Cora-like bibliographic corpus generator.
//!
//! The real Cora benchmark contains 1,879 citation strings of a few hundred
//! machine-learning papers, with heavy noise: inconsistent author formatting,
//! typos, missing venue information and ambiguous publication types. The
//! paper's Cora experiment relies on exactly three properties of that data:
//!
//! 1. duplicate clusters are large and skewed (many citations per paper),
//! 2. the textual similarity of true matches is broad and noisy (Fig. 6 left),
//! 3. venue information is frequently missing, which is what the pattern-based
//!    semantic function of Table 1 keys on.
//!
//! [`CoraGenerator`] reproduces those properties from configurable parameters.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::corruption::{CorruptionConfig, Corruptor};
use crate::dataset::{Dataset, DatasetBuilder};
use crate::error::{DatasetError, Result};
use crate::generators::vocabulary as vocab;
use crate::generators::sample_cluster_size;
use crate::ground_truth::EntityId;
use crate::schema::Schema;

/// The attribute names of the Cora-like schema, in order.
pub const CORA_ATTRIBUTES: [&str; 7] =
    ["title", "authors", "journal", "booktitle", "institution", "publisher", "year"];

/// The publication type of a generated entity. This is the *hidden semantic
/// class* that the taxonomy-tree experiments try to recover from missing-value
/// patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PublicationKind {
    /// A journal article (concept C3 of the bibliographic taxonomy).
    Journal,
    /// A conference/proceedings article (C4).
    Proceedings,
    /// A book (C5).
    Book,
    /// A technical report (C7).
    TechReport,
    /// A thesis (C8).
    Thesis,
}

impl PublicationKind {
    /// All kinds, for iteration in tests and statistics.
    pub const ALL: [PublicationKind; 5] = [
        PublicationKind::Journal,
        PublicationKind::Proceedings,
        PublicationKind::Book,
        PublicationKind::TechReport,
        PublicationKind::Thesis,
    ];
}

/// Configuration of the Cora-like generator.
#[derive(Debug, Clone)]
pub struct CoraConfig {
    /// Target number of records (the real Cora has 1,879).
    pub num_records: usize,
    /// Probability that an entity is cited more than once.
    pub duplicate_probability: f64,
    /// Mean number of *extra* citations for duplicated entities.
    pub mean_extra_duplicates: f64,
    /// Maximum duplicate cluster size.
    pub max_cluster_size: usize,
    /// Corruption profile applied to duplicate citations.
    pub corruption: CorruptionConfig,
    /// Probability that a record's venue attributes are dropped entirely
    /// (producing the "research output only" pattern 8 of Table 1).
    pub venue_missing_probability: f64,
    /// Probability that a record lists a *conflicting* extra venue attribute
    /// (e.g. both `journal` and `booktitle`), producing the ambiguous patterns
    /// 1-3 and 5 of Table 1.
    pub venue_conflict_probability: f64,
    /// Probability that the author list is missing from a citation.
    pub authors_missing_probability: f64,
    /// RNG seed; the generator is fully deterministic given the seed.
    pub seed: u64,
}

impl Default for CoraConfig {
    fn default() -> Self {
        Self {
            num_records: 1_879,
            duplicate_probability: 0.9,
            mean_extra_duplicates: 7.0,
            max_cluster_size: 35,
            corruption: CorruptionConfig::dirty(),
            venue_missing_probability: 0.18,
            venue_conflict_probability: 0.12,
            authors_missing_probability: 0.08,
            seed: 0x5eed_c04a,
        }
    }
}

impl CoraConfig {
    /// A small configuration for unit tests and doc examples.
    pub fn small() -> Self {
        Self {
            num_records: 200,
            ..Self::default()
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.num_records == 0 {
            return Err(DatasetError::InvalidConfig("num_records must be > 0".into()));
        }
        if self.max_cluster_size == 0 {
            return Err(DatasetError::InvalidConfig("max_cluster_size must be > 0".into()));
        }
        for (name, p) in [
            ("duplicate_probability", self.duplicate_probability),
            ("venue_missing_probability", self.venue_missing_probability),
            ("venue_conflict_probability", self.venue_conflict_probability),
            ("authors_missing_probability", self.authors_missing_probability),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(DatasetError::InvalidConfig(format!("{name} must be in [0, 1]")));
            }
        }
        self.corruption.validate().map_err(DatasetError::InvalidConfig)
    }
}

/// A clean (uncorrupted) publication entity.
#[derive(Debug, Clone)]
struct Publication {
    kind: PublicationKind,
    title: String,
    authors: Vec<(String, String)>, // (given, surname)
    journal: Option<String>,
    booktitle: Option<String>,
    institution: Option<String>,
    publisher: Option<String>,
    year: u32,
}

/// Generates Cora-like bibliographic datasets.
#[derive(Debug, Clone)]
pub struct CoraGenerator {
    config: CoraConfig,
}

impl CoraGenerator {
    /// Creates a generator with the given configuration.
    pub fn new(config: CoraConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CoraConfig {
        &self.config
    }

    /// Generates the dataset deterministically from the configured seed.
    pub fn generate(&self) -> Result<Dataset> {
        self.config.validate()?;
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        self.generate_with_rng(&mut rng)
    }

    /// Generates the dataset using an external RNG.
    pub fn generate_with_rng<R: Rng>(&self, rng: &mut R) -> Result<Dataset> {
        self.config.validate()?;
        let schema = Schema::shared(CORA_ATTRIBUTES)?;
        let mut builder = DatasetBuilder::new("cora-synthetic", schema);
        builder.reserve(self.config.num_records);
        let corruptor = Corruptor::new(self.config.corruption.clone());

        let mut entity_counter = 0u32;
        while builder.len() < self.config.num_records {
            let entity = EntityId(entity_counter);
            entity_counter += 1;
            let publication = self.sample_publication(rng);
            let cluster = sample_cluster_size(
                rng,
                self.config.duplicate_probability,
                self.config.mean_extra_duplicates,
                self.config.max_cluster_size,
            );
            let remaining = self.config.num_records - builder.len();
            for copy in 0..cluster.min(remaining) {
                // The first citation of an entity is left clean-ish; later
                // citations are corrupted more heavily, mirroring how real
                // citation lists accumulate errors through transcription.
                let values = self.render_citation(&publication, copy > 0, &corruptor, rng);
                builder.push_values(values, entity)?;
            }
        }
        builder.build()
    }

    fn sample_publication<R: Rng>(&self, rng: &mut R) -> Publication {
        let kind = match rng.gen_range(0..100) {
            0..=39 => PublicationKind::Proceedings,
            40..=64 => PublicationKind::Journal,
            65..=79 => PublicationKind::TechReport,
            80..=89 => PublicationKind::Book,
            _ => PublicationKind::Thesis,
        };

        let title_len: usize = rng.gen_range(4..=8);
        let mut title_words = Vec::with_capacity(title_len + 1);
        if rng.gen_bool(0.4) {
            title_words.push("the".to_string());
        }
        for _ in 0..title_len {
            title_words.push(vocab::zipf_pick(rng, vocab::TITLE_WORDS).to_string());
        }
        let title = title_words.join(" ");

        let num_authors = rng.gen_range(1..=4);
        let authors = (0..num_authors)
            .map(|_| {
                (
                    vocab::zipf_pick(rng, vocab::GIVEN_NAMES).to_string(),
                    vocab::zipf_pick(rng, vocab::SURNAMES).to_string(),
                )
            })
            .collect();

        let year = rng.gen_range(1985..=2000);
        let (journal, booktitle, institution, publisher) = match kind {
            PublicationKind::Journal => (Some(vocab::uniform_pick(rng, vocab::JOURNALS).to_string()), None, None, None),
            PublicationKind::Proceedings => (None, Some(vocab::uniform_pick(rng, vocab::PROCEEDINGS).to_string()), None, None),
            PublicationKind::Book => (None, None, None, Some(vocab::uniform_pick(rng, vocab::BOOK_PUBLISHERS).to_string())),
            PublicationKind::TechReport => (
                None,
                None,
                Some(vocab::uniform_pick(rng, vocab::INSTITUTIONS).to_string()),
                Some("technical report".to_string()),
            ),
            PublicationKind::Thesis => (
                None,
                None,
                Some(vocab::uniform_pick(rng, vocab::INSTITUTIONS).to_string()),
                Some("phd thesis".to_string()),
            ),
        };

        Publication {
            kind,
            title,
            authors,
            journal,
            booktitle,
            institution,
            publisher,
            year,
        }
    }

    /// Renders a citation record of a publication, optionally corrupted.
    fn render_citation<R: Rng>(
        &self,
        publication: &Publication,
        corrupt: bool,
        corruptor: &Corruptor,
        rng: &mut R,
    ) -> Vec<Option<String>> {
        let mut title = publication.title.clone();
        let mut authors = self.format_authors(&publication.authors, rng);
        if corrupt {
            title = corruptor.corrupt_text(&title, rng);
            authors = corruptor.corrupt_text(&authors, rng);
        }

        let authors = if rng.gen_bool(self.config.authors_missing_probability) {
            None
        } else {
            Some(authors)
        };

        let mut journal = publication.journal.clone();
        let mut booktitle = publication.booktitle.clone();
        let mut institution = publication.institution.clone();
        let mut publisher = publication.publisher.clone();

        if rng.gen_bool(self.config.venue_missing_probability) {
            // Pattern 8 of Table 1: nothing known about the venue.
            journal = None;
            booktitle = None;
            institution = None;
            publisher = None;
        } else if rng.gen_bool(self.config.venue_conflict_probability) {
            // Ambiguous patterns: a second venue attribute shows up, e.g. a
            // citation that lists both the proceedings and the institution.
            match publication.kind {
                PublicationKind::Journal => {
                    booktitle = Some(vocab::uniform_pick(rng, vocab::PROCEEDINGS).to_string());
                }
                PublicationKind::Proceedings => {
                    if rng.gen_bool(0.5) {
                        journal = Some(vocab::uniform_pick(rng, vocab::JOURNALS).to_string());
                    } else {
                        institution = Some(vocab::uniform_pick(rng, vocab::INSTITUTIONS).to_string());
                    }
                }
                PublicationKind::Book | PublicationKind::TechReport | PublicationKind::Thesis => {
                    institution = institution.or_else(|| Some(vocab::uniform_pick(rng, vocab::INSTITUTIONS).to_string()));
                }
            }
        }

        if corrupt {
            journal = journal.map(|v| corruptor.corrupt_text(&v, rng));
            booktitle = booktitle.map(|v| corruptor.corrupt_text(&v, rng));
            institution = institution.map(|v| corruptor.corrupt_text(&v, rng));
            publisher = publisher.map(|v| corruptor.corrupt_text(&v, rng));
        }

        let year = if rng.gen_bool(0.1) {
            None
        } else {
            Some(publication.year.to_string())
        };

        vec![Some(title), authors, journal, booktitle, institution, publisher, year]
    }

    /// Formats an author list in one of the citation styles seen in Cora:
    /// `"S. Fahlman and C. Lebiere"`, `"Fahlman, S., & Lebiere, C."`,
    /// `"Scott Fahlman, Christian Lebiere"`, with occasional reordering.
    fn format_authors<R: Rng>(&self, authors: &[(String, String)], rng: &mut R) -> String {
        let mut authors: Vec<(String, String)> = authors.to_vec();
        if authors.len() > 1 && rng.gen_bool(0.15) {
            authors.reverse();
        }
        let style = rng.gen_range(0..3);
        let formatted: Vec<String> = authors
            .iter()
            .map(|(given, surname)| match style {
                0 => {
                    let initial = given.chars().next().unwrap_or('x');
                    format!("{}. {}", initial, surname)
                }
                1 => {
                    let initial = given.chars().next().unwrap_or('x');
                    format!("{}, {}.", surname, initial)
                }
                _ => format!("{given} {surname}"),
            })
            .collect();
        let separator = match style {
            0 => " and ",
            1 => ", & ",
            _ => ", ",
        };
        formatted.join(separator)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DatasetStats;

    fn small_dataset() -> Dataset {
        CoraGenerator::new(CoraConfig::small()).generate().unwrap()
    }

    #[test]
    fn generates_requested_number_of_records() {
        let ds = small_dataset();
        assert_eq!(ds.len(), 200);
        assert_eq!(ds.schema().names(), &CORA_ATTRIBUTES);
        assert_eq!(ds.name(), "cora-synthetic");
    }

    #[test]
    fn default_config_matches_cora_scale() {
        let cfg = CoraConfig::default();
        assert_eq!(cfg.num_records, 1_879);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let a = CoraGenerator::new(CoraConfig::small()).generate().unwrap();
        let b = CoraGenerator::new(CoraConfig::small()).generate().unwrap();
        for (ra, rb) in a.records().iter().zip(b.records()) {
            assert_eq!(ra.values(), rb.values());
        }
        let c = CoraGenerator::new(CoraConfig { seed: 999, ..CoraConfig::small() }).generate().unwrap();
        let any_diff = a
            .records()
            .iter()
            .zip(c.records())
            .any(|(ra, rc)| ra.values() != rc.values());
        assert!(any_diff, "different seeds should give different data");
    }

    #[test]
    fn clusters_are_large_and_skewed() {
        let ds = small_dataset();
        let stats = DatasetStats::compute(&ds);
        assert!(stats.mean_cluster_size > 2.0, "Cora-like data needs big duplicate clusters, got {}", stats.mean_cluster_size);
        assert!(stats.max_cluster_size >= 5);
        assert!(stats.true_matches > 100);
    }

    #[test]
    fn venue_attributes_are_frequently_missing() {
        let ds = small_dataset();
        let stats = DatasetStats::compute(&ds);
        // Every record misses most venue attributes (a journal paper has no
        // booktitle etc.), so missing rates must be substantial.
        assert!(stats.missing_rate_per_attribute["journal"] > 0.4);
        assert!(stats.missing_rate_per_attribute["booktitle"] > 0.4);
        assert!(stats.missing_rate_per_attribute["institution"] > 0.3);
        // ... but titles are always present.
        assert_eq!(stats.missing_rate_per_attribute["title"], 0.0);
    }

    #[test]
    fn duplicates_remain_textually_similar() {
        let ds = small_dataset();
        // Average bigram similarity of titles within a cluster should be high.
        let mut total = 0.0;
        let mut count = 0usize;
        for members in ds.ground_truth().clusters().values() {
            if members.len() < 2 {
                continue;
            }
            let a = ds.record(members[0]).unwrap().value("title").unwrap_or("");
            let b = ds.record(members[1]).unwrap().value("title").unwrap_or("");
            total += sablock_textual_bigram(a, b);
            count += 1;
        }
        let mean = total / count.max(1) as f64;
        assert!(mean > 0.55, "mean within-cluster title similarity too low: {mean}");
    }

    // Local bigram Jaccard to avoid a dev-dependency cycle with sablock-textual.
    fn sablock_textual_bigram(a: &str, b: &str) -> f64 {
        use std::collections::HashSet;
        let grams = |s: &str| -> HashSet<(char, char)> {
            let chars: Vec<char> = s.to_lowercase().chars().collect();
            chars.windows(2).map(|w| (w[0], w[1])).collect()
        };
        let (sa, sb) = (grams(a), grams(b));
        if sa.is_empty() && sb.is_empty() {
            return 1.0;
        }
        let inter = sa.intersection(&sb).count() as f64;
        inter / ((sa.len() + sb.len()) as f64 - inter)
    }

    #[test]
    fn different_entities_share_vocabulary() {
        // Blocking is only hard if different entities look alike; check that
        // two different entities share at least one title token somewhere.
        let ds = small_dataset();
        let records = ds.records();
        let mut found = false;
        'outer: for i in 0..records.len() {
            for j in (i + 1)..records.len() {
                if ds.ground_truth().is_match(records[i].id(), records[j].id()) {
                    continue;
                }
                let a: std::collections::HashSet<&str> =
                    records[i].value("title").unwrap_or("").split(' ').collect();
                let b: std::collections::HashSet<&str> =
                    records[j].value("title").unwrap_or("").split(' ').collect();
                if a.intersection(&b).count() >= 2 {
                    found = true;
                    break 'outer;
                }
            }
        }
        assert!(found, "distinct entities should share title vocabulary");
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(CoraConfig { num_records: 0, ..CoraConfig::small() }.validate().is_err());
        assert!(CoraConfig { max_cluster_size: 0, ..CoraConfig::small() }.validate().is_err());
        assert!(CoraConfig { duplicate_probability: 1.7, ..CoraConfig::small() }.validate().is_err());
        let gen = CoraGenerator::new(CoraConfig { venue_missing_probability: -0.1, ..CoraConfig::small() });
        assert!(gen.generate().is_err());
    }

    #[test]
    fn publication_kind_all_covers_every_variant() {
        assert_eq!(PublicationKind::ALL.len(), 5);
    }
}
