//! Record model, datasets, ground truth and synthetic data generators.
//!
//! The paper evaluates its blocking framework over two real-world data sets:
//! **Cora** (1,879 machine-learning citations with heavy noise and missing
//! venue information) and **NC Voter** (292,892 voter registration records,
//! large and relatively clean). Neither data set ships with this repository,
//! so this crate provides *faithful synthetic generators* for both, plus the
//! record/dataset/ground-truth machinery every blocking technique consumes:
//!
//! * [`schema`] — attribute schemas,
//! * [`record`] — records as vectors of optional string values,
//! * [`dataset`] — an in-memory dataset with entity-level ground truth,
//! * [`ground_truth`] — true-match bookkeeping (clusters, match pairs),
//! * [`corruption`] — the dirty-data model (typos, OCR errors, token swaps,
//!   abbreviations, missing values) used to derive duplicate records,
//! * [`generators`] — the Cora-like and NC-Voter-like generators,
//! * [`csv`] — a dependency-free CSV reader/writer for datasets,
//! * [`stats`] — dataset statistics used when documenting experiments.
//!
//! See `DESIGN.md` §3 for the substitution argument: the experiments depend on
//! the similarity *distribution* of matches, the missing-value *patterns* and
//! the duplicate *cluster structure*, all of which the generators reproduce.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corruption;
pub mod csv;
pub mod dataset;
pub mod error;
pub mod generators;
pub mod ground_truth;
pub mod record;
pub mod schema;
pub mod stats;

pub use dataset::Dataset;
pub use error::DatasetError;
pub use generators::cora::{CoraConfig, CoraGenerator};
pub use generators::ncvoter::{NcVoterConfig, NcVoterGenerator, NcVoterStream};
pub use ground_truth::{EntityId, GroundTruth};
pub use record::{Record, RecordId, MAX_RECORD_ID};
pub use schema::Schema;
