//! A small, dependency-free CSV reader and writer for datasets.
//!
//! Supports RFC-4180 style quoting (fields containing commas, quotes or
//! newlines are wrapped in double quotes; embedded quotes are doubled). The
//! on-disk layout is:
//!
//! ```text
//! entity_id,<attr 1>,<attr 2>,...
//! 0,The cascade-correlation learning architecture,"Fahlman, S."
//! 0,Cascade correlation learning architecture,"Fahlman, S."
//! ```
//!
//! The first column always carries the ground-truth entity id so that
//! datasets can be round-tripped with their labels — mirroring how the Cora
//! and NC Voter benchmark files distribute their ground truth.

use std::io::{BufRead, BufReader, Read, Write};
use std::sync::Arc;

use crate::dataset::{Dataset, DatasetBuilder};
use crate::error::{DatasetError, Result};
use crate::ground_truth::EntityId;
use crate::schema::Schema;

/// Serialises a dataset as CSV to a writer.
pub fn write_csv<W: Write>(dataset: &Dataset, writer: &mut W) -> Result<()> {
    // Header: entity_id followed by the schema attributes.
    let mut header = vec!["entity_id".to_string()];
    header.extend(dataset.schema().names().iter().cloned());
    writeln!(writer, "{}", header.iter().map(|f| quote_field(f)).collect::<Vec<_>>().join(","))?;

    for record in dataset.records() {
        let entity = dataset
            .ground_truth()
            .entity_of(record.id())
            .ok_or(DatasetError::UnknownRecord(record.id().0))?;
        let mut fields = vec![entity.0.to_string()];
        for value in record.values() {
            fields.push(value.clone().unwrap_or_default());
        }
        writeln!(writer, "{}", fields.iter().map(|f| quote_field(f)).collect::<Vec<_>>().join(","))?;
    }
    Ok(())
}

/// Serialises a dataset to a CSV string.
pub fn to_csv_string(dataset: &Dataset) -> Result<String> {
    let mut buf = Vec::new();
    write_csv(dataset, &mut buf)?;
    String::from_utf8(buf).map_err(|e| DatasetError::InvalidConfig(format!("non-UTF8 output: {e}")))
}

/// Reads a dataset from CSV.
pub fn read_csv<R: Read>(name: &str, reader: R) -> Result<Dataset> {
    let mut lines = BufReader::new(reader).lines().enumerate();

    let header_line = match lines.next() {
        Some((_, line)) => line?,
        None => {
            return Err(DatasetError::Csv { line: 1, message: "empty document".into() });
        }
    };
    let header = parse_line(&header_line).map_err(|message| DatasetError::Csv { line: 1, message })?;
    if header.first().map(String::as_str) != Some("entity_id") {
        return Err(DatasetError::Csv {
            line: 1,
            message: "first column must be entity_id".into(),
        });
    }
    let schema = Schema::shared(header[1..].to_vec())?;
    let mut builder = DatasetBuilder::new(name, Arc::clone(&schema));

    for (idx, line) in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let line_no = idx + 1;
        let fields = parse_line(&line).map_err(|message| DatasetError::Csv { line: line_no, message })?;
        if fields.len() != schema.len() + 1 {
            return Err(DatasetError::Csv {
                line: line_no,
                message: format!("expected {} fields, found {}", schema.len() + 1, fields.len()),
            });
        }
        let entity: u32 = fields[0].trim().parse().map_err(|_| DatasetError::Csv {
            line: line_no,
            message: format!("invalid entity id: {:?}", fields[0]),
        })?;
        let values: Vec<Option<String>> = fields[1..]
            .iter()
            .map(|f| if f.trim().is_empty() { None } else { Some(f.clone()) })
            .collect();
        builder.push_values(values, EntityId(entity))?;
    }
    builder.build()
}

/// Reads a dataset from a CSV string.
pub fn from_csv_string(name: &str, csv: &str) -> Result<Dataset> {
    read_csv(name, csv.as_bytes())
}

fn quote_field(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') || field.contains('\r') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Splits a single CSV line into fields, honouring quoted fields.
fn parse_line(line: &str) -> std::result::Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut current = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        current.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => current.push(other),
            }
        } else {
            match c {
                '"' => {
                    if current.is_empty() {
                        in_quotes = true;
                    } else {
                        return Err("unexpected quote inside unquoted field".into());
                    }
                }
                ',' => {
                    fields.push(std::mem::take(&mut current));
                }
                other => current.push(other),
            }
        }
    }
    if in_quotes {
        return Err("unterminated quoted field".into());
    }
    fields.push(current);
    Ok(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;

    fn sample() -> Dataset {
        let schema = Schema::shared(["title", "authors"]).unwrap();
        let mut b = DatasetBuilder::new("sample", schema);
        b.push_values(
            vec![Some("The cascade, correlation".into()), Some("Fahlman \"Scott\"".into())],
            EntityId(0),
        )
        .unwrap();
        b.push_values(vec![Some("Plain title".into()), None], EntityId(1)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let ds = sample();
        let csv = to_csv_string(&ds).unwrap();
        let back = from_csv_string("sample", &csv).unwrap();
        assert_eq!(back.len(), ds.len());
        assert_eq!(back.schema().names(), ds.schema().names());
        for (a, b) in ds.records().iter().zip(back.records()) {
            assert_eq!(a.values(), b.values());
        }
        assert_eq!(back.ground_truth().num_true_matches(), ds.ground_truth().num_true_matches());
    }

    #[test]
    fn quoting_of_commas_and_quotes() {
        let ds = sample();
        let csv = to_csv_string(&ds).unwrap();
        assert!(csv.contains("\"The cascade, correlation\""));
        assert!(csv.contains("\"Fahlman \"\"Scott\"\"\""));
    }

    #[test]
    fn missing_values_round_trip_as_empty() {
        let ds = sample();
        let csv = to_csv_string(&ds).unwrap();
        let back = from_csv_string("sample", &csv).unwrap();
        assert!(back.record(crate::record::RecordId(1)).unwrap().is_missing("authors"));
    }

    #[test]
    fn parse_line_cases() {
        assert_eq!(parse_line("a,b,c").unwrap(), vec!["a", "b", "c"]);
        assert_eq!(parse_line("a,\"b,c\",d").unwrap(), vec!["a", "b,c", "d"]);
        assert_eq!(parse_line("\"he said \"\"hi\"\"\"").unwrap(), vec!["he said \"hi\""]);
        assert_eq!(parse_line("").unwrap(), vec![""]);
        assert_eq!(parse_line("a,,c").unwrap(), vec!["a", "", "c"]);
        assert!(parse_line("\"unterminated").is_err());
        assert!(parse_line("ab\"cd").is_err());
    }

    #[test]
    fn malformed_documents_rejected() {
        assert!(from_csv_string("x", "").is_err());
        assert!(from_csv_string("x", "wrong_first,title\n0,a").is_err());
        assert!(from_csv_string("x", "entity_id,title\nnot_a_number,a").is_err());
        assert!(from_csv_string("x", "entity_id,title\n0,a,extra").is_err());
    }

    #[test]
    fn blank_lines_are_skipped() {
        let csv = "entity_id,title\n0,a\n\n1,b\n";
        let ds = from_csv_string("x", csv).unwrap();
        assert_eq!(ds.len(), 2);
    }
}
