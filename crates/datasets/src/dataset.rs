//! The in-memory dataset: a schema, a vector of records and entity-level
//! ground truth.

use std::sync::Arc;

use crate::error::{DatasetError, Result};
use crate::ground_truth::{EntityId, GroundTruth};
use crate::record::{Record, RecordId};
use crate::schema::Schema;

/// An in-memory dataset with ground truth, consumed by every blocker and by
/// the evaluation harness.
#[derive(Debug, Clone)]
pub struct Dataset {
    name: String,
    schema: Arc<Schema>,
    records: Vec<Record>,
    ground_truth: GroundTruth,
}

impl Dataset {
    /// Builds a dataset from records and their entity assignments.
    ///
    /// The records' ids must be dense (record `i` has id `i`); generators and
    /// the CSV reader guarantee this. `entities[i]` is the entity of record `i`.
    pub fn new(
        name: impl Into<String>,
        schema: Arc<Schema>,
        records: Vec<Record>,
        entities: Vec<EntityId>,
    ) -> Result<Self> {
        if records.len() != entities.len() {
            return Err(DatasetError::InvalidConfig(format!(
                "records ({}) and entity assignments ({}) must have the same length",
                records.len(),
                entities.len()
            )));
        }
        for (i, record) in records.iter().enumerate() {
            if record.id().index() != i {
                return Err(DatasetError::InvalidConfig(format!(
                    "record at position {i} has id {}, ids must be dense",
                    record.id()
                )));
            }
        }
        Ok(Self {
            name: name.into(),
            schema,
            records,
            ground_truth: GroundTruth::from_assignments(entities),
        })
    }

    /// Human-readable dataset name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The dataset's schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records, in id order.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// A record by id.
    pub fn record(&self, id: RecordId) -> Option<&Record> {
        self.records.get(id.index())
    }

    /// A record by id, or an error.
    pub fn require_record(&self, id: RecordId) -> Result<&Record> {
        self.record(id).ok_or(DatasetError::UnknownRecord(id.0))
    }

    /// The ground truth.
    pub fn ground_truth(&self) -> &GroundTruth {
        &self.ground_truth
    }

    /// Iterator over record ids.
    pub fn record_ids(&self) -> impl Iterator<Item = RecordId> + '_ {
        self.records.iter().map(|record| record.id())
    }

    /// Returns a new dataset containing only the first `n` records (ground
    /// truth restricted accordingly). Used by the scalability experiments
    /// (Fig. 13) to slice increasing prefixes out of a large dataset.
    pub fn prefix(&self, n: usize) -> Self {
        let n = n.min(self.records.len());
        Self {
            name: format!("{}[0..{n}]", self.name),
            schema: Arc::clone(&self.schema),
            records: self.records[..n].to_vec(),
            ground_truth: self.ground_truth.truncate(n),
        }
    }

    /// Total number of distinct record pairs `|Ω|`.
    pub fn num_total_pairs(&self) -> u64 {
        self.ground_truth.num_total_pairs()
    }
}

/// Incremental builder used by generators and the CSV reader.
#[derive(Debug)]
pub struct DatasetBuilder {
    name: String,
    schema: Arc<Schema>,
    records: Vec<Record>,
    entities: Vec<EntityId>,
}

impl DatasetBuilder {
    /// Starts an empty dataset with the given schema.
    pub fn new(name: impl Into<String>, schema: Arc<Schema>) -> Self {
        Self {
            name: name.into(),
            schema,
            records: Vec::new(),
            entities: Vec::new(),
        }
    }

    /// Reserves capacity for `n` additional records.
    pub fn reserve(&mut self, n: usize) {
        self.records.reserve(n);
        self.entities.reserve(n);
    }

    /// The id the next pushed record will receive. Panics only in the
    /// (unreachable in practice) case of more than `u32::MAX − 1` records;
    /// [`DatasetBuilder::push_values`] reports that case as a typed
    /// `RecordIdOverflow` error before this can be observed.
    pub fn next_id(&self) -> RecordId {
        RecordId::try_from_index(self.records.len()).expect("record id space exhausted")
    }

    /// The schema being built against.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Appends a record from raw values (one per schema attribute, `None`
    /// meaning missing) and its entity.
    pub fn push_values(&mut self, values: Vec<Option<String>>, entity: EntityId) -> Result<RecordId> {
        let id = RecordId::try_from_index(self.records.len())?;
        let record = Record::new(id, Arc::clone(&self.schema), values)?;
        self.records.push(record);
        self.entities.push(entity);
        Ok(id)
    }

    /// Number of records pushed so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Finishes the dataset.
    pub fn build(self) -> Result<Dataset> {
        Dataset::new(self.name, self.schema, self.records, self.entities)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let schema = Schema::shared(["title", "authors"]).unwrap();
        let mut builder = DatasetBuilder::new("sample", schema);
        builder
            .push_values(vec![Some("The cascade-correlation learning architecture".into()), Some("Fahlman Lebiere".into())], EntityId(0))
            .unwrap();
        builder
            .push_values(vec![Some("Cascade correlation learning architecture".into()), Some("Fahlman Lebiere".into())], EntityId(0))
            .unwrap();
        builder
            .push_values(vec![Some("A genetic cascade correlation learning algorithm".into()), None], EntityId(1))
            .unwrap();
        builder.build().unwrap()
    }

    #[test]
    fn builds_and_queries() {
        let ds = sample();
        assert_eq!(ds.name(), "sample");
        assert_eq!(ds.len(), 3);
        assert!(!ds.is_empty());
        assert_eq!(ds.record_ids().count(), 3);
        assert_eq!(ds.record(RecordId(1)).unwrap().value("authors"), Some("Fahlman Lebiere"));
        assert!(ds.record(RecordId(99)).is_none());
        assert!(ds.require_record(RecordId(99)).is_err());
        assert_eq!(ds.ground_truth().num_true_matches(), 1);
        assert_eq!(ds.num_total_pairs(), 3);
    }

    #[test]
    fn mismatched_entities_rejected() {
        let schema = Schema::shared(["a"]).unwrap();
        let rec = Record::new(RecordId(0), Arc::clone(&schema), vec![Some("x".into())]).unwrap();
        let err = Dataset::new("bad", schema, vec![rec], vec![]).unwrap_err();
        assert!(err.to_string().contains("same length"));
    }

    #[test]
    fn non_dense_ids_rejected() {
        let schema = Schema::shared(["a"]).unwrap();
        let rec = Record::new(RecordId(5), Arc::clone(&schema), vec![Some("x".into())]).unwrap();
        let err = Dataset::new("bad", schema, vec![rec], vec![EntityId(0)]).unwrap_err();
        assert!(err.to_string().contains("dense"));
    }

    #[test]
    fn prefix_slices_records_and_truth() {
        let ds = sample();
        let p = ds.prefix(2);
        assert_eq!(p.len(), 2);
        assert_eq!(p.ground_truth().num_true_matches(), 1);
        let p0 = ds.prefix(0);
        assert!(p0.is_empty());
        let pbig = ds.prefix(100);
        assert_eq!(pbig.len(), 3);
    }

    #[test]
    fn builder_arity_checked() {
        let schema = Schema::shared(["a", "b"]).unwrap();
        let mut builder = DatasetBuilder::new("x", schema);
        assert!(builder.push_values(vec![Some("only one".into())], EntityId(0)).is_err());
        assert!(builder.is_empty());
        builder.reserve(10);
        builder.push_values(vec![None, None], EntityId(0)).unwrap();
        assert_eq!(builder.len(), 1);
        assert_eq!(builder.next_id(), RecordId(1));
    }
}
