//! Records: identifiers plus positionally-stored optional attribute values.

use std::fmt;
use std::sync::Arc;

use crate::error::{DatasetError, Result};
use crate::schema::Schema;

/// Identifier of a record within its dataset (a dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RecordId(pub u32);

/// The largest record id the packed-pair fast path can represent:
/// `u32::MAX` itself is reserved — `u64::MAX` doubles as the exhausted-run
/// sentinel of the loser-tree merge, so a pair of ids at `u32::MAX` must
/// never be packable. Construction paths that assign ids
/// ([`crate::dataset::DatasetBuilder`], the incremental blocker) reject ids
/// beyond this bound with a typed `RecordIdOverflow` error instead of
/// truncating.
pub const MAX_RECORD_ID: u32 = u32::MAX - 1; // sablock-lint: allow(raw-sentinel): this is the definition of the named sentinel bound itself

impl RecordId {
    /// The record id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Converts a dense index into a record id, rejecting indices beyond
    /// [`MAX_RECORD_ID`] (which would silently truncate in the `as u32`
    /// casts of the packed-pair paths).
    #[inline]
    pub fn try_from_index(index: usize) -> Result<Self> {
        // usize → u64 cannot lose width on any supported platform.
        let wide = index as u64;
        match u32::try_from(index) {
            Ok(id) if id <= MAX_RECORD_ID => Ok(Self(id)),
            _ => Err(DatasetError::RecordIdOverflow(wide)),
        }
    }
}

impl fmt::Display for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<u32> for RecordId {
    fn from(value: u32) -> Self {
        Self(value)
    }
}

/// An unordered pair of distinct record ids, stored in canonical (min, max)
/// order so it can be used directly as a hash-set key for candidate pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RecordPair {
    smaller: RecordId,
    larger: RecordId,
}

impl RecordPair {
    /// Creates a canonical pair. Returns `None` when both ids are equal
    /// (a record is never a candidate match with itself).
    pub fn new(a: RecordId, b: RecordId) -> Option<Self> {
        match a.cmp(&b) {
            std::cmp::Ordering::Less => Some(Self { smaller: a, larger: b }),
            std::cmp::Ordering::Greater => Some(Self { smaller: b, larger: a }),
            std::cmp::Ordering::Equal => None,
        }
    }

    /// The smaller record id of the pair.
    pub fn first(&self) -> RecordId {
        self.smaller
    }

    /// The larger record id of the pair.
    pub fn second(&self) -> RecordId {
        self.larger
    }

    /// Packs the pair into a single `u64`: the smaller id in the high 32
    /// bits, the larger in the low 32. Because the smaller id occupies the
    /// more significant half, the numeric order of packed keys equals the
    /// derived [`Ord`] on pairs — sorting, deduplicating and merging packed
    /// keys is therefore a single integer compare per step, which is what
    /// the bulk pair-enumeration and merge-counting paths run on.
    #[inline]
    pub fn pack(self) -> u64 {
        (u64::from(self.smaller.0) << 32) | u64::from(self.larger.0)
    }

    /// Packs two *distinct, ascending* record ids directly. Callers must
    /// guarantee `a < b` (e.g. ids drawn from a sorted, deduplicated member
    /// list); [`RecordPair::new`] remains the checked constructor.
    #[inline]
    pub fn pack_ascending(a: RecordId, b: RecordId) -> u64 {
        debug_assert!(a < b, "pack_ascending requires a < b");
        (u64::from(a.0) << 32) | u64::from(b.0)
    }

    /// Reverses [`RecordPair::pack`]. The key must come from a packed valid
    /// pair (high half strictly below low half); this is checked in debug
    /// builds only, keeping the unpack on the counting hot path two shifts.
    #[inline]
    pub fn from_packed(key: u64) -> Self {
        let smaller = RecordId((key >> 32) as u32); // sablock-lint: allow(lossy-id-cast): unpacking the id halves of a packed key is exact by construction
        let larger = RecordId(key as u32); // sablock-lint: allow(lossy-id-cast): unpacking the id halves of a packed key is exact by construction
        debug_assert!(smaller < larger, "packed key {key:#x} does not encode a canonical pair");
        Self { smaller, larger }
    }
}

impl fmt::Display for RecordPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.smaller, self.larger)
    }
}

/// A record: an id plus one optional string value per schema attribute.
///
/// `None` models a missing value — the paper's semantic functions are driven
/// precisely by which attributes are missing (Table 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    id: RecordId,
    schema: Arc<Schema>,
    values: Vec<Option<String>>,
}

impl Record {
    /// Creates a record, validating that the value count matches the schema.
    pub fn new(id: RecordId, schema: Arc<Schema>, values: Vec<Option<String>>) -> Result<Self> {
        if values.len() != schema.len() {
            return Err(DatasetError::ArityMismatch {
                expected: schema.len(),
                actual: values.len(),
            });
        }
        Ok(Self { id, schema, values })
    }

    /// The record's identifier.
    pub fn id(&self) -> RecordId {
        self.id
    }

    /// The schema this record conforms to.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Value of the attribute at `index`, if present and non-empty.
    pub fn value_at(&self, index: usize) -> Option<&str> {
        self.values
            .get(index)
            .and_then(|v| v.as_deref())
            .filter(|v| !v.trim().is_empty())
    }

    /// Value of the named attribute, if the attribute exists and the value is
    /// present and non-empty.
    pub fn value(&self, attribute: &str) -> Option<&str> {
        self.schema.index_of(attribute).and_then(|i| self.value_at(i))
    }

    /// Whether the named attribute is missing (absent attribute, `None`, or
    /// an empty/whitespace value).
    pub fn is_missing(&self, attribute: &str) -> bool {
        self.value(attribute).is_none()
    }

    /// Concatenation of the values of the given attribute indices (present
    /// values only), separated by a single space. This is the "record text"
    /// that shingling and most baselines operate on.
    pub fn concat_values(&self, attribute_indices: &[usize]) -> String {
        let mut out = String::new();
        for &i in attribute_indices {
            if let Some(v) = self.value_at(i) {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(v);
            }
        }
        out
    }

    /// Concatenation of the values of the named attributes.
    pub fn concat_named(&self, attributes: &[&str]) -> String {
        let indices: Vec<usize> = attributes
            .iter()
            .filter_map(|a| self.schema.index_of(a))
            .collect();
        self.concat_values(&indices)
    }

    /// All raw values, in schema order.
    pub fn values(&self) -> &[Option<String>] {
        &self.values
    }

    /// Number of attributes with a present, non-empty value.
    pub fn present_count(&self) -> usize {
        (0..self.schema.len()).filter(|&i| self.value_at(i).is_some()).count()
    }
}

/// Builder-style helper for constructing records by attribute name, used by
/// the generators and tests.
#[derive(Debug, Clone)]
pub struct RecordBuilder {
    schema: Arc<Schema>,
    values: Vec<Option<String>>,
}

impl RecordBuilder {
    /// Starts a record with all attributes missing.
    pub fn new(schema: Arc<Schema>) -> Self {
        let values = vec![None; schema.len()];
        Self { schema, values }
    }

    /// Sets a value by attribute name; unknown names are an error.
    pub fn set(mut self, attribute: &str, value: impl Into<String>) -> Result<Self> {
        let idx = self.schema.require(attribute)?;
        self.values[idx] = Some(value.into());
        Ok(self)
    }

    /// Sets an optional value by attribute name.
    pub fn set_opt(mut self, attribute: &str, value: Option<String>) -> Result<Self> {
        let idx = self.schema.require(attribute)?;
        self.values[idx] = value;
        Ok(self)
    }

    /// Finishes the record with the given id.
    pub fn build(self, id: RecordId) -> Record {
        Record {
            id,
            schema: self.schema,
            values: self.values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Arc<Schema> {
        Schema::shared(["title", "authors", "publisher"]).unwrap()
    }

    #[test]
    fn record_access_by_name_and_index() {
        let r = Record::new(
            RecordId(0),
            schema(),
            vec![Some("The cascade-correlation learning architecture".into()), Some("E. Fahlman and C. Lebiere".into()), None],
        )
        .unwrap();
        assert_eq!(r.id(), RecordId(0));
        assert!(r.value("title").unwrap().contains("cascade"));
        assert_eq!(r.value("publisher"), None);
        assert!(r.is_missing("publisher"));
        assert!(!r.is_missing("title"));
        assert_eq!(r.value("nonexistent"), None);
        assert_eq!(r.present_count(), 2);
    }

    #[test]
    fn empty_string_counts_as_missing() {
        let r = Record::new(RecordId(1), schema(), vec![Some("  ".into()), Some("".into()), Some("TR".into())]).unwrap();
        assert!(r.is_missing("title"));
        assert!(r.is_missing("authors"));
        assert_eq!(r.value("publisher"), Some("TR"));
        assert_eq!(r.present_count(), 1);
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let err = Record::new(RecordId(0), schema(), vec![None]).unwrap_err();
        assert!(matches!(err, DatasetError::ArityMismatch { expected: 3, actual: 1 }));
    }

    #[test]
    fn concatenation_skips_missing() {
        let r = Record::new(
            RecordId(2),
            schema(),
            vec![Some("A Title".into()), None, Some("NIPS".into())],
        )
        .unwrap();
        assert_eq!(r.concat_values(&[0, 1, 2]), "A Title NIPS");
        assert_eq!(r.concat_named(&["title", "authors"]), "A Title");
        assert_eq!(r.concat_named(&["authors"]), "");
    }

    #[test]
    fn builder_sets_by_name() {
        let r = RecordBuilder::new(schema())
            .set("title", "Entity Resolution")
            .unwrap()
            .set_opt("publisher", None)
            .unwrap()
            .build(RecordId(7));
        assert_eq!(r.id(), RecordId(7));
        assert_eq!(r.value("title"), Some("Entity Resolution"));
        assert!(r.is_missing("authors"));
        assert!(RecordBuilder::new(schema()).set("zzz", "x").is_err());
    }

    #[test]
    fn record_pair_is_canonical() {
        let p1 = RecordPair::new(RecordId(5), RecordId(2)).unwrap();
        let p2 = RecordPair::new(RecordId(2), RecordId(5)).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(p1.first(), RecordId(2));
        assert_eq!(p1.second(), RecordId(5));
        assert!(RecordPair::new(RecordId(3), RecordId(3)).is_none());
        assert_eq!(p1.to_string(), "(r2, r5)");
    }

    #[test]
    fn packed_keys_round_trip_and_preserve_order() {
        let pairs = [
            RecordPair::new(RecordId(0), RecordId(1)).unwrap(),
            RecordPair::new(RecordId(0), RecordId(u32::MAX)).unwrap(),
            RecordPair::new(RecordId(7), RecordId(9)).unwrap(),
            RecordPair::new(RecordId(u32::MAX - 1), RecordId(u32::MAX)).unwrap(),
        ];
        for &p in &pairs {
            assert_eq!(RecordPair::from_packed(p.pack()), p);
            assert_eq!(RecordPair::pack_ascending(p.first(), p.second()), p.pack());
        }
        for &a in &pairs {
            for &b in &pairs {
                assert_eq!(a.cmp(&b), a.pack().cmp(&b.pack()), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn record_id_display_and_conversion() {
        let id: RecordId = 42u32.into();
        assert_eq!(id.to_string(), "r42");
        assert_eq!(id.index(), 42);
    }

    #[test]
    fn record_id_width_is_validated() {
        assert_eq!(RecordId::try_from_index(0).unwrap(), RecordId(0));
        assert_eq!(RecordId::try_from_index(MAX_RECORD_ID as usize).unwrap(), RecordId(MAX_RECORD_ID));
        // One past the boundary: the id that would alias the merge sentinel.
        let err = RecordId::try_from_index(MAX_RECORD_ID as usize + 1).unwrap_err();
        assert!(matches!(err, DatasetError::RecordIdOverflow(id) if id == u64::from(u32::MAX)));
    }
}
