//! The dirty-data model used to derive duplicate records from clean entities.
//!
//! The paper stresses that semantic features help most "when data sets are
//! imperfect (i.e. contain inaccurate, incomplete or erroneous data)". The
//! generators therefore corrupt duplicate records with the error classes
//! documented for citation data (Cora) and administrative data (NC Voter):
//! keyboard typos, OCR confusions, token drops and swaps, abbreviation of
//! names and venues, and missing values.

use rand::seq::SliceRandom;
use rand::Rng;

/// Which corruption operations are applied, and how aggressively.
#[derive(Debug, Clone)]
pub struct CorruptionConfig {
    /// Probability that a given word receives a character-level typo.
    pub typo_probability: f64,
    /// Probability that a given word is OCR-corrupted (visually confusable
    /// character substitutions such as `l`→`1`, `rn`→`m`).
    pub ocr_probability: f64,
    /// Probability that a word is dropped entirely.
    pub word_drop_probability: f64,
    /// Probability that two adjacent words are swapped.
    pub word_swap_probability: f64,
    /// Probability that a word is abbreviated to its initial.
    pub abbreviation_probability: f64,
}

impl CorruptionConfig {
    /// A "dirty" profile approximating Cora's citation noise.
    pub fn dirty() -> Self {
        Self {
            typo_probability: 0.08,
            ocr_probability: 0.03,
            word_drop_probability: 0.06,
            word_swap_probability: 0.05,
            abbreviation_probability: 0.10,
        }
    }

    /// A "clean" profile approximating NC Voter's administrative data, where
    /// most duplicates differ only by an occasional typo.
    pub fn clean() -> Self {
        Self {
            typo_probability: 0.02,
            ocr_probability: 0.005,
            word_drop_probability: 0.0,
            word_swap_probability: 0.0,
            abbreviation_probability: 0.0,
        }
    }

    /// A profile that never changes anything (for tests and calibration).
    pub fn none() -> Self {
        Self {
            typo_probability: 0.0,
            ocr_probability: 0.0,
            word_drop_probability: 0.0,
            word_swap_probability: 0.0,
            abbreviation_probability: 0.0,
        }
    }

    /// Validates that every probability is within `[0, 1]`.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("typo_probability", self.typo_probability),
            ("ocr_probability", self.ocr_probability),
            ("word_drop_probability", self.word_drop_probability),
            ("word_swap_probability", self.word_swap_probability),
            ("abbreviation_probability", self.abbreviation_probability),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be in [0, 1], got {p}"));
            }
        }
        Ok(())
    }
}

impl Default for CorruptionConfig {
    fn default() -> Self {
        Self::dirty()
    }
}

/// Applies the configured corruption operations to a string value.
#[derive(Debug, Clone)]
pub struct Corruptor {
    config: CorruptionConfig,
}

impl Corruptor {
    /// Creates a corruptor with the given configuration.
    pub fn new(config: CorruptionConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &CorruptionConfig {
        &self.config
    }

    /// Corrupts a multi-word value (titles, author lists, full names).
    pub fn corrupt_text<R: Rng>(&self, text: &str, rng: &mut R) -> String {
        let mut words: Vec<String> = text.split_whitespace().map(str::to_owned).collect();
        if words.is_empty() {
            return text.to_string();
        }
        // Word-level operations first.
        if words.len() > 2 && rng.gen_bool(self.config.word_drop_probability) {
            let idx = rng.gen_range(0..words.len());
            words.remove(idx);
        }
        if words.len() > 1 && rng.gen_bool(self.config.word_swap_probability) {
            let idx = rng.gen_range(0..words.len() - 1);
            words.swap(idx, idx + 1);
        }
        // Character-level operations per word.
        for word in &mut words {
            if rng.gen_bool(self.config.abbreviation_probability) && word.chars().count() > 2 {
                let initial = word.chars().next().unwrap();
                *word = format!("{initial}.");
                continue;
            }
            if rng.gen_bool(self.config.typo_probability) {
                *word = typo(word, rng);
            }
            if rng.gen_bool(self.config.ocr_probability) {
                *word = ocr_corrupt(word, rng);
            }
        }
        words.join(" ")
    }

    /// Corrupts a single token (e.g. a first or last name): only character
    /// level typos apply.
    pub fn corrupt_token<R: Rng>(&self, token: &str, rng: &mut R) -> String {
        let mut out = token.to_string();
        if rng.gen_bool(self.config.typo_probability) {
            out = typo(&out, rng);
        }
        if rng.gen_bool(self.config.ocr_probability) {
            out = ocr_corrupt(&out, rng);
        }
        out
    }
}

/// Applies one random keyboard-style typo: insert, delete, substitute or
/// transpose a character. Strings shorter than 2 characters are only ever
/// extended, never emptied.
pub fn typo<R: Rng>(word: &str, rng: &mut R) -> String {
    let chars: Vec<char> = word.chars().collect();
    if chars.is_empty() {
        return word.to_string();
    }
    let letters = b"abcdefghijklmnopqrstuvwxyz";
    let random_letter = |rng: &mut R| char::from(letters[rng.gen_range(0..letters.len())]);
    let op = if chars.len() < 2 { 0 } else { rng.gen_range(0..4) };
    let mut chars = chars;
    match op {
        0 => {
            // insert
            let pos = rng.gen_range(0..=chars.len());
            chars.insert(pos, random_letter(rng));
        }
        1 => {
            // delete
            let pos = rng.gen_range(0..chars.len());
            chars.remove(pos);
        }
        2 => {
            // substitute
            let pos = rng.gen_range(0..chars.len());
            chars[pos] = random_letter(rng);
        }
        _ => {
            // transpose adjacent
            let pos = rng.gen_range(0..chars.len() - 1);
            chars.swap(pos, pos + 1);
        }
    }
    chars.into_iter().collect()
}

/// Substitutes one visually-confusable character pair (OCR-style error).
pub fn ocr_corrupt<R: Rng>(word: &str, rng: &mut R) -> String {
    const CONFUSIONS: &[(&str, &str)] = &[
        ("l", "1"),
        ("1", "l"),
        ("o", "0"),
        ("0", "o"),
        ("rn", "m"),
        ("m", "rn"),
        ("cl", "d"),
        ("e", "c"),
        ("s", "5"),
        ("b", "6"),
    ];
    let applicable: Vec<&(&str, &str)> = CONFUSIONS.iter().filter(|(from, _)| word.contains(from)).collect();
    if let Some((from, to)) = applicable.choose(rng) {
        word.replacen(from, to, 1)
    } else {
        word.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn config_profiles_are_valid() {
        for cfg in [CorruptionConfig::dirty(), CorruptionConfig::clean(), CorruptionConfig::none(), CorruptionConfig::default()] {
            assert!(cfg.validate().is_ok());
        }
        let bad = CorruptionConfig { typo_probability: 1.5, ..CorruptionConfig::none() };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn none_profile_is_identity() {
        let corruptor = Corruptor::new(CorruptionConfig::none());
        let mut r = rng();
        let text = "the cascade correlation learning architecture";
        for _ in 0..20 {
            assert_eq!(corruptor.corrupt_text(text, &mut r), text);
            assert_eq!(corruptor.corrupt_token("fahlman", &mut r), "fahlman");
        }
    }

    #[test]
    fn dirty_profile_changes_something_eventually() {
        let corruptor = Corruptor::new(CorruptionConfig::dirty());
        let mut r = rng();
        let text = "the cascade correlation learning architecture";
        let changed = (0..50).any(|_| corruptor.corrupt_text(text, &mut r) != text);
        assert!(changed, "50 corruption attempts should alter the text at least once");
    }

    #[test]
    fn corruption_keeps_text_recognisable() {
        // Corrupted duplicates must stay *similar* to their source, otherwise
        // the generator would not reproduce the paper's match-similarity
        // distribution. Check a loose lower bound on bigram Jaccard.
        let corruptor = Corruptor::new(CorruptionConfig::dirty());
        let mut r = rng();
        let text = "efficient clustering of high dimensional data sets";
        let mut total = 0.0;
        let n = 30;
        for _ in 0..n {
            let corrupted = corruptor.corrupt_text(text, &mut r);
            total += bigram_jaccard(text, &corrupted);
        }
        let mean = total / n as f64;
        assert!(mean > 0.6, "mean bigram similarity of corrupted text too low: {mean}");
    }

    fn bigram_jaccard(a: &str, b: &str) -> f64 {
        use std::collections::HashSet;
        let grams = |s: &str| -> HashSet<(char, char)> {
            let chars: Vec<char> = s.chars().collect();
            chars.windows(2).map(|w| (w[0], w[1])).collect()
        };
        let (sa, sb) = (grams(a), grams(b));
        if sa.is_empty() && sb.is_empty() {
            return 1.0;
        }
        let inter = sa.intersection(&sb).count() as f64;
        let union = (sa.len() + sb.len()) as f64 - inter;
        inter / union
    }

    #[test]
    fn typo_changes_by_one_edit() {
        let mut r = rng();
        for _ in 0..50 {
            let word = "correlation";
            let out = typo(word, &mut r);
            let len_diff = (out.chars().count() as i64 - word.chars().count() as i64).abs();
            assert!(len_diff <= 1, "typo changed length by more than one: {out}");
            assert!(!out.is_empty());
        }
    }

    #[test]
    fn typo_on_single_char_never_empties() {
        let mut r = rng();
        for _ in 0..20 {
            assert!(!typo("a", &mut r).is_empty());
        }
        assert_eq!(typo("", &mut r), "");
    }

    #[test]
    fn ocr_applies_known_confusion_or_identity() {
        let mut r = rng();
        let out = ocr_corrupt("learning", &mut r);
        assert!(!out.is_empty());
        // A word with no confusable characters is unchanged.
        assert_eq!(ocr_corrupt("xyz", &mut r), "xyz");
    }

    #[test]
    fn corrupt_text_of_empty_is_empty() {
        let corruptor = Corruptor::new(CorruptionConfig::dirty());
        assert_eq!(corruptor.corrupt_text("", &mut rng()), "");
    }
}
