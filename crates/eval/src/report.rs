//! Fixed-width text tables for experiment output.
//!
//! The benchmark harness prints the same rows/series the paper reports; this
//! module keeps that output readable and diff-able without pulling in a
//! table-rendering dependency.

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (shorter rows are padded with empty cells, longer rows
    /// are truncated to the header width).
    pub fn add_row(&mut self, cells: Vec<String>) {
        let mut cells = cells;
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Convenience: appends a row of displayable values.
    pub fn row<T: std::fmt::Display>(&mut self, cells: &[T]) {
        self.add_row(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("== {} ==\n", self.title));
        }
        let format_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, cell)| format!("{:<width$}", cell, width = widths.get(i).copied().unwrap_or(cell.len())))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&format_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with three decimals (the precision used in the paper's
/// tables).
pub fn fmt3(value: f64) -> String {
    format!("{value:.3}")
}

/// Formats a signed percentage delta with two decimals, e.g. `+24.75`.
pub fn fmt_delta(value: f64) -> String {
    format!("{value:+.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut table = TextTable::new("Example", &["technique", "FM"]);
        table.add_row(vec!["SA-LSH".into(), "0.712".into()]);
        table.add_row(vec!["TBlo".into(), "0.3".into()]);
        let rendered = table.render();
        assert!(rendered.contains("== Example =="));
        assert!(rendered.contains("technique  FM"));
        assert!(rendered.contains("SA-LSH"));
        assert_eq!(table.num_rows(), 2);
        assert_eq!(table.title(), "Example");
    }

    #[test]
    fn rows_are_padded_and_truncated_to_header_width() {
        let mut table = TextTable::new("", &["a", "b"]);
        table.add_row(vec!["only one".into()]);
        table.row(&[1.5, 2.5, 3.5]);
        let rendered = table.render();
        assert!(rendered.contains("only one"));
        assert!(rendered.contains("1.5"));
        assert!(!rendered.contains("3.5"), "extra cells are dropped");
        assert!(!rendered.contains("=="), "no title line when the title is empty");
    }

    #[test]
    fn float_formatters() {
        assert_eq!(fmt3(0.123456), "0.123");
        assert_eq!(fmt3(1.0), "1.000");
        assert_eq!(fmt_delta(24.754), "+24.75");
        assert_eq!(fmt_delta(-3.5), "-3.50");
    }
}
