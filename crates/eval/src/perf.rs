//! Machine-readable performance reports.
//!
//! `BENCH_NOTES.md` narrates the paper-scale reference runs for humans; the
//! helpers here emit the same numbers as JSON (`BENCH_fig13.json` at the
//! workspace root) so that the perf trajectory is *diffable* across PRs:
//! each producer — the `examples/paper_scale.rs` walk-through and the
//! Fig. 13 scalability ladder — writes its own top-level section and leaves
//! every other section untouched ([`upsert_section`]).
//!
//! The workspace has no JSON dependency (the build environment is offline),
//! so this module carries a deliberately tiny writer ([`JsonValue`]) and a
//! top-level-section splitter that only needs to understand documents this
//! module itself produced. Peak memory comes from [`peak_rss_bytes`]
//! (`VmHWM` of `/proc/self/status` — `None` off Linux).

use std::fmt::Write as _;
use std::path::Path;

/// A JSON value, sufficient for perf reports: no escapes beyond the JSON
/// basics, integers kept exact (pair counts exceed `f64`'s 2^53 mantissa
/// only far beyond any dataset this workspace handles, but why round).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer (record/pair counts, bytes).
    UInt(u64),
    /// A float (seconds); non-finite values render as `null`.
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Renders the value as pretty-printed JSON at the given indent level.
    fn render_into(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_inner = "  ".repeat(indent + 1);
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            JsonValue::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            JsonValue::Float(f) if f.is_finite() => {
                let _ = write!(out, "{f:.6}");
            }
            JsonValue::Float(_) => out.push_str("null"),
            JsonValue::String(s) => render_string(out, s),
            JsonValue::Array(items) if items.is_empty() => out.push_str("[]"),
            JsonValue::Array(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_inner);
                    item.render_into(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&pad);
                out.push(']');
            }
            JsonValue::Object(fields) if fields.is_empty() => out.push_str("{}"),
            JsonValue::Object(fields) => {
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    out.push_str(&pad_inner);
                    render_string(out, key);
                    out.push_str(": ");
                    value.render_into(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Renders the value as pretty-printed JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }
}

fn render_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Splits a JSON object document into its raw top-level `(key, value-text)`
/// sections. Only documents produced by this module need to parse; anything
/// unexpected returns `None` and the caller starts a fresh document.
fn split_top_level(text: &str) -> Option<Vec<(String, String)>> {
    let bytes = text.as_bytes();
    let mut i = skip_ws(bytes, 0);
    if bytes.get(i) != Some(&b'{') {
        return None;
    }
    i = skip_ws(bytes, i + 1);
    let mut sections = Vec::new();
    if bytes.get(i) == Some(&b'}') {
        return Some(sections);
    }
    loop {
        let (key, after_key) = parse_string(bytes, i)?;
        i = skip_ws(bytes, after_key);
        if bytes.get(i) != Some(&b':') {
            return None;
        }
        i = skip_ws(bytes, i + 1);
        let value_start = i;
        i = skip_value(bytes, i)?;
        sections.push((key, text.get(value_start..i)?.trim_end().to_string()));
        i = skip_ws(bytes, i);
        match bytes.get(i) {
            Some(&b',') => i = skip_ws(bytes, i + 1),
            Some(&b'}') => return Some(sections),
            _ => return None,
        }
    }
}

fn skip_ws(bytes: &[u8], mut i: usize) -> usize {
    while matches!(bytes.get(i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
        i += 1;
    }
    i
}

/// Parses a JSON string starting at `i` (which must be a `"`), returning the
/// unescaped key and the index just past the closing quote. Escaped quotes
/// are honoured; other escapes are kept verbatim (keys here are plain).
fn parse_string(bytes: &[u8], i: usize) -> Option<(String, usize)> {
    if bytes.get(i) != Some(&b'"') {
        return None;
    }
    let mut out = Vec::new();
    let mut j = i + 1;
    loop {
        match bytes.get(j)? {
            b'"' => return Some((String::from_utf8(out).ok()?, j + 1)),
            b'\\' => {
                out.push(*bytes.get(j + 1)?);
                j += 2;
            }
            &c => {
                out.push(c);
                j += 1;
            }
        }
    }
}

/// Skips one JSON value starting at `i`, tracking strings/escapes and
/// bracket nesting; returns the index just past the value.
fn skip_value(bytes: &[u8], i: usize) -> Option<usize> {
    match bytes.get(i)? {
        b'"' => parse_string(bytes, i).map(|(_, end)| end),
        b'{' | b'[' => {
            let mut depth = 0usize;
            let mut j = i;
            loop {
                match bytes.get(j)? {
                    b'{' | b'[' => depth += 1,
                    b'}' | b']' => {
                        depth -= 1;
                        if depth == 0 {
                            return Some(j + 1);
                        }
                    }
                    b'"' => {
                        j = parse_string(bytes, j)?.1;
                        continue;
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        _ => {
            // Scalar: runs to the next comma or closing bracket.
            let mut j = i;
            while !matches!(bytes.get(j), None | Some(b',' | b'}' | b']')) {
                j += 1;
            }
            (j > i).then_some(j)
        }
    }
}

/// Inserts or replaces one top-level section of a JSON report file, leaving
/// every other section byte-for-byte intact (sections keep their first-write
/// order; a replaced section keeps its position). An absent, empty or
/// unparseable file starts a fresh single-section document.
pub fn upsert_section(path: &Path, name: &str, value: &JsonValue) -> std::io::Result<()> {
    let mut sections = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| split_top_level(&text))
        .unwrap_or_default();
    let rendered = {
        // Re-indent the section body for its nesting depth of one.
        let mut out = String::new();
        value.render_into(&mut out, 1);
        out
    };
    match sections.iter_mut().find(|(key, _)| key == name) {
        Some((_, existing)) => *existing = rendered,
        None => sections.push((name.to_string(), rendered)),
    }
    let mut out = String::from("{\n");
    for (i, (key, body)) in sections.iter().enumerate() {
        out.push_str("  ");
        render_string(&mut out, key);
        out.push_str(": ");
        out.push_str(body);
        out.push_str(if i + 1 < sections.len() { ",\n" } else { "\n" });
    }
    out.push_str("}\n");
    std::fs::write(path, out)
}

/// Wall-clock latency samples (e.g. per-batch insert times of a streaming
/// ingest) with the order statistics the perf reports record.
///
/// Percentiles use the nearest-rank method on a sorted copy of the samples:
/// `p(q)` is the smallest sample such that at least `q`% of samples are ≤ it
/// — exact for the few-hundred-sample populations these reports hold, no
/// interpolation surprises.
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    samples: Vec<std::time::Duration>,
}

impl LatencyStats {
    /// An empty sample set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, sample: std::time::Duration) {
        self.samples.push(sample);
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The nearest-rank `q`-th percentile in seconds (`q` in [0, 100]);
    /// 0 when no samples were recorded.
    pub fn percentile_secs(&self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut secs: Vec<f64> = self.samples.iter().map(std::time::Duration::as_secs_f64).collect();
        secs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let q = q.clamp(0.0, 100.0);
        // Multiply before dividing: `q * n / 100` is exact in f64 for every
        // integral q and realistic n, whereas `(q / 100) * n` rounds `q / 100`
        // first (0.29, 0.58, …) and can push `ceil` one rank high or low.
        let rank = ((q * secs.len() as f64) / 100.0).ceil() as usize;
        secs[rank.saturating_sub(1)]
    }

    /// The mean sample in seconds (0 when empty).
    pub fn mean_secs(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.total_secs() / self.samples.len() as f64
    }

    /// Folds another sample set into this one (e.g. per-thread collectors
    /// merged after a join). Percentiles over the merged set are identical
    /// to recording every sample into a single collector.
    pub fn merge(&mut self, other: &Self) {
        self.samples.extend_from_slice(&other.samples);
    }

    /// The median (p50) in seconds.
    pub fn p50_secs(&self) -> f64 {
        self.percentile_secs(50.0)
    }

    /// The 99th percentile in seconds.
    pub fn p99_secs(&self) -> f64 {
        self.percentile_secs(99.0)
    }

    /// The largest sample in seconds (0 when empty).
    pub fn max_secs(&self) -> f64 {
        self.samples.iter().map(std::time::Duration::as_secs_f64).fold(0.0, f64::max)
    }

    /// The sum of all samples in seconds.
    pub fn total_secs(&self) -> f64 {
        self.samples.iter().map(std::time::Duration::as_secs_f64).sum()
    }
}

/// The process's peak resident set size in bytes.
///
/// **Linux-only**: the value is `VmHWM` from `/proc/self/status`, a Linux
/// procfs interface with no portable equivalent — on every other platform
/// (macOS, Windows, BSDs) this returns `None` and perf reports record the
/// peak-RSS field as `null`. The high-water mark is also per-process and
/// monotone: it never resets between phases of one run, so a later phase
/// cannot report a smaller peak than an earlier one.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JsonValue {
        JsonValue::Object(vec![
            ("records".into(), JsonValue::UInt(292_892)),
            ("gamma_count_s".into(), JsonValue::Float(68.6)),
            ("label".into(), JsonValue::String("SA-LSH \"or\"\n".into())),
            (
                "points".into(),
                JsonValue::Array(vec![JsonValue::UInt(1), JsonValue::Null, JsonValue::Bool(true)]),
            ),
            ("empty".into(), JsonValue::Object(vec![])),
        ])
    }

    #[test]
    fn rendering_is_stable_and_escaped() {
        let rendered = sample().render();
        assert!(rendered.contains("\"records\": 292892"));
        assert!(rendered.contains("\"gamma_count_s\": 68.600000"));
        assert!(rendered.contains("\\\"or\\\"\\n"));
        assert!(rendered.contains("\"empty\": {}"));
        assert!(!rendered.contains("NaN"));
        assert_eq!(JsonValue::Float(f64::NAN).render(), "null");
    }

    #[test]
    fn split_round_trips_rendered_documents() {
        let dir = std::env::temp_dir().join(format!("sablock-perf-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        let _ = std::fs::remove_file(&path);

        upsert_section(&path, "paper_scale", &sample()).unwrap();
        upsert_section(&path, "ladder", &JsonValue::Array(vec![JsonValue::UInt(7)])).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let sections = split_top_level(&text).unwrap();
        assert_eq!(sections.len(), 2);
        assert_eq!(sections[0].0, "paper_scale");
        assert_eq!(sections[1].0, "ladder");

        // Replacing a section keeps the other byte-for-byte.
        let ladder_before = sections[1].1.clone();
        upsert_section(&path, "paper_scale", &JsonValue::UInt(1)).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let sections = split_top_level(&text).unwrap();
        assert_eq!(sections[0].1, "1");
        assert_eq!(sections[1].1, ladder_before);

        // Garbage starts a fresh document instead of erroring.
        std::fs::write(&path, "not json at all").unwrap();
        upsert_section(&path, "only", &JsonValue::Bool(false)).unwrap();
        let sections = split_top_level(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(sections, vec![("only".to_string(), "false".to_string())]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn latency_percentiles_use_nearest_rank() {
        let mut stats = LatencyStats::new();
        assert!(stats.is_empty());
        assert_eq!(stats.percentile_secs(50.0), 0.0);
        assert_eq!(stats.max_secs(), 0.0);
        for ms in [40u64, 10, 30, 20, 50] {
            stats.record(std::time::Duration::from_millis(ms));
        }
        assert_eq!(stats.len(), 5);
        assert!((stats.p50_secs() - 0.030).abs() < 1e-12, "median of 10..50ms is 30ms");
        assert!((stats.p99_secs() - 0.050).abs() < 1e-12, "p99 of 5 samples is the max");
        assert!((stats.percentile_secs(0.0) - 0.010).abs() < 1e-12);
        assert!((stats.max_secs() - 0.050).abs() < 1e-12);
        assert!((stats.total_secs() - 0.150).abs() < 1e-12);
        assert!((stats.mean_secs() - 0.030).abs() < 1e-12);
    }

    /// Pins which sorted index nearest-rank selects for the two quantiles
    /// the perf reports record, at the sample counts where ceil-rounding is
    /// most fragile (singletons, pairs, and n straddling 100).
    #[test]
    fn latency_percentile_ranks_are_pinned() {
        // With samples 1ms, 2ms, …, n·ms (recorded shuffled), the selected
        // sorted index is the reported value in ms minus one.
        let cases = [
            (1usize, 0usize, 0usize), // (n, p50 index, p99 index)
            (2, 0, 1),
            (99, 49, 98),
            (100, 49, 98),
            (101, 50, 99),
        ];
        for (n, p50_index, p99_index) in cases {
            let mut stats = LatencyStats::new();
            // Record out of order to prove selection sorts first.
            for ms in (1..=n).rev() {
                stats.record(std::time::Duration::from_millis(ms as u64));
            }
            let expect = |index: usize| (index + 1) as f64 * 1e-3;
            assert!(
                (stats.p50_secs() - expect(p50_index)).abs() < 1e-12,
                "p50 of n={n} must take sorted index {p50_index}, got {}",
                stats.p50_secs()
            );
            assert!(
                (stats.p99_secs() - expect(p99_index)).abs() < 1e-12,
                "p99 of n={n} must take sorted index {p99_index}, got {}",
                stats.p99_secs()
            );
            // Boundary quantiles: p0 is the min, p100 the max.
            assert!((stats.percentile_secs(0.0) - 1e-3).abs() < 1e-12);
            assert!((stats.percentile_secs(100.0) - n as f64 * 1e-3).abs() < 1e-12);
        }
    }

    #[test]
    fn latency_merge_matches_single_collector() {
        let mut left = LatencyStats::new();
        let mut right = LatencyStats::new();
        let mut all = LatencyStats::new();
        for ms in 1..=100u64 {
            let sample = std::time::Duration::from_millis(ms);
            if ms % 3 == 0 { left.record(sample) } else { right.record(sample) }
            all.record(sample);
        }
        left.merge(&right);
        left.merge(&LatencyStats::new());
        assert_eq!(left.len(), all.len());
        assert_eq!(left.p50_secs(), all.p50_secs());
        assert_eq!(left.p99_secs(), all.p99_secs());
        // Summation order differs between the split and single collectors,
        // so the totals agree only up to float associativity.
        assert!((left.total_secs() - all.total_secs()).abs() < 1e-9);
    }

    #[test]
    fn peak_rss_is_plausible_on_linux() {
        if let Some(bytes) = peak_rss_bytes() {
            // A running test binary surely holds more than 64 KiB and less
            // than 1 TiB.
            assert!(bytes > 64 * 1024);
            assert!(bytes < 1 << 40);
        }
    }
}
