//! Running a blocker over a dataset with timing and evaluation.
//!
//! Every experiment — from the quick configurations used by tests up to the
//! paper-scale runs selected with `SABLOCK_BENCH_SCALE=paper` in
//! `sablock_bench` — funnels through [`run_blocker`]: it times
//! [`Blocker::block`], then scores the resulting collection against ground
//! truth. Scoring goes through the *streaming* evaluation path
//! ([`BlockingMetrics::evaluate`] →
//! [`BlockCollection::stream_pair_counts`](sablock_core::blocking::BlockCollection::stream_pair_counts)),
//! so even the candidate-pair sets of the full 292,892-record voter roll are
//! counted without ever being materialised. The dataset sizes the two ends
//! of that ladder use are defined by
//! [`Scale`](crate::experiments::Scale): `Scale::Quick` stays in the
//! hundreds-to-thousands range, `Scale::Paper` reproduces the paper's sizes
//! (1,879 Cora records, 30,000 NC Voter records, and Fig. 13's scalability
//! ladder ending at the full 292,892-record voter roll).
//!
//! ```
//! use sablock_eval::experiments::{voter_dataset_of_size, voter_lsh, Scale};
//! use sablock_eval::runner::run_blocker;
//!
//! // The quick end of the ladder is small enough for a doctest…
//! let dataset = voter_dataset_of_size(300)?;
//! let result = run_blocker("LSH", &voter_lsh(3, 10)?, &dataset)?;
//! assert_eq!(result.technique, "LSH");
//! assert!(result.num_blocks > 0);
//!
//! // …while the paper end tops out at the full NC Voter roll.
//! assert_eq!(Scale::Paper.scalability_sizes().last(), Some(&292_892));
//! # Ok::<(), sablock_core::error::CoreError>(())
//! ```

use std::time::{Duration, Instant};

use sablock_core::blocking::{BlockCollection, Blocker};
use sablock_core::error::Result;
use sablock_datasets::Dataset;

use crate::metrics::BlockingMetrics;

/// The outcome of running one blocker configuration over one dataset.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The technique abbreviation (TBlo, SorA, …, LSH, SA-LSH).
    pub technique: String,
    /// The full configuration name (`Blocker::name`).
    pub configuration: String,
    /// The dataset name.
    pub dataset: String,
    /// Wall-clock time spent inside `Blocker::block`.
    pub blocking_time: Duration,
    /// Number of blocks produced.
    pub num_blocks: usize,
    /// Size of the largest block.
    pub max_block_size: usize,
    /// The quality measures.
    pub metrics: BlockingMetrics,
}

impl RunResult {
    /// Convenience accessor: FM of the run.
    pub fn fm(&self) -> f64 {
        self.metrics.fm()
    }

    /// One-line summary used in logs and examples.
    pub fn summary(&self) -> String {
        format!(
            "{:<8} PC={:.3} PQ={:.3} RR={:.4} FM={:.3} pairs={} time={:.3}s [{}]",
            self.technique,
            self.metrics.pc(),
            self.metrics.pq(),
            self.metrics.rr(),
            self.metrics.fm(),
            self.metrics.candidate_pairs,
            self.blocking_time.as_secs_f64(),
            self.configuration
        )
    }
}

/// Runs a blocker over a dataset, timing the blocking phase and evaluating
/// the result against the dataset's ground truth.
pub fn run_blocker(technique: &str, blocker: &dyn Blocker, dataset: &Dataset) -> Result<RunResult> {
    let start = Instant::now();
    let blocks = blocker.block(dataset)?;
    let blocking_time = start.elapsed();
    Ok(evaluate_blocks(technique, &blocker.name(), dataset, &blocks, blocking_time))
}

/// Evaluates an existing block collection (used when the blocks were produced
/// elsewhere, e.g. by meta-blocking re-pruning a shared input). Metrics come
/// from the streaming pair counter, so the collection's Γ is never
/// materialised here.
pub fn evaluate_blocks(
    technique: &str,
    configuration: &str,
    dataset: &Dataset,
    blocks: &BlockCollection,
    blocking_time: Duration,
) -> RunResult {
    RunResult {
        technique: technique.to_string(),
        configuration: configuration.to_string(),
        dataset: dataset.name().to_string(),
        blocking_time,
        num_blocks: blocks.num_blocks(),
        max_block_size: blocks.max_block_size(),
        metrics: BlockingMetrics::evaluate(blocks, dataset.ground_truth()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sablock_baselines::key::BlockingKey;
    use sablock_baselines::standard::StandardBlocking;
    use sablock_datasets::{NcVoterConfig, NcVoterGenerator};

    fn dataset() -> Dataset {
        NcVoterGenerator::new(NcVoterConfig {
            num_records: 300,
            ..NcVoterConfig::small()
        })
        .generate()
        .unwrap()
    }

    #[test]
    fn runs_and_evaluates_a_blocker() {
        let ds = dataset();
        let blocker = StandardBlocking::new(BlockingKey::ncvoter());
        let result = run_blocker("TBlo", &blocker, &ds).unwrap();
        assert_eq!(result.technique, "TBlo");
        assert_eq!(result.dataset, ds.name());
        assert!(result.configuration.contains("TBlo"));
        assert!(result.num_blocks > 0);
        assert!(result.metrics.pc() > 0.0, "exact duplicates exist, TBlo must find some");
        assert!(result.fm() > 0.0);
        assert!(result.summary().contains("TBlo"));
        assert!(result.max_block_size >= 2);
    }

    #[test]
    fn errors_propagate() {
        let ds = dataset();
        let blocker = StandardBlocking::new(BlockingKey::cora());
        assert!(run_blocker("TBlo", &blocker, &ds).is_err());
    }

    #[test]
    fn evaluate_blocks_uses_supplied_time() {
        let ds = dataset();
        let blocker = StandardBlocking::new(BlockingKey::ncvoter());
        let blocks = blocker.block(&ds).unwrap();
        let result = evaluate_blocks("TBlo", "custom", &ds, &blocks, Duration::from_millis(5));
        assert_eq!(result.blocking_time, Duration::from_millis(5));
        assert_eq!(result.configuration, "custom");
    }
}
