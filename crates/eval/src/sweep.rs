//! Parameter sweeps: run every setting of a technique grid and keep the
//! best-FM configuration, mirroring how Table 3 and Fig. 11 report "the
//! result with the best-performing parameter setting".
//!
//! Each setting is scored through [`run_blocker`]'s streaming evaluation, so
//! sweeping a grid never materialises any setting's candidate-pair set — the
//! sweep's memory footprint stays flat no matter how many settings run.

use sablock_baselines::params::TechniqueGrid;
use sablock_core::error::{CoreError, Result};
use sablock_datasets::Dataset;

use crate::runner::{run_blocker, RunResult};

/// Runs every setting of one grid and returns the best-FM result.
pub fn best_by_fm(grid: &TechniqueGrid, dataset: &Dataset) -> Result<RunResult> {
    if grid.is_empty() {
        return Err(CoreError::Config(format!("technique {} has no settings to sweep", grid.technique)));
    }
    let mut best: Option<RunResult> = None;
    for blocker in &grid.settings {
        let result = run_blocker(grid.technique, blocker.as_ref(), dataset)?;
        let better = match &best {
            Some(current) => result.fm() > current.fm(),
            None => true,
        };
        if better {
            best = Some(result);
        }
    }
    Ok(best.expect("grid is non-empty"))
}

/// Runs every grid and returns the best-FM result per technique, in grid
/// order.
pub fn sweep_grids(grids: &[TechniqueGrid], dataset: &Dataset) -> Result<Vec<RunResult>> {
    grids.iter().map(|grid| best_by_fm(grid, dataset)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sablock_baselines::key::BlockingKey;
    use sablock_baselines::params::{reduced_grids, TechniqueGrid};
    use sablock_datasets::{NcVoterConfig, NcVoterGenerator};

    fn dataset() -> Dataset {
        NcVoterGenerator::new(NcVoterConfig {
            num_records: 250,
            ..NcVoterConfig::small()
        })
        .generate()
        .unwrap()
    }

    #[test]
    fn sweeping_picks_the_best_fm_setting() {
        let ds = dataset();
        let grids = reduced_grids(&BlockingKey::ncvoter());
        // SorA has two settings; the best-FM one is returned.
        let sora = grids.iter().find(|g| g.technique == "SorA").unwrap();
        let best = best_by_fm(sora, &ds).unwrap();
        assert_eq!(best.technique, "SorA");
        for blocker in &sora.settings {
            let result = run_blocker("SorA", blocker.as_ref(), &ds).unwrap();
            assert!(best.fm() >= result.fm() - 1e-12);
        }
    }

    #[test]
    fn sweeping_all_reduced_grids_produces_one_result_per_technique() {
        let ds = dataset();
        let grids = reduced_grids(&BlockingKey::ncvoter());
        let results = sweep_grids(&grids, &ds).unwrap();
        assert_eq!(results.len(), grids.len());
        for (grid, result) in grids.iter().zip(&results) {
            assert_eq!(grid.technique, result.technique);
        }
        // Exact-duplicate-heavy synthetic data: the best setting of every
        // technique should recover at least some true matches.
        assert!(results.iter().all(|r| r.metrics.pc() > 0.0), "every technique should find something");
    }

    #[test]
    fn empty_grids_are_an_error() {
        let ds = dataset();
        let empty = TechniqueGrid {
            technique: "empty",
            settings: vec![],
        };
        assert!(best_by_fm(&empty, &ds).is_err());
    }
}
