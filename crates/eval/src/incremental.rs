//! Evaluating streaming ingest: per-batch delta metrics that add up to the
//! one-shot blocking metrics.
//!
//! The incremental blocker (`sablock_core::incremental`) emits each batch's
//! **delta candidate pairs** as sorted packed runs. For insert-only
//! workloads the deltas of successive batches are disjoint and their union
//! is exactly Γ, so an accumulator that sums per-batch
//! [`PairCounts`] reproduces — byte for byte — the `|Γ|` and `|Γ_tp|` a
//! from-scratch [`BlockingMetrics::evaluate`] of the merged whole would
//! report, at the cost of counting only each batch's *new* pairs.
//! [`IncrementalEvaluation`] is that accumulator; it turns the running
//! totals into cumulative PC/PQ/RR/FM against the ground truth ingested so
//! far.

use sablock_core::blocking::{EntityTableProbe, PairCounts};
use sablock_core::incremental::{DeltaPairs, RunningCounts};
use sablock_datasets::GroundTruth;

use crate::metrics::BlockingMetrics;

/// Running totals over the deltas of an insert-only ingest.
///
/// After observing every batch of a partition of a dataset, the cumulative
/// counts equal the one-shot evaluation of the same blocking configuration
/// over the whole dataset (property-tested in `tests/incremental.rs`).
/// For workloads **with removals**, don't fold deltas by hand: the blocker's
/// own [`RunningCounts`] already folds every delta *and* subtracts each
/// tombstoned record's live pairs — mirror it into the evaluation with
/// [`IncrementalEvaluation::sync_with`] (or `From`) and the cumulative
/// metrics stay exact under arbitrary insert/remove interleavings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrementalEvaluation {
    distinct: u64,
    matching: u64,
}

impl IncrementalEvaluation {
    /// Starts with zero observed pairs.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one batch's delta into the running totals, probing each delta
    /// pair against the ground truth's dense entity table (the same
    /// [`EntityTableProbe`] fast path the streaming Γ counter uses). The
    /// truth must cover at least the records ingested so far; a delta pair
    /// always stays inside that range, so growing the truth alongside the
    /// ingest is sound. Returns this batch's counts.
    pub fn observe(&mut self, delta: &DeltaPairs, truth: &GroundTruth) -> PairCounts {
        let counts = delta.counts(&EntityTableProbe::new(truth.entity_table()));
        self.distinct += counts.distinct;
        self.matching += counts.matching;
        counts
    }

    /// Cumulative number of distinct candidate pairs observed.
    pub fn candidate_pairs(&self) -> u64 {
        self.distinct
    }

    /// Cumulative number of observed candidate pairs that are true matches.
    pub fn true_positives(&self) -> u64 {
        self.matching
    }

    /// Overwrites the running totals with the blocker's own O(1)
    /// [`RunningCounts`] — the removal-aware path: the blocker folds every
    /// delta as it is produced and subtracts retired pairs on `remove`, so
    /// after a sync the evaluation scores the *live* corpus exactly, at no
    /// per-pair cost to the caller.
    pub fn sync_with(&mut self, counts: RunningCounts) {
        self.distinct = counts.pairs;
        self.matching = counts.true_positives;
    }

    /// The cumulative quality measures against the ground truth ingested so
    /// far. `redundant_pairs` is the Γ_m of the current blocking (available
    /// from a snapshot's
    /// [`redundant_pair_count`](sablock_core::blocking::BlockCollection::redundant_pair_count),
    /// an O(blocks) scan); pass 0 when PQ*/FM* are not needed.
    pub fn metrics(&self, truth: &GroundTruth, redundant_pairs: u64) -> BlockingMetrics {
        self.metrics_with_totals(truth.num_true_matches(), truth.num_total_pairs(), redundant_pairs)
    }

    /// [`IncrementalEvaluation::metrics`] with the ground-truth denominators
    /// passed directly — for streaming callers that maintain
    /// `total_true_matches` / `total_pairs` incrementally instead of
    /// materialising a [`GroundTruth`] per batch.
    pub fn metrics_with_totals(
        &self,
        total_true_matches: u64,
        total_pairs: u64,
        redundant_pairs: u64,
    ) -> BlockingMetrics {
        BlockingMetrics {
            candidate_pairs: self.distinct,
            redundant_pairs,
            true_positives: self.matching,
            total_true_matches,
            total_pairs,
        }
    }
}

impl From<RunningCounts> for IncrementalEvaluation {
    fn from(counts: RunningCounts) -> Self {
        let mut evaluation = Self::new();
        evaluation.sync_with(counts);
        evaluation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sablock_core::blocking::Blocker;
    use sablock_core::incremental::IncrementalBlocker;
    use sablock_core::lsh::salsh::SaLshBlocker;
    use sablock_datasets::{NcVoterConfig, NcVoterGenerator};

    fn builder() -> sablock_core::lsh::salsh::SaLshBlockerBuilder {
        SaLshBlocker::builder()
            .attributes(["first_name", "last_name"])
            .qgram(2)
            .bands(10)
            .rows_per_band(3)
            .seed(0x7013)
    }

    #[test]
    fn accumulated_deltas_reproduce_one_shot_metrics() {
        let dataset = NcVoterGenerator::new(NcVoterConfig { num_records: 400, ..NcVoterConfig::small() })
            .generate()
            .unwrap();
        let truth = dataset.ground_truth();
        let one_shot = builder().build().unwrap().block(&dataset).unwrap();
        let reference = BlockingMetrics::evaluate(&one_shot, truth);

        let mut incremental = builder().into_incremental().unwrap();
        let mut evaluation = IncrementalEvaluation::new();
        for chunk in dataset.records().chunks(64) {
            let delta = incremental.insert_batch(chunk).unwrap();
            // Evaluating against the full truth mid-stream is fine: a delta
            // never references records beyond those ingested.
            evaluation.observe(delta, truth);
        }
        let snapshot = incremental.snapshot();
        let cumulative = evaluation.metrics(truth, snapshot.redundant_pair_count());
        assert_eq!(cumulative, reference, "per-batch delta sums must equal the one-shot evaluation");
        assert_eq!(evaluation.candidate_pairs(), reference.candidate_pairs);
        assert_eq!(evaluation.true_positives(), reference.true_positives);
        assert!(cumulative.pc() > 0.0);
    }

    #[test]
    fn syncing_with_running_counts_scores_the_live_corpus_under_removals() {
        let dataset = NcVoterGenerator::new(NcVoterConfig { num_records: 300, ..NcVoterConfig::small() })
            .generate()
            .unwrap();
        let truth = dataset.ground_truth();
        let mut incremental = builder().into_incremental().unwrap();
        let mut offset = 0usize;
        for chunk in dataset.records().chunks(64) {
            let entities = &truth.entity_table()[offset..offset + chunk.len()];
            incremental.insert_batch_with_entities(chunk, entities).unwrap();
            offset += chunk.len();
        }
        for victim in [3u32, 77, 150, 151] {
            incremental.remove(sablock_datasets::RecordId(victim)).unwrap();
        }

        let mut evaluation = IncrementalEvaluation::new();
        evaluation.sync_with(incremental.running_counts());
        // Reference: a from-scratch streaming count over the live snapshot.
        let snapshot = incremental.snapshot();
        let reference = snapshot.stream_packed_counts(EntityTableProbe::new(truth.entity_table()));
        assert_eq!(evaluation.candidate_pairs(), reference.distinct);
        assert_eq!(evaluation.true_positives(), reference.matching);

        // `From` and `metrics_with_totals` agree with the long-hand path.
        let via_from = IncrementalEvaluation::from(incremental.running_counts());
        assert_eq!(via_from, evaluation);
        let metrics = evaluation.metrics(truth, snapshot.redundant_pair_count());
        let direct = evaluation.metrics_with_totals(
            truth.num_true_matches(),
            truth.num_total_pairs(),
            snapshot.redundant_pair_count(),
        );
        assert_eq!(metrics, direct);
    }

    #[test]
    fn empty_evaluation_scores_zero() {
        let truth = GroundTruth::from_assignments(vec![]);
        let evaluation = IncrementalEvaluation::new();
        let metrics = evaluation.metrics(&truth, 0);
        assert_eq!(metrics.candidate_pairs, 0);
        assert_eq!(metrics.pc(), 0.0);
        assert_eq!(metrics.rr(), 0.0);
    }
}
