//! Blocking quality measures (paper §6, "Evaluation measures").
//!
//! With Γ the set of distinct candidate pairs produced by the blocks, Γ_tp
//! its true matches, Γ_m the redundant (per-block) pair count, Ω all record
//! pairs of the dataset and Ω_tp all true matches:
//!
//! * PC  = |Γ_tp| / |Ω_tp| — how many true matches survive blocking,
//! * PQ  = |Γ_tp| / |Γ|    — how clean the candidate pairs are,
//! * RR  = 1 − |Γ| / |Ω|   — how much comparison work blocking saves,
//! * FM  = harmonic mean of PC and PQ,
//! * PQ* = |Γ_tp| / |Γ_m|  — PQ against redundant pairs (the variant used by
//!   the meta-blocking paper, Fig. 12),
//! * FM* = harmonic mean of PC and PQ*.

use sablock_core::blocking::{BlockCollection, EntityTableProbe};
use sablock_core::parallel::default_threads;
use sablock_datasets::GroundTruth;

/// The evaluation measures of one blocking result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockingMetrics {
    /// Number of distinct candidate pairs |Γ|.
    pub candidate_pairs: u64,
    /// Number of redundant candidate pairs |Γ_m| (with multiplicity).
    pub redundant_pairs: u64,
    /// Number of distinct candidate pairs that are true matches |Γ_tp|.
    pub true_positives: u64,
    /// Number of true matches in the dataset |Ω_tp|.
    pub total_true_matches: u64,
    /// Number of record pairs in the dataset |Ω|.
    pub total_pairs: u64,
}

impl BlockingMetrics {
    /// Evaluates a block collection against ground truth.
    ///
    /// Γ is never materialised: `|Γ|` and `|Γ_tp|` come from
    /// [`BlockCollection::stream_packed_counts`], which folds per-shard
    /// radix-sorted packed pair runs through the deduplicating
    /// loser-tree/galloping merge counter and probes ground truth once per
    /// distinct pair through [`EntityTableProbe`] — a dense record → entity
    /// table, so the match test inside the merge loop is two array loads and
    /// one compare. The memory high-water mark of evaluating paper-scale
    /// collections is one pair-space slice per worker instead of the whole
    /// candidate-pair set.
    pub fn evaluate(blocks: &BlockCollection, truth: &GroundTruth) -> Self {
        Self::evaluate_with_threads(blocks, truth, default_threads())
    }

    /// [`BlockingMetrics::evaluate`] with an explicit worker count for the
    /// streaming pair counter. The result never depends on `threads`
    /// (enforced by `tests/determinism.rs`).
    pub fn evaluate_with_threads(blocks: &BlockCollection, truth: &GroundTruth, threads: usize) -> Self {
        let counts = blocks.stream_packed_counts_with_threads(threads, EntityTableProbe::new(truth.entity_table()));
        Self {
            candidate_pairs: counts.distinct,
            redundant_pairs: blocks.redundant_pair_count(),
            true_positives: counts.matching,
            total_true_matches: truth.num_true_matches(),
            total_pairs: truth.num_total_pairs(),
        }
    }

    /// The pre-streaming reference implementation: materialises Γ as a sorted
    /// vector and counts over it. Kept public so tests (and callers that
    /// already hold the pair set) can pin the streaming path's equivalence;
    /// prefer [`BlockingMetrics::evaluate`] everywhere else.
    pub fn evaluate_materialised(blocks: &BlockCollection, truth: &GroundTruth) -> Self {
        let distinct = blocks.distinct_pairs();
        let true_positives = distinct.iter().filter(|pair| truth.is_match_pair(pair)).count() as u64;
        Self {
            candidate_pairs: distinct.len() as u64,
            redundant_pairs: blocks.redundant_pair_count(),
            true_positives,
            total_true_matches: truth.num_true_matches(),
            total_pairs: truth.num_total_pairs(),
        }
    }

    /// Pair completeness PC.
    pub fn pc(&self) -> f64 {
        ratio(self.true_positives, self.total_true_matches)
    }

    /// Pair quality PQ.
    pub fn pq(&self) -> f64 {
        ratio(self.true_positives, self.candidate_pairs)
    }

    /// Reduction ratio RR.
    pub fn rr(&self) -> f64 {
        if self.total_pairs == 0 {
            return 0.0;
        }
        1.0 - self.candidate_pairs as f64 / self.total_pairs as f64
    }

    /// F-measure FM (harmonic mean of PC and PQ).
    pub fn fm(&self) -> f64 {
        harmonic(self.pc(), self.pq())
    }

    /// PQ* — pair quality against redundant pairs (meta-blocking convention).
    pub fn pq_star(&self) -> f64 {
        ratio(self.true_positives, self.redundant_pairs)
    }

    /// FM* — harmonic mean of PC and PQ*.
    pub fn fm_star(&self) -> f64 {
        harmonic(self.pc(), self.pq_star())
    }
}

fn ratio(numerator: u64, denominator: u64) -> f64 {
    if denominator == 0 {
        0.0
    } else {
        numerator as f64 / denominator as f64
    }
}

fn harmonic(a: f64, b: f64) -> f64 {
    if a + b == 0.0 {
        0.0
    } else {
        2.0 * a * b / (a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sablock_core::blocking::Block;
    use sablock_datasets::ground_truth::EntityId;
    use sablock_datasets::RecordId;

    fn rid(i: u32) -> RecordId {
        RecordId(i)
    }

    /// 6 records: {0,1,2} are one entity, {3,4} another, {5} a singleton.
    fn truth() -> GroundTruth {
        GroundTruth::from_assignments(vec![
            EntityId(0),
            EntityId(0),
            EntityId(0),
            EntityId(1),
            EntityId(1),
            EntityId(2),
        ])
    }

    #[test]
    fn perfect_blocking_scores_perfectly() {
        // One block per entity cluster: every true match is covered and no
        // non-match is proposed.
        let blocks = BlockCollection::from_blocks(vec![
            Block::new("e0", vec![rid(0), rid(1), rid(2)]),
            Block::new("e1", vec![rid(3), rid(4)]),
        ]);
        let m = BlockingMetrics::evaluate(&blocks, &truth());
        assert_eq!(m.true_positives, 4);
        assert_eq!(m.candidate_pairs, 4);
        assert_eq!(m.pc(), 1.0);
        assert_eq!(m.pq(), 1.0);
        assert_eq!(m.fm(), 1.0);
        assert!((m.rr() - (1.0 - 4.0 / 15.0)).abs() < 1e-12);
        assert_eq!(m.pq_star(), 1.0);
        assert_eq!(m.fm_star(), 1.0);
    }

    #[test]
    fn single_giant_block_has_full_pc_but_poor_pq() {
        let blocks = BlockCollection::from_blocks(vec![Block::new("all", (0..6).map(rid).collect())]);
        let m = BlockingMetrics::evaluate(&blocks, &truth());
        assert_eq!(m.pc(), 1.0);
        assert!((m.pq() - 4.0 / 15.0).abs() < 1e-12);
        assert_eq!(m.rr(), 0.0);
        assert!(m.fm() < 0.5);
    }

    #[test]
    fn empty_blocking_scores_zero() {
        let blocks = BlockCollection::new();
        let m = BlockingMetrics::evaluate(&blocks, &truth());
        assert_eq!(m.pc(), 0.0);
        assert_eq!(m.pq(), 0.0);
        assert_eq!(m.fm(), 0.0);
        assert_eq!(m.rr(), 1.0);
        assert_eq!(m.pq_star(), 0.0);
        assert_eq!(m.fm_star(), 0.0);
    }

    #[test]
    fn partial_blocking_matches_hand_computed_values() {
        // Blocks: {0,1,3} (pairs 01 tp, 03 fp, 13 fp), {3,4} (tp) → Γ = 4, tp = 2.
        let blocks = BlockCollection::from_blocks(vec![
            Block::new("a", vec![rid(0), rid(1), rid(3)]),
            Block::new("b", vec![rid(3), rid(4)]),
        ]);
        let m = BlockingMetrics::evaluate(&blocks, &truth());
        assert_eq!(m.candidate_pairs, 4);
        assert_eq!(m.true_positives, 2);
        assert!((m.pc() - 0.5).abs() < 1e-12);
        assert!((m.pq() - 0.5).abs() < 1e-12);
        assert!((m.fm() - 0.5).abs() < 1e-12);
        assert!((m.rr() - (1.0 - 4.0 / 15.0)).abs() < 1e-12);
    }

    #[test]
    fn redundant_pairs_lower_pq_star_but_not_pq() {
        // The same true-match pair appears in two blocks: PQ stays 1 while
        // PQ* halves — exactly the difference the paper notes between its PQ
        // and the meta-blocking paper's PQ*.
        let blocks = BlockCollection::from_blocks(vec![
            Block::new("a", vec![rid(0), rid(1)]),
            Block::new("b", vec![rid(0), rid(1)]),
        ]);
        let m = BlockingMetrics::evaluate(&blocks, &truth());
        assert_eq!(m.pq(), 1.0);
        assert_eq!(m.pq_star(), 0.5);
        assert!(m.fm_star() < m.fm());
    }

    #[test]
    fn degenerate_ground_truth_is_handled() {
        let truth = GroundTruth::from_assignments(vec![]);
        let m = BlockingMetrics::evaluate(&BlockCollection::new(), &truth);
        assert_eq!(m.pc(), 0.0);
        assert_eq!(m.rr(), 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use sablock_core::blocking::Block;
    use sablock_datasets::ground_truth::EntityId;
    use sablock_datasets::RecordId;

    fn arb_blocks(num_records: u32) -> impl Strategy<Value = BlockCollection> {
        proptest::collection::vec(
            proptest::collection::vec(0..num_records, 2..6),
            0..8,
        )
        .prop_map(|blocks| {
            BlockCollection::from_blocks(
                blocks
                    .into_iter()
                    .enumerate()
                    .map(|(i, members)| Block::new(format!("b{i}"), members.into_iter().map(RecordId).collect()))
                    .collect(),
            )
        })
    }

    fn arb_truth(num_records: u32, num_entities: u32) -> impl Strategy<Value = GroundTruth> {
        proptest::collection::vec(0..num_entities, num_records as usize..=num_records as usize)
            .prop_map(|assignment| GroundTruth::from_assignments(assignment.into_iter().map(EntityId).collect()))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn all_measures_stay_in_the_unit_interval(blocks in arb_blocks(12), truth in arb_truth(12, 4)) {
            let m = BlockingMetrics::evaluate(&blocks, &truth);
            for value in [m.pc(), m.pq(), m.fm(), m.pq_star(), m.fm_star()] {
                prop_assert!((0.0..=1.0).contains(&value), "{value}");
            }
            prop_assert!(m.rr() <= 1.0);
        }

        #[test]
        fn fm_lies_between_its_components(blocks in arb_blocks(12), truth in arb_truth(12, 4)) {
            let m = BlockingMetrics::evaluate(&blocks, &truth);
            let lo = m.pc().min(m.pq());
            let hi = m.pc().max(m.pq());
            // The harmonic mean lies between min and max of its inputs (and is
            // 0 when either input is 0).
            if lo > 0.0 {
                prop_assert!(m.fm() + 1e-12 >= lo);
            }
            prop_assert!(m.fm() <= hi + 1e-12);
            // PQ* <= PQ, and the harmonic mean is monotone in each argument.
            prop_assert!(m.fm_star() <= m.fm() + 1e-12);
        }

        #[test]
        fn streaming_evaluation_equals_materialised(blocks in arb_blocks(12), truth in arb_truth(12, 4)) {
            let streamed = BlockingMetrics::evaluate(&blocks, &truth);
            prop_assert_eq!(streamed, BlockingMetrics::evaluate_materialised(&blocks, &truth));
            for threads in [1usize, 4] {
                prop_assert_eq!(streamed, BlockingMetrics::evaluate_with_threads(&blocks, &truth, threads));
            }
        }

        #[test]
        fn true_positives_never_exceed_either_side(blocks in arb_blocks(12), truth in arb_truth(12, 4)) {
            let m = BlockingMetrics::evaluate(&blocks, &truth);
            prop_assert!(m.true_positives <= m.candidate_pairs);
            prop_assert!(m.true_positives <= m.total_true_matches);
            prop_assert!(m.candidate_pairs <= m.redundant_pairs);
        }
    }
}
