//! Evaluation measures, experiment runner and per-figure/table experiment
//! definitions for the SA-LSH reproduction.
//!
//! * [`metrics`] — pair completeness (PC), pair quality (PQ), reduction ratio
//!   (RR), F-measure (FM), plus the PQ*/FM* variants used for the
//!   meta-blocking comparison (§6, Fig. 12).
//! * [`runner`] — runs a [`Blocker`](sablock_core::blocking::Blocker) over a
//!   dataset with wall-clock timing and evaluates the result.
//! * [`sweep`] — sweeps a technique's parameter grid and keeps the
//!   best-FM setting (the selection rule of Table 3 / Fig. 11).
//! * [`report`] — fixed-width text tables for printing results that mirror
//!   the paper's tables and figure series.
//! * [`incremental`] — cumulative evaluation of streaming ingest: per-batch
//!   delta counts that sum to the one-shot metrics.
//! * [`perf`] — machine-readable perf reports (`BENCH_fig13.json`): a tiny
//!   JSON writer, per-producer section upserts, latency percentiles and
//!   peak-RSS readout.
//! * [`experiments`] — one module per table/figure of the evaluation section
//!   (E-FIG5 … E-FIG13 in `DESIGN.md`), each with a paper-scale and a quick
//!   configuration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod incremental;
pub mod metrics;
pub mod perf;
pub mod report;
pub mod runner;
pub mod sweep;

pub use incremental::IncrementalEvaluation;
pub use metrics::BlockingMetrics;
pub use report::TextTable;
pub use runner::{run_blocker, RunResult};
pub use sweep::{best_by_fm, sweep_grids};
