//! E-FIG5 — Fig. 5: collision probability of a w-way semantic hash function
//! under different semantic similarities s′, for w = 1..15 and µ ∈ {∧, ∨}.
//!
//! This is a purely analytical figure; the experiment samples the closed-form
//! probabilities of [`sablock_core::lsh::probability`] on the same axes as
//! the paper.

use sablock_core::lsh::probability::w_way_curve;

use crate::report::{fmt3, TextTable};

/// One curve of Fig. 5: a fixed semantic similarity and the collision
/// probability at every point of the AND…OR axis.
#[derive(Debug, Clone)]
pub struct Fig05Series {
    /// The semantic similarity s′ of the series.
    pub s_prime: f64,
    /// (axis label, collision probability) pairs, from "AND w=w_max" down to
    /// "w=1" and back up to "OR w=w_max".
    pub points: Vec<(String, f64)>,
}

/// The full figure: one series per semantic similarity.
#[derive(Debug, Clone)]
pub struct Fig05Output {
    /// The series, in the order of the paper's legend.
    pub series: Vec<Fig05Series>,
    /// The maximum w of the sweep (15 in the paper).
    pub w_max: usize,
}

/// The semantic similarities plotted in the paper's Fig. 5.
pub const PAPER_SIMILARITIES: [f64; 6] = [0.2, 0.3, 0.4, 0.6, 0.7, 0.8];

/// Runs the experiment.
pub fn run(w_max: usize) -> Fig05Output {
    let w_max = w_max.max(1);
    let series = PAPER_SIMILARITIES
        .iter()
        .map(|&s_prime| Fig05Series {
            s_prime,
            points: w_way_curve(s_prime, w_max),
        })
        .collect();
    Fig05Output { series, w_max }
}

impl Fig05Output {
    /// Renders the figure as a table: one row per axis position, one column
    /// per semantic similarity.
    pub fn to_table(&self) -> TextTable {
        let mut header = vec!["w (AND <- 1 -> OR)".to_string()];
        header.extend(self.series.iter().map(|s| format!("s'={}", s.s_prime)));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut table = TextTable::new("Fig. 5 — w-way semantic hash collision probability", &header_refs);
        if let Some(first) = self.series.first() {
            for (i, (label, _)) in first.points.iter().enumerate() {
                let mut row = vec![label.clone()];
                for series in &self.series {
                    row.push(fmt3(series.points[i].1));
                }
                table.add_row(row);
            }
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_papers_axes() {
        let output = run(15);
        assert_eq!(output.series.len(), 6);
        assert_eq!(output.w_max, 15);
        for series in &output.series {
            assert_eq!(series.points.len(), 29, "AND w=15..2, w=1, OR w=2..15");
            // Monotone non-decreasing from deep AND to deep OR.
            for pair in series.points.windows(2) {
                assert!(pair[1].1 + 1e-12 >= pair[0].1);
            }
            // Extremes behave as in the figure: AND-15 is tiny, OR-15 is large.
            assert!(series.points[0].1 <= series.s_prime);
            assert!(series.points[28].1 >= series.s_prime);
        }
    }

    #[test]
    fn higher_semantic_similarity_gives_higher_probability_everywhere() {
        let output = run(15);
        for i in 1..output.series.len() {
            let lower = &output.series[i - 1];
            let higher = &output.series[i];
            for (a, b) in lower.points.iter().zip(higher.points.iter()) {
                assert!(b.1 + 1e-12 >= a.1, "series must be ordered by s'");
            }
        }
    }

    #[test]
    fn table_rendering_has_one_row_per_axis_point() {
        let output = run(5);
        let table = output.to_table();
        assert_eq!(table.num_rows(), 2 * 5 - 1);
        let rendered = table.render();
        assert!(rendered.contains("s'=0.2"));
        assert!(rendered.contains("AND w=5"));
        assert!(rendered.contains("OR w=5"));
    }

    #[test]
    fn degenerate_w_max_is_clamped() {
        let output = run(0);
        assert_eq!(output.w_max, 1);
        assert_eq!(output.series[0].points.len(), 1);
    }
}
