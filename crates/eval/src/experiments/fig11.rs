//! E-FIG11 — Fig. 11: FM / PQ / PC / RR of every blocking technique (best-FM
//! parameter setting) over both datasets.

use sablock_baselines::key::BlockingKey;
use sablock_baselines::params::{full_grids, reduced_grids};
use sablock_core::error::Result;
use sablock_core::lsh::semantic_hash::SemanticMode;
use sablock_core::taxonomy::bib::BibVariant;
use sablock_datasets::Dataset;

use crate::experiments::tab03::GridScale;
use crate::experiments::{
    cora_dataset, cora_lsh, cora_salsh, voter_dataset_of_size, voter_lsh, voter_salsh, Scale, CORA_SEMANTIC_BITS,
    VOTER_SEMANTIC_BITS,
};
use crate::report::{fmt3, TextTable};
use crate::runner::{run_blocker, RunResult};
use crate::sweep::sweep_grids;

/// The comparison over one dataset: the best run per technique.
#[derive(Debug, Clone)]
pub struct Fig11Panel {
    /// Dataset name.
    pub dataset: String,
    /// Best-FM run per technique, in Table 3 order, then LSH and SA-LSH.
    pub results: Vec<RunResult>,
}

/// The full figure: one panel per dataset.
#[derive(Debug, Clone)]
pub struct Fig11Output {
    /// The Cora panel.
    pub cora: Fig11Panel,
    /// The NC Voter panel.
    pub ncvoter: Fig11Panel,
}

fn panel(
    dataset: &Dataset,
    key: &BlockingKey,
    grid_scale: GridScale,
    lsh: RunResult,
    salsh: RunResult,
) -> Result<Fig11Panel> {
    let grids = match grid_scale {
        GridScale::Reduced => reduced_grids(key),
        GridScale::Full => full_grids(key),
    };
    let mut results = sweep_grids(&grids, dataset)?;
    results.push(lsh);
    results.push(salsh);
    Ok(Fig11Panel {
        dataset: dataset.name().to_string(),
        results,
    })
}

/// Runs the Cora panel on a pre-built dataset.
pub fn run_cora_on(dataset: &Dataset, grid_scale: GridScale) -> Result<Fig11Panel> {
    let lsh = run_blocker("LSH", &cora_lsh(4, 63)?, dataset)?;
    let salsh = run_blocker(
        "SA-LSH",
        &cora_salsh(4, 63, CORA_SEMANTIC_BITS, SemanticMode::Or, BibVariant::Full, 0x1111)?,
        dataset,
    )?;
    panel(dataset, &BlockingKey::cora(), grid_scale, lsh, salsh)
}

/// Runs the NC Voter panel on a pre-built dataset.
pub fn run_voter_on(dataset: &Dataset, grid_scale: GridScale) -> Result<Fig11Panel> {
    let lsh = run_blocker("LSH", &voter_lsh(9, 15)?, dataset)?;
    let salsh = run_blocker("SA-LSH", &voter_salsh(9, 15, VOTER_SEMANTIC_BITS, SemanticMode::Or)?, dataset)?;
    panel(dataset, &BlockingKey::ncvoter(), grid_scale, lsh, salsh)
}

/// Runs the full figure at the given scale.
pub fn run(scale: Scale, grid_scale: GridScale) -> Result<Fig11Output> {
    let cora = cora_dataset(scale)?;
    let voter = voter_dataset_of_size(scale.voter_timing_records())?;
    Ok(Fig11Output {
        cora: run_cora_on(&cora, grid_scale)?,
        ncvoter: run_voter_on(&voter, grid_scale)?,
    })
}

impl Fig11Panel {
    /// Renders the panel as a table with one row per technique.
    pub fn to_table(&self) -> TextTable {
        let mut table = TextTable::new(
            format!("Fig. 11 — comparison with the state of the art [{}]", self.dataset),
            &["technique", "FM", "PQ", "PC", "RR", "best setting"],
        );
        for result in &self.results {
            table.add_row(vec![
                result.technique.clone(),
                fmt3(result.metrics.fm()),
                fmt3(result.metrics.pq()),
                fmt3(result.metrics.pc()),
                fmt3(result.metrics.rr()),
                result.configuration.clone(),
            ]);
        }
        table
    }

    /// A result by technique name.
    pub fn get(&self, technique: &str) -> Option<&RunResult> {
        self.results.iter().find(|r| r.technique == technique)
    }

    /// The technique with the highest FM.
    pub fn best_fm_technique(&self) -> Option<&RunResult> {
        self.results
            .iter()
            .max_by(|a, b| a.fm().partial_cmp(&b.fm()).unwrap_or(std::cmp::Ordering::Equal))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cora_panel_places_the_lsh_family_near_the_top() {
        let dataset = cora_dataset(Scale::Quick).unwrap();
        let panel = run_cora_on(&dataset, GridScale::Reduced).unwrap();
        assert_eq!(panel.results.len(), 14);
        let salsh_fm = panel.get("SA-LSH").unwrap().fm();
        let lsh_fm = panel.get("LSH").unwrap().fm();
        // The paper's headline result is that the FM of LSH/SA-LSH is the
        // best over the real Cora corpus. On the small synthetic quick-scale
        // corpus the exact ranking can shift (that comparison lives in the
        // benchmark harness / EXPERIMENTS.md), so the test asserts the robust
        // part of the shape: the LSH family is competitive with the best
        // baseline and SA-LSH does not trail LSH on quality.
        let best_baseline_fm = panel
            .results
            .iter()
            .filter(|r| r.technique != "LSH" && r.technique != "SA-LSH")
            .map(RunResult::fm)
            .fold(0.0f64, f64::max);
        assert!(
            salsh_fm.max(lsh_fm) >= 0.75 * best_baseline_fm,
            "LSH family ({lsh_fm:.3}/{salsh_fm:.3}) should be competitive with the best baseline ({best_baseline_fm:.3})"
        );
        // And SA-LSH should improve (or at least not hurt) PQ vs LSH.
        assert!(panel.get("SA-LSH").unwrap().metrics.pq() + 1e-9 >= panel.get("LSH").unwrap().metrics.pq());
        let rendered = panel.to_table().render();
        assert!(rendered.contains("SA-LSH"));
        assert!(panel.best_fm_technique().is_some());
    }
}
