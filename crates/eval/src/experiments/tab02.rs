//! E-TAB2 — Table 2 (with the taxonomy variants of Fig. 10): the impact of
//! applying SA-LSH instead of plain LSH on the blocking results over Cora,
//! for the full bibliographic taxonomy t_bib and its three variants.
//!
//! The table reports the *change* (in percentage points, mean ± std over
//! repeated runs with different semantic-hash seeds) of PC, PQ, RR and FM
//! when the semantic component is switched on.

use sablock_core::error::Result;
use sablock_core::lsh::semantic_hash::SemanticMode;
use sablock_core::taxonomy::bib::BibVariant;
use sablock_datasets::Dataset;

use crate::experiments::{cora_dataset, Scale, CORA_SEMANTIC_BITS};
use crate::report::{fmt_delta, TextTable};
use crate::runner::run_blocker;

/// Mean ± standard deviation of a set of observations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanStd {
    /// Mean value.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
}

impl MeanStd {
    /// Computes mean and standard deviation of a sample.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self { mean: 0.0, std: 0.0 };
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let variance = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
        Self {
            mean,
            std: variance.sqrt(),
        }
    }
}

impl std::fmt::Display for MeanStd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}±{:.2}", fmt_delta(self.mean), self.std)
    }
}

/// The impact of one taxonomy variant (deltas SA-LSH − LSH, in percentage
/// points).
#[derive(Debug, Clone)]
pub struct VariantImpact {
    /// The taxonomy variant.
    pub variant: BibVariant,
    /// Δ pair completeness.
    pub delta_pc: MeanStd,
    /// Δ pair quality.
    pub delta_pq: MeanStd,
    /// Δ reduction ratio.
    pub delta_rr: MeanStd,
    /// Δ F-measure.
    pub delta_fm: MeanStd,
}

/// The table: one impact row per taxonomy variant.
#[derive(Debug, Clone)]
pub struct Tab02Output {
    /// Impacts in the paper's column order (t_bib, t_bib,1, t_bib,2, t_bib,3).
    pub impacts: Vec<VariantImpact>,
}

/// The (k, l) operating point (the same as Fig. 7 / Fig. 9 for Cora).
pub const K: usize = 4;
/// The number of bands of the operating point.
pub const L: usize = 63;

/// Runs the experiment on a pre-built Cora-like dataset with `repetitions`
/// runs per variant.
///
/// Each repetition re-draws the minhash family (a new textual seed) and the
/// per-band semantic hash functions, and the delta of a repetition is taken
/// against the plain-LSH run *with the same textual seed*, so the reported
/// mean ± std reflects the probabilistic variability of the LSH family — the
/// source of the ± intervals in the paper's Table 2.
pub fn run_on(dataset: &Dataset, repetitions: usize) -> Result<Tab02Output> {
    use crate::experiments::CORA_BLOCKING_ATTRIBUTES;
    use sablock_core::lsh::salsh::SaLshBlocker;
    use sablock_core::lsh::SemanticConfig;
    use sablock_core::semantic::pattern::PatternSemanticFunction;
    use sablock_core::taxonomy::bib::bibliographic_taxonomy_variant;

    let repetitions = repetitions.max(1);
    // One plain-LSH baseline per repetition (per textual seed).
    let mut baselines = Vec::with_capacity(repetitions);
    for rep in 0..repetitions {
        let lsh = SaLshBlocker::builder()
            .attributes(CORA_BLOCKING_ATTRIBUTES)
            .qgram(4)
            .rows_per_band(K)
            .bands(L)
            .seed(0xC04A + rep as u64)
            .build()?;
        baselines.push(run_blocker("LSH", &lsh, dataset)?);
    }

    let mut impacts = Vec::new();
    for variant in BibVariant::ALL {
        let mut d_pc = Vec::with_capacity(repetitions);
        let mut d_pq = Vec::with_capacity(repetitions);
        let mut d_rr = Vec::with_capacity(repetitions);
        let mut d_fm = Vec::with_capacity(repetitions);
        for (rep, baseline) in baselines.iter().enumerate() {
            let tree = bibliographic_taxonomy_variant(variant);
            let zeta = PatternSemanticFunction::cora_default(&tree)?;
            let blocker = SaLshBlocker::builder()
                .attributes(CORA_BLOCKING_ATTRIBUTES)
                .qgram(4)
                .rows_per_band(K)
                .bands(L)
                .seed(0xC04A + rep as u64)
                .semantic(
                    SemanticConfig::new(tree, zeta)
                        .with_w(CORA_SEMANTIC_BITS)
                        .with_mode(SemanticMode::Or)
                        .with_seed(0x7a20 + rep as u64),
                )
                .build()?;
            let result = run_blocker("SA-LSH", &blocker, dataset)?;
            d_pc.push((result.metrics.pc() - baseline.metrics.pc()) * 100.0);
            d_pq.push((result.metrics.pq() - baseline.metrics.pq()) * 100.0);
            d_rr.push((result.metrics.rr() - baseline.metrics.rr()) * 100.0);
            d_fm.push((result.metrics.fm() - baseline.metrics.fm()) * 100.0);
        }
        impacts.push(VariantImpact {
            variant,
            delta_pc: MeanStd::of(&d_pc),
            delta_pq: MeanStd::of(&d_pq),
            delta_rr: MeanStd::of(&d_rr),
            delta_fm: MeanStd::of(&d_fm),
        });
    }
    Ok(Tab02Output { impacts })
}

/// Runs the experiment at the given scale (3 repetitions at Quick scale, 5 at
/// Paper scale — the paper reports mean ± std over repeated runs).
pub fn run(scale: Scale) -> Result<Tab02Output> {
    let dataset = cora_dataset(scale)?;
    let repetitions = match scale {
        Scale::Quick => 3,
        Scale::Paper => 5,
    };
    run_on(&dataset, repetitions)
}

impl Tab02Output {
    /// Renders the table in the paper's layout (measures as rows, variants as
    /// columns).
    pub fn to_table(&self) -> TextTable {
        let mut header = vec!["measure".to_string()];
        header.extend(self.impacts.iter().map(|i| i.variant.name().to_string()));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut table = TextTable::new("Table 2 — impact of SA-LSH per taxonomy variant (Δ percentage points)", &header_refs);
        for (measure, pick) in [
            ("PC", 0usize),
            ("PQ", 1),
            ("RR", 2),
            ("FM", 3),
        ] {
            let mut row = vec![measure.to_string()];
            for impact in &self.impacts {
                let value = match pick {
                    0 => impact.delta_pc,
                    1 => impact.delta_pq,
                    2 => impact.delta_rr,
                    _ => impact.delta_fm,
                };
                row.push(value.to_string());
            }
            table.add_row(row);
        }
        table
    }

    /// The impact of a variant.
    pub fn get(&self, variant: BibVariant) -> Option<&VariantImpact> {
        self.impacts.iter().find(|i| i.variant == variant)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_computation() {
        let ms = MeanStd::of(&[1.0, 3.0]);
        assert_eq!(ms.mean, 2.0);
        assert_eq!(ms.std, 1.0);
        assert_eq!(MeanStd::of(&[]), MeanStd { mean: 0.0, std: 0.0 });
        assert!(ms.to_string().contains('±'));
    }

    #[test]
    fn semantic_features_trade_pc_for_pq_on_every_variant() {
        let dataset = cora_dataset(Scale::Quick).unwrap();
        let output = run_on(&dataset, 2).unwrap();
        assert_eq!(output.impacts.len(), 4);
        for impact in &output.impacts {
            // The paper: "the PC values always decrease and the PQ, RR and FM
            // values always increase after incorporating semantic features".
            assert!(impact.delta_pc.mean <= 1e-9, "{}: ΔPC = {}", impact.variant.name(), impact.delta_pc.mean);
            assert!(impact.delta_pq.mean >= -1e-9, "{}: ΔPQ = {}", impact.variant.name(), impact.delta_pq.mean);
            assert!(impact.delta_rr.mean >= -1e-9, "{}: ΔRR = {}", impact.variant.name(), impact.delta_rr.mean);
            assert!(impact.delta_fm.mean >= -1e-9, "{}: ΔFM = {}", impact.variant.name(), impact.delta_fm.mean);
        }
        assert!(output.get(BibVariant::Full).is_some());
        let table = output.to_table();
        assert_eq!(table.num_rows(), 4);
        assert!(table.render().contains("t_bib,3"));
    }
}
