//! E-FIG13 — Fig. 13: PC, PQ, RR and runtime of LSH and SA-LSH over NC Voter
//! subsets of increasing size, plus the time spent building the semantic
//! function (taxonomy construction + record interpretation + semhash
//! signatures), labelled "SF" in the paper.
//!
//! Every point of the ladder is scored through the streaming Γ evaluation
//! ([`run_blocker`] → `BlockingMetrics::evaluate`), so even the right-most
//! 292,892-record point — whose plain-LSH candidate set exceeds 236M pairs —
//! is evaluated without materialising any pair vector.

use std::time::{Duration, Instant};

use sablock_core::error::Result;
use sablock_core::lsh::semantic_hash::SemanticMode;
use sablock_core::semantic::semhash::SemhashFamily;
use sablock_core::semantic::voter::VoterSemanticFunction;
use sablock_core::semantic::{Interpretation, SemanticFunction};
use sablock_datasets::Dataset;

use crate::experiments::{voter_dataset_of_size, voter_lsh, voter_salsh, Scale, VOTER_SEMANTIC_BITS};
use crate::report::{fmt3, TextTable};
use crate::runner::{run_blocker, RunResult};

/// The measurements at one dataset size.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Number of records.
    pub records: usize,
    /// The plain LSH run.
    pub lsh: RunResult,
    /// The SA-LSH run.
    pub salsh: RunResult,
    /// Time to build the semantic function artefacts (taxonomy, per-record
    /// interpretations, semhash signatures) — the "SF" series of Fig. 13(d).
    pub semantic_function_time: Duration,
}

/// The scalability experiment output.
#[derive(Debug, Clone)]
pub struct Fig13Output {
    /// One point per dataset size, ascending.
    pub points: Vec<ScalePoint>,
}

/// The (k, l) operating point (k=9, l=15 as in the paper).
pub const K: usize = 9;
/// Number of bands of the operating point.
pub const L: usize = 15;

/// Measures the semantic-function construction time on a dataset.
fn semantic_function_time(dataset: &Dataset) -> Result<Duration> {
    let start = Instant::now();
    let zeta = VoterSemanticFunction::default_voter();
    let tree = zeta.taxonomy().clone();
    let interpretations: Vec<Interpretation> = dataset.records().iter().map(|r| zeta.interpret(r)).collect();
    let family = SemhashFamily::build(&tree, interpretations.iter())?;
    let signatures = family.signatures(&tree, &interpretations);
    // Touch the signatures so the work cannot be optimised away.
    let total_bits: usize = signatures.iter().map(|s| s.count_ones()).sum();
    let elapsed = start.elapsed();
    debug_assert!(total_bits > 0);
    Ok(elapsed)
}

/// Runs the experiment over explicit dataset sizes. Datasets are generated as
/// prefixes of a single large corpus so that bigger points strictly contain
/// smaller ones, mirroring how the paper slices the full voter roll.
pub fn run_sizes(sizes: &[usize]) -> Result<Fig13Output> {
    let largest = sizes.iter().copied().max().unwrap_or(0);
    if largest == 0 {
        return Ok(Fig13Output { points: Vec::new() });
    }
    let full = voter_dataset_of_size(largest)?;
    let mut points = Vec::new();
    for &records in sizes {
        let dataset = full.prefix(records);
        let lsh = run_blocker("LSH", &voter_lsh(K, L)?, &dataset)?;
        let salsh = run_blocker("SA-LSH", &voter_salsh(K, L, VOTER_SEMANTIC_BITS, SemanticMode::Or)?, &dataset)?;
        let sf = semantic_function_time(&dataset)?;
        points.push(ScalePoint {
            records,
            lsh,
            salsh,
            semantic_function_time: sf,
        });
    }
    Ok(Fig13Output { points })
}

/// Runs the experiment at the given scale.
pub fn run(scale: Scale) -> Result<Fig13Output> {
    run_sizes(&scale.scalability_sizes())
}

impl Fig13Output {
    /// Renders the quality subplots (a)-(c) as a table.
    pub fn quality_table(&self) -> TextTable {
        let mut table = TextTable::new(
            "Fig. 13 (a)-(c) — PC / PQ / RR over increasing dataset sizes",
            &["records", "PC lsh", "PC sa", "PQ lsh", "PQ sa", "RR lsh", "RR sa"],
        );
        for point in &self.points {
            table.add_row(vec![
                point.records.to_string(),
                fmt3(point.lsh.metrics.pc()),
                fmt3(point.salsh.metrics.pc()),
                fmt3(point.lsh.metrics.pq()),
                fmt3(point.salsh.metrics.pq()),
                fmt3(point.lsh.metrics.rr()),
                fmt3(point.salsh.metrics.rr()),
            ]);
        }
        table
    }

    /// Renders the runtime subplot (d) as a table.
    pub fn time_table(&self) -> TextTable {
        let mut table = TextTable::new(
            "Fig. 13 (d) — blocking time over increasing dataset sizes (seconds)",
            &["records", "LSH", "SA-LSH", "SF"],
        );
        for point in &self.points {
            table.add_row(vec![
                point.records.to_string(),
                format!("{:.3}", point.lsh.blocking_time.as_secs_f64()),
                format!("{:.3}", point.salsh.blocking_time.as_secs_f64()),
                format!("{:.3}", point.semantic_function_time.as_secs_f64()),
            ]);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalability_points_keep_quality_and_grow_linearly_in_work() {
        let output = run_sizes(&[300, 600, 1200]).unwrap();
        assert_eq!(output.points.len(), 3);
        for point in &output.points {
            // Quality holds across sizes: PC of SA-LSH tracks LSH closely
            // (clean semantics) and RR stays very high.
            assert!(point.lsh.metrics.pc() - point.salsh.metrics.pc() < 0.05);
            assert!(point.salsh.metrics.rr() > 0.95);
            assert!(point.salsh.metrics.pq() + 1e-9 >= point.lsh.metrics.pq());
        }
        // Larger inputs cannot get cheaper to interpret semantically.
        assert!(
            output.points[2].semantic_function_time >= output.points[0].semantic_function_time
                || output.points[2].semantic_function_time.as_micros() < 2_000,
            "SF time should grow with input size (unless everything is sub-millisecond noise)"
        );
        let quality = output.quality_table();
        assert_eq!(quality.num_rows(), 3);
        let time = output.time_table();
        assert!(time.render().contains("SF"));
    }

    #[test]
    fn empty_size_list_is_handled() {
        let output = run_sizes(&[]).unwrap();
        assert!(output.points.is_empty());
        assert_eq!(output.quality_table().num_rows(), 0);
    }
}
