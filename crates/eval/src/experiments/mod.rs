//! One module per table/figure of the paper's evaluation section.
//!
//! | Module | Paper artefact |
//! |---|---|
//! | [`fig05`] | Fig. 5 — collision probability of w-way semantic hash functions |
//! | [`fig06`] | Fig. 6 — match-similarity distributions and (k, l) collision curves |
//! | [`fig07`] | Fig. 7 — semantic hash configurations H11–H15 over Cora |
//! | [`fig08`] | Fig. 8 — semantic hash configurations H21–H25 over NC Voter |
//! | [`fig09`] | Fig. 9 — LSH vs SA-LSH over the (k, l) ladder |
//! | [`tab02`] | Table 2 / Fig. 10 — impact of taxonomy-tree variants |
//! | [`tab03`] | Table 3 — blocking time and candidate pairs of every technique |
//! | [`fig11`] | Fig. 11 — quality comparison with the state of the art |
//! | [`fig12`] | Fig. 12 — comparison with meta-blocking |
//! | [`fig13`] | Fig. 13 — scalability over growing NC Voter subsets |
//!
//! Every experiment has a [`Scale::Quick`] configuration (seconds, used by
//! tests and CI) and a [`Scale::Paper`] configuration (the sizes reported in
//! the paper, used by the benchmark harness).

pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod tab02;
pub mod tab03;

use sablock_core::error::Result;
use sablock_core::lsh::salsh::SaLshBlocker;
use sablock_core::lsh::semantic_hash::SemanticMode;
use sablock_core::lsh::SemanticConfig;
use sablock_core::semantic::pattern::PatternSemanticFunction;
use sablock_core::semantic::voter::VoterSemanticFunction;
use sablock_core::semantic::SemanticFunction;
use sablock_core::taxonomy::bib::{bibliographic_taxonomy_variant, BibVariant};
use sablock_datasets::{CoraConfig, CoraGenerator, Dataset, NcVoterConfig, NcVoterGenerator};

/// How big an experiment should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small datasets (hundreds to a couple of thousand records); finishes in
    /// seconds. Used by unit/integration tests.
    Quick,
    /// The dataset sizes used in the paper (1,879 Cora records, 30,000 NC
    /// Voter records for quality, up to 292,892 for scalability).
    Paper,
}

impl Scale {
    /// Number of records of the Cora-like dataset at this scale.
    pub fn cora_records(self) -> usize {
        match self {
            Scale::Quick => 400,
            Scale::Paper => 1_879,
        }
    }

    /// Number of records of the NC-Voter-like quality dataset at this scale.
    pub fn voter_records(self) -> usize {
        match self {
            Scale::Quick => 1_500,
            Scale::Paper => 30_000,
        }
    }

    /// Number of records of the NC-Voter-like dataset used by Table 3's
    /// timing comparison (the paper uses a 3,000-record subset in §6.4).
    pub fn voter_timing_records(self) -> usize {
        match self {
            Scale::Quick => 600,
            Scale::Paper => 3_000,
        }
    }

    /// The record counts of the scalability experiment (Fig. 13).
    pub fn scalability_sizes(self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![500, 1_000, 2_000],
            Scale::Paper => vec![10_000, 50_000, 100_000, 150_000, 200_000, 240_000, 292_892],
        }
    }
}

/// Generates the Cora-like dataset at a scale.
pub fn cora_dataset(scale: Scale) -> Result<Dataset> {
    Ok(CoraGenerator::new(CoraConfig {
        num_records: scale.cora_records(),
        ..CoraConfig::default()
    })
    .generate()?)
}

/// Generates the NC-Voter-like quality dataset at a scale.
pub fn voter_dataset(scale: Scale) -> Result<Dataset> {
    Ok(NcVoterGenerator::new(NcVoterConfig {
        num_records: scale.voter_records(),
        ..NcVoterConfig::default()
    })
    .generate()?)
}

/// Generates an NC-Voter-like dataset with an explicit record count (used by
/// the timing and scalability experiments).
///
/// Generation goes through [`NcVoterGenerator::stream`]'s chunked streaming
/// path, so building the 292,892-record corpus of
/// [`Scale::Paper`]`.scalability_sizes()` keeps transient memory bounded:
/// only the final [`Dataset`] plus one in-flight chunk is ever resident.
pub fn voter_dataset_of_size(num_records: usize) -> Result<Dataset> {
    Ok(NcVoterGenerator::new(NcVoterConfig {
        num_records,
        ..NcVoterConfig::default()
    })
    .generate()?)
}

/// The attributes used for textual blocking on Cora (`authors` + `title`).
pub const CORA_BLOCKING_ATTRIBUTES: [&str; 2] = ["title", "authors"];

/// The attributes used for textual blocking on NC Voter
/// (`first name` + `last name`).
pub const VOTER_BLOCKING_ATTRIBUTES: [&str; 2] = ["first_name", "last_name"];

/// The number of semantic features (semhash bits) of the Cora configuration.
pub const CORA_SEMANTIC_BITS: usize = 5;

/// The number of semantic features (semhash bits) of the NC Voter
/// configuration.
pub const VOTER_SEMANTIC_BITS: usize = 12;

/// A plain textual LSH blocker for Cora-style data (q = 4).
pub fn cora_lsh(rows_per_band: usize, bands: usize) -> Result<SaLshBlocker> {
    SaLshBlocker::builder()
        .attributes(CORA_BLOCKING_ATTRIBUTES)
        .qgram(4)
        .rows_per_band(rows_per_band)
        .bands(bands)
        .seed(0xC04A)
        .build()
}

/// A semantic-aware LSH blocker for Cora-style data over a bibliographic
/// taxonomy variant.
pub fn cora_salsh(
    rows_per_band: usize,
    bands: usize,
    w: usize,
    mode: SemanticMode,
    variant: BibVariant,
    semantic_seed: u64,
) -> Result<SaLshBlocker> {
    let tree = bibliographic_taxonomy_variant(variant);
    let zeta = PatternSemanticFunction::cora_default(&tree)?;
    SaLshBlocker::builder()
        .attributes(CORA_BLOCKING_ATTRIBUTES)
        .qgram(4)
        .rows_per_band(rows_per_band)
        .bands(bands)
        .seed(0xC04A)
        .semantic(SemanticConfig::new(tree, zeta).with_w(w).with_mode(mode).with_seed(semantic_seed))
        .build()
}

/// A plain textual LSH blocker for NC-Voter-style data (q = 2).
pub fn voter_lsh(rows_per_band: usize, bands: usize) -> Result<SaLshBlocker> {
    SaLshBlocker::builder()
        .attributes(VOTER_BLOCKING_ATTRIBUTES)
        .qgram(2)
        .rows_per_band(rows_per_band)
        .bands(bands)
        .seed(0x7013)
        .build()
}

/// A semantic-aware LSH blocker for NC-Voter-style data.
pub fn voter_salsh(rows_per_band: usize, bands: usize, w: usize, mode: SemanticMode) -> Result<SaLshBlocker> {
    let zeta = VoterSemanticFunction::default_voter();
    let tree = zeta.taxonomy().clone();
    SaLshBlocker::builder()
        .attributes(VOTER_BLOCKING_ATTRIBUTES)
        .qgram(2)
        .rows_per_band(rows_per_band)
        .bands(bands)
        .seed(0x7013)
        .semantic(SemanticConfig::new(tree, zeta).with_w(w).with_mode(mode).with_seed(0x5eed))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sablock_core::blocking::Blocker;

    #[test]
    fn scales_expose_the_paper_sizes() {
        assert_eq!(Scale::Paper.cora_records(), 1_879);
        assert_eq!(Scale::Paper.voter_records(), 30_000);
        assert_eq!(Scale::Paper.voter_timing_records(), 3_000);
        assert_eq!(Scale::Paper.scalability_sizes().last(), Some(&292_892));
        assert!(Scale::Quick.cora_records() < Scale::Paper.cora_records());
        assert_eq!(Scale::Quick.scalability_sizes().len(), 3);
    }

    #[test]
    fn dataset_builders_generate_the_requested_sizes() {
        let cora = cora_dataset(Scale::Quick).unwrap();
        assert_eq!(cora.len(), Scale::Quick.cora_records());
        let voter = voter_dataset_of_size(321).unwrap();
        assert_eq!(voter.len(), 321);
    }

    #[test]
    fn blocker_factories_build_valid_blockers() {
        let lsh = cora_lsh(4, 8).unwrap();
        assert!(!lsh.is_semantic());
        let salsh = cora_salsh(4, 8, 2, SemanticMode::Or, BibVariant::Full, 1).unwrap();
        assert!(salsh.is_semantic());
        assert!(salsh.name().contains("SA-LSH"));
        let voter = voter_salsh(9, 15, 12, SemanticMode::Or).unwrap();
        assert!(voter.name().contains("w=12"));
        let voter_plain = voter_lsh(9, 15).unwrap();
        assert_eq!(voter_plain.minhash_config().qgram, 2);
    }

    #[test]
    fn quick_blockers_run_end_to_end_on_quick_datasets() {
        let cora = cora_dataset(Scale::Quick).unwrap();
        let blocks = cora_salsh(2, 8, 5, SemanticMode::Or, BibVariant::Full, 1)
            .unwrap()
            .block(&cora)
            .unwrap();
        assert!(blocks.num_blocks() > 0);
    }
}
