//! E-FIG9 — Fig. 9: LSH vs SA-LSH over the (k, l) ladder.
//!
//! Subplots (a)-(c) sweep Cora over (k, l) ∈ {(1,2), (2,6), (3,19), (4,63),
//! (5,210), (6,701)}; subplots (d)-(f) sweep NC Voter over k = 4..9 with
//! l = 15. For the SA-LSH runs the paper uses "the lowest threshold for
//! semantic similarity" — i.e. records count as semantically similar when
//! they share *any* semantic feature — which corresponds to a w-way OR
//! function over the full semhash family (w = 5 for Cora, w = 12 for NC
//! Voter).

use sablock_core::error::Result;
use sablock_core::lsh::semantic_hash::SemanticMode;
use sablock_core::taxonomy::bib::BibVariant;
use sablock_datasets::Dataset;

use crate::experiments::fig06::{CORA_KL, VOTER_KL};
use crate::experiments::{
    cora_dataset, cora_lsh, cora_salsh, voter_dataset, voter_lsh, voter_salsh, Scale, CORA_SEMANTIC_BITS, VOTER_SEMANTIC_BITS,
};
use crate::report::{fmt3, TextTable};
use crate::runner::{run_blocker, RunResult};

/// One point of the sweep: the (k, l) pair and the evaluated LSH and SA-LSH
/// runs at that point.
#[derive(Debug, Clone)]
pub struct LadderPoint {
    /// Rows per band.
    pub k: usize,
    /// Number of bands.
    pub l: usize,
    /// The plain textual LSH run.
    pub lsh: RunResult,
    /// The semantic-aware run.
    pub salsh: RunResult,
}

/// The sweep over one dataset.
#[derive(Debug, Clone)]
pub struct Fig09Panel {
    /// Dataset name.
    pub dataset: String,
    /// The ladder, in increasing k order.
    pub points: Vec<LadderPoint>,
}

/// The full figure: Cora panel (subplots a-c) and NC Voter panel (d-f).
#[derive(Debug, Clone)]
pub struct Fig09Output {
    /// The Cora panel.
    pub cora: Fig09Panel,
    /// The NC Voter panel.
    pub ncvoter: Fig09Panel,
}

/// Runs the Cora panel on a pre-built dataset.
pub fn run_cora_on(dataset: &Dataset) -> Result<Fig09Panel> {
    let mut points = Vec::new();
    for &(k, l) in &CORA_KL {
        let lsh = run_blocker("LSH", &cora_lsh(k, l)?, dataset)?;
        let salsh = run_blocker(
            "SA-LSH",
            &cora_salsh(k, l, CORA_SEMANTIC_BITS, SemanticMode::Or, BibVariant::Full, 0x0911)?,
            dataset,
        )?;
        points.push(LadderPoint { k, l, lsh, salsh });
    }
    Ok(Fig09Panel {
        dataset: dataset.name().to_string(),
        points,
    })
}

/// Runs the NC Voter panel on a pre-built dataset.
pub fn run_voter_on(dataset: &Dataset) -> Result<Fig09Panel> {
    let mut points = Vec::new();
    for &(k, l) in &VOTER_KL {
        let lsh = run_blocker("LSH", &voter_lsh(k, l)?, dataset)?;
        let salsh = run_blocker("SA-LSH", &voter_salsh(k, l, VOTER_SEMANTIC_BITS, SemanticMode::Or)?, dataset)?;
        points.push(LadderPoint { k, l, lsh, salsh });
    }
    Ok(Fig09Panel {
        dataset: dataset.name().to_string(),
        points,
    })
}

/// Runs the full experiment at the given scale.
pub fn run(scale: Scale) -> Result<Fig09Output> {
    let cora = cora_dataset(scale)?;
    let voter = voter_dataset(scale)?;
    Ok(Fig09Output {
        cora: run_cora_on(&cora)?,
        ncvoter: run_voter_on(&voter)?,
    })
}

impl Fig09Panel {
    /// Renders the panel as a table with one row per (k, l) point.
    pub fn to_table(&self) -> TextTable {
        let mut table = TextTable::new(
            format!("Fig. 9 — LSH vs SA-LSH over (k, l) [{}]", self.dataset),
            &["k", "l", "PC lsh", "PC sa", "PQ lsh", "PQ sa", "RR lsh", "RR sa"],
        );
        for point in &self.points {
            table.add_row(vec![
                point.k.to_string(),
                point.l.to_string(),
                fmt3(point.lsh.metrics.pc()),
                fmt3(point.salsh.metrics.pc()),
                fmt3(point.lsh.metrics.pq()),
                fmt3(point.salsh.metrics.pq()),
                fmt3(point.lsh.metrics.rr()),
                fmt3(point.salsh.metrics.rr()),
            ]);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cora_panel_reproduces_the_figure_shape() {
        let dataset = cora_dataset(Scale::Quick).unwrap();
        // Keep the quick test affordable: skip the two most expensive ladder
        // points by running only on the published ladder's first four.
        let panel = run_cora_on(&dataset).unwrap();
        assert_eq!(panel.points.len(), 6);
        for point in &panel.points {
            // SA-LSH never adds pairs, so its PC cannot exceed LSH's…
            assert!(point.salsh.metrics.pc() <= point.lsh.metrics.pc() + 1e-9, "k={}", point.k);
            // …its PQ is at least as good…
            assert!(point.salsh.metrics.pq() + 1e-9 >= point.lsh.metrics.pq(), "k={}", point.k);
            // …and its RR is at least as high.
            assert!(point.salsh.metrics.rr() + 1e-9 >= point.lsh.metrics.rr(), "k={}", point.k);
        }
        // PC grows with l along the ladder (more bands = more chances to collide).
        let first = &panel.points[0];
        let fourth = &panel.points[3];
        assert!(fourth.lsh.metrics.pc() + 1e-9 >= first.lsh.metrics.pc());
        let table = panel.to_table();
        assert_eq!(table.num_rows(), 6);
        assert!(table.render().contains("l"));
    }

    #[test]
    fn voter_panel_keeps_pc_while_improving_pq() {
        let dataset = voter_dataset(Scale::Quick).unwrap();
        let panel = run_voter_on(&dataset).unwrap();
        assert_eq!(panel.points.len(), 6);
        for point in &panel.points {
            // The paper: "the PC values of LSH and SA-LSH are the same" on NC
            // Voter because its semantic features are not noisy. Allow a tiny
            // slack for the synthetic data.
            assert!(point.lsh.metrics.pc() - point.salsh.metrics.pc() < 0.05, "k={}", point.k);
            assert!(point.salsh.metrics.pq() + 1e-9 >= point.lsh.metrics.pq(), "k={}", point.k);
        }
        // Increasing k with fixed l lowers PC (harder to collide).
        let first = &panel.points[0];
        let last = &panel.points[5];
        assert!(last.lsh.metrics.pc() <= first.lsh.metrics.pc() + 1e-9);
    }
}
