//! E-FIG7 — Fig. 7: PC/PQ/RR/FM of the semantic-aware LSH blocker over Cora
//! under five semantic hash configurations (H11–H15), with k = 4 and l = 63.
//!
//! * H11: w = 2, µ = ∧
//! * H12: w = 1 (∧ and ∨ coincide)
//! * H13: w = 2, µ = ∨
//! * H14: w = 3, µ = ∨
//! * H15: w = 4, µ = ∨

use sablock_core::error::Result;
use sablock_core::lsh::semantic_hash::SemanticMode;
use sablock_core::taxonomy::bib::BibVariant;
use sablock_datasets::Dataset;

use crate::experiments::{cora_dataset, cora_salsh, Scale};
use crate::report::{fmt3, TextTable};
use crate::runner::{run_blocker, RunResult};

/// One semantic-hash configuration of the figure.
#[derive(Debug, Clone, Copy)]
pub struct SemhashConfig {
    /// The label used in the figure (H11, …, H15).
    pub label: &'static str,
    /// The number of drawn semhash functions.
    pub w: usize,
    /// The combination mode.
    pub mode: SemanticMode,
}

/// The configurations of Fig. 7, in figure order.
pub const CORA_CONFIGS: [SemhashConfig; 5] = [
    SemhashConfig { label: "H11", w: 2, mode: SemanticMode::And },
    SemhashConfig { label: "H12", w: 1, mode: SemanticMode::Or },
    SemhashConfig { label: "H13", w: 2, mode: SemanticMode::Or },
    SemhashConfig { label: "H14", w: 3, mode: SemanticMode::Or },
    SemhashConfig { label: "H15", w: 4, mode: SemanticMode::Or },
];

/// The (k, l) operating point of the figure.
pub const CORA_K: usize = 4;
/// Number of bands used by the figure.
pub const CORA_L: usize = 63;

/// The output: one evaluated run per configuration.
#[derive(Debug, Clone)]
pub struct Fig07Output {
    /// (configuration, evaluated run), in figure order.
    pub runs: Vec<(SemhashConfig, RunResult)>,
}

/// Runs the experiment on a pre-built Cora-like dataset.
pub fn run_on(dataset: &Dataset) -> Result<Fig07Output> {
    let mut runs = Vec::with_capacity(CORA_CONFIGS.len());
    for config in CORA_CONFIGS {
        let blocker = cora_salsh(CORA_K, CORA_L, config.w, config.mode, BibVariant::Full, 0x0711)?;
        let result = run_blocker(config.label, &blocker, dataset)?;
        runs.push((config, result));
    }
    Ok(Fig07Output { runs })
}

/// Runs the experiment at the given scale.
pub fn run(scale: Scale) -> Result<Fig07Output> {
    let dataset = cora_dataset(scale)?;
    run_on(&dataset)
}

impl Fig07Output {
    /// Renders the four bar charts of the figure as a single table.
    pub fn to_table(&self) -> TextTable {
        let mut table = TextTable::new(
            "Fig. 7 — semantic hash functions over Cora (k=4, l=63)",
            &["config", "w", "mode", "PC", "PQ", "RR", "FM"],
        );
        for (config, result) in &self.runs {
            table.add_row(vec![
                config.label.to_string(),
                config.w.to_string(),
                config.mode.symbol().to_string(),
                fmt3(result.metrics.pc()),
                fmt3(result.metrics.pq()),
                fmt3(result.metrics.rr()),
                fmt3(result.metrics.fm()),
            ]);
        }
        table
    }

    /// The run of a configuration by label.
    pub fn get(&self, label: &str) -> Option<&RunResult> {
        self.runs.iter().find(|(c, _)| c.label == label).map(|(_, r)| r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_shape_holds_on_quick_data() {
        let output = run(Scale::Quick).unwrap();
        assert_eq!(output.runs.len(), 5);
        let pc = |label: &str| output.get(label).unwrap().metrics.pc();
        // OR with increasing w can only keep more pairs: PC grows from H12 to H15.
        assert!(pc("H13") + 1e-9 >= pc("H12"));
        assert!(pc("H14") + 1e-9 >= pc("H13"));
        assert!(pc("H15") + 1e-9 >= pc("H14"));
        // AND with w=2 keeps at most as many pairs as w=1.
        assert!(pc("H11") <= pc("H12") + 1e-9);
        // All measures are sane.
        for (_, result) in &output.runs {
            assert!(result.metrics.rr() > 0.5, "LSH blocking must cut the comparison space");
            assert!(result.metrics.pc() > 0.0);
        }
        let table = output.to_table();
        assert_eq!(table.num_rows(), 5);
        assert!(table.render().contains("H15"));
    }
}
