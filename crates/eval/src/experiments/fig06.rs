//! E-FIG6 — Fig. 6: the textual similarity distribution of true matches under
//! different q-gram sizes (upper subplots) and the banding collision
//! probability under different (k, l) (lower subplots), for both datasets.
//!
//! The upper subplots justify the choice of q (q=4 for Cora, q=2 for NC
//! Voter); the lower subplots justify the (k, l) operating points (k=4, l=63
//! and k=9, l=15).

use rand::rngs::StdRng;
use rand::SeedableRng;

use sablock_core::error::Result;
use sablock_core::lsh::probability::banding_curve;
use sablock_core::minhash::shingle::RecordShingler;
use sablock_core::tuning::SimilarityDistribution;
use sablock_datasets::Dataset;

use crate::experiments::{cora_dataset, voter_dataset, Scale, CORA_BLOCKING_ATTRIBUTES, VOTER_BLOCKING_ATTRIBUTES};
use crate::report::{fmt3, TextTable};

/// The match-similarity histogram of one dataset under one shingling choice.
#[derive(Debug, Clone)]
pub struct DistributionSeries {
    /// "exact", "q=2", "q=3" or "q=4".
    pub label: String,
    /// Normalised histogram over `[0, 1]`.
    pub histogram: Vec<f64>,
    /// Mean match similarity.
    pub mean: f64,
}

/// One collision-probability curve for a (k, l) pair.
#[derive(Debug, Clone)]
pub struct CollisionSeries {
    /// Rows per band.
    pub k: usize,
    /// Number of bands.
    pub l: usize,
    /// Sampled (similarity, probability) points.
    pub curve: Vec<(f64, f64)>,
}

/// The Fig. 6 panels of one dataset.
#[derive(Debug, Clone)]
pub struct Fig06Panel {
    /// Dataset name.
    pub dataset: String,
    /// Similarity distributions per q.
    pub distributions: Vec<DistributionSeries>,
    /// Collision curves per (k, l).
    pub collision_curves: Vec<CollisionSeries>,
}

/// The full Fig. 6 output: Cora panel and NC Voter panel.
#[derive(Debug, Clone)]
pub struct Fig06Output {
    /// The Cora panel (left column in the paper).
    pub cora: Fig06Panel,
    /// The NC Voter panel (right column in the paper).
    pub ncvoter: Fig06Panel,
}

/// The (k, l) pairs of the Cora collision subplot.
pub const CORA_KL: [(usize, usize); 6] = [(1, 2), (2, 6), (3, 19), (4, 63), (5, 210), (6, 701)];

/// The (k, l) pairs of the NC Voter collision subplot.
pub const VOTER_KL: [(usize, usize); 6] = [(4, 15), (5, 15), (6, 15), (7, 15), (8, 15), (9, 15)];

const HISTOGRAM_BINS: usize = 20;
const MAX_SAMPLED_MATCHES: usize = 5_000;

fn distributions_for(dataset: &Dataset, attributes: &[&str], seed: u64) -> Result<Vec<DistributionSeries>> {
    let mut series = Vec::new();
    // "Exact value" is modelled as a very large q: identical normalised
    // strings are the only way to reach similarity 1, everything else is ~0;
    // we reproduce it with a whole-value shingle by using a huge q.
    let configs: Vec<(String, usize)> = vec![
        ("exact".to_string(), 64),
        ("q=2".to_string(), 2),
        ("q=3".to_string(), 3),
        ("q=4".to_string(), 4),
    ];
    for (label, q) in configs {
        let shingler = RecordShingler::new(attributes.to_vec(), q)?;
        let mut rng = StdRng::seed_from_u64(seed);
        let distribution =
            SimilarityDistribution::estimate_from_matches(dataset, &shingler, MAX_SAMPLED_MATCHES, HISTOGRAM_BINS, &mut rng)?;
        series.push(DistributionSeries {
            label,
            histogram: distribution.histogram(),
            mean: distribution.mean(),
        });
    }
    Ok(series)
}

fn collision_curves_for(pairs: &[(usize, usize)]) -> Vec<CollisionSeries> {
    pairs
        .iter()
        .map(|&(k, l)| CollisionSeries {
            k,
            l,
            curve: banding_curve(k, l, 20),
        })
        .collect()
}

/// Runs the experiment at the given scale.
pub fn run(scale: Scale) -> Result<Fig06Output> {
    let cora = cora_dataset(scale)?;
    let voter = voter_dataset(scale)?;
    Ok(Fig06Output {
        cora: Fig06Panel {
            dataset: cora.name().to_string(),
            distributions: distributions_for(&cora, &CORA_BLOCKING_ATTRIBUTES, 61)?,
            collision_curves: collision_curves_for(&CORA_KL),
        },
        ncvoter: Fig06Panel {
            dataset: voter.name().to_string(),
            distributions: distributions_for(&voter, &VOTER_BLOCKING_ATTRIBUTES, 62)?,
            collision_curves: collision_curves_for(&VOTER_KL),
        },
    })
}

impl Fig06Panel {
    /// Renders the similarity-distribution subplot as a table.
    pub fn distribution_table(&self) -> TextTable {
        let mut header = vec!["similarity bin".to_string()];
        header.extend(self.distributions.iter().map(|d| d.label.clone()));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut table = TextTable::new(format!("Fig. 6 — match similarity distribution ({})", self.dataset), &header_refs);
        let bins = self.distributions.first().map(|d| d.histogram.len()).unwrap_or(0);
        for bin in 0..bins {
            let low = bin as f64 / bins as f64;
            let mut row = vec![format!("[{:.2},{:.2})", low, low + 1.0 / bins as f64)];
            for d in &self.distributions {
                row.push(fmt3(d.histogram[bin]));
            }
            table.add_row(row);
        }
        table
    }

    /// Renders the collision-probability subplot as a table.
    pub fn collision_table(&self) -> TextTable {
        let mut header = vec!["similarity".to_string()];
        header.extend(self.collision_curves.iter().map(|c| format!("k={} l={}", c.k, c.l)));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut table = TextTable::new(format!("Fig. 6 — collision probability ({})", self.dataset), &header_refs);
        let points = self.collision_curves.first().map(|c| c.curve.len()).unwrap_or(0);
        for i in 0..points {
            let mut row = vec![fmt3(self.collision_curves[0].curve[i].0)];
            for c in &self.collision_curves {
                row.push(fmt3(c.curve[i].1));
            }
            table.add_row(row);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_both_panels() {
        let output = run(Scale::Quick).unwrap();
        assert_eq!(output.cora.distributions.len(), 4);
        assert_eq!(output.ncvoter.distributions.len(), 4);
        assert_eq!(output.cora.collision_curves.len(), 6);
        assert_eq!(output.ncvoter.collision_curves.len(), 6);
        // Histograms are normalised.
        for d in output.cora.distributions.iter().chain(&output.ncvoter.distributions) {
            let total: f64 = d.histogram.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "{}: {total}", d.label);
        }
    }

    #[test]
    fn ncvoter_matches_are_more_similar_than_cora_matches() {
        // The paper's Fig. 6: NC Voter's q=2 match similarities concentrate
        // above 0.8, Cora's are spread out — that contrast justifies the
        // different (k, l) choices.
        let output = run(Scale::Quick).unwrap();
        let cora_q2 = output.cora.distributions.iter().find(|d| d.label == "q=2").unwrap();
        let voter_q2 = output.ncvoter.distributions.iter().find(|d| d.label == "q=2").unwrap();
        assert!(voter_q2.mean > cora_q2.mean, "voter mean {} vs cora mean {}", voter_q2.mean, cora_q2.mean);
        assert!(voter_q2.mean > 0.7, "voter q=2 matches should be highly similar, got {}", voter_q2.mean);
    }

    #[test]
    fn larger_q_lowers_match_similarity() {
        // Longer q-grams are more brittle under typos, so the mean match
        // similarity decreases with q (visible in both of the paper's
        // subplots as the q=4 curve shifting left).
        let output = run(Scale::Quick).unwrap();
        let mean = |panel: &Fig06Panel, label: &str| panel.distributions.iter().find(|d| d.label == label).unwrap().mean;
        assert!(mean(&output.cora, "q=2") >= mean(&output.cora, "q=4"));
        assert!(mean(&output.ncvoter, "q=2") >= mean(&output.ncvoter, "q=4"));
        // Exact matching is the most brittle of all.
        assert!(mean(&output.cora, "exact") <= mean(&output.cora, "q=2"));
    }

    #[test]
    fn tables_render_with_expected_shapes() {
        let output = run(Scale::Quick).unwrap();
        let dist = output.cora.distribution_table();
        assert_eq!(dist.num_rows(), 20);
        assert!(dist.render().contains("q=4"));
        let coll = output.ncvoter.collision_table();
        assert_eq!(coll.num_rows(), 21);
        assert!(coll.render().contains("k=9 l=15"));
    }

    #[test]
    fn kl_ladders_match_the_paper() {
        assert_eq!(CORA_KL[3], (4, 63));
        assert_eq!(CORA_KL[5], (6, 701));
        assert!(VOTER_KL.iter().all(|&(_, l)| l == 15));
    }
}
