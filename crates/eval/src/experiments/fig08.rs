//! E-FIG8 — Fig. 8: PC/PQ/RR/FM of the semantic-aware LSH blocker over NC
//! Voter under five semantic hash configurations (H21–H25), with k = 9 and
//! l = 15.
//!
//! * H21: w = 1 (∧ and ∨ coincide)
//! * H22: w = 3, µ = ∨
//! * H23: w = 5, µ = ∨
//! * H24: w = 7, µ = ∨
//! * H25: w = 9, µ = ∨

use sablock_core::error::Result;
use sablock_core::lsh::semantic_hash::SemanticMode;
use sablock_datasets::Dataset;

use crate::experiments::fig07::SemhashConfig;
use crate::experiments::{voter_dataset, voter_salsh, Scale};
use crate::report::{fmt3, TextTable};
use crate::runner::{run_blocker, RunResult};

/// The configurations of Fig. 8, in figure order.
pub const VOTER_CONFIGS: [SemhashConfig; 5] = [
    SemhashConfig { label: "H21", w: 1, mode: SemanticMode::Or },
    SemhashConfig { label: "H22", w: 3, mode: SemanticMode::Or },
    SemhashConfig { label: "H23", w: 5, mode: SemanticMode::Or },
    SemhashConfig { label: "H24", w: 7, mode: SemanticMode::Or },
    SemhashConfig { label: "H25", w: 9, mode: SemanticMode::Or },
];

/// Rows per band of the figure's operating point.
pub const VOTER_K: usize = 9;
/// Number of bands of the figure's operating point.
pub const VOTER_L: usize = 15;

/// The output: one evaluated run per configuration.
#[derive(Debug, Clone)]
pub struct Fig08Output {
    /// (configuration, evaluated run), in figure order.
    pub runs: Vec<(SemhashConfig, RunResult)>,
}

/// Runs the experiment on a pre-built NC-Voter-like dataset.
pub fn run_on(dataset: &Dataset) -> Result<Fig08Output> {
    let mut runs = Vec::with_capacity(VOTER_CONFIGS.len());
    for config in VOTER_CONFIGS {
        let blocker = voter_salsh(VOTER_K, VOTER_L, config.w, config.mode)?;
        let result = run_blocker(config.label, &blocker, dataset)?;
        runs.push((config, result));
    }
    Ok(Fig08Output { runs })
}

/// Runs the experiment at the given scale.
pub fn run(scale: Scale) -> Result<Fig08Output> {
    let dataset = voter_dataset(scale)?;
    run_on(&dataset)
}

impl Fig08Output {
    /// Renders the figure as a table.
    pub fn to_table(&self) -> TextTable {
        let mut table = TextTable::new(
            "Fig. 8 — semantic hash functions over NC Voter (k=9, l=15)",
            &["config", "w", "mode", "PC", "PQ", "RR", "FM"],
        );
        for (config, result) in &self.runs {
            table.add_row(vec![
                config.label.to_string(),
                config.w.to_string(),
                config.mode.symbol().to_string(),
                fmt3(result.metrics.pc()),
                fmt3(result.metrics.pq()),
                fmt3(result.metrics.rr()),
                fmt3(result.metrics.fm()),
            ]);
        }
        table
    }

    /// The run of a configuration by label.
    pub fn get(&self, label: &str) -> Option<&RunResult> {
        self.runs.iter().find(|(c, _)| c.label == label).map(|(_, r)| r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_shape_holds_on_quick_data() {
        let output = run(Scale::Quick).unwrap();
        assert_eq!(output.runs.len(), 5);
        let pc = |label: &str| output.get(label).unwrap().metrics.pc();
        // With µ = ∨, PC grows (weakly) with w — the paper's observation that
        // "the PC values increase when w increases in the case µ = ∨".
        assert!(pc("H22") + 1e-9 >= pc("H21"));
        assert!(pc("H23") + 1e-9 >= pc("H22"));
        assert!(pc("H25") + 1e-9 >= pc("H24"));
        // RR stays extremely high on the relatively clean voter data.
        for (_, result) in &output.runs {
            assert!(result.metrics.rr() > 0.9);
        }
        assert!(output.to_table().render().contains("H25"));
    }
}
