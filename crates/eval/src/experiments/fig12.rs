//! E-FIG12 — Fig. 12: comparison of SA-LSH with meta-blocking over both
//! datasets, reported with the meta-blocking paper's measures PC, PQ* and
//! FM*.
//!
//! Meta-blocking is run on a token-blocking input; for each pruning algorithm
//! (WEP, CEP, WNP, CNP) the weighting scheme with the highest FM* is
//! reported, exactly as the paper's Fig. 12 does. All 21 evaluations of a
//! panel (initial blocks + 20 pruning/weighting combinations) go through the
//! streaming [`BlockingMetrics::evaluate`], so the redundancy-heavy token
//! blocks are scored without ever materialising their pair sets.

use std::time::Duration;

use sablock_baselines::key::BlockingKey;
use sablock_baselines::meta::{MetaBlocking, PruningAlgorithm, WeightingScheme};
use sablock_baselines::standard::TokenBlocking;
use sablock_core::blocking::Blocker;
use sablock_core::error::Result;
use sablock_core::lsh::semantic_hash::SemanticMode;
use sablock_core::taxonomy::bib::BibVariant;
use sablock_datasets::Dataset;

use crate::experiments::{
    cora_dataset, cora_salsh, voter_dataset_of_size, voter_salsh, Scale, CORA_SEMANTIC_BITS, VOTER_SEMANTIC_BITS,
};
use crate::metrics::BlockingMetrics;
use crate::report::{fmt3, TextTable};
use crate::runner::evaluate_blocks;

/// One row of the figure: a pruning algorithm with its best weighting scheme,
/// or the SA-LSH row.
#[derive(Debug, Clone)]
pub struct Fig12Row {
    /// "WEP", "CEP", "WNP", "CNP" or "SA-LSH".
    pub method: String,
    /// The best weighting scheme (empty for SA-LSH).
    pub weighting: String,
    /// Quality of the final blocks.
    pub metrics: BlockingMetrics,
}

/// The comparison over one dataset.
#[derive(Debug, Clone)]
pub struct Fig12Panel {
    /// Dataset name.
    pub dataset: String,
    /// Quality of the meta-blocking *input* blocks (the "initial blocks"
    /// column of the paper's Fig. 12).
    pub initial: BlockingMetrics,
    /// One row per pruning algorithm plus the SA-LSH row.
    pub rows: Vec<Fig12Row>,
}

/// The full figure.
#[derive(Debug, Clone)]
pub struct Fig12Output {
    /// The Cora panel.
    pub cora: Fig12Panel,
    /// The NC Voter panel.
    pub ncvoter: Fig12Panel,
}

fn run_panel(dataset: &Dataset, key: &BlockingKey, salsh: &dyn Blocker) -> Result<Fig12Panel> {
    // The redundancy-positive input blocking shared by every configuration.
    let token_blocking = TokenBlocking::new(key.clone());
    let input_blocks = token_blocking.block(dataset)?;
    let initial = BlockingMetrics::evaluate(&input_blocks, dataset.ground_truth());

    let mut rows = Vec::new();
    for pruning in PruningAlgorithm::ALL {
        let mut best: Option<Fig12Row> = None;
        for scheme in WeightingScheme::ALL {
            let pruned = MetaBlocking::<TokenBlocking>::prune_collection(&input_blocks, scheme, pruning)?;
            let metrics = BlockingMetrics::evaluate(&pruned, dataset.ground_truth());
            let candidate = Fig12Row {
                method: pruning.name().to_string(),
                weighting: scheme.name().to_string(),
                metrics,
            };
            let better = match &best {
                Some(current) => candidate.metrics.fm_star() > current.metrics.fm_star(),
                None => true,
            };
            if better {
                best = Some(candidate);
            }
        }
        rows.push(best.expect("at least one weighting scheme was evaluated"));
    }

    // The SA-LSH row uses the same parameter settings as Fig. 11.
    let salsh_blocks = salsh.block(dataset)?;
    let salsh_result = evaluate_blocks("SA-LSH", &salsh.name(), dataset, &salsh_blocks, Duration::default());
    rows.push(Fig12Row {
        method: "SA-LSH".to_string(),
        weighting: String::new(),
        metrics: salsh_result.metrics,
    });

    Ok(Fig12Panel {
        dataset: dataset.name().to_string(),
        initial,
        rows,
    })
}

/// Runs the Cora panel on a pre-built dataset.
pub fn run_cora_on(dataset: &Dataset) -> Result<Fig12Panel> {
    let salsh = cora_salsh(4, 63, CORA_SEMANTIC_BITS, SemanticMode::Or, BibVariant::Full, 0x1212)?;
    run_panel(dataset, &BlockingKey::cora(), &salsh)
}

/// Runs the NC Voter panel on a pre-built dataset.
pub fn run_voter_on(dataset: &Dataset) -> Result<Fig12Panel> {
    let salsh = voter_salsh(9, 15, VOTER_SEMANTIC_BITS, SemanticMode::Or)?;
    run_panel(dataset, &BlockingKey::ncvoter(), &salsh)
}

/// Runs the full figure at the given scale.
pub fn run(scale: Scale) -> Result<Fig12Output> {
    let cora = cora_dataset(scale)?;
    let voter = voter_dataset_of_size(scale.voter_timing_records())?;
    Ok(Fig12Output {
        cora: run_cora_on(&cora)?,
        ncvoter: run_voter_on(&voter)?,
    })
}

impl Fig12Panel {
    /// Renders the panel in the paper's layout.
    pub fn to_table(&self) -> TextTable {
        let mut table = TextTable::new(
            format!("Fig. 12 — SA-LSH vs meta-blocking [{}]", self.dataset),
            &["method", "weighting", "PC", "PQ*", "FM*"],
        );
        table.add_row(vec![
            "initial blocks".to_string(),
            String::new(),
            fmt3(self.initial.pc()),
            fmt3(self.initial.pq_star()),
            fmt3(self.initial.fm_star()),
        ]);
        for row in &self.rows {
            table.add_row(vec![
                row.method.clone(),
                row.weighting.clone(),
                fmt3(row.metrics.pc()),
                fmt3(row.metrics.pq_star()),
                fmt3(row.metrics.fm_star()),
            ]);
        }
        table
    }

    /// A row by method name.
    pub fn get(&self, method: &str) -> Option<&Fig12Row> {
        self.rows.iter().find(|r| r.method == method)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_reports_all_pruning_algorithms_and_salsh() {
        let dataset = cora_dataset(Scale::Quick).unwrap();
        let panel = run_cora_on(&dataset).unwrap();
        assert_eq!(panel.rows.len(), 5);
        for method in ["WEP", "CEP", "WNP", "CNP", "SA-LSH"] {
            assert!(panel.get(method).is_some(), "missing {method}");
        }
        // Pruning must improve PQ* over the initial token blocks.
        for pruning in ["WEP", "CEP", "WNP", "CNP"] {
            let row = panel.get(pruning).unwrap();
            assert!(
                row.metrics.pq_star() + 1e-12 >= panel.initial.pq_star(),
                "{pruning}: PQ* {} should not be below the initial {}",
                row.metrics.pq_star(),
                panel.initial.pq_star()
            );
            // Pruning can only lose true matches.
            assert!(row.metrics.pc() <= panel.initial.pc() + 1e-12);
        }
        // SA-LSH keeps a competitive PC (the paper: highest PC over Cora).
        let salsh = panel.get("SA-LSH").unwrap();
        assert!(salsh.metrics.pc() > 0.5);
        let rendered = panel.to_table().render();
        assert!(rendered.contains("initial blocks"));
        assert!(rendered.contains("FM*"));
    }
}
