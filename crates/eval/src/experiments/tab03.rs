//! E-TAB3 — Table 3: blocking time and number of candidate pairs of every
//! technique (best-FM parameter setting) over the NC Voter timing subset,
//! plus the LSH and SA-LSH rows.

use sablock_baselines::key::BlockingKey;
use sablock_baselines::params::{full_grids, reduced_grids, TechniqueGrid};
use sablock_core::error::Result;
use sablock_core::lsh::semantic_hash::SemanticMode;
use sablock_datasets::Dataset;

use crate::experiments::{voter_dataset_of_size, voter_lsh, voter_salsh, Scale, VOTER_SEMANTIC_BITS};
use crate::report::{fmt3, TextTable};
use crate::runner::{run_blocker, RunResult};
use crate::sweep::best_by_fm;

/// Which parameter grids to sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridScale {
    /// One or two representative settings per technique (fast).
    Reduced,
    /// The full survey grids (~150 settings; slow but faithful to the paper).
    Full,
}

/// One row of Table 3.
#[derive(Debug, Clone)]
pub struct Tab03Row {
    /// Technique abbreviation.
    pub technique: String,
    /// Number of parameter settings swept.
    pub settings: usize,
    /// The best-FM run.
    pub best: RunResult,
}

/// The full table.
#[derive(Debug, Clone)]
pub struct Tab03Output {
    /// Rows in the paper's order (baselines first, then LSH and SA-LSH).
    pub rows: Vec<Tab03Row>,
    /// Number of records in the timing dataset.
    pub num_records: usize,
}

/// The LSH/SA-LSH operating point used for the NC Voter rows (k=9, l=15).
pub const K: usize = 9;
/// Number of bands of the operating point.
pub const L: usize = 15;

/// Runs the experiment on a pre-built dataset.
pub fn run_on(dataset: &Dataset, grid_scale: GridScale) -> Result<Tab03Output> {
    let key = BlockingKey::ncvoter();
    let grids: Vec<TechniqueGrid> = match grid_scale {
        GridScale::Reduced => reduced_grids(&key),
        GridScale::Full => full_grids(&key),
    };
    let mut rows = Vec::new();
    for grid in &grids {
        let best = best_by_fm(grid, dataset)?;
        rows.push(Tab03Row {
            technique: grid.technique.to_string(),
            settings: grid.len(),
            best,
        });
    }
    // LSH and SA-LSH rows (a single setting each, as in the paper).
    let lsh = run_blocker("LSH", &voter_lsh(K, L)?, dataset)?;
    rows.push(Tab03Row {
        technique: "LSH".to_string(),
        settings: 1,
        best: lsh,
    });
    let salsh = run_blocker("SA-LSH", &voter_salsh(K, L, VOTER_SEMANTIC_BITS, SemanticMode::Or)?, dataset)?;
    rows.push(Tab03Row {
        technique: "SA-LSH".to_string(),
        settings: 1,
        best: salsh,
    });
    Ok(Tab03Output {
        rows,
        num_records: dataset.len(),
    })
}

/// Runs the experiment at the given scale with the given grid scale.
pub fn run(scale: Scale, grid_scale: GridScale) -> Result<Tab03Output> {
    let dataset = voter_dataset_of_size(scale.voter_timing_records())?;
    run_on(&dataset, grid_scale)
}

impl Tab03Output {
    /// Renders the table.
    pub fn to_table(&self) -> TextTable {
        let mut table = TextTable::new(
            format!("Table 3 — blocking time and candidate pairs ({} records)", self.num_records),
            &["technique", "settings", "time (s)", "candidate pairs", "PC", "PQ", "FM"],
        );
        for row in &self.rows {
            table.add_row(vec![
                row.technique.clone(),
                row.settings.to_string(),
                format!("{:.4}", row.best.blocking_time.as_secs_f64()),
                row.best.metrics.candidate_pairs.to_string(),
                fmt3(row.best.metrics.pc()),
                fmt3(row.best.metrics.pq()),
                fmt3(row.best.metrics.fm()),
            ]);
        }
        table
    }

    /// A row by technique name.
    pub fn get(&self, technique: &str) -> Option<&Tab03Row> {
        self.rows.iter().find(|r| r.technique == technique)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_all_fourteen_rows_and_salsh_prunes_hardest() {
        let dataset = voter_dataset_of_size(400).unwrap();
        let output = run_on(&dataset, GridScale::Reduced).unwrap();
        assert_eq!(output.rows.len(), 14, "12 baselines + LSH + SA-LSH");
        assert!(output.get("TBlo").is_some());
        assert!(output.get("SA-LSH").is_some());

        // The paper's headline for Table 3: SA-LSH produces the fewest
        // candidate pairs (3,565 vs 5,110 for LSH and 15k+ for most others).
        let salsh_pairs = output.get("SA-LSH").unwrap().best.metrics.candidate_pairs;
        let lsh_pairs = output.get("LSH").unwrap().best.metrics.candidate_pairs;
        assert!(salsh_pairs <= lsh_pairs, "SA-LSH ({salsh_pairs}) must not exceed LSH ({lsh_pairs})");

        // Every technique keeps some true matches on this near-duplicate-rich data.
        for row in &output.rows {
            assert!(row.best.metrics.pc() > 0.0, "{} found nothing", row.technique);
        }
        let rendered = output.to_table().render();
        assert!(rendered.contains("SA-LSH"));
        assert!(rendered.contains("candidate pairs"));
    }
}
