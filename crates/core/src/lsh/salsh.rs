//! The LSH and SA-LSH blockers (paper §5.2, Fig. 4).
//!
//! [`SaLshBlocker`] implements the full pipeline of Fig. 4(a):
//!
//! 1. **Shingling + minhashing** — each record's selected attributes are
//!    q-gram shingled and minhashed into an `l · k` signature.
//! 2. **Banding** — the signature is split into `l` bands of `k` rows; each
//!    band hashes the record into a bucket (plain LSH blocking would stop
//!    here and emit every bucket as a block).
//! 3. **Semantic augmentation** — when a [`SemanticConfig`] is present, each
//!    band is additionally equipped with an independently drawn w-way AND/OR
//!    semantic hash function over the records' semhash signatures; a textual
//!    bucket is split into the sub-blocks induced by that function, so two
//!    records end up in a common block iff they collide textually *and* the
//!    semantic predicate holds for the pair — exactly the collision model
//!    `1 − (1 − s^k · p)^l` of §5.2.
//!
//! Omitting the semantic component yields the plain textual LSH blocker used
//! as the "LSH" comparison point throughout the paper's evaluation
//! ([`LshBlocker`] is an alias for that configuration).
//!
//! Both hot phases run in parallel on large datasets: signatures are
//! computed per record and the banding/bucket phase is sharded per band
//! (each band builds and sorts its own bucket map, and the shards are merged
//! back in ascending band order). Every phase stitches results in a fixed
//! order, so blocking output is byte-identical for any worker count — a
//! property `tests/determinism.rs` enforces by diffing 1-thread and 4-thread
//! runs.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

use sablock_datasets::{Dataset, RecordId};

use crate::blocking::{Block, BlockCollection, Blocker};
use crate::error::{CoreError, Result};
use crate::lsh::semantic_hash::WWaySemanticHash;
use crate::lsh::{BandingScheme, SemanticConfig};
use crate::minhash::shingle::RecordShingler;
use crate::minhash::{MinHasher, MinhashConfig};
use crate::parallel::{parallel_map, resolve_threads};
use crate::semantic::semhash::{SemanticSignature, SemhashFamily};

/// The semantic-aware LSH blocker (and, without a semantic component, the
/// plain textual LSH blocker).
#[derive(Debug, Clone)]
pub struct SaLshBlocker {
    shingler: RecordShingler,
    minhash: MinhashConfig,
    banding: BandingScheme,
    semantic: Option<SemanticConfig>,
    threads: Option<usize>,
}

/// The paper's plain textual LSH blocker: an [`SaLshBlocker`] without a
/// semantic component (build one via [`SaLshBlocker::builder`] by simply not
/// calling `semantic`).
pub type LshBlocker = SaLshBlocker;

impl SaLshBlocker {
    /// Starts a builder.
    pub fn builder() -> SaLshBlockerBuilder {
        SaLshBlockerBuilder::default()
    }

    /// Convenience constructor for a textual-only LSH blocker.
    pub fn textual<I, S>(attributes: I, minhash: MinhashConfig) -> Result<Self>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self::builder().attributes(attributes).minhash(minhash).build()
    }

    /// The minhash configuration in use.
    pub fn minhash_config(&self) -> &MinhashConfig {
        &self.minhash
    }

    /// The semantic configuration, if any.
    pub fn semantic_config(&self) -> Option<&SemanticConfig> {
        self.semantic.as_ref()
    }

    /// Whether this blocker uses semantic augmentation (SA-LSH) or not (LSH).
    pub fn is_semantic(&self) -> bool {
        self.semantic.is_some()
    }

    fn threads_for(&self, dataset: &Dataset) -> usize {
        resolve_threads(self.threads, dataset.len())
    }

    /// Converts this blocker into an incremental (online) index for
    /// streaming ingest — see [`crate::incremental`]. The configuration
    /// (attributes, minhash, banding, semantic component, thread knob) is
    /// carried over unchanged. For SA-LSH the semhash family is pinned for
    /// the index's lifetime: the explicitly pinned one when
    /// [`SemanticConfig::with_pinned_family`] was used, all taxonomy leaves
    /// otherwise. The index maintains running `|Γ|`/`|Γ_tp|` counters in
    /// O(delta) per batch (O(1) snapshot metrics) and compacts tombstoned
    /// bucket members in place once a bucket's dead fraction crosses
    /// [`crate::incremental::DEFAULT_COMPACTION_THRESHOLD`].
    pub fn into_incremental(self) -> Result<crate::incremental::IncrementalSaLshBlocker> {
        crate::incremental::IncrementalSaLshBlocker::from_parts(
            self.shingler,
            self.minhash,
            self.banding,
            self.semantic,
            self.threads,
        )
    }

    /// Computes the semhash signatures of every record, or `None` when no
    /// semantic component is configured.
    ///
    /// The semhash family is the pinned one when the configuration carries it
    /// (see [`SemanticConfig::with_pinned_family`]); otherwise it is derived
    /// from the interpretations of this dataset (Algorithm 1).
    fn semantic_signatures(&self, dataset: &Dataset, threads: usize) -> Result<Option<Vec<SemanticSignature>>> {
        let Some(semantic) = &self.semantic else {
            return Ok(None);
        };
        semantic.validate()?;
        let function = &semantic.function;
        let interpretations = parallel_map(dataset.records(), threads, |record| function.interpret(record));
        let family = match &semantic.pinned_family {
            Some(family) => family.clone(),
            None => SemhashFamily::build(&semantic.taxonomy, interpretations.iter())?,
        };
        let signatures = parallel_map(&interpretations, threads, |interp| family.signature(&semantic.taxonomy, interp));
        Ok(Some(signatures))
    }
}

impl Blocker for SaLshBlocker {
    fn name(&self) -> String {
        let base = format!(
            "k={},l={},q={}",
            self.minhash.rows_per_band, self.minhash.bands, self.minhash.qgram
        );
        match &self.semantic {
            Some(semantic) => format!("SA-LSH({base},{})", semantic.describe()),
            None => format!("LSH({base})"),
        }
    }

    fn block(&self, dataset: &Dataset) -> Result<BlockCollection> {
        self.shingler.validate_against(dataset)?;
        let threads = self.threads_for(dataset);

        // Step 1-2: shingle and minhash every record.
        let hasher = MinHasher::from_config(&self.minhash);
        let shingles = parallel_map(dataset.records(), threads, |record| self.shingler.shingles(record));
        let signatures = parallel_map(&shingles, threads, |set| hasher.signature(set));

        // Step 3: semhash signatures (when configured).
        let semantic_signatures = self.semantic_signatures(dataset, threads)?;

        // One independently drawn w-way semantic hash function per band.
        let band_hashes: Option<Vec<WWaySemanticHash>> = match (&self.semantic, &semantic_signatures) {
            (Some(semantic), Some(signatures)) => {
                let num_features = match &semantic.pinned_family {
                    Some(family) => family.len(),
                    None => signatures.first().map(SemanticSignature::len).unwrap_or(0),
                };
                if num_features == 0 {
                    return Err(CoreError::Config("the semhash family has no features".into()));
                }
                let mut rng = StdRng::seed_from_u64(semantic.seed);
                let hashes = (0..self.banding.bands())
                    .map(|_| WWaySemanticHash::sample(num_features, semantic.w, semantic.mode, &mut rng))
                    .collect::<Result<Vec<_>>>()?;
                Some(hashes)
            }
            _ => None,
        };

        // Step 4: banding. Records with an empty shingle set carry no textual
        // evidence and are not indexed (they would otherwise all collide on
        // the all-sentinel signature).
        //
        // Each band's bucket index is independent of every other band's, so
        // the bucket phase shards per band: `parallel_map` builds one bucket
        // map per band concurrently, each shard sorts its buckets by key, and
        // the shards are merged back in ascending band order. The merged
        // output is therefore byte-identical for any worker count.
        let bands: Vec<usize> = (0..self.banding.bands()).collect();
        let per_band: Vec<Vec<Block>> = parallel_map(&bands, threads, |&band| {
            let mut buckets: HashMap<u64, Vec<RecordId>> = HashMap::new();
            for (idx, signature) in signatures.iter().enumerate() {
                if shingles[idx].is_empty() {
                    continue;
                }
                let key = self.banding.band_key(signature, band);
                let id = RecordId::try_from_index(idx).expect("dataset record ids are validated at construction");
                buckets.entry(key).or_default().push(id);
            }

            let mut bucket_entries: Vec<(u64, Vec<RecordId>)> = buckets.into_iter().collect();
            bucket_entries.sort_by_key(|(key, _)| *key);

            let mut blocks = Vec::new();
            for (bucket_key, members) in bucket_entries {
                if members.len() < 2 {
                    continue;
                }
                match (&band_hashes, &semantic_signatures) {
                    (Some(hashes), Some(sem_signatures)) => {
                        // Split the textual bucket into the sub-blocks induced
                        // by this band's w-way semantic hash function.
                        let hash = &hashes[band];
                        let mut sub_blocks: HashMap<usize, Vec<RecordId>> = HashMap::new();
                        for &member in &members {
                            for sub_key in hash.sub_keys(&sem_signatures[member.index()]) {
                                sub_blocks.entry(sub_key).or_default().push(member);
                            }
                        }
                        let mut sub_entries: Vec<(usize, Vec<RecordId>)> = sub_blocks.into_iter().collect();
                        sub_entries.sort_by_key(|(key, _)| *key);
                        for (sub_key, sub_members) in sub_entries {
                            if sub_members.len() >= 2 {
                                blocks.push(Block::new(format!("b{band}:{bucket_key:016x}:g{sub_key}"), sub_members));
                            }
                        }
                    }
                    _ => {
                        blocks.push(Block::new(format!("b{band}:{bucket_key:016x}"), members));
                    }
                }
            }
            blocks
        });
        BlockCollection::try_from_blocks(per_band.into_iter().flatten().collect())
    }
}

/// Builder for [`SaLshBlocker`].
#[derive(Debug, Clone, Default)]
pub struct SaLshBlockerBuilder {
    attributes: Vec<String>,
    minhash: MinhashConfig,
    semantic: Option<SemanticConfig>,
    threads: Option<usize>,
}

impl SaLshBlockerBuilder {
    /// Sets the attributes whose values are shingled for textual similarity.
    pub fn attributes<I, S>(mut self, attributes: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.attributes = attributes.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the whole minhash configuration at once.
    pub fn minhash(mut self, config: MinhashConfig) -> Self {
        self.minhash = config;
        self
    }

    /// Sets the q-gram size.
    pub fn qgram(mut self, q: usize) -> Self {
        self.minhash.qgram = q;
        self
    }

    /// Sets the number of bands (`l`).
    pub fn bands(mut self, l: usize) -> Self {
        self.minhash.bands = l;
        self
    }

    /// Sets the number of rows per band (`k`).
    pub fn rows_per_band(mut self, k: usize) -> Self {
        self.minhash.rows_per_band = k;
        self
    }

    /// Sets the minhash seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.minhash.seed = seed;
        self
    }

    /// Adds the semantic component, turning the blocker into SA-LSH.
    pub fn semantic(mut self, config: SemanticConfig) -> Self {
        self.semantic = Some(config);
        self
    }

    /// Pins the worker-thread count for the signature and bucket phases
    /// (clamped to at least 1). Without this, the blocker picks a count from
    /// the dataset size and the machine's parallelism. Output is identical
    /// for every thread count; the knob exists for benchmarking and for the
    /// determinism tests that compare 1-thread and 4-thread runs.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Builds the blocker and converts it straight into an incremental
    /// (online) index — the streaming-ingest counterpart of
    /// [`SaLshBlockerBuilder::build`].
    pub fn into_incremental(self) -> Result<crate::incremental::IncrementalSaLshBlocker> {
        self.build()?.into_incremental()
    }

    /// Builds the blocker, validating every component.
    pub fn build(self) -> Result<SaLshBlocker> {
        self.minhash.validate()?;
        if let Some(semantic) = &self.semantic {
            semantic.validate()?;
        }
        let shingler = RecordShingler::new(self.attributes, self.minhash.qgram)?;
        let banding = BandingScheme::new(self.minhash.bands, self.minhash.rows_per_band)?;
        Ok(SaLshBlocker {
            shingler,
            minhash: self.minhash,
            banding,
            semantic: self.semantic,
            threads: self.threads,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lsh::semantic_hash::SemanticMode;
    use crate::semantic::pattern::PatternSemanticFunction;
    use crate::taxonomy::bib::bibliographic_taxonomy;
    use sablock_datasets::dataset::DatasetBuilder;
    use sablock_datasets::ground_truth::EntityId;
    use sablock_datasets::{CoraConfig, CoraGenerator, Schema};

    /// The running example of Fig. 1, reduced to its essence: six records
    /// whose titles are all near-identical, three conference articles (r1, r2,
    /// r3), two technical reports (r4, r5) and one ambiguous record (r6).
    fn running_example() -> Dataset {
        let schema = Schema::shared(["title", "authors", "journal", "booktitle", "institution"]).unwrap();
        let mut builder = DatasetBuilder::new("fig1", schema);
        let rows: Vec<(&str, &str, Option<&str>, Option<&str>)> = vec![
            // (title, authors, booktitle, institution)
            ("The cascade-correlation learning architecture", "E. Fahlman and C. Lebiere", Some("nisps proceedings"), None),
            ("Cascade correlation learning architecture", "E. Fahlman & C. Lebiere", Some("neural information systems"), None),
            ("The cascade correlation learning architecture", "Fahlman and Lebiere", Some("proceedings on neural ntw"), None),
            ("The cascade corelation learning architecture", "Fahlman, S., & Lebiere, C.", None, Some("tr")),
            ("The cascade correlation learning architectures", "S. Fahlman, C. Lebiere", None, Some("technical report")),
            ("The cascade-correlation learn architecture", "Lebiere, C. and Fahlman, S.", None, None),
        ];
        for (i, (title, authors, booktitle, institution)) in rows.into_iter().enumerate() {
            builder
                .push_values(
                    vec![
                        Some(title.to_string()),
                        Some(authors.to_string()),
                        None,
                        booktitle.map(str::to_string),
                        institution.map(str::to_string),
                    ],
                    // r1, r2, r3, r6 cite the same paper; r4, r5 are the TR version.
                    if i == 3 || i == 4 { EntityId(1) } else { EntityId(0) },
                )
                .unwrap();
        }
        builder.build().unwrap()
    }

    fn lsh_blocker(bands: usize, rows: usize) -> SaLshBlocker {
        SaLshBlocker::builder()
            .attributes(["title", "authors"])
            .qgram(2)
            .bands(bands)
            .rows_per_band(rows)
            .seed(7)
            .build()
            .unwrap()
    }

    fn salsh_blocker(bands: usize, rows: usize, w: usize, mode: SemanticMode) -> SaLshBlocker {
        let tree = bibliographic_taxonomy();
        let zeta = PatternSemanticFunction::cora_default(&tree).unwrap();
        SaLshBlocker::builder()
            .attributes(["title", "authors"])
            .qgram(2)
            .bands(bands)
            .rows_per_band(rows)
            .seed(7)
            .semantic(SemanticConfig::new(tree, zeta).with_w(w).with_mode(mode).with_seed(11))
            .build()
            .unwrap()
    }

    #[test]
    fn builder_validation() {
        assert!(SaLshBlocker::builder().build().is_err(), "no attributes selected");
        assert!(SaLshBlocker::builder().attributes(["title"]).bands(0).build().is_err());
        assert!(SaLshBlocker::builder().attributes(["title"]).qgram(0).build().is_err());
        let tree = bibliographic_taxonomy();
        let zeta = PatternSemanticFunction::cora_default(&tree).unwrap();
        let bad_semantic = SemanticConfig::new(tree, zeta).with_w(0);
        assert!(SaLshBlocker::builder().attributes(["title"]).semantic(bad_semantic).build().is_err());

        let lsh = lsh_blocker(4, 2);
        assert!(!lsh.is_semantic());
        assert!(lsh.name().starts_with("LSH("));
        let sa = salsh_blocker(4, 2, 1, SemanticMode::Or);
        assert!(sa.is_semantic());
        assert!(sa.name().starts_with("SA-LSH("));
        assert!(sa.semantic_config().is_some());
        assert_eq!(sa.minhash_config().rows_per_band, 2);
    }

    #[test]
    fn unknown_attribute_fails_at_block_time() {
        let blocker = SaLshBlocker::builder().attributes(["no_such_attr"]).build().unwrap();
        let err = blocker.block(&running_example()).unwrap_err();
        assert!(err.to_string().contains("no_such_attr"));
    }

    #[test]
    fn textually_similar_records_are_blocked_together() {
        let dataset = running_example();
        let blocks = lsh_blocker(16, 2).block(&dataset).unwrap();
        assert!(blocks.num_blocks() > 0);
        // The near-identical titles of r1 and r2 must collide in some band.
        assert!(blocks.theta(RecordId(0), RecordId(1)));
        // Plain LSH also lumps the technical report r4 in with them: this is
        // the false candidate the semantic filter is designed to remove.
        assert!(blocks.theta(RecordId(0), RecordId(3)));
    }

    #[test]
    fn semantic_filter_removes_cross_type_pairs() {
        let dataset = running_example();
        let blocks = salsh_blocker(16, 2, 4, SemanticMode::Or).block(&dataset).unwrap();
        // Conference articles still pair up…
        assert!(blocks.theta(RecordId(0), RecordId(1)));
        assert!(blocks.theta(RecordId(0), RecordId(2)));
        // …and so do the two technical reports…
        assert!(blocks.theta(RecordId(3), RecordId(4)));
        // …but a proceedings record and a technical report have semantic
        // similarity 0 and must never share a block (Proposition 5.3 (1)).
        assert!(!blocks.theta(RecordId(0), RecordId(3)));
        assert!(!blocks.theta(RecordId(1), RecordId(4)));
        // The ambiguous record r6 (interpreted as "publication") is related to
        // both sides and may pair with either.
        assert!(blocks.theta(RecordId(0), RecordId(5)) || blocks.theta(RecordId(3), RecordId(5)));
    }

    #[test]
    fn salsh_produces_no_more_pairs_than_lsh() {
        let dataset = running_example();
        let lsh_pairs = lsh_blocker(16, 2).block(&dataset).unwrap().num_distinct_pairs();
        for (w, mode) in [(1, SemanticMode::Or), (2, SemanticMode::Or), (1, SemanticMode::And), (2, SemanticMode::And)] {
            let sa_pairs = salsh_blocker(16, 2, w, mode).block(&dataset).unwrap().num_distinct_pairs();
            assert!(
                sa_pairs <= lsh_pairs,
                "SA-LSH (w={w}, {mode:?}) produced {sa_pairs} pairs, more than LSH's {lsh_pairs}"
            );
        }
    }

    #[test]
    fn blocking_is_deterministic() {
        let dataset = running_example();
        let blocker = salsh_blocker(8, 2, 2, SemanticMode::Or);
        let a = blocker.block(&dataset).unwrap();
        let b = blocker.block(&dataset).unwrap();
        assert_eq!(a.num_blocks(), b.num_blocks());
        let pa = a.distinct_pairs();
        let pb = b.distinct_pairs();
        assert_eq!(pa, pb);
    }

    #[test]
    fn bucket_phase_is_thread_count_invariant() {
        // The sharded bucket phase must merge to byte-identical blocks no
        // matter how many workers built it.
        let dataset = running_example();
        for (w, mode) in [(0, SemanticMode::Or), (2, SemanticMode::Or), (2, SemanticMode::And)] {
            let build = |threads: usize| {
                let mut builder = SaLshBlocker::builder()
                    .attributes(["title", "authors"])
                    .qgram(2)
                    .bands(16)
                    .rows_per_band(2)
                    .seed(7)
                    .threads(threads);
                if w > 0 {
                    let tree = bibliographic_taxonomy();
                    let zeta = PatternSemanticFunction::cora_default(&tree).unwrap();
                    builder = builder.semantic(SemanticConfig::new(tree, zeta).with_w(w).with_mode(mode).with_seed(11));
                }
                builder.build().unwrap().block(&dataset).unwrap()
            };
            let single = build(1);
            let quad = build(4);
            assert_eq!(single.blocks(), quad.blocks(), "w={w} {mode:?}");
        }
    }

    #[test]
    fn identical_records_always_collide() {
        // Proposition 5.2 (1): textual similarity 1 ⇒ collision probability 1,
        // for any (k, l).
        let schema = Schema::shared(["title"]).unwrap();
        let mut builder = DatasetBuilder::new("dup", schema);
        builder.push_values(vec![Some("identical record text".into())], EntityId(0)).unwrap();
        builder.push_values(vec![Some("identical record text".into())], EntityId(0)).unwrap();
        builder.push_values(vec![Some("something totally different xyz".into())], EntityId(1)).unwrap();
        let dataset = builder.build().unwrap();
        let blocker = SaLshBlocker::builder().attributes(["title"]).qgram(3).bands(5).rows_per_band(6).build().unwrap();
        let blocks = blocker.block(&dataset).unwrap();
        assert!(blocks.theta(RecordId(0), RecordId(1)));
    }

    #[test]
    fn records_without_text_are_not_indexed() {
        let schema = Schema::shared(["title"]).unwrap();
        let mut builder = DatasetBuilder::new("empties", schema);
        builder.push_values(vec![None], EntityId(0)).unwrap();
        builder.push_values(vec![None], EntityId(0)).unwrap();
        builder.push_values(vec![Some("real text".into())], EntityId(1)).unwrap();
        let dataset = builder.build().unwrap();
        let blocks = lsh_blocker(4, 2).block(&dataset);
        // lsh_blocker uses title+authors; rebuild over title only.
        let blocker = SaLshBlocker::builder().attributes(["title"]).qgram(2).bands(4).rows_per_band(2).build().unwrap();
        let blocks2 = blocker.block(&dataset).unwrap();
        assert_eq!(blocks2.num_distinct_pairs(), 0, "empty records must not form blocks");
        drop(blocks);
    }

    #[test]
    fn works_on_a_generated_cora_dataset() {
        let dataset = CoraGenerator::new(CoraConfig { num_records: 150, ..CoraConfig::small() }).generate().unwrap();
        let tree = bibliographic_taxonomy();
        let zeta = PatternSemanticFunction::cora_default(&tree).unwrap();
        let blocker = SaLshBlocker::builder()
            .attributes(["title", "authors"])
            .qgram(4)
            .bands(20)
            .rows_per_band(4)
            .semantic(SemanticConfig::new(tree, zeta).with_w(2).with_mode(SemanticMode::Or))
            .build()
            .unwrap();
        let blocks = blocker.block(&dataset).unwrap();
        assert!(blocks.num_blocks() > 0);
        assert!(blocks.num_distinct_pairs() > 0);
        // Blocking must reduce the comparison space drastically.
        assert!(blocks.num_distinct_pairs() < dataset.num_total_pairs() / 2);
    }

    #[test]
    fn textual_convenience_constructor() {
        let blocker = SaLshBlocker::textual(["title"], MinhashConfig::cora_paper()).unwrap();
        assert!(!blocker.is_semantic());
        assert_eq!(blocker.minhash_config().bands, 63);
    }
}
