//! w-way AND / OR semantic hash functions (paper §5.2).
//!
//! A LSH family `H_g` for semantic similarity contains one hash function per
//! semhash bit `g`: `h_g(r1, r2)` is true iff *both* records have the value 1
//! for `g`. A **w-way** function draws `w` functions from `H_g` at random and
//! combines them conjunctively (`∧`) or disjunctively (`∨`):
//!
//! * `h[w,∧](r1, r2)` — true iff every chosen bit is set in both records,
//! * `h[w,∨](r1, r2)` — true iff some chosen bit is set in both records.
//!
//! In the blocking index (see [`crate::lsh::salsh`]) each textual band is
//! augmented with its own independently drawn w-way function; the effect on
//! the collision probability is the factor `p` of
//! [`crate::lsh::probability::salsh_collision_probability`].

use rand::seq::SliceRandom;
use rand::Rng;

use crate::error::{CoreError, Result};
use crate::semantic::semhash::SemanticSignature;

/// How the w chosen semantic hash functions are combined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SemanticMode {
    /// Conjunctive combination `h[w,∧]`: all chosen bits must agree on 1.
    And,
    /// Disjunctive combination `h[w,∨]`: at least one chosen bit agrees on 1.
    Or,
}

impl SemanticMode {
    /// The symbol used in the paper's figures (`∧` / `∨`).
    pub fn symbol(&self) -> &'static str {
        match self {
            Self::And => "and",
            Self::Or => "or",
        }
    }
}

/// A concrete w-way semantic hash function: `w` chosen semhash bit indices
/// plus the combination mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WWaySemanticHash {
    selected: Vec<usize>,
    mode: SemanticMode,
}

impl WWaySemanticHash {
    /// Draws `w` distinct semhash functions uniformly at random from a family
    /// of `num_features` functions. `w` is capped at `num_features` (choosing
    /// more functions than exist is meaningless).
    pub fn sample<R: Rng>(num_features: usize, w: usize, mode: SemanticMode, rng: &mut R) -> Result<Self> {
        if num_features == 0 {
            return Err(CoreError::Config("cannot sample a semantic hash from an empty semhash family".into()));
        }
        if w == 0 {
            return Err(CoreError::Config("w must be > 0".into()));
        }
        let mut indices: Vec<usize> = (0..num_features).collect();
        indices.shuffle(rng);
        let mut selected: Vec<usize> = indices.into_iter().take(w.min(num_features)).collect();
        selected.sort_unstable();
        Ok(Self { selected, mode })
    }

    /// Builds a w-way function from explicit bit indices (used by tests and by
    /// the running example, where `h22` is a specific bit).
    pub fn from_indices(selected: Vec<usize>, mode: SemanticMode) -> Result<Self> {
        if selected.is_empty() {
            return Err(CoreError::Config("a w-way semantic hash needs at least one bit".into()));
        }
        let mut selected = selected;
        selected.sort_unstable();
        selected.dedup();
        Ok(Self { selected, mode })
    }

    /// The chosen bit indices.
    pub fn selected(&self) -> &[usize] {
        &self.selected
    }

    /// The combination mode.
    pub fn mode(&self) -> SemanticMode {
        self.mode
    }

    /// The effective `w` (number of chosen functions).
    pub fn w(&self) -> usize {
        self.selected.len()
    }

    /// Evaluates the pairwise predicate `h[w,µ](r1, r2)`.
    pub fn passes(&self, a: &SemanticSignature, b: &SemanticSignature) -> bool {
        match self.mode {
            SemanticMode::And => self.selected.iter().all(|&i| a.get(i) && b.get(i)),
            SemanticMode::Or => self.selected.iter().any(|&i| a.get(i) && b.get(i)),
        }
    }

    /// The *sub-block keys* a single record contributes to under this
    /// function. Grouping records by these keys inside a textual bucket
    /// reproduces the pairwise predicate exactly:
    ///
    /// * AND — a record belongs to the single sub-block `0` iff all chosen
    ///   bits are set; two records share it iff [`passes`](Self::passes).
    /// * OR — a record belongs to one sub-block per chosen set bit; two
    ///   records share some sub-block iff they share some chosen bit.
    pub fn sub_keys(&self, signature: &SemanticSignature) -> Vec<usize> {
        match self.mode {
            SemanticMode::And => {
                if self.selected.iter().all(|&i| signature.get(i)) {
                    vec![0]
                } else {
                    Vec::new()
                }
            }
            SemanticMode::Or => self
                .selected
                .iter()
                .copied()
                .filter(|&i| signature.get(i))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sig(bits: &[usize], len: usize) -> SemanticSignature {
        let mut s = SemanticSignature::zeros(len);
        for &b in bits {
            s.set(b);
        }
        s
    }

    #[test]
    fn sampling_respects_w_and_family_size() {
        let mut rng = StdRng::seed_from_u64(1);
        let h = WWaySemanticHash::sample(12, 5, SemanticMode::Or, &mut rng).unwrap();
        assert_eq!(h.w(), 5);
        assert!(h.selected().iter().all(|&i| i < 12));
        assert_eq!(h.mode(), SemanticMode::Or);
        // w larger than the family is capped.
        let h = WWaySemanticHash::sample(3, 10, SemanticMode::And, &mut rng).unwrap();
        assert_eq!(h.w(), 3);
        // invalid parameters
        assert!(WWaySemanticHash::sample(0, 1, SemanticMode::Or, &mut rng).is_err());
        assert!(WWaySemanticHash::sample(5, 0, SemanticMode::Or, &mut rng).is_err());
    }

    #[test]
    fn sampling_is_unbiased_enough_to_cover_all_bits() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let h = WWaySemanticHash::sample(6, 2, SemanticMode::Or, &mut rng).unwrap();
            seen.extend(h.selected().iter().copied());
        }
        assert_eq!(seen.len(), 6, "every semhash bit should eventually be chosen");
    }

    #[test]
    fn and_requires_all_bits_in_both() {
        let h = WWaySemanticHash::from_indices(vec![0, 2], SemanticMode::And).unwrap();
        let a = sig(&[0, 2, 3], 5);
        let b = sig(&[0, 2], 5);
        let c = sig(&[0], 5);
        assert!(h.passes(&a, &b));
        assert!(!h.passes(&a, &c));
        assert!(!h.passes(&c, &c.clone()));
        assert_eq!(h.sub_keys(&a), vec![0]);
        assert!(h.sub_keys(&c).is_empty());
    }

    #[test]
    fn or_requires_some_shared_bit() {
        let h = WWaySemanticHash::from_indices(vec![1, 3], SemanticMode::Or).unwrap();
        let a = sig(&[1], 5);
        let b = sig(&[3], 5);
        let c = sig(&[1, 3], 5);
        let d = sig(&[0, 2], 5);
        assert!(!h.passes(&a, &b), "no *shared* chosen bit");
        assert!(h.passes(&a, &c));
        assert!(h.passes(&b, &c));
        assert!(!h.passes(&a, &d));
        assert_eq!(h.sub_keys(&c), vec![1, 3]);
        assert_eq!(h.sub_keys(&a), vec![1]);
        assert!(h.sub_keys(&d).is_empty());
    }

    #[test]
    fn sub_key_grouping_is_equivalent_to_the_pairwise_predicate() {
        // For every pair of signatures over a 6-bit family and both modes:
        // sharing a sub-key must coincide with passes().
        let mut rng = StdRng::seed_from_u64(3);
        let signatures: Vec<SemanticSignature> = (0..40)
            .map(|_| {
                let bits: Vec<usize> = (0..6).filter(|_| rng.gen_bool(0.4)).collect();
                sig(&bits, 6)
            })
            .collect();
        for mode in [SemanticMode::And, SemanticMode::Or] {
            let h = WWaySemanticHash::sample(6, 3, mode, &mut rng).unwrap();
            for a in &signatures {
                for b in &signatures {
                    let via_pairs = h.passes(a, b);
                    let keys_a = h.sub_keys(a);
                    let keys_b = h.sub_keys(b);
                    let via_keys = keys_a.iter().any(|k| keys_b.contains(k));
                    assert_eq!(via_pairs, via_keys, "mode {mode:?}");
                }
            }
        }
    }

    #[test]
    fn running_example_one_way_or_filters_r4() {
        // Fig. 4(b): the semhash signatures of r1..r6 over three bits, where
        // h22 is the middle bit. r1, r2, r6 have it set; r4 does not, so r4 is
        // filtered out of their block even though it is textually similar.
        let column = |bits: &[usize]| sig(bits, 3);
        let r1 = column(&[1]);
        let r2 = column(&[0, 1]);
        let r4 = column(&[2]);
        let r6 = column(&[0, 1, 2]);
        let h22 = WWaySemanticHash::from_indices(vec![1], SemanticMode::Or).unwrap();
        assert!(h22.passes(&r1, &r2));
        assert!(h22.passes(&r1, &r6));
        assert!(h22.passes(&r2, &r6));
        assert!(!h22.passes(&r1, &r4));
        assert!(!h22.passes(&r2, &r4));
        assert!(!h22.passes(&r6, &r4));
    }

    #[test]
    fn from_indices_dedupes_and_validates() {
        let h = WWaySemanticHash::from_indices(vec![3, 1, 3], SemanticMode::And).unwrap();
        assert_eq!(h.selected(), &[1, 3]);
        assert!(WWaySemanticHash::from_indices(vec![], SemanticMode::Or).is_err());
        assert_eq!(SemanticMode::And.symbol(), "and");
        assert_eq!(SemanticMode::Or.symbol(), "or");
    }
}
