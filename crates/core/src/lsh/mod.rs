//! Locality-sensitive hashing: banding index, w-way semantic augmentation and
//! the SA-LSH blocker (paper §5).

pub mod probability;
pub mod salsh;
pub mod semantic_hash;

use std::sync::Arc;

use sablock_textual::hashing::hash_one;

use crate::error::{CoreError, Result};
use crate::lsh::semantic_hash::SemanticMode;
use crate::minhash::MinhashSignature;
use crate::semantic::semhash::SemhashFamily;
use crate::semantic::SemanticFunction;
use crate::taxonomy::TaxonomyTree;

/// Configuration of the semantic component of SA-LSH blocking.
#[derive(Clone)]
pub struct SemanticConfig {
    /// The taxonomy tree semantic interpretations refer to.
    pub taxonomy: TaxonomyTree,
    /// The semantic function ζ.
    pub function: Arc<dyn SemanticFunction>,
    /// The number `w` of semhash functions drawn per band.
    pub w: usize,
    /// The combination mode (AND / OR).
    pub mode: SemanticMode,
    /// Seed for drawing the per-band semantic hash functions.
    pub seed: u64,
    /// An explicitly pinned semhash family. When `None` (the default), the
    /// blocker derives the family from the interpretations of the dataset it
    /// blocks (Algorithm 1's `C = ⋃ leaf(ζ(R))`) — a *dataset-dependent*
    /// choice. Pinning the family makes blocking output independent of which
    /// records happen to be present, which is what the incremental blocker
    /// needs: the family must not change as batches arrive, or every
    /// previously computed sub-block assignment would be invalidated.
    pub pinned_family: Option<SemhashFamily>,
}

impl std::fmt::Debug for SemanticConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SemanticConfig")
            .field("taxonomy", &self.taxonomy.name())
            .field("function", &self.function.name())
            .field("w", &self.w)
            .field("mode", &self.mode)
            .field("seed", &self.seed)
            .field("pinned_family", &self.pinned_family.as_ref().map(SemhashFamily::len))
            .finish()
    }
}

impl SemanticConfig {
    /// Creates a semantic configuration with the defaults the paper found to
    /// work well (`w = 1`, OR mode).
    pub fn new(taxonomy: TaxonomyTree, function: impl SemanticFunction + 'static) -> Self {
        Self {
            taxonomy,
            function: Arc::new(function),
            w: 1,
            mode: SemanticMode::Or,
            seed: 0x5e3a,
            pinned_family: None,
        }
    }

    /// Creates a semantic configuration from an already-shared function.
    pub fn from_arc(taxonomy: TaxonomyTree, function: Arc<dyn SemanticFunction>) -> Self {
        Self {
            taxonomy,
            function,
            w: 1,
            mode: SemanticMode::Or,
            seed: 0x5e3a,
            pinned_family: None,
        }
    }

    /// Sets `w`.
    pub fn with_w(mut self, w: usize) -> Self {
        self.w = w;
        self
    }

    /// Sets the combination mode.
    pub fn with_mode(mut self, mode: SemanticMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the seed used to draw per-band semantic hash functions.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Pins the semhash family instead of deriving it from the blocked
    /// dataset's interpretations. Required for byte-identical agreement
    /// between one-shot and incremental blocking (the incremental index
    /// cannot re-derive the family as records arrive), and useful whenever
    /// blocking output must not depend on which records are present.
    pub fn with_pinned_family(mut self, family: SemhashFamily) -> Self {
        self.pinned_family = Some(family);
        self
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.w == 0 {
            return Err(CoreError::Config("the semantic parameter w must be > 0".into()));
        }
        if self.taxonomy.is_empty() {
            return Err(CoreError::Taxonomy("the semantic taxonomy tree is empty".into()));
        }
        if let Some(family) = &self.pinned_family {
            if family.is_empty() {
                return Err(CoreError::Config("the pinned semhash family is empty".into()));
            }
        }
        Ok(())
    }

    /// A short description used in blocker names, e.g. `"w=2,or"`.
    pub fn describe(&self) -> String {
        format!("w={},{}", self.w, self.mode.symbol())
    }
}

/// The banding scheme: splits an `l · k`-dimensional minhash signature into
/// `l` bands of `k` rows and derives one bucket key per band.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BandingScheme {
    bands: usize,
    rows_per_band: usize,
}

impl BandingScheme {
    /// Creates a banding scheme with `bands` bands of `rows_per_band` rows.
    pub fn new(bands: usize, rows_per_band: usize) -> Result<Self> {
        if bands == 0 || rows_per_band == 0 {
            return Err(CoreError::Config("bands and rows_per_band must both be > 0".into()));
        }
        Ok(Self { bands, rows_per_band })
    }

    /// Number of bands (`l`).
    pub fn bands(&self) -> usize {
        self.bands
    }

    /// Rows per band (`k`).
    pub fn rows_per_band(&self) -> usize {
        self.rows_per_band
    }

    /// Total signature length expected (`l · k`).
    pub fn signature_len(&self) -> usize {
        self.bands * self.rows_per_band
    }

    /// The bucket key of one band of a signature: a hash of the band index
    /// and the band's `k` minhash values.
    pub fn band_key(&self, signature: &MinhashSignature, band: usize) -> u64 {
        debug_assert!(band < self.bands);
        debug_assert_eq!(signature.len(), self.signature_len());
        let start = band * self.rows_per_band;
        let slice = &signature[start..start + self.rows_per_band];
        hash_one(&(band as u64, slice))
    }

    /// All band keys of a signature.
    pub fn band_keys(&self, signature: &MinhashSignature) -> Vec<u64> {
        (0..self.bands).map(|b| self.band_key(signature, b)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minhash::{MinHasher, MinhashConfig};
    use crate::semantic::voter::VoterSemanticFunction;
    use crate::taxonomy::voter::voter_taxonomy;
    use sablock_textual::qgrams::hashed_qgram_set;

    #[test]
    fn semantic_config_builders_and_validation() {
        let cfg = SemanticConfig::new(voter_taxonomy(), VoterSemanticFunction::default_voter())
            .with_w(3)
            .with_mode(SemanticMode::And)
            .with_seed(9);
        assert_eq!(cfg.w, 3);
        assert_eq!(cfg.mode, SemanticMode::And);
        assert_eq!(cfg.seed, 9);
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.describe(), "w=3,and");
        assert!(format!("{cfg:?}").contains("voter"));

        let bad = cfg.clone().with_w(0);
        assert!(bad.validate().is_err());
        let empty_tree = SemanticConfig::from_arc(TaxonomyTree::new("x"), bad.function.clone());
        assert!(empty_tree.validate().is_err());
    }

    #[test]
    fn banding_scheme_shapes() {
        let scheme = BandingScheme::new(63, 4).unwrap();
        assert_eq!(scheme.bands(), 63);
        assert_eq!(scheme.rows_per_band(), 4);
        assert_eq!(scheme.signature_len(), 252);
        assert!(BandingScheme::new(0, 4).is_err());
        assert!(BandingScheme::new(4, 0).is_err());
    }

    #[test]
    fn identical_signatures_share_all_band_keys() {
        let config = MinhashConfig { bands: 8, rows_per_band: 3, qgram: 2, seed: 1 };
        let hasher = MinHasher::from_config(&config);
        let scheme = BandingScheme::new(config.bands, config.rows_per_band).unwrap();
        let sig = hasher.signature(&hashed_qgram_set("cascade correlation", 2));
        assert_eq!(scheme.band_keys(&sig), scheme.band_keys(&sig.clone()));
        assert_eq!(scheme.band_keys(&sig).len(), 8);
    }

    #[test]
    fn similar_records_share_some_band_key_dissimilar_none() {
        let config = MinhashConfig { bands: 20, rows_per_band: 2, qgram: 2, seed: 1 };
        let hasher = MinHasher::from_config(&config);
        let scheme = BandingScheme::new(config.bands, config.rows_per_band).unwrap();
        let a = hasher.signature(&hashed_qgram_set("the cascade correlation learning architecture", 2));
        let b = hasher.signature(&hashed_qgram_set("cascade correlation learning architecture", 2));
        let c = hasher.signature(&hashed_qgram_set("zzz qqq completely unrelated www", 2));
        let keys_a = scheme.band_keys(&a);
        let keys_b = scheme.band_keys(&b);
        let keys_c = scheme.band_keys(&c);
        let share_ab = keys_a.iter().zip(&keys_b).any(|(x, y)| x == y);
        let share_ac = keys_a.iter().zip(&keys_c).any(|(x, y)| x == y);
        assert!(share_ab, "highly similar titles should collide in at least one band");
        assert!(!share_ac, "unrelated strings should not collide in any band");
    }

    #[test]
    fn band_keys_differ_across_bands_for_same_rows() {
        // Two bands with identical row values must still produce different
        // keys, because the band index is mixed into the key.
        let scheme = BandingScheme::new(2, 2).unwrap();
        let sig: MinhashSignature = vec![7, 8, 7, 8];
        let keys = scheme.band_keys(&sig);
        assert_ne!(keys[0], keys[1]);
    }
}
