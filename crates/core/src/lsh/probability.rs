//! The collision-probability model of the (semantic-aware) LSH family.
//!
//! * Plain banded minhash-LSH places two records with textual (Jaccard)
//!   similarity `s` into the same block with probability `1 − (1 − s^k)^l`
//!   (§5.1, step "Amplifying").
//! * A w-way semantic hash function over records with semantic similarity
//!   `s′` returns true with probability `p = (s′)^w` (AND) or
//!   `p = 1 − (1 − s′)^w` (OR) (§5.2).
//! * The semantic-aware family therefore collides with probability
//!   `1 − (1 − s^k · p)^l` (§5.2).
//!
//! These closed forms drive Fig. 5 (w-way amplification curves), the
//! collision-probability subplots of Fig. 6, and the parameter-tuning rules
//! of §5.3 implemented in [`crate::tuning`].

use crate::lsh::semantic_hash::SemanticMode;

/// Probability that banded minhash-LSH hashes two records with textual
/// similarity `s` into the same bucket in at least one of `l` bands of `k`
/// rows: `1 − (1 − s^k)^l`.
///
/// # Examples
/// ```
/// use sablock_core::lsh::probability::banding_collision_probability;
/// // Proposition 5.2: identical records always collide, regardless of (k, l).
/// assert_eq!(banding_collision_probability(1.0, 4, 63), 1.0);
/// // The paper's Cora tuning: s_h = 0.3 must collide with probability >= 0.4.
/// assert!(banding_collision_probability(0.3, 4, 63) >= 0.4);
/// ```
pub fn banding_collision_probability(s: f64, k: usize, l: usize) -> f64 {
    let s = s.clamp(0.0, 1.0);
    1.0 - (1.0 - s.powi(k as i32)).powi(l as i32)
}

/// Probability that a w-way semantic hash function returns true for a record
/// pair with semantic similarity `s′` (interpreted as the per-function
/// agreement probability `p_v · p_e` of §5.2):
/// `(s′)^w` for AND, `1 − (1 − s′)^w` for OR.
///
/// # Examples
/// ```
/// use sablock_core::lsh::probability::w_way_probability;
/// use sablock_core::lsh::semantic_hash::SemanticMode;
/// assert!(w_way_probability(0.4, 3, SemanticMode::And) < 0.4);
/// assert!(w_way_probability(0.4, 3, SemanticMode::Or) > 0.4);
/// // w = 1 leaves the probability unchanged for both modes.
/// assert_eq!(w_way_probability(0.4, 1, SemanticMode::And), w_way_probability(0.4, 1, SemanticMode::Or));
/// ```
pub fn w_way_probability(s_prime: f64, w: usize, mode: SemanticMode) -> f64 {
    let s_prime = s_prime.clamp(0.0, 1.0);
    match mode {
        SemanticMode::And => s_prime.powi(w as i32),
        SemanticMode::Or => 1.0 - (1.0 - s_prime).powi(w as i32),
    }
}

/// Collision probability of the full semantic-aware LSH family:
/// `1 − (1 − s^k · p)^l` with `p = w_way_probability(s′, w, mode)`.
///
/// Proposition 5.3 in closed form: if `s′ = 0` the probability is 0 whatever
/// the textual similarity; if `s = 1` the probability is at most 1.
///
/// # Examples
/// ```
/// use sablock_core::lsh::probability::salsh_collision_probability;
/// use sablock_core::lsh::semantic_hash::SemanticMode;
/// // Semantically dissimilar records never collide (Proposition 5.3(1)).
/// assert_eq!(salsh_collision_probability(0.95, 0.0, 4, 63, 2, SemanticMode::Or), 0.0);
/// ```
pub fn salsh_collision_probability(s: f64, s_prime: f64, k: usize, l: usize, w: usize, mode: SemanticMode) -> f64 {
    let s = s.clamp(0.0, 1.0);
    let p = w_way_probability(s_prime, w, mode);
    1.0 - (1.0 - s.powi(k as i32) * p).powi(l as i32)
}

/// A sampled collision-probability curve: pairs of (similarity, probability).
pub type Curve = Vec<(f64, f64)>;

/// Samples the banding S-curve `s ↦ 1 − (1 − s^k)^l` at `points + 1` evenly
/// spaced similarities in `[0, 1]` — the lower subplots of Fig. 6.
pub fn banding_curve(k: usize, l: usize, points: usize) -> Curve {
    assert!(points > 0, "need at least one sample interval");
    (0..=points)
        .map(|i| {
            let s = i as f64 / points as f64;
            (s, banding_collision_probability(s, k, l))
        })
        .collect()
}

/// One series of Fig. 5: for a fixed semantic similarity `s′`, the collision
/// probability of a w-way semantic hash function as `w` walks from `w_max`
/// (AND) down to 1 and back up to `w_max` (OR) — exactly the x-axis layout
/// "AND ← 15 13 … 3 1 3 … 13 15 → OR" used by the figure.
pub fn w_way_curve(s_prime: f64, w_max: usize) -> Vec<(String, f64)> {
    assert!(w_max >= 1);
    let mut series = Vec::with_capacity(2 * w_max - 1);
    for w in (2..=w_max).rev() {
        series.push((format!("AND w={w}"), w_way_probability(s_prime, w, SemanticMode::And)));
    }
    series.push(("w=1".to_string(), w_way_probability(s_prime, 1, SemanticMode::Or)));
    for w in 2..=w_max {
        series.push((format!("OR w={w}"), w_way_probability(s_prime, w, SemanticMode::Or)));
    }
    series
}

/// The similarity at which the banding S-curve crosses 1/2 — a useful summary
/// of where the (k, l) family places its similarity threshold; approximately
/// `(1/l)^(1/k)` for the crossing of `1 − (1 − s^k)^l = 1 − e^{-l s^k}`-style
/// curves, computed here exactly by bisection.
pub fn banding_threshold(k: usize, l: usize) -> f64 {
    let mut lo = 0.0f64;
    let mut hi = 1.0f64;
    for _ in 0..64 {
        let mid = (lo + hi) / 2.0;
        if banding_collision_probability(mid, k, l) < 0.5 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo + hi) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banding_probability_reference_values() {
        // Values quoted in the parameter-tuning discussion (Section 6.1).
        assert!((banding_collision_probability(0.3, 4, 63) - 0.401).abs() < 0.01);
        assert!(banding_collision_probability(0.2, 4, 63) <= 0.10);
        assert!(banding_collision_probability(0.8, 9, 15) >= 0.85);
        assert_eq!(banding_collision_probability(0.0, 4, 63), 0.0);
        assert_eq!(banding_collision_probability(1.0, 9, 15), 1.0);
    }

    #[test]
    fn banding_probability_monotone_in_similarity_and_l() {
        for k in [1usize, 3, 6] {
            let mut prev = 0.0;
            for i in 0..=20 {
                let s = i as f64 / 20.0;
                let p = banding_collision_probability(s, k, 10);
                assert!(p + 1e-12 >= prev);
                prev = p;
            }
        }
        // More bands can only increase the collision probability.
        assert!(banding_collision_probability(0.3, 4, 63) > banding_collision_probability(0.3, 4, 19));
        // More rows per band can only decrease it.
        assert!(banding_collision_probability(0.3, 5, 63) < banding_collision_probability(0.3, 4, 63));
    }

    #[test]
    fn w_way_probabilities_match_figure_5_shape() {
        // Increasing w lowers the AND probability and raises the OR probability.
        for s in [0.2, 0.4, 0.6, 0.8] {
            let mut prev_and = 1.0;
            let mut prev_or = 0.0;
            for w in 1..=15 {
                let a = w_way_probability(s, w, SemanticMode::And);
                let o = w_way_probability(s, w, SemanticMode::Or);
                assert!(a <= prev_and + 1e-12);
                assert!(o + 1e-12 >= prev_or);
                assert!((0.0..=1.0).contains(&a) && (0.0..=1.0).contains(&o));
                prev_and = a;
                prev_or = o;
            }
        }
        // Boundary cases.
        assert_eq!(w_way_probability(0.0, 5, SemanticMode::Or), 0.0);
        assert_eq!(w_way_probability(1.0, 5, SemanticMode::And), 1.0);
        assert!((w_way_probability(0.3, 1, SemanticMode::And) - 0.3).abs() < 1e-12);
        assert!((w_way_probability(0.3, 1, SemanticMode::Or) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn salsh_probability_propositions() {
        // Proposition 5.3 (1): zero semantic similarity → zero collision.
        for mode in [SemanticMode::And, SemanticMode::Or] {
            assert_eq!(salsh_collision_probability(1.0, 0.0, 4, 63, 3, mode), 0.0);
        }
        // Proposition 5.3 (2): identical text but partial semantics → <= 1.
        let p = salsh_collision_probability(1.0, 0.5, 4, 63, 2, SemanticMode::And);
        assert!(p <= 1.0 && p > 0.0);
        // With full semantic similarity SA-LSH reduces to plain LSH.
        for s in [0.1, 0.4, 0.9] {
            let plain = banding_collision_probability(s, 4, 63);
            let sa = salsh_collision_probability(s, 1.0, 4, 63, 3, SemanticMode::And);
            assert!((plain - sa).abs() < 1e-12);
        }
        // The semantic filter can only lower the collision probability.
        for s in [0.2, 0.5, 0.8] {
            for sp in [0.1, 0.5, 0.9] {
                let plain = banding_collision_probability(s, 4, 63);
                let sa = salsh_collision_probability(s, sp, 4, 63, 2, SemanticMode::Or);
                assert!(sa <= plain + 1e-12);
            }
        }
    }

    #[test]
    fn curves_have_expected_shape() {
        let curve = banding_curve(4, 63, 50);
        assert_eq!(curve.len(), 51);
        assert_eq!(curve[0], (0.0, 0.0));
        assert!((curve[50].0 - 1.0).abs() < 1e-12 && (curve[50].1 - 1.0).abs() < 1e-12);
        for window in curve.windows(2) {
            assert!(window[1].1 + 1e-12 >= window[0].1, "curve must be monotone");
        }
    }

    #[test]
    fn w_way_curve_layout_matches_figure_5() {
        let series = w_way_curve(0.4, 15);
        assert_eq!(series.len(), 29); // 14 AND points + w=1 + 14 OR points
        assert_eq!(series[0].0, "AND w=15");
        assert_eq!(series[14].0, "w=1");
        assert_eq!(series[28].0, "OR w=15");
        // Probabilities rise monotonically from the deep-AND end to the deep-OR end.
        for window in series.windows(2) {
            assert!(window[1].1 + 1e-12 >= window[0].1);
        }
    }

    #[test]
    fn banding_threshold_behaviour() {
        let t = banding_threshold(4, 63);
        assert!((banding_collision_probability(t, 4, 63) - 0.5).abs() < 1e-6);
        // Larger l pushes the threshold down (easier to collide).
        assert!(banding_threshold(4, 200) < t);
        // Larger k pushes it up.
        assert!(banding_threshold(6, 63) > t);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_point_curve_panics() {
        banding_curve(4, 63, 0);
    }

    #[test]
    fn out_of_range_similarities_are_clamped() {
        assert_eq!(banding_collision_probability(-0.5, 3, 10), 0.0);
        assert_eq!(banding_collision_probability(1.5, 3, 10), 1.0);
        assert_eq!(w_way_probability(-1.0, 2, SemanticMode::Or), 0.0);
        assert_eq!(w_way_probability(2.0, 2, SemanticMode::And), 1.0);
    }
}
