//! Parameter tuning (paper §5.3, experimentally validated in §6.1).
//!
//! The paper tunes the blocking parameters in three steps:
//!
//! 1. Learn the textual-similarity distribution `f_s(x)` of **true matches**
//!    from a labelled training sample, and pick the high threshold `s_h` such
//!    that at most an error ratio ε of matches lies below it
//!    (`∫_0^{s_h} f_s(x) dx = ε`). The low threshold `s_l` bounds the
//!    similarity below which records should rarely share a block.
//! 2. Pick `k` (rows per band) and `l` (bands) so that records at `s_h`
//!    collide with probability at least `p_h` and records at `s_l` with
//!    probability at most `p_l`, using the closed form `1 − (1 − s^k)^l`.
//! 3. Pick the w-way semantic function: OR for noisy/uncertain semantic
//!    features, AND for reliable ones (that choice is left to the caller; see
//!    Figs. 7-8 for its effect).
//!
//! With the paper's Cora inputs (`s_l = 0.2`, `s_h = 0.3`, `p_l = 0.1`,
//! `p_h = 0.4`) this module reproduces exactly the published `k = 4, l = 63`,
//! and the `(k, l)` ladder of Fig. 9: (1,2), (2,6), (3,19), (4,63), (5,210),
//! (6,701).

use rand::seq::SliceRandom;
use rand::Rng;

use sablock_datasets::record::RecordPair;
use sablock_datasets::Dataset;

use crate::error::{CoreError, Result};
use crate::lsh::probability::banding_collision_probability;
use crate::minhash::shingle::RecordShingler;

/// A histogram of the textual similarity of true-match pairs, learned from a
/// labelled sample (the empirical `f_s`).
#[derive(Debug, Clone)]
pub struct SimilarityDistribution {
    /// Histogram bin counts; bin `i` covers `[i/bins, (i+1)/bins)`.
    counts: Vec<u64>,
    total: u64,
}

impl SimilarityDistribution {
    /// Builds a distribution from raw similarity values with `bins` bins.
    pub fn from_similarities(similarities: &[f64], bins: usize) -> Result<Self> {
        if bins == 0 {
            return Err(CoreError::Config("the histogram needs at least one bin".into()));
        }
        let mut counts = vec![0u64; bins];
        for &s in similarities {
            let s = s.clamp(0.0, 1.0);
            let bin = ((s * bins as f64) as usize).min(bins - 1);
            counts[bin] += 1;
        }
        Ok(Self {
            counts,
            total: similarities.len() as u64,
        })
    }

    /// Estimates the distribution of true-match similarities of a dataset by
    /// sampling up to `max_pairs` true-match pairs and measuring their exact
    /// q-gram Jaccard similarity under `shingler`.
    pub fn estimate_from_matches<R: Rng>(
        dataset: &Dataset,
        shingler: &RecordShingler,
        max_pairs: usize,
        bins: usize,
        rng: &mut R,
    ) -> Result<Self> {
        shingler.validate_against(dataset)?;
        if max_pairs == 0 {
            return Err(CoreError::Config("max_pairs must be > 0".into()));
        }
        let mut pairs: Vec<RecordPair> = dataset.ground_truth().true_match_pairs().collect();
        if pairs.is_empty() {
            return Err(CoreError::Config("the dataset has no true-match pairs to learn from".into()));
        }
        pairs.shuffle(rng);
        pairs.truncate(max_pairs);
        let similarities: Vec<f64> = pairs
            .iter()
            .map(|pair| {
                let a = dataset.record(pair.first()).expect("pair ids come from the dataset");
                let b = dataset.record(pair.second()).expect("pair ids come from the dataset");
                shingler.jaccard(a, b)
            })
            .collect();
        Self::from_similarities(&similarities, bins)
    }

    /// Number of histogram bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Number of samples behind the distribution.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The normalised histogram (fractions per bin), e.g. for plotting the
    /// upper subplots of Fig. 6.
    pub fn histogram(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts.iter().map(|&c| c as f64 / self.total as f64).collect()
    }

    /// The empirical CDF at similarity `s`: the fraction of samples with
    /// similarity `< s` (approximated at bin granularity).
    pub fn cdf(&self, s: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let s = s.clamp(0.0, 1.0);
        let cutoff = (s * self.counts.len() as f64).floor() as usize;
        let below: u64 = self.counts.iter().take(cutoff).sum();
        below as f64 / self.total as f64
    }

    /// The ε-quantile: the smallest similarity `s_h` (at bin granularity)
    /// such that at most a fraction ε of matches falls strictly below it.
    /// This is the paper's `∫_0^{s_h} f_s = ε` rule for choosing `s_h`.
    pub fn quantile(&self, epsilon: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let epsilon = epsilon.clamp(0.0, 1.0);
        let target = epsilon * self.total as f64;
        let mut cumulative = 0u64;
        for (i, &count) in self.counts.iter().enumerate() {
            if cumulative as f64 + count as f64 > target {
                return i as f64 / self.counts.len() as f64;
            }
            cumulative += count;
        }
        1.0
    }

    /// The mean similarity of the samples.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let bin_width = 1.0 / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as f64 + 0.5) * bin_width * c as f64)
            .sum::<f64>()
            / self.total as f64
    }
}

/// The desired operating point handed to [`choose_parameters`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuningGoal {
    /// Low similarity threshold `s_l` (records below it should rarely collide).
    pub s_low: f64,
    /// High similarity threshold `s_h` (records above it should usually collide).
    pub s_high: f64,
    /// Maximum collision probability tolerated at `s_l`.
    pub p_low: f64,
    /// Minimum collision probability required at `s_h`.
    pub p_high: f64,
}

impl TuningGoal {
    /// The paper's Cora goal (§6.1): `s_l = 0.2`, `s_h = 0.3`, `p_l = 0.1`,
    /// `p_h = 0.4`.
    pub fn cora_paper() -> Self {
        Self {
            s_low: 0.2,
            s_high: 0.3,
            p_low: 0.1,
            p_high: 0.4,
        }
    }

    /// Validates the goal.
    pub fn validate(&self) -> Result<()> {
        for (name, v) in [("s_low", self.s_low), ("s_high", self.s_high), ("p_low", self.p_low), ("p_high", self.p_high)] {
            if !(0.0..=1.0).contains(&v) {
                return Err(CoreError::Config(format!("{name} must be in [0, 1], got {v}")));
            }
        }
        if self.s_low >= self.s_high {
            return Err(CoreError::Config(format!(
                "s_low ({}) must be strictly below s_high ({})",
                self.s_low, self.s_high
            )));
        }
        if self.p_low >= self.p_high {
            return Err(CoreError::Config(format!(
                "p_low ({}) must be strictly below p_high ({})",
                self.p_low, self.p_high
            )));
        }
        if self.s_high <= 0.0 {
            return Err(CoreError::Config("s_high must be positive".into()));
        }
        Ok(())
    }
}

/// The smallest number of bands `l` such that records with similarity
/// `s_high` collide with probability at least `p_high`, for a given `k`:
/// `l = ⌈ln(1 − p_high) / ln(1 − s_high^k)⌉`.
///
/// This is the rule that produces the Fig. 9 ladder (k=1→l=2, …, k=6→l=701)
/// from `s_high = 0.3`, `p_high = 0.4`.
pub fn choose_bands_for_target(s_high: f64, p_high: f64, k: usize) -> Result<usize> {
    if !(s_high > 0.0 && s_high <= 1.0 && p_high > 0.0 && p_high < 1.0) {
        return Err(CoreError::Config("s_high must be in (0, 1] and p_high in (0, 1)".into()));
    }
    if k == 0 {
        return Err(CoreError::Config("k must be > 0".into()));
    }
    let s_k = s_high.powi(k as i32);
    if s_k >= 1.0 {
        return Ok(1);
    }
    let l = (1.0 - p_high).ln() / (1.0 - s_k).ln();
    Ok(l.ceil().max(1.0) as usize)
}

/// Chooses `(k, l)` for a tuning goal: the smallest `k` (and its minimal `l`)
/// such that the collision probability at `s_high` is at least `p_high` and
/// the collision probability at `s_low` is at most `p_low`.
///
/// Returns an error if no `k ≤ max_k` satisfies both constraints.
pub fn choose_parameters(goal: &TuningGoal, max_k: usize) -> Result<(usize, usize)> {
    goal.validate()?;
    if max_k == 0 {
        return Err(CoreError::Config("max_k must be > 0".into()));
    }
    for k in 1..=max_k {
        let l = choose_bands_for_target(goal.s_high, goal.p_high, k)?;
        let at_low = banding_collision_probability(goal.s_low, k, l);
        let at_high = banding_collision_probability(goal.s_high, k, l);
        if at_low <= goal.p_low && at_high >= goal.p_high {
            return Ok((k, l));
        }
    }
    Err(CoreError::Config(format!(
        "no (k <= {max_k}, l) satisfies the goal {goal:?}; widen the gap between s_low and s_high or relax the probabilities"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sablock_datasets::{CoraConfig, CoraGenerator};

    #[test]
    fn histogram_quantile_and_cdf() {
        let sims = vec![0.05, 0.15, 0.25, 0.35, 0.45, 0.55, 0.65, 0.75, 0.85, 0.95];
        let dist = SimilarityDistribution::from_similarities(&sims, 10).unwrap();
        assert_eq!(dist.bins(), 10);
        assert_eq!(dist.total(), 10);
        let hist = dist.histogram();
        assert!((hist.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((dist.cdf(0.5) - 0.5).abs() < 1e-12);
        assert_eq!(dist.cdf(0.0), 0.0);
        assert_eq!(dist.cdf(1.0), 1.0);
        // 20% of the mass lies below 0.2, so the 0.2-quantile is 0.2.
        assert!((dist.quantile(0.2) - 0.2).abs() < 1e-12);
        assert_eq!(dist.quantile(0.0), 0.0);
        assert_eq!(dist.quantile(1.0), 1.0);
        assert!((dist.mean() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_and_invalid_distributions() {
        assert!(SimilarityDistribution::from_similarities(&[], 0).is_err());
        let dist = SimilarityDistribution::from_similarities(&[], 10).unwrap();
        assert_eq!(dist.total(), 0);
        assert_eq!(dist.cdf(0.7), 0.0);
        assert_eq!(dist.quantile(0.3), 0.0);
        assert_eq!(dist.mean(), 0.0);
        assert!(dist.histogram().iter().all(|&x| x == 0.0));
        // Out-of-range similarities are clamped into the histogram.
        let dist = SimilarityDistribution::from_similarities(&[-0.5, 1.5], 4).unwrap();
        assert_eq!(dist.total(), 2);
    }

    #[test]
    fn paper_cora_parameters_are_reproduced() {
        let (k, l) = choose_parameters(&TuningGoal::cora_paper(), 10).unwrap();
        assert_eq!((k, l), (4, 63), "the paper derives k=4, l=63 for Cora");
    }

    #[test]
    fn figure_9_band_ladder_is_reproduced() {
        // Fig. 9 (a)-(c) sweeps k=1..6 with l chosen for the same s_h/p_h goal.
        let expected = [(1, 2), (2, 6), (3, 19), (4, 63), (5, 210), (6, 701)];
        for (k, l) in expected {
            assert_eq!(choose_bands_for_target(0.3, 0.4, k).unwrap(), l, "k={k}");
        }
    }

    #[test]
    fn ncvoter_parameters_hit_the_papers_operating_point() {
        // §6.1: k=9, l=15 gives ≳90% collision probability at similarity 0.8.
        let l = choose_bands_for_target(0.8, 0.85, 9).unwrap();
        assert!(l <= 15, "15 bands are enough for the NC Voter goal, got {l}");
        assert!(banding_collision_probability(0.8, 9, 15) >= 0.85);
    }

    #[test]
    fn goal_validation() {
        assert!(TuningGoal::cora_paper().validate().is_ok());
        assert!(TuningGoal { s_low: 0.4, s_high: 0.3, ..TuningGoal::cora_paper() }.validate().is_err());
        assert!(TuningGoal { p_low: 0.5, p_high: 0.4, ..TuningGoal::cora_paper() }.validate().is_err());
        assert!(TuningGoal { s_low: -0.1, ..TuningGoal::cora_paper() }.validate().is_err());
        assert!(choose_parameters(&TuningGoal::cora_paper(), 0).is_err());
        assert!(choose_bands_for_target(0.3, 0.4, 0).is_err());
        assert!(choose_bands_for_target(0.0, 0.4, 2).is_err());
        assert!(choose_bands_for_target(0.3, 1.0, 2).is_err());
    }

    #[test]
    fn impossible_goals_are_reported() {
        // With s_low and s_high nearly identical no (k, l) can separate them.
        let goal = TuningGoal {
            s_low: 0.299,
            s_high: 0.3,
            p_low: 0.05,
            p_high: 0.95,
        };
        assert!(choose_parameters(&goal, 8).is_err());
    }

    #[test]
    fn chosen_parameters_satisfy_both_constraints() {
        for goal in [
            TuningGoal::cora_paper(),
            TuningGoal { s_low: 0.5, s_high: 0.8, p_low: 0.1, p_high: 0.9 },
            TuningGoal { s_low: 0.1, s_high: 0.6, p_low: 0.05, p_high: 0.8 },
        ] {
            let (k, l) = choose_parameters(&goal, 20).unwrap();
            assert!(banding_collision_probability(goal.s_high, k, l) >= goal.p_high);
            assert!(banding_collision_probability(goal.s_low, k, l) <= goal.p_low);
        }
    }

    #[test]
    fn estimation_from_a_generated_dataset() {
        let dataset = CoraGenerator::new(CoraConfig { num_records: 300, ..CoraConfig::small() }).generate().unwrap();
        let shingler = RecordShingler::new(["title", "authors"], 2).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let dist = SimilarityDistribution::estimate_from_matches(&dataset, &shingler, 500, 20, &mut rng).unwrap();
        assert!(dist.total() > 0);
        // Cora-like true matches are predominantly similar: the mean match
        // similarity must sit well above 0.4 (Fig. 6 left shows most matches
        // above ~0.4 even under heavy corruption).
        assert!(dist.mean() > 0.4, "mean match similarity too low: {}", dist.mean());
        // And a sensible s_h at ε=5% is below the bulk of the distribution.
        let s_h = dist.quantile(0.05);
        assert!(s_h < dist.mean());

        // Errors: bad shingler attribute, zero sample size, no matches.
        let bad = RecordShingler::new(["missing"], 2).unwrap();
        assert!(SimilarityDistribution::estimate_from_matches(&dataset, &bad, 10, 10, &mut rng).is_err());
        assert!(SimilarityDistribution::estimate_from_matches(&dataset, &shingler, 0, 10, &mut rng).is_err());
    }
}
