//! Record shingling: converting records into sets of hashed q-grams
//! (paper §5.1, step "Shingling").

use sablock_datasets::{Dataset, Record};
use sablock_textual::hashing::StableHashSet;
use sablock_textual::normalize::normalize;
use sablock_textual::qgrams::qgrams;
use sablock_textual::setsim::jaccard;

use crate::error::{CoreError, Result};

/// Shingles a record by concatenating selected attributes and extracting
/// hashed character q-grams.
#[derive(Debug, Clone)]
pub struct RecordShingler {
    attributes: Vec<String>,
    qgram: usize,
}

impl RecordShingler {
    /// Creates a shingler over the named attributes with q-grams of size `q`.
    pub fn new<I, S>(attributes: I, qgram: usize) -> Result<Self>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let attributes: Vec<String> = attributes.into_iter().map(Into::into).collect();
        if attributes.is_empty() {
            return Err(CoreError::Config("at least one attribute must be selected for shingling".into()));
        }
        if qgram == 0 {
            return Err(CoreError::Config("qgram size must be > 0".into()));
        }
        Ok(Self { attributes, qgram })
    }

    /// The attributes being shingled.
    pub fn attributes(&self) -> &[String] {
        &self.attributes
    }

    /// The q-gram size.
    pub fn qgram(&self) -> usize {
        self.qgram
    }

    /// Validates that every selected attribute exists in the dataset schema.
    pub fn validate_against(&self, dataset: &Dataset) -> Result<()> {
        for attribute in &self.attributes {
            if dataset.schema().index_of(attribute).is_none() {
                return Err(CoreError::Config(format!(
                    "attribute '{attribute}' selected for blocking does not exist in dataset '{}'",
                    dataset.name()
                )));
            }
        }
        Ok(())
    }

    /// The normalised text of a record over the selected attributes.
    pub fn text(&self, record: &Record) -> String {
        let attrs: Vec<&str> = self.attributes.iter().map(String::as_str).collect();
        normalize(&record.concat_named(&attrs))
    }

    /// The hashed q-gram shingle set of a record.
    pub fn shingles(&self, record: &Record) -> StableHashSet<u64> {
        let text = self.text(record);
        qgrams(&text, self.qgram)
            .into_iter()
            .map(|gram| sablock_textual::hash_str(&gram))
            .collect()
    }

    /// The exact Jaccard textual similarity of two records under this
    /// shingler — the quantity the minhash/banding stage approximates, and the
    /// quantity the parameter-tuning stage measures on a training sample.
    pub fn jaccard(&self, a: &Record, b: &Record) -> f64 {
        jaccard(&self.shingles(a), &self.shingles(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sablock_datasets::record::RecordBuilder;
    use sablock_datasets::{CoraConfig, CoraGenerator, RecordId, Schema};
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::shared(["title", "authors", "year"]).unwrap()
    }

    fn record(title: &str, authors: &str, id: u32) -> Record {
        RecordBuilder::new(schema())
            .set("title", title)
            .unwrap()
            .set("authors", authors)
            .unwrap()
            .build(RecordId(id))
    }

    #[test]
    fn construction_validation() {
        assert!(RecordShingler::new(Vec::<String>::new(), 2).is_err());
        assert!(RecordShingler::new(["title"], 0).is_err());
        let s = RecordShingler::new(["title", "authors"], 3).unwrap();
        assert_eq!(s.attributes(), &["title", "authors"]);
        assert_eq!(s.qgram(), 3);
    }

    #[test]
    fn text_concatenates_and_normalizes() {
        let s = RecordShingler::new(["title", "authors"], 2).unwrap();
        let r = record("The Cascade-Correlation!", "Fahlman, S.", 0);
        assert_eq!(s.text(&r), "the cascade correlation fahlman s");
    }

    #[test]
    fn shingles_capture_textual_similarity() {
        let s = RecordShingler::new(["title", "authors"], 2).unwrap();
        let a = record("The cascade-correlation learning architecture", "E. Fahlman and C. Lebiere", 0);
        let b = record("Cascade correlation learning architecture", "E. Fahlman & C. Lebiere", 1);
        let c = record("Controlled growth of cascade correlation nets", "", 2);
        let sim_ab = s.jaccard(&a, &b);
        let sim_ac = s.jaccard(&a, &c);
        assert!(sim_ab > 0.75, "near-duplicates should be very similar, got {sim_ab}");
        assert!(sim_ac < sim_ab, "different papers should be less similar ({sim_ac} vs {sim_ab})");
        assert_eq!(s.jaccard(&a, &a), 1.0);
    }

    #[test]
    fn missing_attributes_yield_empty_shingles() {
        let s = RecordShingler::new(["authors"], 2).unwrap();
        let r = record("title only", "", 0);
        assert!(s.shingles(&r).is_empty());
        assert_eq!(s.jaccard(&r, &r), 0.0);
    }

    #[test]
    fn unknown_attributes_are_silently_empty_but_validated_against_datasets() {
        // Record::concat_named skips unknown attribute names, so the shingler
        // itself produces empty text; validate_against catches the mistake at
        // blocker construction time.
        let s = RecordShingler::new(["nonexistent"], 2).unwrap();
        let r = record("abc", "def", 0);
        assert!(s.shingles(&r).is_empty());

        let ds = CoraGenerator::new(CoraConfig { num_records: 10, ..CoraConfig::small() }).generate().unwrap();
        assert!(s.validate_against(&ds).is_err());
        let ok = RecordShingler::new(["title", "authors"], 4).unwrap();
        assert!(ok.validate_against(&ds).is_ok());
    }
}
