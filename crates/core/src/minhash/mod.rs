//! Minhash signatures for textual similarity (paper §5.1).
//!
//! Records are shingled into sets of hashed character q-grams
//! ([`shingle::RecordShingler`]); a [`MinHasher`] then produces an
//! `n = k · l`-dimensional signature whose agreement rate between two records
//! is an unbiased estimator of the Jaccard similarity of their shingle sets.
//!
//! Rather than materialising `n` random permutations, each hash function is
//! `h_i(x) = fmix64(x ⊕ seed_i)` for independent pseudo-random seeds — the
//! standard "one strong mixer, many seeds" construction, which behaves as a
//! min-wise independent family for practical purposes.

pub mod shingle;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sablock_textual::hashing::mix64;
use std::collections::HashSet;
use std::hash::BuildHasher;

use crate::error::{CoreError, Result};

/// Configuration of the minhash / banding stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinhashConfig {
    /// Number of hash tables / bands (`l` in the paper).
    pub bands: usize,
    /// Number of minhash functions per band (`k` in the paper).
    pub rows_per_band: usize,
    /// q-gram size used for shingling (the paper uses q=4 for Cora, q=2 for
    /// NC Voter).
    pub qgram: usize,
    /// Seed from which the hash-function seeds are derived.
    pub seed: u64,
}

impl MinhashConfig {
    /// Total number of minhash functions `n = k · l`.
    pub fn num_hashes(&self) -> usize {
        self.bands * self.rows_per_band
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.bands == 0 {
            return Err(CoreError::Config("bands (l) must be > 0".into()));
        }
        if self.rows_per_band == 0 {
            return Err(CoreError::Config("rows_per_band (k) must be > 0".into()));
        }
        if self.qgram == 0 {
            return Err(CoreError::Config("qgram size must be > 0".into()));
        }
        Ok(())
    }

    /// The Cora setting chosen by the paper's parameter tuning: k=4, l=63, q=4.
    pub fn cora_paper() -> Self {
        Self {
            bands: 63,
            rows_per_band: 4,
            qgram: 4,
            seed: 0xC0DE,
        }
    }

    /// The NC Voter setting chosen by the paper: k=9, l=15, q=2.
    pub fn ncvoter_paper() -> Self {
        Self {
            bands: 15,
            rows_per_band: 9,
            qgram: 2,
            seed: 0xC0DE,
        }
    }
}

impl Default for MinhashConfig {
    fn default() -> Self {
        Self {
            bands: 20,
            rows_per_band: 5,
            qgram: 2,
            seed: 0xC0DE,
        }
    }
}

/// A minhash signature: one minimum hash value per hash function.
pub type MinhashSignature = Vec<u64>;

/// A family of minhash functions.
#[derive(Debug, Clone)]
pub struct MinHasher {
    seeds: Vec<u64>,
}

impl MinHasher {
    /// Creates `num_hashes` hash functions derived from `seed`.
    pub fn new(num_hashes: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let seeds = (0..num_hashes).map(|_| rng.gen()).collect();
        Self { seeds }
    }

    /// Creates the hasher matching a [`MinhashConfig`].
    pub fn from_config(config: &MinhashConfig) -> Self {
        Self::new(config.num_hashes(), config.seed)
    }

    /// Number of hash functions.
    pub fn num_hashes(&self) -> usize {
        self.seeds.len()
    }

    /// Computes the minhash signature of a shingle set.
    ///
    /// An empty shingle set yields a signature of `u64::MAX` sentinels — such
    /// records never collide with anything (they carry no textual evidence),
    /// matching how empty values are treated elsewhere in the framework.
    pub fn signature<S: BuildHasher>(&self, shingles: &HashSet<u64, S>) -> MinhashSignature {
        let mut signature = vec![u64::MAX; self.seeds.len()];
        for &shingle in shingles { // sablock-lint: allow(hash-iter-order): per-slot min fold is order-insensitive
            for (slot, &seed) in signature.iter_mut().zip(self.seeds.iter()) {
                let h = mix64(shingle ^ seed);
                if h < *slot {
                    *slot = h;
                }
            }
        }
        signature
    }

    /// Estimates the Jaccard similarity of two shingle sets from their
    /// signatures (the fraction of agreeing components).
    pub fn estimate_jaccard(a: &MinhashSignature, b: &MinhashSignature) -> f64 {
        assert_eq!(a.len(), b.len(), "signatures must come from the same family");
        if a.is_empty() {
            return 0.0;
        }
        // Two empty-set sentinels agree on every slot but share no shingles;
        // treat them as dissimilar rather than identical.
        if a.iter().all(|&x| x == u64::MAX) && b.iter().all(|&x| x == u64::MAX) {
            return 0.0;
        }
        let agree = a.iter().zip(b.iter()).filter(|(x, y)| x == y).count();
        agree as f64 / a.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sablock_textual::hashing::StableHashSet;
    use sablock_textual::qgrams::hashed_qgram_set;

    fn shingles(text: &str, q: usize) -> StableHashSet<u64> {
        hashed_qgram_set(text, q)
    }

    #[test]
    fn config_validation_and_presets() {
        assert!(MinhashConfig::default().validate().is_ok());
        assert_eq!(MinhashConfig::cora_paper().num_hashes(), 4 * 63);
        assert_eq!(MinhashConfig::ncvoter_paper().num_hashes(), 9 * 15);
        assert!(MinhashConfig { bands: 0, ..Default::default() }.validate().is_err());
        assert!(MinhashConfig { rows_per_band: 0, ..Default::default() }.validate().is_err());
        assert!(MinhashConfig { qgram: 0, ..Default::default() }.validate().is_err());
    }

    #[test]
    fn identical_sets_have_identical_signatures() {
        let hasher = MinHasher::new(64, 1);
        let a = shingles("the cascade correlation learning architecture", 3);
        let sig1 = hasher.signature(&a);
        let sig2 = hasher.signature(&a.clone());
        assert_eq!(sig1, sig2);
        assert_eq!(MinHasher::estimate_jaccard(&sig1, &sig2), 1.0);
    }

    #[test]
    fn signatures_are_deterministic_per_seed() {
        let a = shingles("entity resolution", 2);
        let h1 = MinHasher::new(32, 7);
        let h2 = MinHasher::new(32, 7);
        let h3 = MinHasher::new(32, 8);
        assert_eq!(h1.signature(&a), h2.signature(&a));
        assert_ne!(h1.signature(&a), h3.signature(&a));
        assert_eq!(h1.num_hashes(), 32);
    }

    #[test]
    fn estimate_tracks_true_jaccard() {
        // With 512 hash functions the estimator's standard error is about
        // sqrt(J(1-J)/512) ≈ 0.022, so a ±0.1 tolerance is conservative.
        let hasher = MinHasher::new(512, 11);
        let cases = [
            ("the cascade correlation learning architecture", "cascade correlation learning architecture"),
            ("the cascade correlation learning architecture", "a genetic cascade correlation learning algorithm"),
            ("qing wang", "wang qing"),
            ("completely different text", "nothing in common at all"),
        ];
        for (x, y) in cases {
            let sx = shingles(x, 2);
            let sy = shingles(y, 2);
            let truth = sablock_textual::jaccard(&sx, &sy);
            let est = MinHasher::estimate_jaccard(&hasher.signature(&sx), &hasher.signature(&sy));
            assert!((truth - est).abs() < 0.1, "estimate {est} too far from truth {truth} for ({x}, {y})");
        }
    }

    #[test]
    fn empty_sets_do_not_collide() {
        let hasher = MinHasher::new(16, 3);
        let empty: StableHashSet<u64> = StableHashSet::default();
        let sig_empty = hasher.signature(&empty);
        assert!(sig_empty.iter().all(|&v| v == u64::MAX));
        let other = hasher.signature(&shingles("abc", 2));
        assert_eq!(MinHasher::estimate_jaccard(&sig_empty, &sig_empty.clone()), 0.0);
        assert!(MinHasher::estimate_jaccard(&sig_empty, &other) < 1.0);
    }

    #[test]
    #[should_panic(expected = "same family")]
    fn mismatched_signature_lengths_panic() {
        MinHasher::estimate_jaccard(&vec![1, 2, 3], &vec![1, 2]);
    }

    #[test]
    fn zero_length_signatures_estimate_zero() {
        assert_eq!(MinHasher::estimate_jaccard(&vec![], &vec![]), 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use sablock_textual::hashing::StableHashSet;

    fn arb_shingles() -> impl Strategy<Value = StableHashSet<u64>> {
        proptest::collection::hash_set(0u64..500, 1..60).prop_map(|s| s.into_iter().collect())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn estimate_is_within_unit_interval(a in arb_shingles(), b in arb_shingles()) {
            let hasher = MinHasher::new(64, 5);
            let est = MinHasher::estimate_jaccard(&hasher.signature(&a), &hasher.signature(&b));
            prop_assert!((0.0..=1.0).contains(&est));
        }

        #[test]
        fn estimate_is_symmetric(a in arb_shingles(), b in arb_shingles()) {
            let hasher = MinHasher::new(64, 5);
            let sa = hasher.signature(&a);
            let sb = hasher.signature(&b);
            prop_assert_eq!(MinHasher::estimate_jaccard(&sa, &sb), MinHasher::estimate_jaccard(&sb, &sa));
        }

        #[test]
        fn estimate_roughly_unbiased(a in arb_shingles(), b in arb_shingles()) {
            // 256 hash functions: allow a generous tolerance, this is a sanity
            // bound rather than a statistical test.
            let hasher = MinHasher::new(256, 5);
            let truth = sablock_textual::jaccard(&a, &b);
            let est = MinHasher::estimate_jaccard(&hasher.signature(&a), &hasher.signature(&b));
            prop_assert!((truth - est).abs() < 0.2, "truth {} vs estimate {}", truth, est);
        }

        #[test]
        fn subset_signature_minima_dominate(a in arb_shingles()) {
            // The signature of a superset is component-wise <= the signature
            // of the subset (more elements can only lower minima).
            let hasher = MinHasher::new(32, 9);
            let mut superset = a.clone();
            superset.extend(1000u64..1010);
            let sig_a = hasher.signature(&a);
            let sig_sup = hasher.signature(&superset);
            for (x, y) in sig_a.iter().zip(sig_sup.iter()) {
                prop_assert!(y <= x);
            }
        }
    }
}
