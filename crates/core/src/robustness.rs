//! γ-robustness of similarity metrics (paper §3, Equation 1).
//!
//! A similarity metric is **γ-robust** if, whenever two record pairs differ
//! in similarity by more than `1 − γ`, the pair with the higher similarity is
//! at least as likely to be a true match. The larger γ is, the finer the
//! similarity differences that can be trusted, and the better the metric
//! supports nearest-neighbour-style blocking (Proposition 5.1 connects
//! γ-robustness with LSH sensitivity).
//!
//! This module estimates γ empirically from a labelled sample: similarities
//! are bucketed, the match rate per bucket is measured, and γ is the largest
//! value such that every pair of buckets separated by more than `1 − γ` has
//! monotonically non-decreasing match rates.

use crate::error::{CoreError, Result};

/// A labelled similarity observation: the similarity of a record pair and
/// whether the pair is a true match.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabelledSimilarity {
    /// Similarity of the pair in `[0, 1]`.
    pub similarity: f64,
    /// Whether the pair refers to the same entity.
    pub is_match: bool,
}

impl LabelledSimilarity {
    /// Creates an observation.
    pub fn new(similarity: f64, is_match: bool) -> Self {
        Self {
            similarity: similarity.clamp(0.0, 1.0),
            is_match,
        }
    }
}

/// The result of a robustness estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessEstimate {
    /// The estimated γ (larger is better; 1.0 means the match probability is
    /// monotone in similarity at the bin resolution).
    pub gamma: f64,
    /// Match rate per similarity bin (`None` for empty bins).
    pub match_rate_per_bin: Vec<Option<f64>>,
}

/// Estimates γ-robustness from labelled similarity observations using `bins`
/// equal-width similarity buckets.
///
/// Returns an error when there are no observations or fewer than two
/// non-empty bins (robustness is about *comparing* similarity levels).
pub fn estimate_gamma(observations: &[LabelledSimilarity], bins: usize) -> Result<RobustnessEstimate> {
    if bins < 2 {
        return Err(CoreError::Config("gamma estimation needs at least two bins".into()));
    }
    if observations.is_empty() {
        return Err(CoreError::Config("gamma estimation needs at least one observation".into()));
    }
    let mut matches = vec![0u64; bins];
    let mut totals = vec![0u64; bins];
    for obs in observations {
        let bin = ((obs.similarity.clamp(0.0, 1.0) * bins as f64) as usize).min(bins - 1);
        totals[bin] += 1;
        if obs.is_match {
            matches[bin] += 1;
        }
    }
    let match_rate_per_bin: Vec<Option<f64>> = matches
        .iter()
        .zip(totals.iter())
        .map(|(&m, &t)| if t == 0 { None } else { Some(m as f64 / t as f64) })
        .collect();

    let non_empty: Vec<(usize, f64)> = match_rate_per_bin
        .iter()
        .enumerate()
        .filter_map(|(i, rate)| rate.map(|r| (i, r)))
        .collect();
    if non_empty.len() < 2 {
        return Err(CoreError::Config("gamma estimation needs at least two non-empty similarity bins".into()));
    }

    // The smallest similarity gap at which monotonicity is violated. γ is then
    // 1 minus the largest gap we must *exclude*, i.e. we need
    // gap > 1 - γ  ⇒  ordering holds, so γ = 1 - (largest violating gap).
    let bin_width = 1.0 / bins as f64;
    let mut largest_violating_gap: f64 = 0.0;
    for (i, (bin_low, rate_low)) in non_empty.iter().enumerate() {
        for (bin_high, rate_high) in non_empty.iter().skip(i + 1) {
            // bin_high has higher similarity than bin_low; the ordering is
            // violated when its match rate is strictly lower.
            if rate_high + 1e-12 < *rate_low {
                let gap = (*bin_high as f64 - *bin_low as f64) * bin_width;
                largest_violating_gap = largest_violating_gap.max(gap);
            }
        }
    }
    let gamma = (1.0 - largest_violating_gap).clamp(0.0, 1.0);
    Ok(RobustnessEstimate {
        gamma,
        match_rate_per_bin,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(similarity: f64, is_match: bool) -> LabelledSimilarity {
        LabelledSimilarity::new(similarity, is_match)
    }

    #[test]
    fn perfectly_monotone_metric_has_gamma_one() {
        let mut observations = Vec::new();
        for i in 0..10 {
            let s = i as f64 / 10.0 + 0.05;
            // Match probability grows with similarity: below 0.5 never a
            // match, above always.
            for _ in 0..20 {
                observations.push(obs(s, s > 0.5));
            }
        }
        let est = estimate_gamma(&observations, 10).unwrap();
        assert_eq!(est.gamma, 1.0);
        assert_eq!(est.match_rate_per_bin.len(), 10);
    }

    #[test]
    fn non_monotone_metric_has_lower_gamma() {
        // A pathological metric where very dissimilar pairs (s≈0.05) are all
        // matches but similar pairs (s≈0.95) are not: the violating gap is
        // huge, so γ collapses towards 0.
        let mut observations = Vec::new();
        for _ in 0..50 {
            observations.push(obs(0.05, true));
            observations.push(obs(0.95, false));
        }
        let est = estimate_gamma(&observations, 10).unwrap();
        assert!(est.gamma < 0.2, "gamma should be small, got {}", est.gamma);
    }

    #[test]
    fn local_noise_only_costs_local_gamma() {
        // Monotone overall, but two adjacent bins are swapped: only small
        // similarity gaps are unreliable, so γ stays high.
        let mut observations = Vec::new();
        let rates = [0.0, 0.1, 0.3, 0.25, 0.6, 0.8, 0.9, 1.0];
        for (i, &rate) in rates.iter().enumerate() {
            let s = (i as f64 + 0.5) / rates.len() as f64;
            for j in 0..100 {
                observations.push(obs(s, (j as f64 / 100.0) < rate));
            }
        }
        let est = estimate_gamma(&observations, 8).unwrap();
        assert!(est.gamma >= 0.8, "one adjacent swap should cost little: {}", est.gamma);
        assert!(est.gamma < 1.0);
    }

    #[test]
    fn errors_on_degenerate_inputs() {
        assert!(estimate_gamma(&[], 10).is_err());
        assert!(estimate_gamma(&[obs(0.5, true)], 1).is_err());
        // All observations in one bin: nothing to compare.
        let single_bin: Vec<LabelledSimilarity> = (0..10).map(|_| obs(0.5, true)).collect();
        assert!(estimate_gamma(&single_bin, 10).is_err());
    }

    #[test]
    fn clamps_out_of_range_similarities() {
        let observations = vec![obs(-1.0, false), obs(2.0, true), obs(0.5, true)];
        let est = estimate_gamma(&observations, 4).unwrap();
        assert!(est.match_rate_per_bin[0].is_some());
        assert!(est.match_rate_per_bin[3].is_some());
        assert!((0.0..=1.0).contains(&est.gamma));
    }

    #[test]
    fn labelled_similarity_constructor_clamps() {
        assert_eq!(LabelledSimilarity::new(1.7, true).similarity, 1.0);
        assert_eq!(LabelledSimilarity::new(-0.3, false).similarity, 0.0);
    }
}
