//! Incremental (online) blocking for streaming ingest.
//!
//! The paper evaluates SA-LSH on static snapshots; a production deployment
//! serves a *live* record stream, and re-blocking hundreds of thousands of
//! records from scratch on every arrival is a non-starter. This module keeps
//! the banding index of [`SaLshBlocker`](crate::lsh::salsh::SaLshBlocker)
//! *mutable*: new records compute their signatures through the same
//! [`parallel_map`] path as one-shot blocking and are **appended** to the
//! per-band bucket shards — no signature of an existing record is ever
//! recomputed, and buckets the batch does not touch are left alone.
//!
//! # Delta pairs
//!
//! Each [`IncrementalBlocker::insert_batch`] emits the batch's **delta
//! candidate pairs**: every pair that is in Γ after the batch but was not
//! before. Because a pair between two *old* records cannot appear by adding
//! new records, the delta is exactly the set of bucket-sharing pairs that
//! involve at least one new record — enumerable from the touched buckets
//! alone. Deltas are carried as sorted, deduplicated packed-`u64` runs
//! ([`RecordPair::pack`]), the same representation every bulk pair path of
//! [`crate::blocking`] runs on, so a delta (or the union of all deltas) is
//! evaluated by the identical loser-tree/galloping merge counter — and,
//! absent removals, deltas of successive batches are **disjoint**: summing
//! per-batch [`PairCounts`] equals a from-scratch count of the merged whole,
//! byte for byte.
//!
//! # Removals
//!
//! [`IncrementalBlocker::remove`] tombstones a record in O(1): the id stays
//! in its buckets but is skipped by snapshots and by future delta
//! enumerations. A removal therefore never shrinks the index — compaction is
//! a rebuild (see `docs/ARCHITECTURE.md` for when rebuild beats insert) —
//! and deltas emitted *before* the removal keep counting pairs of the
//! removed record; cumulative delta counts are exact only for
//! insert-only workloads, while [`IncrementalBlocker::snapshot`] is always
//! exact.
//!
//! # Equivalence with one-shot blocking
//!
//! Ingesting any partition of a dataset batch by batch and taking a
//! [`IncrementalBlocker::snapshot`] produces a [`BlockCollection`] that is
//! **byte-identical** (same keys, same members, same order) to one-shot
//! [`SaLshBlocker::block`](crate::blocking::Blocker::block) over the whole
//! dataset — property-tested in `tests/incremental.rs`. For SA-LSH one
//! caveat applies: the one-shot blocker derives its semhash family from the
//! dataset's interpretations, which an incremental index cannot do (the
//! family must not drift as batches arrive). The incremental blocker
//! therefore pins the family at construction — an explicitly pinned one
//! ([`SemanticConfig::with_pinned_family`]) or, by default, all leaves of
//! the taxonomy — and equivalence holds against a one-shot blocker pinned to
//! the same family (which, for datasets whose records reach every leaf, is
//! exactly what Algorithm 1 derives; NC Voter does at any realistic scale).

use std::collections::BTreeMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sablock_datasets::record::RecordPair;
use sablock_datasets::{DatasetError, Record, RecordId, Schema, MAX_RECORD_ID};

use crate::blocking::{
    merge_count_packed_runs, merge_packed_runs_into, radix_sort_packed, Block, BlockCollection, PackedProbe,
    PairCounts,
};
use crate::error::{CoreError, Result};
use crate::lsh::semantic_hash::WWaySemanticHash;
use crate::lsh::{BandingScheme, SemanticConfig};
use crate::minhash::shingle::RecordShingler;
use crate::minhash::{MinHasher, MinhashConfig};
use crate::parallel::{parallel_map, resolve_threads};
use crate::semantic::semhash::SemhashFamily;

/// The candidate pairs one ingest batch added to Γ, as sorted and
/// individually deduplicated packed-`u64` runs (one run per band; a pair
/// colliding in several bands appears in several runs and is deduplicated by
/// the counting merge, exactly like the per-shard runs of
/// [`BlockCollection::stream_packed_counts`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaPairs {
    runs: Vec<Vec<u64>>,
}

impl DeltaPairs {
    /// A delta with no pairs.
    pub fn empty() -> Self {
        Self::default()
    }

    pub(crate) fn from_runs(runs: Vec<Vec<u64>>) -> Self {
        Self {
            runs: runs.into_iter().filter(|run| !run.is_empty()).collect(),
        }
    }

    /// The sorted, deduplicated packed runs.
    pub fn runs(&self) -> &[Vec<u64>] {
        &self.runs
    }

    /// Whether the delta holds no pairs at all.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Counts the delta's distinct pairs, probing each exactly once — the
    /// same loser-tree/galloping merge fold the streaming Γ counter uses.
    pub fn counts<P: PackedProbe>(&self, probe: &P) -> PairCounts {
        merge_count_packed_runs(&self.runs, probe)
    }

    /// Number of distinct pairs in the delta.
    pub fn num_pairs(&self) -> u64 {
        self.counts(&|_: &RecordPair| false).distinct
    }

    /// Materialises the delta's distinct pairs in ascending order (tests,
    /// goldens, small deltas — bulk consumers should stay on the packed
    /// runs).
    pub fn pairs(&self) -> Vec<RecordPair> {
        let mut packed: Vec<u64> = Vec::new();
        merge_packed_runs_into(&self.runs, |segment| packed.extend_from_slice(segment));
        packed.into_iter().map(RecordPair::from_packed).collect()
    }
}

/// An online blocker: records arrive in batches, candidate pairs leave as
/// per-batch deltas, and the current blocking is available as a snapshot at
/// any time.
///
/// Implementations must keep snapshots byte-identical to one-shot blocking
/// of everything ingested so far (minus removed records) — batching is an
/// operational choice, never a semantic one.
pub trait IncrementalBlocker {
    /// A short human-readable name used in reports.
    fn name(&self) -> String;

    /// Number of records ingested so far (including tombstoned ones — ids
    /// are never reused).
    fn num_records(&self) -> usize;

    /// Ingests a batch of new records and returns the delta candidate pairs
    /// the batch added to Γ. Record ids must continue the dense id space
    /// (`num_records()`, `num_records() + 1`, …); ids beyond
    /// [`MAX_RECORD_ID`] are rejected with
    /// [`CoreError::RecordIdOverflow`].
    fn insert_batch(&mut self, records: &[Record]) -> Result<&DeltaPairs>;

    /// Tombstones a record: it stops appearing in snapshots and in future
    /// deltas. Returns `false` when the record was already removed; errors
    /// when the id was never ingested.
    fn remove(&mut self, id: RecordId) -> Result<bool>;

    /// The delta emitted by the most recent [`insert_batch`] call (empty
    /// before the first batch).
    ///
    /// [`insert_batch`]: IncrementalBlocker::insert_batch
    fn delta_pairs(&self) -> &DeltaPairs;

    /// The current blocking as a [`BlockCollection`] — byte-identical to
    /// one-shot blocking of all live (non-removed) records.
    fn snapshot(&self) -> BlockCollection;
}

/// The pinned semantic state of an incremental SA-LSH index: family and
/// per-band w-way hash functions are fixed at construction, so a record's
/// sub-block keys never change after ingestion.
#[derive(Debug, Clone)]
struct IncrementalSemantic {
    config: SemanticConfig,
    family: SemhashFamily,
    band_hashes: Vec<WWaySemanticHash>,
}

/// One band's bucket index: `(textual bucket key, semantic sub-key)` →
/// members in ascending id order. Plain LSH stores everything under sub-key
/// 0.
type BandIndex = BTreeMap<(u64, u64), Vec<RecordId>>;

/// The per-band update one ingest batch applies: where each new record lands
/// and which packed delta pairs the band contributes.
struct BandUpdate {
    placements: Vec<((u64, u64), Vec<RecordId>)>,
    delta_run: Vec<u64>,
}

/// Incremental LSH / SA-LSH blocking (see the module docs).
///
/// Built from a configured blocker via
/// [`SaLshBlocker::into_incremental`](crate::lsh::salsh::SaLshBlocker::into_incremental)
/// or directly from the builder via
/// [`SaLshBlockerBuilder::into_incremental`](crate::lsh::salsh::SaLshBlockerBuilder::into_incremental).
///
/// The index is one ordered bucket map per band, keyed by
/// `(textual bucket key, semantic sub-key)` — plain LSH uses a constant
/// sub-key of 0 — with members kept in ascending id order (batches arrive in
/// id order and append). Iterating the maps in band order therefore
/// reproduces exactly the deterministic band-order merge of the one-shot
/// sharded bucket phase.
#[derive(Debug, Clone)]
pub struct IncrementalSaLshBlocker {
    shingler: RecordShingler,
    minhash: MinhashConfig,
    banding: BandingScheme,
    hasher: MinHasher,
    semantic: Option<IncrementalSemantic>,
    threads: Option<usize>,
    bands: Vec<BandIndex>,
    next_id: u32,
    removed: Vec<bool>,
    removed_count: usize,
    last_delta: DeltaPairs,
    batches_ingested: usize,
    /// Every packed pair key any batch's delta has ever reported — the
    /// cross-batch disjointness sanitizer (`check-invariants` builds only).
    #[cfg(feature = "check-invariants")]
    emitted_delta_keys: std::collections::BTreeSet<u64>,
}

impl IncrementalSaLshBlocker {
    /// Assembles an incremental index from the (validated) parts of a
    /// [`SaLshBlocker`](crate::lsh::salsh::SaLshBlocker).
    pub(crate) fn from_parts(
        shingler: RecordShingler,
        minhash: MinhashConfig,
        banding: BandingScheme,
        semantic: Option<SemanticConfig>,
        threads: Option<usize>,
    ) -> Result<Self> {
        let semantic = match semantic {
            Some(config) => {
                config.validate()?;
                // The family must be fixed for the index's whole lifetime
                // (module docs): pinned wins, all taxonomy leaves otherwise.
                let family = match &config.pinned_family {
                    Some(family) => family.clone(),
                    None => SemhashFamily::from_all_leaves(&config.taxonomy)?,
                };
                let mut rng = StdRng::seed_from_u64(config.seed);
                let band_hashes = (0..banding.bands())
                    .map(|_| WWaySemanticHash::sample(family.len(), config.w, config.mode, &mut rng))
                    .collect::<Result<Vec<_>>>()?;
                Some(IncrementalSemantic { config, family, band_hashes })
            }
            None => None,
        };
        let hasher = MinHasher::from_config(&minhash);
        let bands = vec![BTreeMap::new(); banding.bands()];
        Ok(Self {
            shingler,
            minhash,
            banding,
            hasher,
            semantic,
            threads,
            bands,
            next_id: 0,
            removed: Vec::new(),
            removed_count: 0,
            last_delta: DeltaPairs::empty(),
            batches_ingested: 0,
            #[cfg(feature = "check-invariants")]
            emitted_delta_keys: std::collections::BTreeSet::new(),
        })
    }

    /// The id the next ingested record must carry.
    pub fn next_record_id(&self) -> RecordId {
        RecordId(self.next_id)
    }

    /// Number of records removed (tombstoned) so far.
    pub fn num_removed(&self) -> usize {
        self.removed_count
    }

    /// Number of live (ingested and not removed) records.
    pub fn num_live_records(&self) -> usize {
        self.next_id as usize - self.removed_count
    }

    /// Number of batches ingested so far.
    pub fn num_batches(&self) -> usize {
        self.batches_ingested
    }

    /// The semhash family the semantic component is pinned to, if any —
    /// pin the same family on a one-shot blocker to compare byte-for-byte.
    pub fn pinned_family(&self) -> Option<&SemhashFamily> {
        self.semantic.as_ref().map(|s| &s.family)
    }

    /// Convenience ingest from raw rows: wraps each row in a [`Record`] with
    /// the next dense id and the given schema, then calls
    /// [`IncrementalBlocker::insert_batch`].
    pub fn insert_values(&mut self, schema: &Arc<Schema>, rows: Vec<Vec<Option<String>>>) -> Result<&DeltaPairs> {
        let base = self.next_id;
        let records = rows
            .into_iter()
            .enumerate()
            .map(|(offset, values)| {
                // usize → u64 is lossless; the id bound check stays in u64.
                let index = u64::from(base) + offset as u64;
                let id = u32::try_from(index)
                    .ok()
                    .filter(|&raw| raw <= MAX_RECORD_ID)
                    .map(RecordId)
                    .ok_or(CoreError::RecordIdOverflow(index))?;
                Record::new(id, Arc::clone(schema), values).map_err(CoreError::from)
            })
            .collect::<Result<Vec<Record>>>()?;
        self.insert_batch_owned(records)
    }

    /// [`IncrementalBlocker::insert_batch`] taking ownership (avoids the
    /// caller keeping a second copy of the batch alive).
    pub fn insert_batch_owned(&mut self, records: Vec<Record>) -> Result<&DeltaPairs> {
        self.ingest(&records)
    }

    /// Validates a batch: dense id continuation, id width, and that every
    /// record's schema carries the shingled attributes. Batches almost
    /// always share one `Arc<Schema>`, so the per-record check is a pointer
    /// compare against the first validated schema; only records with a
    /// genuinely different schema pay the by-name lookup.
    fn validate_batch(&self, records: &[Record]) -> Result<()> {
        let mut validated: Option<&Arc<Schema>> = None;
        for (offset, record) in records.iter().enumerate() {
            // usize → u64 offset widening is lossless; the id arithmetic
            // below stays entirely in u64.
            let offset_wide = offset as u64;
            let expected = u64::from(self.next_id) + offset_wide;
            if expected > u64::from(MAX_RECORD_ID) {
                return Err(CoreError::RecordIdOverflow(expected));
            }
            if u64::from(record.id().0) != expected {
                return Err(CoreError::Config(format!(
                    "batch record at offset {offset} has id {}, expected the dense continuation r{expected}",
                    record.id()
                )));
            }
            if validated.is_some_and(|schema| Arc::ptr_eq(schema, record.schema())) {
                continue;
            }
            for attribute in self.shingler.attributes() {
                if record.schema().index_of(attribute).is_none() {
                    return Err(CoreError::Config(format!(
                        "attribute '{attribute}' selected for blocking does not exist in the schema of the \
                         ingested record at offset {offset}"
                    )));
                }
            }
            validated = Some(record.schema());
        }
        Ok(())
    }

    fn ingest(&mut self, records: &[Record]) -> Result<&DeltaPairs> {
        self.validate_batch(records)?;
        if records.is_empty() {
            self.last_delta = DeltaPairs::empty();
            self.batches_ingested += 1;
            return Ok(&self.last_delta);
        }
        let threads = resolve_threads(self.threads, records.len());

        // Signatures of the new records only — the existing index is never
        // recomputed. Same parallel shape as the one-shot pipeline.
        let shingles = parallel_map(records, threads, |record| self.shingler.shingles(record));
        let signatures = parallel_map(&shingles, threads, |set| self.hasher.signature(set));
        let sem_signatures = match &self.semantic {
            Some(semantic) => {
                let function = &semantic.config.function;
                let interpretations = parallel_map(records, threads, |record| function.interpret(record));
                Some(parallel_map(&interpretations, threads, |interp| {
                    semantic.family.signature(&semantic.config.taxonomy, interp)
                }))
            }
            None => None,
        };

        // Each band's bucket index is independent, so placements and delta
        // pairs are computed per band in parallel against the *immutable*
        // current index, then applied in band order (deterministic for any
        // worker count, like the one-shot bucket phase).
        let band_ids: Vec<usize> = (0..self.banding.bands()).collect();
        let updates: Vec<BandUpdate> = parallel_map(&band_ids, threads, |&band| {
            let mut placements: BandIndex = BTreeMap::new();
            for (offset, signature) in signatures.iter().enumerate() {
                if shingles[offset].is_empty() {
                    continue;
                }
                let id = records[offset].id();
                let bucket = self.banding.band_key(signature, band);
                match (&self.semantic, &sem_signatures) {
                    (Some(semantic), Some(sems)) => {
                        for sub in semantic.band_hashes[band].sub_keys(&sems[offset]) {
                            // usize → u64 sub-key widening is lossless.
                            let sub = sub as u64;
                            placements.entry((bucket, sub)).or_default().push(id);
                        }
                    }
                    _ => placements.entry((bucket, 0)).or_default().push(id),
                }
            }

            // Delta pairs of this band: existing live members × new members,
            // plus the new-member pairs, per touched bucket. Old ids are all
            // smaller than new ids and members arrive in ascending id order,
            // so every pair packs ascending without canonicalisation.
            let mut delta_run: Vec<u64> = Vec::new();
            for (key, new_members) in &placements {
                if let Some(existing) = self.bands[band].get(key) {
                    for &old in existing {
                        if self.removed[old.index()] {
                            continue;
                        }
                        for &new in new_members {
                            delta_run.push(RecordPair::pack_ascending(old, new));
                        }
                    }
                }
                for (i, &a) in new_members.iter().enumerate() {
                    for &b in &new_members[i + 1..] {
                        delta_run.push(RecordPair::pack_ascending(a, b));
                    }
                }
            }
            radix_sort_packed(&mut delta_run);
            delta_run.dedup();
            BandUpdate {
                placements: placements.into_iter().collect(),
                delta_run,
            }
        });

        let mut runs: Vec<Vec<u64>> = Vec::with_capacity(updates.len());
        for (band, update) in updates.into_iter().enumerate() {
            for (key, members) in update.placements {
                self.bands[band].entry(key).or_default().extend(members);
            }
            runs.push(update.delta_run);
        }
        if let Some(last) = records.last() {
            // `validate_batch` proved the batch is the dense continuation of
            // `next_id` with every id at most `MAX_RECORD_ID`, so the last
            // id is exactly `next_id + len − 1` and the increment cannot
            // overflow past the reserved `u32::MAX`.
            self.next_id = last.id().0 + 1;
        }
        self.removed.resize(self.next_id as usize, false);
        self.last_delta = DeltaPairs::from_runs(runs);
        self.batches_ingested += 1;
        #[cfg(feature = "check-invariants")]
        {
            crate::invariants::check_delta_disjoint(&mut self.emitted_delta_keys, &self.last_delta);
            crate::invariants::check_tombstones(&self.removed, self.removed_count, self.next_id);
        }
        Ok(&self.last_delta)
    }
}

impl IncrementalBlocker for IncrementalSaLshBlocker {
    fn name(&self) -> String {
        let base = format!(
            "k={},l={},q={}",
            self.minhash.rows_per_band, self.minhash.bands, self.minhash.qgram
        );
        match &self.semantic {
            Some(semantic) => format!("Incremental-SA-LSH({base},{})", semantic.config.describe()),
            None => format!("Incremental-LSH({base})"),
        }
    }

    fn num_records(&self) -> usize {
        self.next_id as usize
    }

    fn insert_batch(&mut self, records: &[Record]) -> Result<&DeltaPairs> {
        self.ingest(records)
    }

    fn remove(&mut self, id: RecordId) -> Result<bool> {
        if id.0 >= self.next_id {
            return Err(CoreError::Dataset(DatasetError::UnknownRecord(id.0)));
        }
        if self.removed[id.index()] {
            return Ok(false);
        }
        self.removed[id.index()] = true;
        self.removed_count += 1;
        #[cfg(feature = "check-invariants")]
        crate::invariants::check_tombstones(&self.removed, self.removed_count, self.next_id);
        Ok(true)
    }

    fn delta_pairs(&self) -> &DeltaPairs {
        &self.last_delta
    }

    fn snapshot(&self) -> BlockCollection {
        let semantic = self.semantic.is_some();
        let mut blocks = Vec::new();
        for (band, buckets) in self.bands.iter().enumerate() {
            for (&(bucket, sub), members) in buckets {
                let live: Vec<RecordId> =
                    members.iter().copied().filter(|id| !self.removed[id.index()]).collect();
                if live.len() < 2 {
                    continue;
                }
                let key = if semantic {
                    format!("b{band}:{bucket:016x}:g{sub}")
                } else {
                    format!("b{band}:{bucket:016x}")
                };
                blocks.push(Block::new(key, live));
            }
        }
        BlockCollection::from_blocks(blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::Blocker;
    use crate::lsh::salsh::SaLshBlocker;
    use crate::lsh::semantic_hash::SemanticMode;
    use crate::semantic::pattern::PatternSemanticFunction;
    use crate::taxonomy::bib::bibliographic_taxonomy;
    use sablock_datasets::dataset::DatasetBuilder;
    use sablock_datasets::ground_truth::EntityId;
    use sablock_datasets::Dataset;

    fn titles_dataset(rows: &[&str]) -> Dataset {
        let schema = Schema::shared(["title"]).unwrap();
        let mut builder = DatasetBuilder::new("titles", schema);
        for (i, title) in rows.iter().enumerate() {
            let value = if title.is_empty() { None } else { Some((*title).to_string()) };
            builder.push_values(vec![value], EntityId(i as u32 / 2)).unwrap();
        }
        builder.build().unwrap()
    }

    fn sample_dataset() -> Dataset {
        titles_dataset(&[
            "the cascade correlation learning architecture",
            "cascade correlation learning architecture",
            "the cascade corelation learning architecture",
            "efficient clustering of high dimensional data sets",
            "efficient clustering of high dimensional data",
            "",
            "a theory for record linkage",
            "a theory of record linkage",
        ])
    }

    fn lsh_builder() -> crate::lsh::salsh::SaLshBlockerBuilder {
        SaLshBlocker::builder().attributes(["title"]).qgram(2).bands(12).rows_per_band(2).seed(0xB10C)
    }

    fn salsh_pair() -> (SaLshBlocker, IncrementalSaLshBlocker) {
        let tree = bibliographic_taxonomy();
        let zeta = PatternSemanticFunction::cora_default(&tree).unwrap();
        let family = SemhashFamily::from_all_leaves(&tree).unwrap();
        let semantic = crate::lsh::SemanticConfig::new(tree, zeta)
            .with_w(2)
            .with_mode(SemanticMode::Or)
            .with_seed(11)
            .with_pinned_family(family);
        let builder = SaLshBlocker::builder()
            .attributes(["title"])
            .qgram(2)
            .bands(12)
            .rows_per_band(2)
            .seed(0xB10C)
            .semantic(semantic);
        let one_shot = builder.clone().build().unwrap();
        let incremental = builder.into_incremental().unwrap();
        (one_shot, incremental)
    }

    #[test]
    fn batched_ingest_matches_one_shot_blocking() {
        let dataset = sample_dataset();
        let one_shot = lsh_builder().build().unwrap().block(&dataset).unwrap();
        for batch_size in [1usize, 3, 8] {
            let mut incremental = lsh_builder().into_incremental().unwrap();
            let mut total_delta = 0u64;
            for chunk in dataset.records().chunks(batch_size) {
                total_delta += incremental.insert_batch(chunk).unwrap().num_pairs();
            }
            let snapshot = incremental.snapshot();
            assert_eq!(snapshot.blocks(), one_shot.blocks(), "batch_size={batch_size}");
            assert_eq!(total_delta, one_shot.num_distinct_pairs(), "batch_size={batch_size}");
        }
    }

    #[test]
    fn semantic_ingest_matches_pinned_one_shot() {
        let dataset = sample_dataset();
        let (one_shot, mut incremental) = salsh_pair();
        let reference = one_shot.block(&dataset).unwrap();
        let mut cumulative = 0u64;
        for chunk in dataset.records().chunks(3) {
            cumulative += incremental.insert_batch(chunk).unwrap().num_pairs();
        }
        assert_eq!(incremental.snapshot().blocks(), reference.blocks());
        assert_eq!(cumulative, reference.num_distinct_pairs());
        assert!(incremental.name().starts_with("Incremental-SA-LSH("));
        assert_eq!(incremental.pinned_family().unwrap().len(), 6);
    }

    #[test]
    fn deltas_are_disjoint_and_sorted() {
        let dataset = sample_dataset();
        let mut incremental = lsh_builder().into_incremental().unwrap();
        let mut seen: Vec<RecordPair> = Vec::new();
        for chunk in dataset.records().chunks(2) {
            let delta = incremental.insert_batch(chunk).unwrap();
            for run in delta.runs() {
                assert!(run.windows(2).all(|w| w[0] < w[1]), "runs are strictly ascending");
            }
            let pairs = delta.pairs();
            assert_eq!(pairs.len() as u64, delta.num_pairs());
            for pair in &pairs {
                assert!(!seen.contains(pair), "pair {pair} emitted twice across batches");
            }
            seen.extend(pairs);
        }
        assert_eq!(seen.len() as u64, incremental.snapshot().num_distinct_pairs());
    }

    #[test]
    fn removal_tombstones_and_matches_filtered_one_shot() {
        let dataset = sample_dataset();
        let one_shot = lsh_builder().build().unwrap().block(&dataset).unwrap();
        let mut incremental = lsh_builder().into_incremental().unwrap();
        incremental.insert_batch(dataset.records()).unwrap();
        assert!(incremental.remove(RecordId(1)).unwrap());
        assert!(!incremental.remove(RecordId(1)).unwrap(), "double removal reports false");
        assert!(incremental.remove(RecordId(99)).is_err(), "unknown ids error");
        assert_eq!(incremental.num_removed(), 1);
        assert_eq!(incremental.num_live_records(), dataset.len() - 1);

        // Reference: one-shot blocks with the removed id filtered out.
        let filtered: Vec<Block> = one_shot
            .blocks()
            .iter()
            .map(|b| {
                Block::new(
                    b.key().to_string(),
                    b.members().iter().copied().filter(|&id| id != RecordId(1)).collect(),
                )
            })
            .collect();
        let filtered = BlockCollection::from_blocks(filtered);
        assert_eq!(incremental.snapshot().blocks(), filtered.blocks());

        // Pairs added after the removal never involve the tombstoned record.
        let extra = titles_dataset(&[
            "the cascade correlation learning architecture",
            "cascade correlation learning architecture",
            "the cascade corelation learning architecture",
            "efficient clustering of high dimensional data sets",
            "efficient clustering of high dimensional data",
            "",
            "a theory for record linkage",
            "a theory of record linkage",
            "cascade correlation learning architecture",
        ]);
        let delta = incremental.insert_batch(&extra.records()[8..]).unwrap();
        assert!(delta
            .pairs()
            .iter()
            .all(|p| p.first() != RecordId(1) && p.second() != RecordId(1)));
    }

    #[test]
    fn batch_validation_rejects_bad_ids_and_schemas() {
        let dataset = sample_dataset();
        let mut incremental = lsh_builder().into_incremental().unwrap();
        // Ids must continue densely from 0.
        let err = incremental.insert_batch(&dataset.records()[2..4]).unwrap_err();
        assert!(err.to_string().contains("dense continuation"));
        // An id just over the packable boundary is a typed overflow.
        let schema = Schema::shared(["title"]).unwrap();
        let huge = Record::new(RecordId(u32::MAX), Arc::clone(&schema), vec![Some("x".into())]).unwrap();
        let mut at_edge = lsh_builder().into_incremental().unwrap();
        at_edge.next_id = u32::MAX;
        let err = at_edge.insert_batch(std::slice::from_ref(&huge)).unwrap_err();
        assert!(matches!(err, CoreError::RecordIdOverflow(id) if id == u64::from(u32::MAX)));
        // Unknown blocking attributes fail up front.
        let other_schema = Schema::shared(["name"]).unwrap();
        let wrong = Record::new(RecordId(0), Arc::clone(&other_schema), vec![Some("x".into())]).unwrap();
        let err = incremental.insert_batch(std::slice::from_ref(&wrong)).unwrap_err();
        assert!(err.to_string().contains("title"));
        // …even when the offending record is not the first of the batch
        // (mixed-schema batches must not slip a never-indexed record in).
        let ok = Record::new(RecordId(0), Arc::clone(&schema), vec![Some("y".into())]).unwrap();
        let wrong_tail = Record::new(RecordId(1), other_schema, vec![Some("z".into())]).unwrap();
        let err = incremental.insert_batch(&[ok, wrong_tail]).unwrap_err();
        assert!(err.to_string().contains("offset 1"));
        assert_eq!(incremental.num_records(), 0, "a rejected batch ingests nothing");
    }

    #[test]
    fn empty_batches_and_empty_records_are_handled() {
        let mut incremental = lsh_builder().into_incremental().unwrap();
        let delta = incremental.insert_batch(&[]).unwrap();
        assert!(delta.is_empty());
        assert_eq!(delta.num_pairs(), 0);
        assert_eq!(incremental.num_batches(), 1);
        assert_eq!(incremental.num_records(), 0);
        assert!(incremental.snapshot().is_empty());

        // Records without text are ingested (they consume an id) but never
        // indexed — exactly like the one-shot pipeline.
        let dataset = titles_dataset(&["", ""]);
        incremental.insert_batch(dataset.records()).unwrap();
        assert_eq!(incremental.num_records(), 2);
        assert!(incremental.snapshot().is_empty());
        assert_eq!(incremental.next_record_id(), RecordId(2));
    }

    #[test]
    fn insert_values_wraps_rows_with_dense_ids() {
        let schema = Schema::shared(["title"]).unwrap();
        let mut incremental = lsh_builder().into_incremental().unwrap();
        let rows = vec![
            vec![Some("a theory for record linkage".to_string())],
            vec![Some("a theory of record linkage".to_string())],
        ];
        let delta = incremental.insert_values(&schema, rows).unwrap();
        assert!(delta.num_pairs() > 0);
        assert_eq!(incremental.num_records(), 2);
        // The stored delta is identical to the returned one.
        assert_eq!(incremental.delta_pairs().num_pairs(), incremental.snapshot().num_distinct_pairs());
    }
}
