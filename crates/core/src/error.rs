//! Error type for the blocking framework.

use std::fmt;

use sablock_datasets::DatasetError;

/// Errors raised while configuring or running blockers.
#[derive(Debug)]
pub enum CoreError {
    /// A configuration value is invalid (e.g. zero bands, unknown attribute).
    Config(String),
    /// A taxonomy operation failed (unknown concept, malformed tree).
    Taxonomy(String),
    /// A record id does not fit the packed-pair representation (ids must stay
    /// at or below [`MAX_RECORD_ID`](crate::blocking::MAX_RECORD_ID); the
    /// value `u32::MAX` is reserved as the merge sentinel). Blocking such an
    /// id would silently corrupt packed pair counts, so it is rejected with
    /// this typed error instead.
    RecordIdOverflow(u64),
    /// An error bubbled up from the dataset layer.
    Dataset(DatasetError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Config(msg) => write!(f, "configuration error: {msg}"),
            Self::Taxonomy(msg) => write!(f, "taxonomy error: {msg}"),
            Self::RecordIdOverflow(id) => write!(
                f,
                "record id {id} exceeds the maximum packable record id {} (u32::MAX is reserved)",
                sablock_datasets::MAX_RECORD_ID
            ),
            Self::Dataset(err) => write!(f, "dataset error: {err}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Dataset(err) => Some(err),
            _ => None,
        }
    }
}

impl From<DatasetError> for CoreError {
    fn from(err: DatasetError) -> Self {
        Self::Dataset(err)
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(CoreError::Config("bands must be > 0".into()).to_string().contains("bands"));
        assert!(CoreError::Taxonomy("unknown concept c9".into()).to_string().contains("c9"));
        let overflow = CoreError::RecordIdOverflow(u64::from(u32::MAX));
        assert!(overflow.to_string().contains(&u32::MAX.to_string()));
        let err: CoreError = DatasetError::UnknownAttribute("title".into()).into();
        assert!(err.to_string().contains("title"));
        assert!(std::error::Error::source(&err).is_some());
    }
}
