//! Runtime invariant checks behind the `check-invariants` cargo feature.
//!
//! `cargo xtask lint` enforces the *source-level* determinism rules (ordered
//! iteration, checked id narrowing, thread confinement — see
//! `docs/LINTS.md`); this module is the dynamic complement: assertions over
//! the actual data structures that no token-level rule can prove. The
//! invariants wired through the blocking and incremental paths are:
//!
//! * **packed runs strictly ascending** — every run handed to the
//!   loser-tree merge is sorted and deduplicated ([`assert_strictly_ascending`]),
//!   and [`crate::blocking::radix_sort_packed`] leaves its input
//!   nondecreasing ([`assert_sorted`]);
//! * **merge emissions nondecreasing** — the galloping loser-tree merge
//!   emits a strictly ascending stream of distinct keys
//!   ([`check_emission_monotone`]);
//! * **per-batch deltas pairwise disjoint** — no candidate pair is ever
//!   reported by two different ingest batches ([`check_delta_disjoint`]),
//!   the property that makes cumulative delta counts exact;
//! * **tombstone set ⊆ inserted ids** — the removal bitmap covers exactly
//!   the assigned id range and agrees with the removal counter
//!   ([`check_tombstones`]);
//! * **running counters never go negative** — a removal subtracts at most
//!   what the running Γ/Γ_tp accumulators currently hold, so the `u64`
//!   subtraction can never wrap ([`check_counter_subtraction`]);
//! * **bucket tombstone accounting** — each bucket's dead-member counter
//!   equals the number of its members the tombstone bitmap marks removed,
//!   checked after every removal touch and after every bucket-local
//!   compaction ([`check_bucket_tombstones`]).
//!
//! Every helper compiles to an empty `#[inline]` function unless
//! `sablock_core` is built with `--features check-invariants`, so the hot
//! paths pay nothing in normal builds. CI runs the tier-1 suite once with
//! the feature enabled (`cargo test -q --features
//! sablock_core/check-invariants`).

/// Asserts that a packed run is nondecreasing — what
/// [`crate::blocking::radix_sort_packed`] guarantees before deduplication.
#[inline]
#[allow(unused_variables)]
pub(crate) fn assert_sorted(run: &[u64], context: &str) {
    #[cfg(feature = "check-invariants")]
    for window in run.windows(2) {
        assert!(
            window[0] <= window[1],
            "check-invariants: {context}: packed run not sorted ({:#x} > {:#x})",
            window[0],
            window[1],
        );
    }
}

/// Asserts that a packed run is strictly ascending (sorted *and*
/// deduplicated) — the precondition every loser-tree merge consumer relies
/// on for its duplicate-dropping logic.
#[inline]
#[allow(unused_variables)]
pub(crate) fn assert_strictly_ascending(run: &[u64], context: &str) {
    #[cfg(feature = "check-invariants")]
    for window in run.windows(2) {
        assert!(
            window[0] < window[1],
            "check-invariants: {context}: packed run not strictly ascending ({:#x} !< {:#x})",
            window[0],
            window[1],
        );
    }
}

/// Checks one emitted merge segment against the running high-water mark:
/// segments must be internally strictly ascending and start strictly above
/// everything emitted before them, so the merged stream as a whole is a
/// strictly ascending sequence of distinct keys.
#[cfg(feature = "check-invariants")]
pub(crate) fn check_emission_monotone(last: &mut Option<u64>, segment: &[u64]) {
    assert_strictly_ascending(segment, "merge emission segment");
    if let (Some(prev), Some(&first)) = (*last, segment.first()) {
        assert!(
            prev < first,
            "check-invariants: merge emitted {first:#x} at or below the previous emission {prev:#x}",
        );
    }
    if let Some(&key) = segment.last() {
        *last = Some(key);
    }
}

/// Checks that a freshly built per-batch delta is disjoint from every delta
/// emitted before it, folding the delta's distinct keys into the blocker's
/// lifetime set. Within one delta the same pair may legitimately appear in
/// several band runs; across batches each pair must be reported exactly
/// once.
#[cfg(feature = "check-invariants")]
pub(crate) fn check_delta_disjoint(
    emitted: &mut std::collections::BTreeSet<u64>,
    delta: &crate::incremental::DeltaPairs,
) {
    let mut fresh: Vec<u64> = Vec::new();
    crate::blocking::merge_packed_runs_into(delta.runs(), |segment| fresh.extend_from_slice(segment));
    for key in fresh {
        assert!(
            emitted.insert(key),
            "check-invariants: delta pair {key:#x} was already emitted by an earlier batch",
        );
    }
}

/// Checks the tombstone invariants of the incremental blocker: the removal
/// bitmap covers exactly the assigned id range `0..next_id` (so the
/// tombstone set is necessarily a subset of the inserted ids) and the
/// removal counter agrees with the bitmap.
#[cfg(feature = "check-invariants")]
pub(crate) fn check_tombstones(removed: &[bool], removed_count: usize, next_id: u32) {
    assert!(
        removed.len() == next_id as usize,
        "check-invariants: tombstone bitmap covers {} ids but {next_id} were assigned",
        removed.len(),
    );
    let marked = removed.iter().filter(|&&tombstoned| tombstoned).count();
    assert!(
        marked == removed_count,
        "check-invariants: {marked} tombstones in the bitmap but removed_count says {removed_count}",
    );
}

/// Checks that subtracting `subtract` from the running counter `current`
/// cannot underflow — the removal path derives `subtract` by enumerating
/// only pairs that earlier deltas folded *into* the counter, so going
/// negative would mean the back-references and the accumulator disagree.
#[inline]
#[allow(unused_variables)]
pub(crate) fn check_counter_subtraction(current: u64, subtract: u64, context: &str) {
    #[cfg(feature = "check-invariants")]
    assert!(
        subtract <= current,
        "check-invariants: {context}: subtracting {subtract} from {current} would make the running counter negative",
    );
}

/// Checks one bucket's tombstone accounting against the global removal
/// bitmap: the bucket's dead counter must equal the number of its members
/// currently marked removed (0 immediately after a compaction, which purges
/// every dead member).
#[inline]
#[allow(unused_variables)]
pub(crate) fn check_bucket_tombstones(
    members: &[sablock_datasets::RecordId],
    dead: u32,
    removed: &[bool],
    context: &str,
) {
    #[cfg(feature = "check-invariants")]
    {
        let marked = members.iter().filter(|member| removed[member.index()]).count();
        assert!(
            marked == dead as usize,
            "check-invariants: {context}: bucket dead counter says {dead} but {marked} members are tombstoned",
        );
    }
}

// Trip tests: the sanitizer must actually fire on bad data, otherwise a
// cfg/feature plumbing mistake would turn every check into a silent no-op
// and CI's check-invariants step would prove nothing.
#[cfg(all(test, feature = "check-invariants"))]
mod tests {
    use super::*;

    #[test]
    fn accepts_good_runs() {
        assert_sorted(&[1, 1, 2, 9], "test");
        assert_strictly_ascending(&[1, 2, 9], "test");
        let mut last = None;
        check_emission_monotone(&mut last, &[1, 2]);
        check_emission_monotone(&mut last, &[5, 9]);
        check_tombstones(&[true, false, true], 2, 3);
        check_counter_subtraction(10, 10, "test");
        check_counter_subtraction(10, 0, "test");
        let ids = [sablock_datasets::RecordId(0), sablock_datasets::RecordId(1)];
        check_bucket_tombstones(&ids, 1, &[true, false], "test");
        check_bucket_tombstones(&ids, 0, &[false, false], "test");
    }

    #[test]
    #[should_panic(expected = "would make the running counter negative")]
    fn trips_on_counter_underflow() {
        check_counter_subtraction(3, 4, "test");
    }

    #[test]
    #[should_panic(expected = "members are tombstoned")]
    fn trips_on_bucket_dead_counter_mismatch() {
        let ids = [sablock_datasets::RecordId(0), sablock_datasets::RecordId(1)];
        check_bucket_tombstones(&ids, 2, &[true, false], "test");
    }

    #[test]
    #[should_panic(expected = "not sorted")]
    fn trips_on_unsorted_run() {
        assert_sorted(&[2, 1], "test");
    }

    #[test]
    #[should_panic(expected = "not strictly ascending")]
    fn trips_on_duplicate_key() {
        assert_strictly_ascending(&[1, 1], "test");
    }

    #[test]
    #[should_panic(expected = "at or below the previous emission")]
    fn trips_on_non_monotone_emission() {
        let mut last = None;
        check_emission_monotone(&mut last, &[5, 9]);
        check_emission_monotone(&mut last, &[7]);
    }

    #[test]
    #[should_panic(expected = "removed_count says")]
    fn trips_on_tombstone_count_mismatch() {
        check_tombstones(&[true, false], 2, 2);
    }
}
