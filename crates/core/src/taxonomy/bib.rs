//! The bibliographic taxonomy tree t_bib of the paper's Fig. 3 and the three
//! variants t_(bib,1..3) of Fig. 10 used in the taxonomy-robustness
//! experiment (Table 2).
//!
//! Node layout of t_bib (concept codes C0–C9 as in the paper):
//!
//! ```text
//! research output (C0)
//! ├── publication (C1)
//! │   ├── peer reviewed (C2)
//! │   │   ├── journal (C3)
//! │   │   ├── proceedings (C4)
//! │   │   └── book (C5)
//! │   └── non-peer reviewed (C6)
//! │       ├── technical report (C7)
//! │       └── thesis (C8)
//! └── patent (C9)
//! ```

use crate::taxonomy::{ConceptId, TaxonomyTree};

/// Symbolic names for the concepts of the bibliographic taxonomy, matching
/// the paper's C0–C9 numbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BibConcept {
    /// C0 — research output (the root).
    ResearchOutput,
    /// C1 — publication.
    Publication,
    /// C2 — peer reviewed publication.
    PeerReviewed,
    /// C3 — journal article.
    Journal,
    /// C4 — conference proceedings article.
    Proceedings,
    /// C5 — book.
    Book,
    /// C6 — non-peer-reviewed publication.
    NonPeerReviewed,
    /// C7 — technical report.
    TechnicalReport,
    /// C8 — thesis.
    Thesis,
    /// C9 — patent.
    Patent,
}

impl BibConcept {
    /// The concept's label in the tree.
    pub fn label(self) -> &'static str {
        match self {
            Self::ResearchOutput => "research output",
            Self::Publication => "publication",
            Self::PeerReviewed => "peer reviewed",
            Self::Journal => "journal",
            Self::Proceedings => "proceedings",
            Self::Book => "book",
            Self::NonPeerReviewed => "non-peer reviewed",
            Self::TechnicalReport => "technical report",
            Self::Thesis => "thesis",
            Self::Patent => "patent",
        }
    }

    /// Resolves this concept in a (possibly variant) bibliographic tree.
    /// Returns `None` when the variant omits the concept.
    pub fn resolve(self, tree: &TaxonomyTree) -> Option<ConceptId> {
        tree.concept(self.label())
    }

    /// All concepts, in C0..C9 order.
    pub const ALL: [BibConcept; 10] = [
        BibConcept::ResearchOutput,
        BibConcept::Publication,
        BibConcept::PeerReviewed,
        BibConcept::Journal,
        BibConcept::Proceedings,
        BibConcept::Book,
        BibConcept::NonPeerReviewed,
        BibConcept::TechnicalReport,
        BibConcept::Thesis,
        BibConcept::Patent,
    ];
}

/// A structural variant of the bibliographic taxonomy (Fig. 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BibVariant {
    /// The full tree t_bib of Fig. 3.
    Full,
    /// t_(bib,1): removes the intermediate concepts *peer reviewed* and
    /// *non-peer reviewed*; their children attach directly to *publication*.
    NoReviewLevels,
    /// t_(bib,2): misses the *book* concept.
    NoBook,
    /// t_(bib,3): misses the *journal* concept.
    NoJournal,
}

impl BibVariant {
    /// All variants, in the order used by Table 2.
    pub const ALL: [BibVariant; 4] = [
        BibVariant::Full,
        BibVariant::NoReviewLevels,
        BibVariant::NoBook,
        BibVariant::NoJournal,
    ];

    /// The name used in Table 2's header.
    pub fn name(self) -> &'static str {
        match self {
            Self::Full => "t_bib",
            Self::NoReviewLevels => "t_bib,1",
            Self::NoBook => "t_bib,2",
            Self::NoJournal => "t_bib,3",
        }
    }
}

/// Builds the full bibliographic taxonomy tree t_bib (Fig. 3).
pub fn bibliographic_taxonomy() -> TaxonomyTree {
    bibliographic_taxonomy_variant(BibVariant::Full)
}

/// Builds a bibliographic taxonomy variant (Fig. 10).
pub fn bibliographic_taxonomy_variant(variant: BibVariant) -> TaxonomyTree {
    let mut tree = TaxonomyTree::new(variant.name());
    let root = tree.add_root(BibConcept::ResearchOutput.label()).expect("fresh tree");
    let publication = tree
        .add_child(root, BibConcept::Publication.label())
        .expect("new label");
    tree.add_child(root, BibConcept::Patent.label()).expect("new label");

    let (peer_parent, non_peer_parent) = if variant == BibVariant::NoReviewLevels {
        (publication, publication)
    } else {
        let peer = tree
            .add_child(publication, BibConcept::PeerReviewed.label())
            .expect("new label");
        let non_peer = tree
            .add_child(publication, BibConcept::NonPeerReviewed.label())
            .expect("new label");
        (peer, non_peer)
    };

    if variant != BibVariant::NoJournal {
        tree.add_child(peer_parent, BibConcept::Journal.label()).expect("new label");
    }
    tree.add_child(peer_parent, BibConcept::Proceedings.label()).expect("new label");
    if variant != BibVariant::NoBook {
        tree.add_child(peer_parent, BibConcept::Book.label()).expect("new label");
    }
    tree.add_child(non_peer_parent, BibConcept::TechnicalReport.label()).expect("new label");
    tree.add_child(non_peer_parent, BibConcept::Thesis.label()).expect("new label");

    debug_assert!(tree.validate().is_ok());
    tree
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_tree_has_ten_concepts_and_six_leaves() {
        let tree = bibliographic_taxonomy();
        assert_eq!(tree.len(), 10);
        assert_eq!(tree.all_leaves().len(), 6);
        assert!(tree.validate().is_ok());
        for concept in BibConcept::ALL {
            assert!(concept.resolve(&tree).is_some(), "missing {:?}", concept);
        }
    }

    #[test]
    fn variant_1_drops_review_levels() {
        let tree = bibliographic_taxonomy_variant(BibVariant::NoReviewLevels);
        assert!(BibConcept::PeerReviewed.resolve(&tree).is_none());
        assert!(BibConcept::NonPeerReviewed.resolve(&tree).is_none());
        // Journal now hangs directly off publication.
        let journal = BibConcept::Journal.resolve(&tree).unwrap();
        let publication = BibConcept::Publication.resolve(&tree).unwrap();
        assert_eq!(tree.parent(journal), Some(publication));
        assert_eq!(tree.len(), 8);
        assert_eq!(tree.all_leaves().len(), 6);
        assert!(tree.validate().is_ok());
    }

    #[test]
    fn variant_2_drops_book_and_variant_3_drops_journal() {
        let no_book = bibliographic_taxonomy_variant(BibVariant::NoBook);
        assert!(BibConcept::Book.resolve(&no_book).is_none());
        assert!(BibConcept::Journal.resolve(&no_book).is_some());
        assert_eq!(no_book.all_leaves().len(), 5);

        let no_journal = bibliographic_taxonomy_variant(BibVariant::NoJournal);
        assert!(BibConcept::Journal.resolve(&no_journal).is_none());
        assert!(BibConcept::Book.resolve(&no_journal).is_some());
        assert_eq!(no_journal.all_leaves().len(), 5);
    }

    #[test]
    fn variant_names_match_table_2() {
        assert_eq!(BibVariant::Full.name(), "t_bib");
        assert_eq!(BibVariant::NoReviewLevels.name(), "t_bib,1");
        assert_eq!(BibVariant::NoBook.name(), "t_bib,2");
        assert_eq!(BibVariant::NoJournal.name(), "t_bib,3");
        assert_eq!(BibVariant::ALL.len(), 4);
    }

    #[test]
    fn subsumption_structure_of_full_tree() {
        let tree = bibliographic_taxonomy();
        let journal = BibConcept::Journal.resolve(&tree).unwrap();
        let peer = BibConcept::PeerReviewed.resolve(&tree).unwrap();
        let publication = BibConcept::Publication.resolve(&tree).unwrap();
        let patent = BibConcept::Patent.resolve(&tree).unwrap();
        assert!(tree.subsumed_by(journal, peer));
        assert!(tree.subsumed_by(journal, publication));
        assert!(!tree.subsumed_by(patent, publication));
        assert!(tree.is_leaf(patent));
        assert!(tree.is_leaf(journal));
        assert!(!tree.is_leaf(peer));
    }
}
