//! The voter taxonomy used for the NC Voter experiments.
//!
//! Section 6.2: "For the NC Voter data set, we built a taxonomy tree upon the
//! meta-data for race and gender, and defined a semantic function based on the
//! values in the attributes race and gender, which have uncertain values like
//! 'u'. As a result, we have a 12 bit semantic signature for each record."
//!
//! We therefore build a three-level tree: a *voter* root, one node per race
//! code, and under each race one leaf per (race, known-gender) combination —
//! 6 races × 2 known genders = **12 leaves**, matching the 12-bit signature.
//! Records whose gender is uncertain are interpreted at the race level;
//! records whose race is uncertain use the race code `u`'s subtree.

use crate::taxonomy::TaxonomyTree;

/// The race codes of the NC voter registration format (including `u`).
pub const RACES: [&str; 6] = ["w", "b", "a", "i", "o", "u"];

/// The *known* gender codes; the uncertain value `u` maps to the race level.
pub const KNOWN_GENDERS: [&str; 2] = ["m", "f"];

/// Label of the race-level concept for a race code.
pub fn race_label(race: &str) -> String {
    format!("race {race}")
}

/// Label of the leaf concept for a (race, gender) combination.
pub fn race_gender_label(race: &str, gender: &str) -> String {
    format!("race {race} gender {gender}")
}

/// Builds the voter taxonomy tree (root → 6 races → 12 race×gender leaves).
pub fn voter_taxonomy() -> TaxonomyTree {
    let mut tree = TaxonomyTree::new("voter");
    let root = tree.add_root("voter").expect("fresh tree");
    for race in RACES {
        let race_node = tree.add_child(root, race_label(race)).expect("new label");
        for gender in KNOWN_GENDERS {
            tree.add_child(race_node, race_gender_label(race, gender))
                .expect("new label");
        }
    }
    debug_assert!(tree.validate().is_ok());
    tree
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_has_twelve_leaves() {
        let tree = voter_taxonomy();
        assert_eq!(tree.all_leaves().len(), 12, "the paper reports a 12-bit semhash signature");
        assert_eq!(tree.len(), 1 + 6 + 12);
        assert!(tree.validate().is_ok());
    }

    #[test]
    fn structure_is_root_race_gender() {
        let tree = voter_taxonomy();
        let root = tree.root().unwrap();
        assert_eq!(tree.children(root).len(), 6);
        let white = tree.require_concept(&race_label("w")).unwrap();
        assert_eq!(tree.children(white).len(), 2);
        let wm = tree.require_concept(&race_gender_label("w", "m")).unwrap();
        assert!(tree.subsumed_by(wm, white));
        assert!(tree.subsumed_by(wm, root));
        assert!(tree.is_leaf(wm));
        let bf = tree.require_concept(&race_gender_label("b", "f")).unwrap();
        assert!(!tree.related(wm, bf));
    }

    #[test]
    fn uncertain_race_has_its_own_subtree() {
        let tree = voter_taxonomy();
        let uncertain = tree.require_concept(&race_label("u")).unwrap();
        assert_eq!(tree.children(uncertain).len(), 2);
        assert!(tree.concept(&race_gender_label("u", "m")).is_some());
    }

    #[test]
    fn labels_are_systematic() {
        assert_eq!(race_label("w"), "race w");
        assert_eq!(race_gender_label("b", "f"), "race b gender f");
    }
}
