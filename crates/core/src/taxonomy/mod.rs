//! Taxonomy trees of semantic concepts (paper §4.1).
//!
//! A taxonomy tree consists of concept nodes connected by a subsumption
//! relation: `c1 ⪯ c2` means concept `c1` is subsumed by (is a kind of) `c2`.
//! The concepts near the root are general ("Research Output"), the leaves are
//! specific ("Journal", "Technical Report"). Semantic similarity (§4.3) and
//! semhash signatures (§4.4) are defined entirely in terms of the *leaf sets*
//! of concepts, which this module computes.

pub mod bib;
pub mod voter;

use std::collections::HashMap;
use std::fmt;

use crate::error::{CoreError, Result};

/// Identifier of a concept node within its taxonomy tree (a dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConceptId(pub u32);

impl ConceptId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ConceptId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct ConceptNode {
    label: String,
    parent: Option<ConceptId>,
    children: Vec<ConceptId>,
    depth: u32,
}

/// A taxonomy tree: a rooted tree of labelled concepts.
///
/// Construction is incremental (add the root, then add children); the tree is
/// immutable once handed to a blocker. Concept labels must be unique so that
/// semantic functions can refer to concepts by name.
#[derive(Debug, Clone)]
pub struct TaxonomyTree {
    name: String,
    nodes: Vec<ConceptNode>,
    by_label: HashMap<String, ConceptId>,
}

impl TaxonomyTree {
    /// Creates an empty tree with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            nodes: Vec::new(),
            by_label: HashMap::new(),
        }
    }

    /// The tree's name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of concepts in the tree.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree has no concepts.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds the root concept. Fails if a root already exists.
    pub fn add_root(&mut self, label: impl Into<String>) -> Result<ConceptId> {
        if !self.nodes.is_empty() {
            return Err(CoreError::Taxonomy("the tree already has a root".into()));
        }
        self.insert_node(label.into(), None, 0)
    }

    /// Adds a child concept under `parent`.
    pub fn add_child(&mut self, parent: ConceptId, label: impl Into<String>) -> Result<ConceptId> {
        let depth = self
            .node(parent)
            .ok_or_else(|| CoreError::Taxonomy(format!("unknown parent concept {parent}")))?
            .depth
            + 1;
        let child = self.insert_node(label.into(), Some(parent), depth)?;
        self.nodes[parent.index()].children.push(child);
        Ok(child)
    }

    fn insert_node(&mut self, label: String, parent: Option<ConceptId>, depth: u32) -> Result<ConceptId> {
        if self.by_label.contains_key(&label) {
            return Err(CoreError::Taxonomy(format!("duplicate concept label: {label}")));
        }
        let id = match u32::try_from(self.nodes.len()) {
            Ok(raw) => ConceptId(raw),
            Err(_) => return Err(CoreError::Taxonomy("concept count exceeds the u32 id space".into())),
        };
        self.by_label.insert(label.clone(), id);
        self.nodes.push(ConceptNode {
            label,
            parent,
            children: Vec::new(),
            depth,
        });
        Ok(id)
    }

    fn node(&self, id: ConceptId) -> Option<&ConceptNode> {
        self.nodes.get(id.index())
    }

    /// The root concept, if any.
    pub fn root(&self) -> Option<ConceptId> {
        if self.nodes.is_empty() {
            None
        } else {
            Some(ConceptId(0))
        }
    }

    /// Whether the concept id is valid in this tree.
    pub fn contains(&self, id: ConceptId) -> bool {
        id.index() < self.nodes.len()
    }

    /// Resolves a concept by its label.
    pub fn concept(&self, label: &str) -> Option<ConceptId> {
        self.by_label.get(label).copied()
    }

    /// Resolves a concept by its label, or errors.
    pub fn require_concept(&self, label: &str) -> Result<ConceptId> {
        self.concept(label)
            .ok_or_else(|| CoreError::Taxonomy(format!("unknown concept label: {label}")))
    }

    /// The label of a concept.
    pub fn label(&self, id: ConceptId) -> Option<&str> {
        self.node(id).map(|n| n.label.as_str())
    }

    /// The parent of a concept (`None` for the root).
    pub fn parent(&self, id: ConceptId) -> Option<ConceptId> {
        self.node(id).and_then(|n| n.parent)
    }

    /// The children of a concept — `child(c)` in the paper.
    pub fn children(&self, id: ConceptId) -> &[ConceptId] {
        self.node(id).map(|n| n.children.as_slice()).unwrap_or(&[])
    }

    /// Whether the concept is a leaf.
    pub fn is_leaf(&self, id: ConceptId) -> bool {
        self.node(id).map(|n| n.children.is_empty()).unwrap_or(false)
    }

    /// Depth of a concept (root = 0).
    pub fn depth(&self, id: ConceptId) -> Option<u32> {
        self.node(id).map(|n| n.depth)
    }

    /// All concept ids, in insertion order.
    pub fn concepts(&self) -> impl Iterator<Item = ConceptId> + '_ {
        // sablock-lint: allow(panic-reachability): insert_node rejects growth past u32, so this conversion cannot fail
        let count = u32::try_from(self.nodes.len()).expect("insert_node bounds the concept count to u32");
        (0..count).map(ConceptId)
    }

    /// All leaf concepts of the whole tree.
    pub fn all_leaves(&self) -> Vec<ConceptId> {
        self.concepts().filter(|&c| self.is_leaf(c)).collect()
    }

    /// Subsumption test: `descendant ⪯ ancestor` — is `descendant` equal to
    /// or below `ancestor`? (The paper writes `c1 ⪯ c2` for "c1 is subsumed
    /// by c2"; this method is `subsumed_by(c1, c2)`.)
    pub fn subsumed_by(&self, descendant: ConceptId, ancestor: ConceptId) -> bool {
        if !self.contains(descendant) || !self.contains(ancestor) {
            return false;
        }
        let mut current = Some(descendant);
        while let Some(c) = current {
            if c == ancestor {
                return true;
            }
            current = self.parent(c);
        }
        false
    }

    /// Whether two concepts are related, i.e. one subsumes the other
    /// (this is the condition defining the related-pair set P(r1, r2) in Eq. 5).
    pub fn related(&self, a: ConceptId, b: ConceptId) -> bool {
        self.subsumed_by(a, b) || self.subsumed_by(b, a)
    }

    /// `leaf(c)`: the set of leaf concepts of the subtree rooted at `c`.
    /// A leaf concept's leaf set is the singleton containing itself.
    pub fn leaves_under(&self, id: ConceptId) -> Vec<ConceptId> {
        if !self.contains(id) {
            return Vec::new();
        }
        let mut leaves = Vec::new();
        let mut stack = vec![id];
        while let Some(current) = stack.pop() {
            let children = self.children(current);
            if children.is_empty() {
                leaves.push(current);
            } else {
                stack.extend(children.iter().copied());
            }
        }
        leaves.sort();
        leaves
    }

    /// The path from a concept up to the root (inclusive of both ends).
    pub fn path_to_root(&self, id: ConceptId) -> Vec<ConceptId> {
        let mut path = Vec::new();
        let mut current = if self.contains(id) { Some(id) } else { None };
        while let Some(c) = current {
            path.push(c);
            current = self.parent(c);
        }
        path
    }

    /// The lowest common ancestor of two concepts, if both exist.
    pub fn lowest_common_ancestor(&self, a: ConceptId, b: ConceptId) -> Option<ConceptId> {
        if !self.contains(a) || !self.contains(b) {
            return None;
        }
        let ancestors_a: Vec<ConceptId> = self.path_to_root(a);
        let set_a: std::collections::HashSet<ConceptId> = ancestors_a.iter().copied().collect();
        self.path_to_root(b).into_iter().find(|c| set_a.contains(c))
    }

    /// Validates structural invariants (every non-root has a parent, children
    /// lists are consistent, exactly one root). Used by tests and by builders
    /// of hand-written trees.
    pub fn validate(&self) -> Result<()> {
        if self.nodes.is_empty() {
            return Err(CoreError::Taxonomy("tree has no concepts".into()));
        }
        let roots = self.nodes.iter().filter(|n| n.parent.is_none()).count();
        if roots != 1 {
            return Err(CoreError::Taxonomy(format!("tree must have exactly one root, found {roots}")));
        }
        for (i, node) in self.nodes.iter().enumerate() {
            let id = ConceptId(u32::try_from(i).expect("insert_node bounds the concept count to u32"));
            if let Some(parent) = node.parent {
                if !self.contains(parent) {
                    return Err(CoreError::Taxonomy(format!("concept {id} has unknown parent {parent}")));
                }
                if !self.children(parent).contains(&id) {
                    return Err(CoreError::Taxonomy(format!(
                        "concept {id} is not listed among the children of its parent {parent}"
                    )));
                }
            }
            for &child in &node.children {
                if self.parent(child) != Some(id) {
                    return Err(CoreError::Taxonomy(format!("child {child} of {id} does not point back to it")));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the example tree of the paper's Fig. 3.
    fn bib_like() -> TaxonomyTree {
        bib::bibliographic_taxonomy()
    }

    #[test]
    fn construction_and_lookup() {
        let tree = bib_like();
        assert_eq!(tree.name(), "t_bib");
        assert_eq!(tree.len(), 10);
        assert!(!tree.is_empty());
        assert!(tree.validate().is_ok());
        let c0 = tree.root().unwrap();
        assert_eq!(tree.label(c0), Some("research output"));
        assert!(tree.concept("journal").is_some());
        assert!(tree.concept("nonexistent").is_none());
        assert!(tree.require_concept("patent").is_ok());
        assert!(tree.require_concept("zzz").is_err());
    }

    #[test]
    fn duplicate_labels_and_double_roots_rejected() {
        let mut tree = TaxonomyTree::new("t");
        let root = tree.add_root("root").unwrap();
        assert!(tree.add_root("another root").is_err());
        tree.add_child(root, "a").unwrap();
        assert!(tree.add_child(root, "a").is_err());
        assert!(tree.add_child(ConceptId(99), "b").is_err());
    }

    #[test]
    fn subsumption_follows_figure_3() {
        let tree = bib_like();
        let c0 = tree.require_concept("research output").unwrap();
        let c1 = tree.require_concept("publication").unwrap();
        let c2 = tree.require_concept("peer reviewed").unwrap();
        let c3 = tree.require_concept("journal").unwrap();
        let c5 = tree.require_concept("book").unwrap();
        let c9 = tree.require_concept("patent").unwrap();
        // c3 ⪯ c1, c4 ⪯ c1, c5 ⪯ c1 (Example 4.1)
        assert!(tree.subsumed_by(c3, c1));
        assert!(tree.subsumed_by(c5, c1));
        assert!(tree.subsumed_by(c3, c0));
        assert!(!tree.subsumed_by(c1, c3));
        assert!(!tree.subsumed_by(c9, c1));
        assert!(tree.related(c3, c2));
        assert!(!tree.related(c3, c5));
        assert!(tree.subsumed_by(c3, c3));
    }

    #[test]
    fn leaf_sets_match_the_paper() {
        let tree = bib_like();
        let leaf_labels = |label: &str| -> Vec<String> {
            let id = tree.require_concept(label).unwrap();
            tree.leaves_under(id)
                .into_iter()
                .map(|c| tree.label(c).unwrap().to_string())
                .collect()
        };
        // leaf(C0) has 6 leaves, leaf(C1) has 5 (Example 4.4: 5/6).
        assert_eq!(leaf_labels("research output").len(), 6);
        assert_eq!(leaf_labels("publication").len(), 5);
        assert_eq!(leaf_labels("peer reviewed"), vec!["journal", "proceedings", "book"]);
        assert_eq!(leaf_labels("journal"), vec!["journal"]);
        assert_eq!(tree.all_leaves().len(), 6);
    }

    #[test]
    fn paths_depths_and_lca() {
        let tree = bib_like();
        let c3 = tree.require_concept("journal").unwrap();
        let c7 = tree.require_concept("technical report").unwrap();
        let c1 = tree.require_concept("publication").unwrap();
        let c0 = tree.require_concept("research output").unwrap();
        assert_eq!(tree.depth(c0), Some(0));
        assert_eq!(tree.depth(c3), Some(3));
        assert_eq!(tree.path_to_root(c3).len(), 4);
        assert_eq!(tree.lowest_common_ancestor(c3, c7), Some(c1));
        assert_eq!(tree.lowest_common_ancestor(c3, c3), Some(c3));
        assert_eq!(tree.lowest_common_ancestor(c3, ConceptId(99)), None);
    }

    #[test]
    fn queries_on_unknown_ids_are_safe() {
        let tree = bib_like();
        let bogus = ConceptId(99);
        assert!(!tree.contains(bogus));
        assert_eq!(tree.label(bogus), None);
        assert_eq!(tree.parent(bogus), None);
        assert!(tree.children(bogus).is_empty());
        assert!(!tree.is_leaf(bogus));
        assert!(tree.leaves_under(bogus).is_empty());
        assert!(tree.path_to_root(bogus).is_empty());
        assert!(!tree.subsumed_by(bogus, bogus));
    }

    #[test]
    fn empty_tree_fails_validation() {
        let tree = TaxonomyTree::new("empty");
        assert!(tree.validate().is_err());
        assert_eq!(tree.root(), None);
        assert!(tree.all_leaves().is_empty());
    }

    #[test]
    fn concept_id_display() {
        assert_eq!(ConceptId(4).to_string(), "c4");
        assert_eq!(ConceptId(4).index(), 4);
    }
}
