//! Read-only published views of an incremental index.
//!
//! [`IndexView`] is the reader half of a single-writer/many-reader split:
//! [`IncrementalSaLshBlocker::publish_view`] freezes the current index state
//! behind shared [`Arc`]s in O(bands), and the view then answers candidate
//! lookups ([`IndexView::candidates`]) and snapshots without ever touching
//! the writer again — the writer's next mutation copies the shards it
//! touches ([`Arc::make_mut`]) instead of mutating the shared ones. Views
//! are `Send + Sync` (the semantic function is `Send + Sync` by trait
//! bound), so a service layer can hand clones of one view to any number of
//! query threads, lock-free.
//!
//! # Query/one-shot equivalence
//!
//! [`IndexView::candidates`] runs the probe record through *exactly* the
//! ingest signature pipeline — same shingler, same minhash permutations,
//! same pinned semhash family and per-band w-way functions — and unions the
//! live members of every bucket the probe would land in. The result is
//! therefore precisely the set of records one-shot
//! [`SaLshBlocker::block`](crate::lsh::salsh::SaLshBlocker::block) over
//! `corpus ∪ {probe}` would pair the probe with (property-tested in
//! `tests/service_equivalence.rs`): sharing a bucket with the probe is the
//! same predicate in both directions.

use std::sync::Arc;

use sablock_datasets::ground_truth::EntityId;
use sablock_datasets::{Record, RecordId};
use sablock_textual::hashing::StableHashSet;

use crate::blocking::BlockCollection;
use crate::error::{CoreError, Result};
use crate::lsh::BandingScheme;
use crate::minhash::shingle::RecordShingler;
use crate::minhash::MinHasher;

use super::{snapshot_bands, BandIndex, IncrementalBlocker, IncrementalSaLshBlocker, IncrementalSemantic, RunningCounts};

/// An immutable view of an [`IncrementalSaLshBlocker`] frozen at a
/// publication point (see the module docs). Cloning a view is cheap — the
/// bucket shards are shared, only the bookkeeping vectors are copied.
#[derive(Debug, Clone)]
pub struct IndexView {
    name: String,
    shingler: RecordShingler,
    hasher: MinHasher,
    banding: BandingScheme,
    semantic: Option<IncrementalSemantic>,
    bands: Vec<Arc<BandIndex>>,
    removed: Vec<bool>,
    entity_of: Vec<EntityId>,
    running: RunningCounts,
    next_id: u32,
    removed_count: usize,
    compactions: u64,
}

impl IndexView {
    /// Freezes the blocker's current state (the implementation behind
    /// [`IncrementalSaLshBlocker::publish_view`]).
    pub(super) fn capture(blocker: &IncrementalSaLshBlocker) -> Self {
        Self {
            name: blocker.name(),
            shingler: blocker.shingler.clone(),
            hasher: blocker.hasher.clone(),
            banding: blocker.banding,
            semantic: blocker.semantic.clone(),
            bands: blocker.bands.clone(),
            removed: blocker.removed.clone(),
            entity_of: blocker.entity_of.clone(),
            running: blocker.running,
            next_id: blocker.next_id,
            removed_count: blocker.removed_count,
            compactions: blocker.compactions,
        }
    }

    /// The configuration fingerprint of the index this view was published
    /// from ([`IncrementalBlocker::name`] at publication time).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The candidate partners the probe record collides with in this view —
    /// union of the live members of every `(band, bucket, sub-key)` the
    /// probe's signatures select, sorted by id, deduplicated across bands,
    /// and with the probe's own id excluded (a record is never its own
    /// candidate). Equivalent to the probe's one-shot partner set; see the
    /// module docs.
    pub fn candidates(&self, record: &Record) -> Result<Vec<RecordId>> {
        probe_candidates(
            &self.shingler,
            &self.hasher,
            &self.banding,
            self.semantic.as_ref(),
            &self.bands,
            &self.removed,
            record,
        )
    }

    /// The view's blocking as a [`BlockCollection`] — byte-identical to the
    /// blocker's [`IncrementalBlocker::snapshot`] at the publication point.
    pub fn snapshot(&self) -> BlockCollection {
        snapshot_bands(&self.bands, &self.removed, self.semantic.is_some())
    }

    /// The probe-side shingle set of a record under this view's shingler —
    /// what a service layer feeds a Jaccard scorer to rank candidates.
    pub fn shingle_set(&self, record: &Record) -> StableHashSet<u64> {
        self.shingler.shingles(record)
    }

    /// Number of records ingested at the publication point (including
    /// tombstoned ones).
    pub fn num_records(&self) -> usize {
        self.next_id as usize
    }

    /// Number of live (non-removed) records at the publication point.
    pub fn num_live_records(&self) -> usize {
        self.next_id as usize - self.removed_count
    }

    /// Whether the id was ingested and not tombstoned at the publication
    /// point.
    pub fn is_live(&self, id: RecordId) -> bool {
        self.removed.get(id.index()).is_some_and(|&removed| !removed)
    }

    /// The id the next ingested record would have carried at the
    /// publication point — the id a not-yet-ingested probe record should use.
    pub fn next_record_id(&self) -> RecordId {
        RecordId(self.next_id)
    }

    /// The running `|Γ|` / `|Γ_tp|` counters at the publication point.
    pub fn running_counts(&self) -> RunningCounts {
        self.running
    }

    /// The entity annotations at the publication point (dense by record id;
    /// may be shorter than [`IndexView::num_records`]).
    pub fn entity_table(&self) -> &[EntityId] {
        &self.entity_of
    }

    /// Number of tombstoned records at the publication point.
    pub fn num_removed(&self) -> usize {
        self.removed_count
    }

    /// Number of bucket compactions the index had performed at the
    /// publication point (threshold-driven and forced).
    pub fn num_compactions(&self) -> u64 {
        self.compactions
    }
}

/// The shared probe-lookup implementation of [`IndexView::candidates`] and
/// [`IncrementalSaLshBlocker::query_candidates`]: runs the probe through the
/// ingest signature pipeline and unions the live bucket members it selects.
pub(super) fn probe_candidates(
    shingler: &RecordShingler,
    hasher: &MinHasher,
    banding: &BandingScheme,
    semantic: Option<&IncrementalSemantic>,
    bands: &[Arc<BandIndex>],
    removed: &[bool],
    record: &Record,
) -> Result<Vec<RecordId>> {
    for attribute in shingler.attributes() {
        if record.schema().index_of(attribute).is_none() {
            return Err(CoreError::Config(format!(
                "attribute '{attribute}' selected for blocking does not exist in the schema of the probe record"
            )));
        }
    }
    let shingles = shingler.shingles(record);
    if shingles.is_empty() {
        // Text-free records are never indexed, so they collide with nothing
        // — exactly like the ingest path skipping them.
        return Ok(Vec::new());
    }
    let signature = hasher.signature(&shingles);
    let sem_signature = semantic.map(|semantic| {
        let interpretation = semantic.config.function.interpret(record);
        semantic.family.signature(&semantic.config.taxonomy, &interpretation)
    });
    let mut candidates: Vec<RecordId> = Vec::new();
    let mut collect = |bucket: &super::Bucket| {
        candidates.extend(
            bucket
                .members
                .iter()
                .copied()
                .filter(|member| *member != record.id() && !removed[member.index()]),
        );
    };
    for (band_index, band) in bands.iter().enumerate() {
        let bucket_key = banding.band_key(&signature, band_index);
        match (semantic, &sem_signature) {
            (Some(semantic), Some(sem)) => {
                for sub in semantic.band_hashes[band_index].sub_keys(sem) {
                    let key = (bucket_key, sub as u64);
                    if let Some(bucket) = band.get(&key) {
                        collect(bucket);
                    }
                }
            }
            _ => {
                if let Some(bucket) = band.get(&(bucket_key, 0)) {
                    collect(bucket);
                }
            }
        }
    }
    candidates.sort_unstable();
    candidates.dedup();
    Ok(candidates)
}

#[cfg(test)]
mod tests {
    use super::super::tests::{lsh_builder, salsh_pair, sample_dataset, titles_dataset};
    use super::*;
    use crate::blocking::Blocker;
    use sablock_datasets::Schema;

    /// The reference lookup: the partners one-shot blocking pairs a probe
    /// with are exactly the records sharing a block with it.
    fn one_shot_partners(blocks: &BlockCollection, probe: RecordId) -> Vec<RecordId> {
        let mut partners: Vec<RecordId> = Vec::new();
        for block in blocks.blocks() {
            if block.members().contains(&probe) {
                partners.extend(block.members().iter().copied().filter(|&id| id != probe));
            }
        }
        partners.sort_unstable();
        partners.dedup();
        partners
    }

    #[test]
    fn view_candidates_match_one_shot_partners() {
        let dataset = sample_dataset();
        let (one_shot, mut incremental) = salsh_pair();
        let corpus = &dataset.records()[..7];
        incremental.insert_batch(corpus).unwrap();
        let view = incremental.publish_view();
        let reference = one_shot.block(&dataset).unwrap();

        // Probe with the last record, re-identified as the next dense id so
        // it plays the role of a new arrival over the 7-record corpus.
        let probe_source = &dataset.records()[7];
        let probe = Record::new(
            view.next_record_id(),
            std::sync::Arc::clone(probe_source.schema()),
            probe_source.values().to_vec(),
        )
        .unwrap();
        let expected = one_shot_partners(&reference, RecordId(7));
        assert_eq!(view.candidates(&probe).unwrap(), expected);
        assert_eq!(incremental.query_candidates(&probe).unwrap(), expected);
        assert!(!expected.is_empty(), "the sample corpus collides with the probe");
        assert!(view.name().starts_with("Incremental-SA-LSH("));
    }

    #[test]
    fn views_are_frozen_at_the_publication_point() {
        let dataset = sample_dataset();
        let mut incremental = lsh_builder().into_incremental().unwrap();
        incremental.insert_batch(&dataset.records()[..4]).unwrap();
        let early = incremental.publish_view();
        let early_blocks = early.snapshot();

        incremental.insert_batch(&dataset.records()[4..]).unwrap();
        incremental.remove(RecordId(1)).unwrap();
        let late = incremental.publish_view();

        // The early view still renders the 4-record state, byte for byte,
        // even though the writer has since mutated (and compacted) shards.
        assert_eq!(early.snapshot().blocks(), early_blocks.blocks());
        assert_eq!(early.num_records(), 4);
        assert_eq!(early.num_live_records(), 4);
        assert!(early.is_live(RecordId(1)), "the early view predates the removal");
        assert!(!late.is_live(RecordId(1)));
        assert!(!late.is_live(RecordId(99)), "never-ingested ids are not live");
        assert_eq!(late.num_records(), dataset.len());
        assert_eq!(late.snapshot().blocks(), incremental.snapshot().blocks());
        assert_eq!(late.running_counts(), incremental.running_counts());
        assert_eq!(early.next_record_id(), RecordId(4));
    }

    #[test]
    fn probe_validation_and_empty_probes() {
        let dataset = sample_dataset();
        let mut incremental = lsh_builder().into_incremental().unwrap();
        incremental.insert_batch(dataset.records()).unwrap();
        let view = incremental.publish_view();

        // A probe whose schema lacks the blocking attribute is rejected.
        let other = Schema::shared(["name"]).unwrap();
        let wrong = Record::new(RecordId(50), other, vec![Some("x".into())]).unwrap();
        assert!(view.candidates(&wrong).is_err());

        // A text-free probe collides with nothing.
        let empty = titles_dataset(&[""]);
        assert!(view.candidates(&empty.records()[0]).unwrap().is_empty());

        // Probing with an indexed record's own id excludes the record itself.
        let own = view.candidates(&dataset.records()[0]).unwrap();
        assert!(!own.contains(&RecordId(0)));
        assert_eq!(own, one_shot_partners(&view.snapshot(), RecordId(0)));

        // The view's shingle set matches the shingler's.
        assert!(!view.shingle_set(&dataset.records()[0]).is_empty());
        assert_eq!(view.entity_table().len(), 0, "unannotated ingest leaves the table empty");
    }
}
