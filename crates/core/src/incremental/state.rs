//! Exportable mutable state of an incremental index (persistence support).
//!
//! [`IndexDump`] is everything an [`IncrementalSaLshBlocker`] accumulates at
//! runtime — bucket shards, tombstones, entity annotations, running counters
//! — decoupled from its *configuration* (shingler, minhash permutations,
//! banding, pinned semantic family), which is deterministic from the builder
//! and therefore never serialised. A persistence layer encodes the dump in
//! whatever container format it likes; restoring it into a freshly built
//! blocker of the same configuration ([`IncrementalSaLshBlocker::restore`])
//! reproduces the dumped index **byte-identically**: same snapshots, same
//! running counts, and — because the bucket back-references are rebuilt in
//! the exact order ingest would have produced — same behaviour under every
//! future insert/remove sequence.
//!
//! Restore never trusts the dump: band counts, key ordering, member
//! ordering, id bounds and per-bucket tombstone accounting are all
//! re-validated, and violations surface as typed [`CoreError::Config`]
//! errors instead of corrupting the index (or panicking later).

use std::sync::Arc;

use sablock_datasets::ground_truth::EntityId;
use sablock_datasets::RecordId;

use crate::error::{CoreError, Result};

use super::{BandIndex, Bucket, BucketRef, DeltaPairs, IncrementalSaLshBlocker, RunningCounts};

/// One bucket of one band shard, in exportable form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketDump {
    /// The `(textual bucket key, semantic sub-key)` the bucket lives under.
    pub key: (u64, u64),
    /// Members in strictly ascending id order — tombstoned members
    /// included, exactly as they linger in the live index.
    pub members: Vec<RecordId>,
    /// How many of `members` are currently tombstoned.
    pub dead: u32,
}

/// The full runtime state of an [`IncrementalSaLshBlocker`] (see the module
/// docs). Produced by [`IncrementalSaLshBlocker::dump`], consumed by
/// [`IncrementalSaLshBlocker::restore`].
#[derive(Debug, Clone, PartialEq)]
pub struct IndexDump {
    /// Per band (ascending band order), the buckets sorted strictly
    /// ascending by key.
    pub bands: Vec<Vec<BucketDump>>,
    /// Dense tombstone flags; the length is the ingested id space, so
    /// `removed.len()` is the next record id.
    pub removed: Vec<bool>,
    /// Entity annotations (a dense prefix of the id space; shorter than
    /// `removed` when batches were ingested unannotated).
    pub entity_of: Vec<EntityId>,
    /// The running `|Γ|` / `|Γ_tp|` counters over the live corpus.
    pub running: RunningCounts,
    /// Number of batches ingested so far.
    pub batches_ingested: u64,
    /// Number of bucket compactions performed so far.
    pub compactions: u64,
    /// The dead fraction at which removal-touched buckets compact.
    pub compaction_threshold: f64,
}

impl IncrementalSaLshBlocker {
    /// Exports the blocker's runtime state (see [`IndexDump`]). The dump is
    /// fully deterministic: bucket keys are sorted per band, so two blockers
    /// with equal observable state produce equal dumps.
    pub fn dump(&self) -> IndexDump {
        let bands = self
            .bands
            .iter()
            .map(|band| {
                let mut buckets: Vec<BucketDump> = band
                    .iter()
                    .map(|(&key, bucket)| BucketDump { key, members: bucket.members.clone(), dead: bucket.dead })
                    .collect();
                buckets.sort_unstable_by_key(|bucket| bucket.key);
                buckets
            })
            .collect();
        let batches_ingested = self.batches_ingested as u64;
        IndexDump {
            bands,
            removed: self.removed.clone(),
            entity_of: self.entity_of.clone(),
            running: self.running,
            batches_ingested,
            compactions: self.compactions,
            compaction_threshold: self.compaction_threshold,
        }
    }

    /// Installs a dumped state into a freshly built blocker of the same
    /// configuration, consuming it builder-style. Everything the dump
    /// claims is re-validated (band count, key/member ordering, id bounds,
    /// tombstone accounting); violations return [`CoreError::Config`] and
    /// leave no half-restored index behind.
    ///
    /// The restored blocker is observationally identical to the dumped one:
    /// snapshots, candidate lookups, running counts and all future
    /// insert/remove behaviour match byte for byte (the per-record bucket
    /// back-references are rebuilt in exactly the band-then-key order ingest
    /// produces). The only non-restored state is the last per-batch delta,
    /// which resets to empty — it describes an ingest call, not the index.
    pub fn restore(mut self, dump: IndexDump) -> Result<Self> {
        if self.next_id != 0 {
            return Err(CoreError::Config(
                "restore target must be a freshly built incremental blocker with no ingested records".into(),
            ));
        }
        if dump.bands.len() != self.bands.len() {
            return Err(CoreError::Config(format!(
                "dump carries {} band shards but the blocker is configured for {}",
                dump.bands.len(),
                self.bands.len()
            )));
        }
        let dumped_len = dump.removed.len();
        let claimed = dumped_len as u64;
        let next_id = u32::try_from(dumped_len).map_err(|_| CoreError::RecordIdOverflow(claimed))?;
        if dump.entity_of.len() > dumped_len {
            return Err(CoreError::Config(format!(
                "dump annotates {} entities over an id space of {dumped_len}",
                dump.entity_of.len()
            )));
        }
        if !dump.compaction_threshold.is_finite() || dump.compaction_threshold < 0.0 {
            return Err(CoreError::Config(format!(
                "dump compaction threshold {} is not a finite non-negative fraction",
                dump.compaction_threshold
            )));
        }
        let batches_ingested = usize::try_from(dump.batches_ingested)
            .map_err(|_| CoreError::Config(format!("dump batch count {} overflows usize", dump.batches_ingested)))?;

        // Validation + back-reference rebuild in one borrow pass. Walking
        // bands ascending and keys ascending appends each live record's refs
        // in exactly the order ingest accumulated them, so future removals
        // behave identically on the restored index.
        let mut bucket_refs: Vec<Vec<BucketRef>> = vec![Vec::new(); dumped_len];
        for (band, buckets) in dump.bands.iter().enumerate() {
            let mut previous_key: Option<(u64, u64)> = None;
            for bucket in buckets {
                if previous_key.is_some_and(|previous| previous >= bucket.key) {
                    return Err(CoreError::Config(format!(
                        "band {band} bucket keys are not strictly ascending at {:?}",
                        bucket.key
                    )));
                }
                previous_key = Some(bucket.key);
                if bucket.members.is_empty() {
                    return Err(CoreError::Config(format!(
                        "band {band} bucket {:?} has no members — empty buckets are never stored",
                        bucket.key
                    )));
                }
                let mut dead = 0u32;
                let mut previous_member: Option<RecordId> = None;
                for &member in &bucket.members {
                    if member.index() >= dumped_len {
                        return Err(CoreError::Config(format!(
                            "band {band} bucket {:?} member {member} is outside the dumped id space of {dumped_len}",
                            bucket.key
                        )));
                    }
                    if previous_member.is_some_and(|previous| previous >= member) {
                        return Err(CoreError::Config(format!(
                            "band {band} bucket {:?} members are not strictly ascending at {member}",
                            bucket.key
                        )));
                    }
                    previous_member = Some(member);
                    if dump.removed[member.index()] {
                        dead += 1;
                    } else {
                        bucket_refs[member.index()].push(BucketRef { band, key: bucket.key });
                    }
                }
                if dead != bucket.dead {
                    return Err(CoreError::Config(format!(
                        "band {band} bucket {:?} claims {} dead members but {dead} are tombstoned",
                        bucket.key, bucket.dead
                    )));
                }
            }
        }

        let removed_count = dump.removed.iter().filter(|&&removed| removed).count();
        self.bands = dump
            .bands
            .into_iter()
            .map(|buckets| {
                let mut band = BandIndex::default();
                for bucket in buckets {
                    band.insert(bucket.key, Bucket { members: bucket.members, dead: bucket.dead });
                }
                Arc::new(band)
            })
            .collect();
        self.bucket_refs = bucket_refs;
        self.entity_of = dump.entity_of;
        self.running = dump.running;
        self.compaction_threshold = dump.compaction_threshold;
        self.compactions = dump.compactions;
        self.next_id = next_id;
        self.removed = dump.removed;
        self.removed_count = removed_count;
        self.last_delta = DeltaPairs::empty();
        self.batches_ingested = batches_ingested;
        // `check-invariants` builds: the cross-batch disjointness set starts
        // empty, which is sound — every future delta pair involves a record
        // with id ≥ the restored `next_id`, so it cannot collide with any
        // key the dumped index emitted before the dump.
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::{lsh_builder, salsh_pair, sample_dataset};
    use super::super::IncrementalBlocker;
    use super::*;

    /// Dump → restore into a fresh twin → every observable must match.
    #[test]
    fn dump_restore_round_trips_byte_identically() {
        let dataset = sample_dataset();
        let (_, mut original) = salsh_pair();
        for chunk in dataset.records().chunks(3) {
            original.insert_batch(chunk).unwrap();
        }
        original.remove(RecordId(2)).unwrap();

        let dump = original.dump();
        let (_, fresh) = salsh_pair();
        let restored = fresh.restore(dump.clone()).unwrap();

        assert_eq!(restored.snapshot().blocks(), original.snapshot().blocks());
        assert_eq!(restored.running_counts(), original.running_counts());
        assert_eq!(restored.num_records(), original.num_records());
        assert_eq!(restored.num_removed(), original.num_removed());
        assert_eq!(restored.num_batches(), original.num_batches());
        assert_eq!(restored.num_compactions(), original.num_compactions());
        assert_eq!(restored.dump(), dump, "re-dumping the restored index is a fixpoint");

        // Future behaviour matches: same inserts and removals on both sides
        // keep the twins byte-identical.
        let extra = sample_dataset();
        let rows: Vec<Vec<Option<String>>> =
            extra.records().iter().take(2).map(|r| r.values().to_vec()).collect();
        let schema = std::sync::Arc::clone(extra.records()[0].schema());
        let mut original = original;
        let mut restored = restored;
        original.insert_values(&schema, rows.clone()).unwrap();
        restored.insert_values(&schema, rows).unwrap();
        assert_eq!(restored.delta_pairs(), original.delta_pairs());
        original.remove(RecordId(0)).unwrap();
        restored.remove(RecordId(0)).unwrap();
        assert_eq!(restored.snapshot().blocks(), original.snapshot().blocks());
        assert_eq!(restored.running_counts(), original.running_counts());
        assert_eq!(restored.dump(), original.dump());
    }

    #[test]
    fn restore_validates_the_dump() {
        let dataset = sample_dataset();
        let mut blocker = lsh_builder().into_incremental().unwrap();
        blocker.insert_batch(dataset.records()).unwrap();
        let good = blocker.dump();

        let fresh = || lsh_builder().into_incremental().unwrap();

        // A non-empty target is rejected.
        let mut seeded = fresh();
        seeded.insert_batch(&dataset.records()[..1]).unwrap();
        assert!(seeded.restore(good.clone()).is_err());

        // Band-count mismatch.
        let mut bad = good.clone();
        bad.bands.pop();
        assert!(fresh().restore(bad).is_err());

        // Non-ascending bucket keys.
        let mut bad = good.clone();
        let band = bad.bands.iter_mut().find(|b| b.len() >= 2).expect("some band has 2+ buckets");
        band.swap(0, 1);
        assert!(fresh().restore(bad).is_err());

        // Member outside the id space.
        let mut bad = good.clone();
        bad.removed.pop();
        assert!(fresh().restore(bad).is_err());

        // Non-ascending members within a bucket.
        let mut bad = good.clone();
        let bucket = bad
            .bands
            .iter_mut()
            .flat_map(|band| band.iter_mut())
            .find(|bucket| bucket.members.len() >= 2)
            .expect("some bucket has 2+ members");
        bucket.members.swap(0, 1);
        assert!(fresh().restore(bad).is_err());

        // Dead-count mismatch.
        let mut bad = good.clone();
        bad.bands[0][0].dead += 1;
        assert!(fresh().restore(bad).is_err());

        // Empty bucket.
        let mut bad = good.clone();
        bad.bands[0][0].members.clear();
        bad.bands[0][0].dead = 0;
        assert!(fresh().restore(bad).is_err());

        // Oversized entity table.
        let mut bad = good.clone();
        bad.entity_of = vec![EntityId(0); bad.removed.len() + 1];
        assert!(fresh().restore(bad).is_err());

        // Non-finite compaction threshold.
        let mut bad = good.clone();
        bad.compaction_threshold = f64::NAN;
        assert!(fresh().restore(bad).is_err());

        // The pristine dump still restores after all those rejections.
        assert!(fresh().restore(good).is_ok());
    }
}
