//! Incremental (online) blocking for streaming ingest.
//!
//! The paper evaluates SA-LSH on static snapshots; a production deployment
//! serves a *live* record stream, and re-blocking hundreds of thousands of
//! records from scratch on every arrival is a non-starter. This module keeps
//! the banding index of [`SaLshBlocker`](crate::lsh::salsh::SaLshBlocker)
//! *mutable*: new records compute their signatures through the same
//! [`parallel_map`] path as one-shot blocking and are **appended** to the
//! per-band bucket shards — no signature of an existing record is ever
//! recomputed, and buckets the batch does not touch are left alone. The
//! shards themselves are cached per band as stable-hash bucket maps, so an
//! insert pays O(1) per bucket it lands in, and each band's shard is updated
//! by its own [`parallel_map_mut`] worker with the results stitched back in
//! deterministic band order.
//!
//! # Delta pairs
//!
//! Each [`IncrementalBlocker::insert_batch`] emits the batch's **delta
//! candidate pairs**: every pair that is in Γ after the batch but was not
//! before. Because a pair between two *old* records cannot appear by adding
//! new records, the delta is exactly the set of bucket-sharing pairs that
//! involve at least one new record — enumerable from the touched buckets
//! alone. Deltas are carried as sorted, deduplicated packed-`u64` runs
//! ([`RecordPair::pack`]), the same representation every bulk pair path of
//! [`crate::blocking`] runs on; the runs are merged into the delta's
//! distinct-key cache **once per generation** (during the ingest fold that
//! updates the running counters), so [`DeltaPairs::counts`] and
//! [`DeltaPairs::num_pairs`] never re-scan the redundant runs. Absent
//! removals, deltas of successive batches are **disjoint**: summing
//! per-batch [`PairCounts`] equals a from-scratch count of the merged whole,
//! byte for byte.
//!
//! # Running counters
//!
//! The blocker folds every delta into a [`RunningCounts`] accumulator as it
//! is produced: `pairs` is the live `|Γ|`, and — when batches carry entity
//! annotations ([`IncrementalSaLshBlocker::insert_batch_with_entities`]) —
//! `true_positives` is the live `|Γ_tp|`, probed through the same
//! [`EntityTableProbe`] fast path as the streaming Γ counter. Reading
//! snapshot metrics is therefore O(1) after O(delta) per-batch maintenance,
//! instead of the O(corpus) re-count a snapshot stream costs.
//!
//! # Removals and compaction
//!
//! [`IncrementalBlocker::remove`] tombstones a record and *subtracts its
//! live contribution* from the running counters by walking only the buckets
//! the record occupies (per-record bucket back-references kept at insert
//! time), deduplicating across bands so each retired pair is subtracted
//! exactly once. Tombstoned members linger in their buckets until the
//! bucket's dead fraction crosses the compaction threshold
//! ([`IncrementalSaLshBlocker::set_compaction_threshold`]), at which point
//! the `(band, bucket)` shard is rebuilt in place — an observation-
//! equivalent operation: snapshots, running counts and all future deltas are
//! byte-identical with or without compaction (property-tested in
//! `tests/incremental_differential.rs`). [`IncrementalBlocker::snapshot`]
//! is always exact, and with the running counters so are cumulative metrics
//! under arbitrary insert/remove interleavings.
//!
//! # Equivalence with one-shot blocking
//!
//! Ingesting any partition of a dataset batch by batch and taking a
//! [`IncrementalBlocker::snapshot`] produces a [`BlockCollection`] that is
//! **byte-identical** (same keys, same members, same order) to one-shot
//! [`SaLshBlocker::block`](crate::blocking::Blocker::block) over the whole
//! dataset — property-tested in `tests/incremental.rs`. For SA-LSH one
//! caveat applies: the one-shot blocker derives its semhash family from the
//! dataset's interpretations, which an incremental index cannot do (the
//! family must not drift as batches arrive). The incremental blocker
//! therefore pins the family at construction — an explicitly pinned one
//! ([`SemanticConfig::with_pinned_family`]) or, by default, all leaves of
//! the taxonomy — and equivalence holds against a one-shot blocker pinned to
//! the same family (which, for datasets whose records reach every leaf, is
//! exactly what Algorithm 1 derives; NC Voter does at any realistic scale).

mod state;
mod view;

pub use state::{BucketDump, IndexDump};
pub use view::IndexView;

use std::sync::Arc;
use std::sync::OnceLock;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sablock_datasets::ground_truth::EntityId;
use sablock_datasets::record::RecordPair;
use sablock_datasets::{DatasetError, Record, RecordId, Schema, MAX_RECORD_ID};
use sablock_textual::hashing::StableHashMap;

use crate::blocking::{
    merge_packed_runs_into, radix_sort_packed, Block, BlockCollection, EntityTableProbe, PackedProbe, PairCounts,
};
use crate::error::{CoreError, Result};
use crate::lsh::semantic_hash::WWaySemanticHash;
use crate::lsh::{BandingScheme, SemanticConfig};
use crate::minhash::shingle::RecordShingler;
use crate::minhash::{MinHasher, MinhashConfig};
use crate::parallel::{parallel_map, parallel_map_mut, resolve_threads};
use crate::semantic::semhash::SemhashFamily;

/// The candidate pairs one ingest batch added to Γ, as sorted and
/// individually deduplicated packed-`u64` runs (one run per band; a pair
/// colliding in several bands appears in several runs), plus a lazily
/// materialised cache of the **distinct** keys across all runs.
///
/// The cache is populated exactly once per delta generation — by the ingest
/// fold that maintains the blocker's [`RunningCounts`], or on the first
/// counting call for hand-built deltas — so repeated [`DeltaPairs::counts`]
/// / [`DeltaPairs::num_pairs`] calls never re-merge the redundant runs.
#[derive(Debug, Default)]
pub struct DeltaPairs {
    runs: Vec<Vec<u64>>,
    merged: OnceLock<Vec<u64>>,
}

impl Clone for DeltaPairs {
    fn clone(&self) -> Self {
        let merged = OnceLock::new();
        if let Some(cached) = self.merged.get() {
            let _ = merged.set(cached.clone());
        }
        Self { runs: self.runs.clone(), merged }
    }
}

impl PartialEq for DeltaPairs {
    fn eq(&self, other: &Self) -> bool {
        // The cache is derived state: two deltas are equal iff their runs are.
        self.runs == other.runs
    }
}

impl Eq for DeltaPairs {}

impl DeltaPairs {
    /// A delta with no pairs.
    pub fn empty() -> Self {
        Self::default()
    }

    pub(crate) fn from_runs(runs: Vec<Vec<u64>>) -> Self {
        Self {
            runs: runs.into_iter().filter(|run| !run.is_empty()).collect(),
            merged: OnceLock::new(),
        }
    }

    /// A delta whose distinct keys were already merged (the ingest fold
    /// counts the runs while producing them, so the cache comes for free).
    pub(crate) fn from_counted_runs(runs: Vec<Vec<u64>>, merged: Vec<u64>) -> Self {
        let delta = Self::from_runs(runs);
        let _ = delta.merged.set(merged);
        delta
    }

    /// The sorted, deduplicated packed runs.
    pub fn runs(&self) -> &[Vec<u64>] {
        &self.runs
    }

    /// Whether the delta holds no pairs at all.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// The delta's distinct packed pair keys in ascending order. Merged from
    /// the redundant per-band runs at most once per delta generation (the
    /// loser-tree/galloping merge of [`crate::blocking`]) and cached.
    pub fn distinct_packed(&self) -> &[u64] {
        self.merged.get_or_init(|| {
            let mut merged: Vec<u64> = Vec::with_capacity(self.runs.iter().map(Vec::len).sum());
            merge_packed_runs_into(&self.runs, |segment| merged.extend_from_slice(segment));
            merged
        })
    }

    /// Whether the distinct-key cache is populated. Deltas returned by
    /// [`IncrementalBlocker::insert_batch`] always are; a hand-built delta
    /// becomes counted on its first [`DeltaPairs::counts`] /
    /// [`DeltaPairs::num_pairs`] / [`DeltaPairs::pairs`] call.
    pub fn is_counted(&self) -> bool {
        self.merged.get().is_some()
    }

    /// Counts the delta's distinct pairs, probing each **exactly once** over
    /// the cached distinct-key run — repeated calls never re-scan the
    /// redundant per-band runs (regression-tested in this module).
    pub fn counts<P: PackedProbe>(&self, probe: &P) -> PairCounts {
        let distinct = self.distinct_packed();
        let mut matching = 0u64;
        for &key in distinct {
            if probe.matches(key) {
                matching += 1;
            }
        }
        PairCounts { distinct: distinct.len() as u64, matching }
    }

    /// Number of distinct pairs in the delta — O(1) once counted.
    pub fn num_pairs(&self) -> u64 {
        self.distinct_packed().len() as u64
    }

    /// Materialises the delta's distinct pairs in ascending order (tests,
    /// goldens, small deltas — bulk consumers should stay on the packed
    /// runs).
    pub fn pairs(&self) -> Vec<RecordPair> {
        self.distinct_packed().iter().copied().map(RecordPair::from_packed).collect()
    }
}

/// Running `|Γ|` / `|Γ_tp|` accumulators maintained by the incremental
/// blocker in O(delta) per batch and O(buckets-of-record) per removal, so
/// snapshot-level metrics are an O(1) read instead of an O(corpus) re-count.
///
/// `true_positives` is exact when every batch carried entity annotations
/// ([`IncrementalSaLshBlocker::insert_batch_with_entities`]); pairs touching
/// unannotated records are counted as non-matching, exactly like records
/// beyond the table in [`EntityTableProbe`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunningCounts {
    /// Distinct candidate pairs currently in Γ over the live (non-removed)
    /// corpus.
    pub pairs: u64,
    /// Of those, the pairs whose two records share an annotated entity.
    pub true_positives: u64,
}

impl RunningCounts {
    /// The counters as a [`PairCounts`] — the shape the evaluation APIs
    /// consume.
    pub fn as_pair_counts(self) -> PairCounts {
        PairCounts { distinct: self.pairs, matching: self.true_positives }
    }
}

/// An online blocker: records arrive in batches, candidate pairs leave as
/// per-batch deltas, and the current blocking is available as a snapshot at
/// any time.
///
/// Implementations must keep snapshots byte-identical to one-shot blocking
/// of everything ingested so far (minus removed records) — batching is an
/// operational choice, never a semantic one.
pub trait IncrementalBlocker {
    /// A short human-readable name used in reports.
    fn name(&self) -> String;

    /// Number of records ingested so far (including tombstoned ones — ids
    /// are never reused).
    fn num_records(&self) -> usize;

    /// Ingests a batch of new records and returns the delta candidate pairs
    /// the batch added to Γ. Record ids must continue the dense id space
    /// (`num_records()`, `num_records() + 1`, …); ids beyond
    /// [`MAX_RECORD_ID`] are rejected with
    /// [`CoreError::RecordIdOverflow`].
    fn insert_batch(&mut self, records: &[Record]) -> Result<&DeltaPairs>;

    /// Tombstones a record: it stops appearing in snapshots and in future
    /// deltas, and its live pairs are subtracted from the running counters.
    /// Returns `false` when the record was already removed; errors when the
    /// id was never ingested.
    fn remove(&mut self, id: RecordId) -> Result<bool>;

    /// The delta emitted by the most recent [`insert_batch`] call (empty
    /// before the first batch).
    ///
    /// [`insert_batch`]: IncrementalBlocker::insert_batch
    fn delta_pairs(&self) -> &DeltaPairs;

    /// The current blocking as a [`BlockCollection`] — byte-identical to
    /// one-shot blocking of all live (non-removed) records.
    fn snapshot(&self) -> BlockCollection;
}

/// The pinned semantic state of an incremental SA-LSH index: family and
/// per-band w-way hash functions are fixed at construction, so a record's
/// sub-block keys never change after ingestion.
#[derive(Debug, Clone)]
struct IncrementalSemantic {
    config: SemanticConfig,
    family: SemhashFamily,
    band_hashes: Vec<WWaySemanticHash>,
}

/// One bucket of a band shard: members in ascending id order (tombstoned
/// members linger until compaction) plus the count of members currently
/// tombstoned.
#[derive(Debug, Clone, Default)]
struct Bucket {
    members: Vec<RecordId>,
    dead: u32,
}

impl Bucket {
    /// Whether the bucket's dead fraction has reached the compaction
    /// threshold. A threshold of 0.0 compacts on the first tombstone; a
    /// threshold above 1.0 never compacts.
    fn compaction_due(&self, threshold: f64) -> bool {
        self.dead > 0 && f64::from(self.dead) >= threshold * self.members.len() as f64
    }

    /// Rebuilds the bucket in place, dropping tombstoned members. Keeps the
    /// ascending-id member order, so snapshots are byte-identical before and
    /// after.
    fn compact(&mut self, removed: &[bool]) {
        self.members.retain(|member| !removed[member.index()]);
        self.dead = 0;
    }
}

/// One band's bucket shard: `(textual bucket key, semantic sub-key)` →
/// [`Bucket`]. Plain LSH stores everything under sub-key 0. A deterministic
/// (seeded FxHash) map, so lookups are O(1) on the insert hot path; every
/// order-sensitive consumer (snapshots) sorts the touched keys, which
/// reproduces the previous ordered-map iteration byte for byte.
///
/// Shards are held behind [`Arc`]s so that publishing a read-only
/// [`IndexView`] is O(bands): the view shares the shard allocations, and the
/// next mutation copies only the shards it actually touches
/// ([`Arc::make_mut`] — copy-on-write).
type BandIndex = StableHashMap<(u64, u64), Bucket>;

/// A back-reference from a record to one bucket it occupies — the removal
/// path enumerates exactly these instead of scanning the index.
#[derive(Debug, Clone, Copy)]
struct BucketRef {
    band: usize,
    key: (u64, u64),
}

/// What one band's ingest worker hands back: the `(bucket key, record)`
/// placements it applied to its own shard (sorted by key, ids ascending
/// within a key — the source of the back-references) and the band's sorted,
/// deduplicated delta run.
struct BandOutcome {
    touched: Vec<((u64, u64), RecordId)>,
    delta_run: Vec<u64>,
}

/// Default dead fraction at which a `(band, bucket)` shard is compacted in
/// place after a removal touches it.
pub const DEFAULT_COMPACTION_THRESHOLD: f64 = 0.5;

/// Incremental LSH / SA-LSH blocking (see the module docs).
///
/// Built from a configured blocker via
/// [`SaLshBlocker::into_incremental`](crate::lsh::salsh::SaLshBlocker::into_incremental)
/// or directly from the builder via
/// [`SaLshBlockerBuilder::into_incremental`](crate::lsh::salsh::SaLshBlockerBuilder::into_incremental).
///
/// The index is one bucket shard per band, keyed by
/// `(textual bucket key, semantic sub-key)` — plain LSH uses a constant
/// sub-key of 0 — with members kept in ascending id order (batches arrive in
/// id order and append). Sorting each shard's keys and walking the shards in
/// band order reproduces exactly the deterministic band-order merge of the
/// one-shot sharded bucket phase.
#[derive(Debug, Clone)]
pub struct IncrementalSaLshBlocker {
    shingler: RecordShingler,
    minhash: MinhashConfig,
    banding: BandingScheme,
    hasher: MinHasher,
    semantic: Option<IncrementalSemantic>,
    threads: Option<usize>,
    bands: Vec<Arc<BandIndex>>,
    /// Per-record bucket back-references; emptied when the record is
    /// tombstoned (a dead record's buckets are never walked again).
    bucket_refs: Vec<Vec<BucketRef>>,
    /// Dense record → entity annotations accumulated from
    /// `insert_batch_with_entities`; may be shorter than the id space when
    /// batches were ingested unannotated.
    entity_of: Vec<EntityId>,
    running: RunningCounts,
    compaction_threshold: f64,
    compactions: u64,
    next_id: u32,
    removed: Vec<bool>,
    removed_count: usize,
    last_delta: DeltaPairs,
    batches_ingested: usize,
    /// Every packed pair key any batch's delta has ever reported — the
    /// cross-batch disjointness sanitizer (`check-invariants` builds only).
    #[cfg(feature = "check-invariants")]
    emitted_delta_keys: std::collections::BTreeSet<u64>,
}

impl IncrementalSaLshBlocker {
    /// Assembles an incremental index from the (validated) parts of a
    /// [`SaLshBlocker`](crate::lsh::salsh::SaLshBlocker).
    pub(crate) fn from_parts(
        shingler: RecordShingler,
        minhash: MinhashConfig,
        banding: BandingScheme,
        semantic: Option<SemanticConfig>,
        threads: Option<usize>,
    ) -> Result<Self> {
        let semantic = match semantic {
            Some(config) => {
                config.validate()?;
                // The family must be fixed for the index's whole lifetime
                // (module docs): pinned wins, all taxonomy leaves otherwise.
                let family = match &config.pinned_family {
                    Some(family) => family.clone(),
                    None => SemhashFamily::from_all_leaves(&config.taxonomy)?,
                };
                let mut rng = StdRng::seed_from_u64(config.seed);
                let band_hashes = (0..banding.bands())
                    .map(|_| WWaySemanticHash::sample(family.len(), config.w, config.mode, &mut rng))
                    .collect::<Result<Vec<_>>>()?;
                Some(IncrementalSemantic { config, family, band_hashes })
            }
            None => None,
        };
        let hasher = MinHasher::from_config(&minhash);
        // One Arc per band — `vec![Arc::new(..); n]` would alias a single
        // allocation across all bands and defeat the per-band copy-on-write.
        let bands = (0..banding.bands()).map(|_| Arc::new(BandIndex::default())).collect();
        Ok(Self {
            shingler,
            minhash,
            banding,
            hasher,
            semantic,
            threads,
            bands,
            bucket_refs: Vec::new(),
            entity_of: Vec::new(),
            running: RunningCounts::default(),
            compaction_threshold: DEFAULT_COMPACTION_THRESHOLD,
            compactions: 0,
            next_id: 0,
            removed: Vec::new(),
            removed_count: 0,
            last_delta: DeltaPairs::empty(),
            batches_ingested: 0,
            #[cfg(feature = "check-invariants")]
            emitted_delta_keys: std::collections::BTreeSet::new(),
        })
    }

    /// The id the next ingested record must carry.
    pub fn next_record_id(&self) -> RecordId {
        RecordId(self.next_id)
    }

    /// Number of records removed (tombstoned) so far.
    pub fn num_removed(&self) -> usize {
        self.removed_count
    }

    /// Number of live (ingested and not removed) records.
    pub fn num_live_records(&self) -> usize {
        self.next_id as usize - self.removed_count
    }

    /// Number of batches ingested so far.
    pub fn num_batches(&self) -> usize {
        self.batches_ingested
    }

    /// The running `|Γ|` / `|Γ_tp|` over the live corpus — an O(1) read,
    /// maintained from the delta folds and removal subtractions.
    pub fn running_counts(&self) -> RunningCounts {
        self.running
    }

    /// The entity annotations ingested so far (dense by record id; may be
    /// shorter than [`IncrementalBlocker::num_records`] when batches were
    /// ingested without annotations).
    pub fn entity_table(&self) -> &[EntityId] {
        &self.entity_of
    }

    /// The dead fraction at which a removal-touched bucket is rebuilt in
    /// place. Defaults to [`DEFAULT_COMPACTION_THRESHOLD`].
    pub fn compaction_threshold(&self) -> f64 {
        self.compaction_threshold
    }

    /// Sets the compaction threshold: a bucket whose
    /// `dead members / total members` fraction reaches the threshold after
    /// a removal is compacted in place. `0.0` compacts a bucket on its first
    /// tombstone; anything above `1.0` disables threshold compaction
    /// (forced [`IncrementalSaLshBlocker::compact`] still works). Compaction
    /// is observation-equivalent — snapshots, running counts and future
    /// deltas do not depend on the threshold.
    pub fn set_compaction_threshold(&mut self, fraction: f64) {
        self.compaction_threshold = fraction;
    }

    /// Builder-style [`IncrementalSaLshBlocker::set_compaction_threshold`].
    pub fn with_compaction_threshold(mut self, fraction: f64) -> Self {
        self.set_compaction_threshold(fraction);
        self
    }

    /// Number of bucket-local compactions performed so far (threshold-driven
    /// and forced).
    pub fn num_compactions(&self) -> u64 {
        self.compactions
    }

    /// Compacts every bucket containing tombstoned members, regardless of
    /// the threshold, and drops buckets left empty. Returns the number of
    /// buckets compacted. Observation-equivalent: snapshots, running counts
    /// and future deltas are unchanged.
    pub fn compact(&mut self) -> u64 {
        let removed = &self.removed;
        let mut compacted = 0u64;
        for band in &mut self.bands {
            // Skip clean shards before `Arc::make_mut`: a forced compaction
            // must not deep-copy shards shared with published views unless
            // it actually rewrites them.
            if !band.values().any(|bucket| bucket.dead > 0) {
                continue;
            }
            let band = Arc::make_mut(band);
            // Visit order over the shard is irrelevant: each bucket is
            // compacted independently and the count is order-free.
            band.retain(|_, bucket| {
                if bucket.dead == 0 {
                    return true;
                }
                bucket.compact(removed);
                crate::invariants::check_bucket_tombstones(&bucket.members, bucket.dead, removed, "forced compaction");
                compacted += 1;
                !bucket.members.is_empty()
            });
        }
        self.compactions += compacted;
        compacted
    }

    /// The semhash family the semantic component is pinned to, if any —
    /// pin the same family on a one-shot blocker to compare byte-for-byte.
    pub fn pinned_family(&self) -> Option<&SemhashFamily> {
        self.semantic.as_ref().map(|s| &s.family)
    }

    /// Publishes an immutable [`IndexView`] of the current index state.
    ///
    /// O(bands) plus the live-record bookkeeping: the per-band bucket shards
    /// are shared by [`Arc`], not copied — the blocker's next mutation
    /// copies only the shards it touches ([`Arc::make_mut`]), so the view
    /// stays frozen at the publication point forever. This is the engine
    /// under snapshot/epoch service layers: one writer keeps mutating, any
    /// number of readers query their view without locks.
    pub fn publish_view(&self) -> IndexView {
        IndexView::capture(self)
    }

    /// The candidate partners a probe record would collide with, against the
    /// current index state — sorted by id, deduplicated across bands, the
    /// probe itself excluded. See [`IndexView::candidates`] for the
    /// equivalence contract; this is the same lookup run directly on the
    /// mutable head.
    pub fn query_candidates(&self, record: &Record) -> Result<Vec<RecordId>> {
        view::probe_candidates(
            &self.shingler,
            &self.hasher,
            &self.banding,
            self.semantic.as_ref(),
            &self.bands,
            &self.removed,
            record,
        )
    }

    /// Convenience ingest from raw rows: wraps each row in a [`Record`] with
    /// the next dense id and the given schema, then calls
    /// [`IncrementalBlocker::insert_batch`].
    pub fn insert_values(&mut self, schema: &Arc<Schema>, rows: Vec<Vec<Option<String>>>) -> Result<&DeltaPairs> {
        let records = self.wrap_rows(schema, rows)?;
        self.ingest(&records, None)
    }

    /// [`IncrementalSaLshBlocker::insert_values`] with entity annotations,
    /// so the running [`RunningCounts::true_positives`] stays exact.
    pub fn insert_values_with_entities(
        &mut self,
        schema: &Arc<Schema>,
        rows: Vec<Vec<Option<String>>>,
        entities: &[EntityId],
    ) -> Result<&DeltaPairs> {
        let records = self.wrap_rows(schema, rows)?;
        self.ingest(&records, Some(entities))
    }

    /// [`IncrementalBlocker::insert_batch`] with entity annotations (one
    /// [`EntityId`] per batch record, in batch order). Annotated ingest must
    /// start with the first batch and never lapse: once a batch arrives
    /// unannotated, later annotated batches are rejected (the dense entity
    /// table would misalign with the id space).
    pub fn insert_batch_with_entities(&mut self, records: &[Record], entities: &[EntityId]) -> Result<&DeltaPairs> {
        self.ingest(records, Some(entities))
    }

    /// [`IncrementalBlocker::insert_batch`] taking ownership (avoids the
    /// caller keeping a second copy of the batch alive).
    pub fn insert_batch_owned(&mut self, records: Vec<Record>) -> Result<&DeltaPairs> {
        self.ingest(&records, None)
    }

    fn wrap_rows(&self, schema: &Arc<Schema>, rows: Vec<Vec<Option<String>>>) -> Result<Vec<Record>> {
        let base = self.next_id;
        rows.into_iter()
            .enumerate()
            .map(|(offset, values)| {
                // usize → u64 is lossless; the id bound check stays in u64.
                let index = u64::from(base) + offset as u64;
                let id = u32::try_from(index)
                    .ok()
                    .filter(|&raw| raw <= MAX_RECORD_ID)
                    .map(RecordId)
                    .ok_or(CoreError::RecordIdOverflow(index))?;
                Record::new(id, Arc::clone(schema), values).map_err(CoreError::from)
            })
            .collect()
    }

    /// Validates a batch: dense id continuation, id width, and that every
    /// record's schema carries the shingled attributes. Batches almost
    /// always share one `Arc<Schema>`, so the per-record check is a pointer
    /// compare against the first validated schema; only records with a
    /// genuinely different schema pay the by-name lookup.
    fn validate_batch(&self, records: &[Record]) -> Result<()> {
        let mut validated: Option<&Arc<Schema>> = None;
        for (offset, record) in records.iter().enumerate() {
            // usize → u64 offset widening is lossless; the id arithmetic
            // below stays entirely in u64.
            let offset_wide = offset as u64;
            let expected = u64::from(self.next_id) + offset_wide;
            if expected > u64::from(MAX_RECORD_ID) {
                return Err(CoreError::RecordIdOverflow(expected));
            }
            if u64::from(record.id().0) != expected {
                return Err(CoreError::Config(format!(
                    "batch record at offset {offset} has id {}, expected the dense continuation r{expected}",
                    record.id()
                )));
            }
            if validated.is_some_and(|schema| Arc::ptr_eq(schema, record.schema())) {
                continue;
            }
            for attribute in self.shingler.attributes() {
                if record.schema().index_of(attribute).is_none() {
                    return Err(CoreError::Config(format!(
                        "attribute '{attribute}' selected for blocking does not exist in the schema of the \
                         ingested record at offset {offset}"
                    )));
                }
            }
            validated = Some(record.schema());
        }
        Ok(())
    }

    fn ingest(&mut self, records: &[Record], entities: Option<&[EntityId]>) -> Result<&DeltaPairs> {
        self.validate_batch(records)?;
        if let Some(entities) = entities {
            if entities.len() != records.len() {
                return Err(CoreError::Config(format!(
                    "entity annotations cover {} records but the batch has {}",
                    entities.len(),
                    records.len()
                )));
            }
            if self.entity_of.len() != self.next_id as usize {
                return Err(CoreError::Config(
                    "entity-annotated ingest must start with the first batch and never lapse: an earlier \
                     batch was ingested without annotations, so the dense entity table no longer aligns \
                     with the record id space"
                        .to_string(),
                ));
            }
        }
        if records.is_empty() {
            self.last_delta = DeltaPairs::empty();
            self.batches_ingested += 1;
            return Ok(&self.last_delta);
        }
        let threads = resolve_threads(self.threads, records.len());

        // Signatures of the new records only — the existing index is never
        // recomputed. Same parallel shape as the one-shot pipeline.
        let shingles = parallel_map(records, threads, |record| self.shingler.shingles(record));
        let signatures = parallel_map(&shingles, threads, |set| self.hasher.signature(set));
        let sem_signatures = match &self.semantic {
            Some(semantic) => {
                let function = &semantic.config.function;
                let interpretations = parallel_map(records, threads, |record| function.interpret(record));
                Some(parallel_map(&interpretations, threads, |interp| {
                    semantic.family.signature(&semantic.config.taxonomy, interp)
                }))
            }
            None => None,
        };

        // The entity table must cover the new ids before the counting fold
        // below probes the delta pairs.
        if let Some(entities) = entities {
            self.entity_of.extend_from_slice(entities);
        }

        // Each band's bucket shard is independent, so placements, delta
        // pairs and the shard update itself run per band in parallel
        // (`parallel_map_mut` — each worker owns its band's map), with
        // outcomes stitched back in ascending band order so every derived
        // structure is deterministic for any worker count.
        let removed: &[bool] = &self.removed;
        let banding = &self.banding;
        let semantic = &self.semantic;
        let mut shards: Vec<(usize, &mut BandIndex)> =
            self.bands.iter_mut().map(Arc::make_mut).enumerate().collect();
        let outcomes: Vec<BandOutcome> = parallel_map_mut(&mut shards, threads, |(band, index)| {
            let band = *band;
            let mut slots: Vec<((u64, u64), RecordId)> = Vec::new();
            for (offset, signature) in signatures.iter().enumerate() {
                if shingles[offset].is_empty() {
                    continue;
                }
                let id = records[offset].id();
                let bucket = banding.band_key(signature, band);
                match (semantic, &sem_signatures) {
                    (Some(semantic), Some(sems)) => {
                        for sub in semantic.band_hashes[band].sub_keys(&sems[offset]) {
                            slots.push(((bucket, sub as u64), id)); // sablock-lint: allow(lossy-id-cast): usize sub-key index → u64 widens losslessly
                        }
                    }
                    _ => slots.push(((bucket, 0), id)),
                }
            }
            // Group placements by bucket key; ids stay ascending within a
            // key (the batch arrives in id order and the sort key ends on
            // the id).
            slots.sort_unstable();

            // Delta pairs of this band: existing live members × new members,
            // plus the new-member pairs, per touched bucket. Old ids are all
            // smaller than new ids and members are ascending, so every pair
            // packs ascending without canonicalisation. The shard update
            // itself happens in the same pass: one O(1) bucket lookup per
            // touched bucket, untouched buckets never rewritten.
            let mut delta_run: Vec<u64> = Vec::new();
            let mut start = 0usize;
            while start < slots.len() {
                let key = slots[start].0;
                let mut end = start;
                while end < slots.len() && slots[end].0 == key {
                    end += 1;
                }
                let new_members = &slots[start..end];
                let bucket = index.entry(key).or_default();
                for &old in &bucket.members {
                    if removed[old.index()] {
                        continue;
                    }
                    for &(_, new) in new_members {
                        delta_run.push(RecordPair::pack_ascending(old, new));
                    }
                }
                for (i, &(_, a)) in new_members.iter().enumerate() {
                    for &(_, b) in &new_members[i + 1..] {
                        delta_run.push(RecordPair::pack_ascending(a, b));
                    }
                }
                bucket.members.extend(new_members.iter().map(|&(_, id)| id));
                start = end;
            }
            radix_sort_packed(&mut delta_run);
            delta_run.dedup();
            BandOutcome { touched: slots, delta_run }
        });
        drop(shards);

        if let Some(last) = records.last() {
            // `validate_batch` proved the batch is the dense continuation of
            // `next_id` with every id at most `MAX_RECORD_ID`, so the last
            // id is exactly `next_id + len − 1` and the increment cannot
            // overflow past the reserved `u32::MAX`.
            self.next_id = last.id().0 + 1;
        }
        self.removed.resize(self.next_id as usize, false);
        self.bucket_refs.resize(self.next_id as usize, Vec::new());

        // Back-references accumulate in band order, then key order within a
        // band (`touched` is sorted) — deterministic for any worker count.
        let mut runs: Vec<Vec<u64>> = Vec::with_capacity(outcomes.len());
        for (band, outcome) in outcomes.into_iter().enumerate() {
            for &(key, id) in &outcome.touched {
                self.bucket_refs[id.index()].push(BucketRef { band, key });
            }
            runs.push(outcome.delta_run);
        }

        // Fold the delta into the running counters in the same single merge
        // pass that materialises the delta's distinct-key cache — the merge
        // over the redundant runs happens exactly once per batch.
        let mut merged: Vec<u64> = Vec::with_capacity(runs.iter().map(Vec::len).sum());
        let mut batch_counts = PairCounts::default();
        {
            let probe = EntityTableProbe::new(&self.entity_of);
            merge_packed_runs_into(&runs, |segment| {
                batch_counts.distinct += segment.len() as u64;
                for &key in segment {
                    if probe.matches(key) {
                        batch_counts.matching += 1;
                    }
                }
                merged.extend_from_slice(segment);
            });
        }
        self.running.pairs += batch_counts.distinct;
        self.running.true_positives += batch_counts.matching;
        self.last_delta = DeltaPairs::from_counted_runs(runs, merged);
        self.batches_ingested += 1;
        #[cfg(feature = "check-invariants")]
        {
            crate::invariants::check_delta_disjoint(&mut self.emitted_delta_keys, &self.last_delta);
            crate::invariants::check_tombstones(&self.removed, self.removed_count, self.next_id);
        }
        Ok(&self.last_delta)
    }
}

impl IncrementalBlocker for IncrementalSaLshBlocker {
    fn name(&self) -> String {
        let base = format!(
            "k={},l={},q={}",
            self.minhash.rows_per_band, self.minhash.bands, self.minhash.qgram
        );
        match &self.semantic {
            Some(semantic) => format!("Incremental-SA-LSH({base},{})", semantic.config.describe()),
            None => format!("Incremental-LSH({base})"),
        }
    }

    fn num_records(&self) -> usize {
        self.next_id as usize
    }

    fn insert_batch(&mut self, records: &[Record]) -> Result<&DeltaPairs> {
        self.ingest(records, None)
    }

    fn remove(&mut self, id: RecordId) -> Result<bool> {
        if id.0 >= self.next_id {
            return Err(CoreError::Dataset(DatasetError::UnknownRecord(id.0)));
        }
        if self.removed[id.index()] {
            return Ok(false);
        }
        self.removed[id.index()] = true;
        self.removed_count += 1;

        // The record's live pairs, enumerated from only the buckets it
        // occupies. The same pair can co-occur in several buckets/bands, so
        // sort + dedup before subtracting — each retired pair exactly once.
        // Pairs with partners tombstoned earlier were already subtracted at
        // *their* removal and are skipped here.
        let refs = std::mem::take(&mut self.bucket_refs[id.index()]);
        let mut retired: Vec<u64> = Vec::new();
        for reference in &refs {
            if let Some(bucket) = self.bands[reference.band].get(&reference.key) {
                for &member in &bucket.members {
                    if self.removed[member.index()] {
                        continue;
                    }
                    let (a, b) = if member < id { (member, id) } else { (id, member) };
                    retired.push(RecordPair::pack_ascending(a, b));
                }
            }
        }
        radix_sort_packed(&mut retired);
        retired.dedup();
        let mut retired_matching = 0u64;
        {
            let probe = EntityTableProbe::new(&self.entity_of);
            for &key in &retired {
                if probe.matches(key) {
                    retired_matching += 1;
                }
            }
        }
        crate::invariants::check_counter_subtraction(self.running.pairs, retired.len() as u64, "running |Γ|");
        crate::invariants::check_counter_subtraction(self.running.true_positives, retired_matching, "running |Γ_tp|");
        self.running.pairs -= retired.len() as u64;
        self.running.true_positives -= retired_matching;

        // Tombstone accounting per touched bucket, with bucket-local
        // compaction once the dead fraction reaches the threshold.
        let removed: &[bool] = &self.removed;
        let threshold = self.compaction_threshold;
        let mut compacted = 0u64;
        for reference in &refs {
            let band = Arc::make_mut(&mut self.bands[reference.band]);
            let Some(bucket) = band.get_mut(&reference.key) else {
                continue;
            };
            bucket.dead += 1;
            crate::invariants::check_bucket_tombstones(&bucket.members, bucket.dead, removed, "removal touch");
            if bucket.compaction_due(threshold) {
                bucket.compact(removed);
                crate::invariants::check_bucket_tombstones(&bucket.members, bucket.dead, removed, "threshold compaction");
                compacted += 1;
                if bucket.members.is_empty() {
                    band.remove(&reference.key);
                }
            }
        }
        self.compactions += compacted;
        #[cfg(feature = "check-invariants")]
        crate::invariants::check_tombstones(&self.removed, self.removed_count, self.next_id);
        Ok(true)
    }

    fn delta_pairs(&self) -> &DeltaPairs {
        &self.last_delta
    }

    fn snapshot(&self) -> BlockCollection {
        snapshot_bands(&self.bands, &self.removed, self.semantic.is_some())
    }
}

/// Renders the per-band bucket shards as a [`BlockCollection`] — the shared
/// implementation of [`IncrementalBlocker::snapshot`] and
/// [`IndexView::snapshot`].
fn snapshot_bands(bands: &[Arc<BandIndex>], removed: &[bool], semantic: bool) -> BlockCollection {
    let mut blocks = Vec::new();
    for (band, buckets) in bands.iter().enumerate() {
        // The shard is a hash map for O(1) inserts; snapshot order is
        // restored by sorting the keys, reproducing the ordered-map
        // iteration of the one-shot bucket phase byte for byte.
        let mut entries: Vec<(&(u64, u64), &Bucket)> = buckets.iter().collect();
        entries.sort_unstable_by_key(|(key, _)| **key);
        for (&(bucket, sub), shard) in entries {
            let live: Vec<RecordId> = shard.members.iter().copied().filter(|id| !removed[id.index()]).collect();
            if live.len() < 2 {
                continue;
            }
            let key = if semantic {
                format!("b{band}:{bucket:016x}:g{sub}")
            } else {
                format!("b{band}:{bucket:016x}")
            };
            blocks.push(Block::new(key, live));
        }
    }
    BlockCollection::from_blocks(blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::Blocker;
    use crate::lsh::salsh::SaLshBlocker;
    use crate::lsh::semantic_hash::SemanticMode;
    use crate::semantic::pattern::PatternSemanticFunction;
    use crate::taxonomy::bib::bibliographic_taxonomy;
    use sablock_datasets::dataset::DatasetBuilder;
    use sablock_datasets::ground_truth::EntityId;
    use sablock_datasets::Dataset;

    pub(crate) fn titles_dataset(rows: &[&str]) -> Dataset {
        let schema = Schema::shared(["title"]).unwrap();
        let mut builder = DatasetBuilder::new("titles", schema);
        for (i, title) in rows.iter().enumerate() {
            let value = if title.is_empty() { None } else { Some((*title).to_string()) };
            builder.push_values(vec![value], EntityId(i as u32 / 2)).unwrap();
        }
        builder.build().unwrap()
    }

    pub(crate) fn sample_dataset() -> Dataset {
        titles_dataset(&[
            "the cascade correlation learning architecture",
            "cascade correlation learning architecture",
            "the cascade corelation learning architecture",
            "efficient clustering of high dimensional data sets",
            "efficient clustering of high dimensional data",
            "",
            "a theory for record linkage",
            "a theory of record linkage",
        ])
    }

    pub(crate) fn lsh_builder() -> crate::lsh::salsh::SaLshBlockerBuilder {
        SaLshBlocker::builder().attributes(["title"]).qgram(2).bands(12).rows_per_band(2).seed(0xB10C)
    }

    pub(crate) fn salsh_pair() -> (SaLshBlocker, IncrementalSaLshBlocker) {
        let tree = bibliographic_taxonomy();
        let zeta = PatternSemanticFunction::cora_default(&tree).unwrap();
        let family = SemhashFamily::from_all_leaves(&tree).unwrap();
        let semantic = crate::lsh::SemanticConfig::new(tree, zeta)
            .with_w(2)
            .with_mode(SemanticMode::Or)
            .with_seed(11)
            .with_pinned_family(family);
        let builder = SaLshBlocker::builder()
            .attributes(["title"])
            .qgram(2)
            .bands(12)
            .rows_per_band(2)
            .seed(0xB10C)
            .semantic(semantic);
        let one_shot = builder.clone().build().unwrap();
        let incremental = builder.into_incremental().unwrap();
        (one_shot, incremental)
    }

    /// A from-scratch recount of the live corpus against the blocker's own
    /// entity table — what the running counters must always equal.
    fn recount(blocker: &IncrementalSaLshBlocker) -> PairCounts {
        blocker
            .snapshot()
            .stream_packed_counts(EntityTableProbe::new(blocker.entity_table()))
    }

    #[test]
    fn batched_ingest_matches_one_shot_blocking() {
        let dataset = sample_dataset();
        let one_shot = lsh_builder().build().unwrap().block(&dataset).unwrap();
        for batch_size in [1usize, 3, 8] {
            let mut incremental = lsh_builder().into_incremental().unwrap();
            let mut total_delta = 0u64;
            for chunk in dataset.records().chunks(batch_size) {
                total_delta += incremental.insert_batch(chunk).unwrap().num_pairs();
            }
            let snapshot = incremental.snapshot();
            assert_eq!(snapshot.blocks(), one_shot.blocks(), "batch_size={batch_size}");
            assert_eq!(total_delta, one_shot.num_distinct_pairs(), "batch_size={batch_size}");
            assert_eq!(
                incremental.running_counts().pairs,
                one_shot.num_distinct_pairs(),
                "running |Γ| equals the one-shot count (batch_size={batch_size})"
            );
        }
    }

    #[test]
    fn semantic_ingest_matches_pinned_one_shot() {
        let dataset = sample_dataset();
        let (one_shot, mut incremental) = salsh_pair();
        let reference = one_shot.block(&dataset).unwrap();
        let mut cumulative = 0u64;
        for chunk in dataset.records().chunks(3) {
            cumulative += incremental.insert_batch(chunk).unwrap().num_pairs();
        }
        assert_eq!(incremental.snapshot().blocks(), reference.blocks());
        assert_eq!(cumulative, reference.num_distinct_pairs());
        assert!(incremental.name().starts_with("Incremental-SA-LSH("));
        assert_eq!(incremental.pinned_family().unwrap().len(), 6);
    }

    #[test]
    fn deltas_are_disjoint_and_sorted() {
        let dataset = sample_dataset();
        let mut incremental = lsh_builder().into_incremental().unwrap();
        let mut seen: Vec<RecordPair> = Vec::new();
        for chunk in dataset.records().chunks(2) {
            let delta = incremental.insert_batch(chunk).unwrap();
            for run in delta.runs() {
                assert!(run.windows(2).all(|w| w[0] < w[1]), "runs are strictly ascending");
            }
            let pairs = delta.pairs();
            assert_eq!(pairs.len() as u64, delta.num_pairs());
            for pair in &pairs {
                assert!(!seen.contains(pair), "pair {pair} emitted twice across batches");
            }
            seen.extend(pairs);
        }
        assert_eq!(seen.len() as u64, incremental.snapshot().num_distinct_pairs());
    }

    #[test]
    fn removal_tombstones_and_matches_filtered_one_shot() {
        let dataset = sample_dataset();
        let one_shot = lsh_builder().build().unwrap().block(&dataset).unwrap();
        let mut incremental = lsh_builder().into_incremental().unwrap();
        incremental.insert_batch(dataset.records()).unwrap();
        assert!(incremental.remove(RecordId(1)).unwrap());
        assert!(!incremental.remove(RecordId(1)).unwrap(), "double removal reports false");
        assert!(incremental.remove(RecordId(99)).is_err(), "unknown ids error");
        assert_eq!(incremental.num_removed(), 1);
        assert_eq!(incremental.num_live_records(), dataset.len() - 1);

        // Reference: one-shot blocks with the removed id filtered out.
        let filtered: Vec<Block> = one_shot
            .blocks()
            .iter()
            .map(|b| {
                Block::new(
                    b.key().to_string(),
                    b.members().iter().copied().filter(|&id| id != RecordId(1)).collect(),
                )
            })
            .collect();
        let filtered = BlockCollection::from_blocks(filtered);
        assert_eq!(incremental.snapshot().blocks(), filtered.blocks());
        assert_eq!(
            incremental.running_counts().pairs,
            filtered.num_distinct_pairs(),
            "removal subtracts exactly the retired pairs from the running |Γ|"
        );

        // Pairs added after the removal never involve the tombstoned record.
        let extra = titles_dataset(&[
            "the cascade correlation learning architecture",
            "cascade correlation learning architecture",
            "the cascade corelation learning architecture",
            "efficient clustering of high dimensional data sets",
            "efficient clustering of high dimensional data",
            "",
            "a theory for record linkage",
            "a theory of record linkage",
            "cascade correlation learning architecture",
        ]);
        let delta = incremental.insert_batch(&extra.records()[8..]).unwrap();
        assert!(delta
            .pairs()
            .iter()
            .all(|p| p.first() != RecordId(1) && p.second() != RecordId(1)));
    }

    #[test]
    fn running_counts_track_entities_through_inserts_and_removals() {
        let dataset = sample_dataset();
        let entities: Vec<EntityId> = dataset.ground_truth().entity_table().to_vec();
        let mut incremental = lsh_builder().into_incremental().unwrap();
        let mut offset = 0usize;
        for chunk in dataset.records().chunks(3) {
            incremental
                .insert_batch_with_entities(chunk, &entities[offset..offset + chunk.len()])
                .unwrap();
            offset += chunk.len();
            let counts = recount(&incremental);
            assert_eq!(incremental.running_counts().pairs, counts.distinct);
            assert_eq!(incremental.running_counts().true_positives, counts.matching);
        }
        assert!(incremental.running_counts().true_positives > 0, "the sample has true matches in Γ");
        assert_eq!(incremental.entity_table(), &entities[..]);

        for victim in [1u32, 6, 0] {
            incremental.remove(RecordId(victim)).unwrap();
            let counts = recount(&incremental);
            assert_eq!(incremental.running_counts().pairs, counts.distinct, "after removing r{victim}");
            assert_eq!(incremental.running_counts().true_positives, counts.matching, "after removing r{victim}");
        }
        assert_eq!(
            incremental.running_counts().as_pair_counts().distinct,
            incremental.running_counts().pairs
        );
    }

    #[test]
    fn entity_annotations_must_not_lapse() {
        let dataset = sample_dataset();
        let entities: Vec<EntityId> = dataset.ground_truth().entity_table().to_vec();
        let mut incremental = lsh_builder().into_incremental().unwrap();
        // Wrong arity is rejected up front.
        let err = incremental
            .insert_batch_with_entities(&dataset.records()[..2], &entities[..1])
            .unwrap_err();
        assert!(err.to_string().contains("annotations cover"));
        // An unannotated batch followed by an annotated one is rejected.
        incremental.insert_batch(&dataset.records()[..2]).unwrap();
        let err = incremental
            .insert_batch_with_entities(&dataset.records()[2..4], &entities[2..4])
            .unwrap_err();
        assert!(err.to_string().contains("never lapse"));
        // Unannotated ingest keeps working; TPs simply stay at zero.
        incremental.insert_batch(&dataset.records()[2..]).unwrap();
        assert_eq!(incremental.running_counts().true_positives, 0);
        assert!(incremental.running_counts().pairs > 0);
    }

    #[test]
    fn threshold_compaction_is_observation_equivalent() {
        let dataset = sample_dataset();
        // Twin blockers: one never compacts, one compacts on every removal.
        let run = |threshold: f64| {
            let mut blocker = lsh_builder().into_incremental().unwrap().with_compaction_threshold(threshold);
            blocker.insert_batch(dataset.records()).unwrap();
            for victim in [0u32, 2, 7] {
                blocker.remove(RecordId(victim)).unwrap();
            }
            blocker
        };
        let lazy = run(2.0);
        let eager = run(0.0);
        assert_eq!(lazy.num_compactions(), 0);
        assert!(eager.num_compactions() > 0, "threshold 0.0 compacts every touched bucket");
        assert_eq!(lazy.snapshot().blocks(), eager.snapshot().blocks());
        assert_eq!(lazy.running_counts(), eager.running_counts());

        // Forced compaction on the lazy twin is likewise observation-free.
        let mut compacted = lazy.clone();
        let before = compacted.snapshot();
        assert!(compacted.compact() > 0);
        assert_eq!(compacted.snapshot().blocks(), before.blocks());
        assert_eq!(compacted.running_counts(), lazy.running_counts());
        assert_eq!(compacted.compact(), 0, "a second pass finds nothing to compact");
    }

    #[test]
    fn delta_counts_cache_avoids_rescanning_runs() {
        use std::sync::atomic::{AtomicU64, Ordering};

        struct CountingProbe(AtomicU64);
        impl PackedProbe for CountingProbe {
            fn matches(&self, _key: u64) -> bool {
                self.0.fetch_add(1, Ordering::Relaxed);
                false
            }
        }

        // Hand-built delta: 6 redundant run entries, 4 distinct pairs.
        let pack = |a: u32, b: u32| RecordPair::pack_ascending(RecordId(a), RecordId(b));
        let runs = vec![
            vec![pack(0, 1), pack(0, 2), pack(1, 2)],
            vec![pack(0, 1), pack(1, 2), pack(2, 3)],
        ];
        let delta = DeltaPairs::from_runs(runs);
        assert!(!delta.is_counted(), "a hand-built delta starts uncounted");
        assert_eq!(delta.num_pairs(), 4);
        assert!(delta.is_counted(), "the first count materialises the distinct-key cache");

        let probe = CountingProbe(AtomicU64::new(0));
        let first = delta.counts(&probe);
        assert_eq!(first.distinct, 4);
        assert_eq!(probe.0.load(Ordering::Relaxed), 4, "each distinct pair probed exactly once, not per run entry");
        let second = delta.counts(&probe);
        assert_eq!(second.distinct, first.distinct);
        assert_eq!(probe.0.load(Ordering::Relaxed), 8, "a second call probes the cache, never the runs");

        // Clones carry the cache; equality ignores it.
        let cloned = delta.clone();
        assert!(cloned.is_counted());
        assert_eq!(cloned, delta);
        assert!(!DeltaPairs::from_runs(vec![vec![pack(0, 1)]]).is_counted());

        // Deltas produced by ingest are pre-counted by the counting fold.
        let dataset = sample_dataset();
        let mut incremental = lsh_builder().into_incremental().unwrap();
        incremental.insert_batch(dataset.records()).unwrap();
        assert!(incremental.delta_pairs().is_counted(), "insert_batch pre-populates the cache");
    }

    #[test]
    fn batch_validation_rejects_bad_ids_and_schemas() {
        let dataset = sample_dataset();
        let mut incremental = lsh_builder().into_incremental().unwrap();
        // Ids must continue densely from 0.
        let err = incremental.insert_batch(&dataset.records()[2..4]).unwrap_err();
        assert!(err.to_string().contains("dense continuation"));
        // An id just over the packable boundary is a typed overflow.
        let schema = Schema::shared(["title"]).unwrap();
        let huge = Record::new(RecordId(u32::MAX), Arc::clone(&schema), vec![Some("x".into())]).unwrap();
        let mut at_edge = lsh_builder().into_incremental().unwrap();
        at_edge.next_id = u32::MAX;
        let err = at_edge.insert_batch(std::slice::from_ref(&huge)).unwrap_err();
        assert!(matches!(err, CoreError::RecordIdOverflow(id) if id == u64::from(u32::MAX)));
        // Unknown blocking attributes fail up front.
        let other_schema = Schema::shared(["name"]).unwrap();
        let wrong = Record::new(RecordId(0), Arc::clone(&other_schema), vec![Some("x".into())]).unwrap();
        let err = incremental.insert_batch(std::slice::from_ref(&wrong)).unwrap_err();
        assert!(err.to_string().contains("title"));
        // …even when the offending record is not the first of the batch
        // (mixed-schema batches must not slip a never-indexed record in).
        let ok = Record::new(RecordId(0), Arc::clone(&schema), vec![Some("y".into())]).unwrap();
        let wrong_tail = Record::new(RecordId(1), other_schema, vec![Some("z".into())]).unwrap();
        let err = incremental.insert_batch(&[ok, wrong_tail]).unwrap_err();
        assert!(err.to_string().contains("offset 1"));
        assert_eq!(incremental.num_records(), 0, "a rejected batch ingests nothing");
    }

    #[test]
    fn empty_batches_and_empty_records_are_handled() {
        let mut incremental = lsh_builder().into_incremental().unwrap();
        let delta = incremental.insert_batch(&[]).unwrap();
        assert!(delta.is_empty());
        assert_eq!(delta.num_pairs(), 0);
        assert_eq!(incremental.num_batches(), 1);
        assert_eq!(incremental.num_records(), 0);
        assert!(incremental.snapshot().is_empty());

        // Records without text are ingested (they consume an id) but never
        // indexed — exactly like the one-shot pipeline.
        let dataset = titles_dataset(&["", ""]);
        incremental.insert_batch(dataset.records()).unwrap();
        assert_eq!(incremental.num_records(), 2);
        assert!(incremental.snapshot().is_empty());
        assert_eq!(incremental.next_record_id(), RecordId(2));

        // Removing a never-indexed record subtracts nothing.
        assert!(incremental.remove(RecordId(0)).unwrap());
        assert_eq!(incremental.running_counts(), RunningCounts::default());
    }

    #[test]
    fn insert_values_wraps_rows_with_dense_ids() {
        let schema = Schema::shared(["title"]).unwrap();
        let mut incremental = lsh_builder().into_incremental().unwrap();
        let rows = vec![
            vec![Some("a theory for record linkage".to_string())],
            vec![Some("a theory of record linkage".to_string())],
        ];
        let delta = incremental.insert_values(&schema, rows).unwrap();
        assert!(delta.num_pairs() > 0);
        assert_eq!(incremental.num_records(), 2);
        // The stored delta is identical to the returned one.
        assert_eq!(incremental.delta_pairs().num_pairs(), incremental.snapshot().num_distinct_pairs());

        // The annotated variant feeds the running true-positive counter.
        let mut annotated = lsh_builder().into_incremental().unwrap();
        let rows = vec![
            vec![Some("a theory for record linkage".to_string())],
            vec![Some("a theory of record linkage".to_string())],
        ];
        annotated
            .insert_values_with_entities(&schema, rows, &[EntityId(0), EntityId(0)])
            .unwrap();
        assert_eq!(annotated.running_counts().true_positives, annotated.running_counts().pairs);
        assert!(annotated.running_counts().true_positives > 0);
    }
}
