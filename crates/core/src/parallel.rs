//! Parallel computation helpers.
//!
//! [`parallel_map`] splits a slice across scoped worker threads
//! (`std::thread::scope`, so no `'static` bound on the items) and stitches
//! the results back in order. Four hot paths ride on it:
//!
//! * **signatures** — shingling + minhashing is embarrassingly parallel per
//!   record, and with `k · l` often in the hundreds it dominates small-scale
//!   blocking time;
//! * **banding/buckets** — each of the `l` bands builds an independent
//!   bucket index, so the bucket phase shards per band and merges the
//!   per-band block lists back in ascending band order;
//! * **pair enumeration and counting** — `BlockCollection::distinct_pairs`
//!   sorts and dedups pair shards independently before a sorted merge, and
//!   the streaming counter `BlockCollection::stream_pair_counts` runs one
//!   worker per pair-space slice, each folding its shard runs through a
//!   deduplicating k-way merge;
//! * **baseline bucket construction** — the suffix-array and q-gram
//!   baselines index record chunks in parallel and merge the per-chunk
//!   buckets back in chunk order.
//!
//! The LSH blockers engage it automatically for datasets above a size
//! threshold; everything stays deterministic because each output depends
//! only on its own input and results are always stitched in input order.

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Duration;

/// Applies `f` to every element of `items`, in parallel, preserving order.
///
/// With one worker (or a small input) this degrades to a plain sequential
/// map, so results are identical regardless of thread count.
pub fn parallel_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let threads = threads.max(1);
    if threads == 1 || items.len() < 2 {
        return items.iter().map(&f).collect();
    }
    let chunk_size = items.len().div_ceil(threads);
    let results: Vec<Vec<U>> = std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_size)
            .map(|chunk| scope.spawn(|| chunk.iter().map(&f).collect::<Vec<U>>()))
            .collect();
        // sablock-lint: allow(panic-reachability): join only re-raises a panic that already happened on the worker; it introduces no new failure
        handles.into_iter().map(|h| h.join().expect("worker thread panicked")).collect()
    });
    results.into_iter().flatten().collect()
}

/// Applies `f` to every element of `items` **in place**, in parallel,
/// returning the per-element results in input order.
///
/// The mutable counterpart of [`parallel_map`], for stages that own a
/// disjoint shard per element — e.g. the incremental blocker's per-band
/// bucket maps, where each worker mutates only its own band's index. As
/// with [`parallel_map`], one worker (or a tiny input) degrades to a plain
/// sequential pass, so results and final element states are identical
/// regardless of thread count.
pub fn parallel_map_mut<T, U, F>(items: &mut [T], threads: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(&mut T) -> U + Sync,
{
    let threads = threads.max(1);
    if threads == 1 || items.len() < 2 {
        return items.iter_mut().map(&f).collect();
    }
    let chunk_size = items.len().div_ceil(threads);
    let results: Vec<Vec<U>> = std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks_mut(chunk_size)
            .map(|chunk| scope.spawn(|| chunk.iter_mut().map(&f).collect::<Vec<U>>()))
            .collect();
        // sablock-lint: allow(panic-reachability): join only re-raises a panic that already happened on the worker; it introduces no new failure
        handles.into_iter().map(|h| h.join().expect("worker thread panicked")).collect()
    });
    results.into_iter().flatten().collect()
}

/// Runs every task on its own scoped worker thread and returns their results
/// in task order, after all of them finish.
///
/// The fork-join primitive for heterogeneous concurrent workloads — e.g. a
/// service test driving one writer task against N reader tasks. Unlike
/// [`parallel_map`], each task is a distinct closure (no shared element
/// type), and every task always gets its own thread: this is about
/// *concurrency* between different roles, not data-parallel speedup. Scoped
/// threads mean the closures may borrow from the caller's stack.
///
/// All thread use in the workspace is confined to this module
/// (`cargo xtask lint`, rule `thread-confinement`), so concurrent tests and
/// services build on this helper instead of spawning threads themselves.
pub fn join_all<R, F>(tasks: Vec<F>) -> Vec<R>
where
    R: Send,
    F: FnOnce() -> R + Send,
{
    std::thread::scope(|scope| {
        let handles: Vec<_> = tasks.into_iter().map(|task| scope.spawn(task)).collect();
        handles.into_iter().map(|h| h.join().expect("worker thread panicked")).collect()
    })
}

/// Suspends the current worker for `duration`.
///
/// The workspace's only sanctioned sleep: backoff loops (e.g. the serve
/// client's retry-with-exponential-backoff) and test choreography route
/// through here so `std::thread` stays confined to this module
/// (`thread-confinement` lint).
pub fn sleep(duration: Duration) {
    std::thread::sleep(duration);
}

/// The interior of a [`JobQueue`]: pending items plus the closed flag.
#[derive(Debug)]
struct JobQueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer/multi-consumer job queue (mutex + condvars).
///
/// The hand-off primitive behind [`worker_pool`]: producers [`JobQueue::push`]
/// (blocking while full — natural backpressure) or [`JobQueue::try_push`]
/// (failing while full — the admission-control probe an overload-shedding
/// front-end needs), consumers [`JobQueue::pop`] until the queue is closed
/// *and* drained. Closing wakes every waiter, so shutdown never hangs.
#[derive(Debug)]
pub struct JobQueue<T> {
    state: Mutex<JobQueueState<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> JobQueue<T> {
    /// A queue holding at most `capacity` pending items (clamped to ≥ 1).
    pub fn bounded(capacity: usize) -> Self {
        Self {
            state: Mutex::new(JobQueueState { items: VecDeque::new(), closed: false }),
            capacity: capacity.max(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Enqueues an item, blocking while the queue is full. Returns the item
    /// back when the queue has been closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if state.closed {
                return Err(item);
            }
            if state.items.len() < self.capacity {
                state.items.push_back(item);
                self.not_empty.notify_one();
                return Ok(());
            }
            state = self.not_full.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Enqueues an item only if there is room right now. Returns the item
    /// back when the queue is full or closed — the caller decides whether to
    /// shed, retry, or block.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.closed || state.items.len() >= self.capacity {
            return Err(item);
        }
        state.items.push_back(item);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the next item, blocking while the queue is empty. Returns
    /// `None` once the queue is closed *and* drained — the worker's signal
    /// to exit.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(item) = state.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: pending items still drain, new pushes fail, and
    /// blocked waiters wake immediately.
    pub fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Number of items currently queued (a racy snapshot, for stats only).
    pub fn len(&self) -> usize {
        self.state.lock().unwrap_or_else(PoisonError::into_inner).items.len()
    }

    /// Whether the queue currently holds no items (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Runs a producer/consumer pool over a bounded [`JobQueue`]: `workers`
/// scoped threads each loop `pop → consume`, while `producer` runs on the
/// calling thread feeding the queue. When the producer returns, the queue is
/// closed, the workers drain what is left and exit, and the producer's
/// result is returned.
///
/// This is the long-lived sibling of [`join_all`] — the shape a concurrent
/// connection front-end needs (one accept loop fanning sessions out to a
/// bounded set of workers) while keeping every `std::thread` in this module.
/// The queue bound (`capacity`, clamped to ≥ 1) is the admission-control
/// knob: a producer that uses [`JobQueue::try_push`] sees "full" immediately
/// and can shed load instead of accepting work it cannot serve.
pub fn worker_pool<T, R, P, C>(workers: usize, capacity: usize, producer: P, consumer: C) -> R
where
    T: Send,
    R: Send,
    P: FnOnce(&JobQueue<T>) -> R + Send,
    C: Fn(T) + Sync,
{
    let queue = JobQueue::bounded(capacity);
    let queue_ref = &queue;
    let consumer_ref = &consumer;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers.max(1))
            .map(|_| {
                scope.spawn(move || {
                    while let Some(job) = queue_ref.pop() {
                        consumer_ref(job);
                    }
                })
            })
            .collect();
        let result = producer(queue_ref);
        queue_ref.close();
        for handle in handles {
            // sablock-lint: allow(panic-reachability): join only re-raises a panic that already happened on the worker; it introduces no new failure
            handle.join().expect("worker thread panicked");
        }
        result
    })
}

/// Workloads over at least this many records engage parallel execution when
/// no explicit worker count is configured (below it, thread spawn overhead
/// outweighs the win). Shared by the SA-LSH blocker and the parallel
/// baselines so they all flip to parallel at the same input size.
pub const PARALLEL_THRESHOLD: usize = 2_000;

/// Resolves a worker count: an explicitly configured count always wins;
/// otherwise inputs of at least [`PARALLEL_THRESHOLD`] records use
/// [`default_threads`] and smaller ones stay sequential.
pub fn resolve_threads(explicit: Option<usize>, num_records: usize) -> usize {
    match explicit {
        Some(threads) => threads.max(1),
        None if num_records >= PARALLEL_THRESHOLD => default_threads(),
        None => 1,
    }
}

/// A reasonable default worker count: the machine's available parallelism,
/// capped at 8 (signature computation saturates memory bandwidth well before
/// it saturates larger core counts).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(8)
}

/// Merges two sorted runs into one, *keeping* duplicates and taking from the
/// left run on ties — so concatenating runs produced from ascending input
/// chunks preserves the sequential total order exactly.
pub fn merge_two_sorted<T: Ord>(a: Vec<T>, b: Vec<T>) -> Vec<T> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut ia = a.into_iter().peekable();
    let mut ib = b.into_iter().peekable();
    while let (Some(x), Some(y)) = (ia.peek(), ib.peek()) {
        if x <= y {
            out.push(ia.next().expect("peeked"));
        } else {
            out.push(ib.next().expect("peeked"));
        }
    }
    out.extend(ia);
    out.extend(ib);
    out
}

/// Combines sorted runs (e.g. the per-chunk outputs of a [`parallel_map`])
/// into one sorted vector by a balanced binary merge: ⌈log₂ runs⌉ passes,
/// each element moved once per pass, duplicates kept, ties taken from the
/// earlier run. The shape every chunk-then-merge construction in the
/// workspace shares.
pub fn merge_sorted_runs<T: Ord>(mut runs: Vec<Vec<T>>) -> Vec<T> {
    while runs.len() > 1 {
        let mut next = Vec::with_capacity(runs.len().div_ceil(2));
        let mut iter = runs.into_iter();
        while let Some(a) = iter.next() {
            match iter.next() {
                Some(b) => next.push(merge_two_sorted(a, b)),
                None => next.push(a),
            }
        }
        runs = next;
    }
    runs.pop().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map() {
        let items: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 3, 8] {
            let got = parallel_map(&items, threads, |x| x * x + 1);
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_map_mut_matches_sequential_and_mutates_in_place() {
        let expected_items: Vec<u64> = (0..500).map(|x| x + 1).collect();
        let expected_results: Vec<u64> = (0..500u64).collect();
        for threads in [1, 2, 4, 8] {
            let mut items: Vec<u64> = (0..500).collect();
            let results = parallel_map_mut(&mut items, threads, |x| {
                let before = *x;
                *x += 1;
                before
            });
            assert_eq!(items, expected_items, "threads = {threads}");
            assert_eq!(results, expected_results, "threads = {threads}");
        }
        let mut empty: Vec<u64> = vec![];
        assert!(parallel_map_mut(&mut empty, 4, |x| *x).is_empty());
        let mut one = vec![9u64];
        assert_eq!(parallel_map_mut(&mut one, 4, |x| *x * 2), vec![18]);
    }

    #[test]
    fn handles_empty_and_tiny_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, 4, |x| *x).is_empty());
        assert_eq!(parallel_map(&[42u32], 4, |x| x + 1), vec![43]);
    }

    #[test]
    fn zero_threads_degrades_to_one() {
        let items = vec![1, 2, 3];
        assert_eq!(parallel_map(&items, 0, |x| x * 2), vec![2, 4, 6]);
    }

    #[test]
    fn borrows_non_static_data() {
        // The whole point of scoped threads: closures may borrow locals.
        let offset = 7u64;
        let items: Vec<u64> = (0..100).collect();
        let got = parallel_map(&items, 4, |x| x + offset);
        assert_eq!(got[0], 7);
        assert_eq!(got[99], 106);
    }

    #[test]
    fn default_threads_is_positive_and_capped() {
        let t = default_threads();
        assert!((1..=8).contains(&t));
    }

    #[test]
    fn join_all_runs_every_task_and_preserves_order() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let counter = AtomicU64::new(0);
        let tasks: Vec<_> = (0..6u64)
            .map(|i| {
                let counter = &counter;
                move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                    i * 10
                }
            })
            .collect();
        let results = join_all(tasks);
        assert_eq!(results, vec![0, 10, 20, 30, 40, 50]);
        assert_eq!(counter.load(Ordering::Relaxed), 6);
        assert!(join_all(Vec::<fn() -> u8>::new()).is_empty());
    }

    #[test]
    fn job_queue_hand_off_and_close_semantics() {
        let queue: JobQueue<u32> = JobQueue::bounded(2);
        assert!(queue.is_empty());
        queue.push(1).unwrap();
        queue.push(2).unwrap();
        assert_eq!(queue.len(), 2);
        // Full: try_push hands the item back instead of blocking.
        assert_eq!(queue.try_push(3), Err(3));
        assert_eq!(queue.pop(), Some(1));
        queue.try_push(3).unwrap();
        queue.close();
        // Closed: pushes fail, pending items still drain, then None.
        assert_eq!(queue.push(9), Err(9));
        assert_eq!(queue.try_push(9), Err(9));
        assert_eq!(queue.pop(), Some(2));
        assert_eq!(queue.pop(), Some(3));
        assert_eq!(queue.pop(), None);
        assert_eq!(queue.pop(), None, "a drained closed queue stays drained");
        // A zero capacity clamps to one.
        let tiny: JobQueue<u8> = JobQueue::bounded(0);
        tiny.push(7).unwrap();
        assert_eq!(tiny.try_push(8), Err(8));
    }

    #[test]
    fn worker_pool_consumes_every_item_and_returns_the_producer_result() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let sum = AtomicU64::new(0);
        for workers in [1usize, 3] {
            sum.store(0, Ordering::Relaxed);
            let produced = worker_pool(
                workers,
                2,
                |queue: &JobQueue<u64>| {
                    for value in 1..=50u64 {
                        queue.push(value).map_err(|_| ()).expect("queue open while producing");
                    }
                    "done"
                },
                |value| {
                    sum.fetch_add(value, Ordering::Relaxed);
                },
            );
            assert_eq!(produced, "done");
            assert_eq!(sum.load(Ordering::Relaxed), 50 * 51 / 2, "workers = {workers}");
        }
    }

    #[test]
    fn sleep_returns_after_the_requested_pause() {
        let start = std::time::Instant::now();
        sleep(Duration::from_millis(5));
        assert!(start.elapsed() >= Duration::from_millis(4));
    }

    #[test]
    fn merge_sorted_runs_keeps_duplicates_and_sorts() {
        let runs = vec![vec![1u32, 3, 3, 9], vec![2, 3], vec![], vec![0, 3, 9]];
        let expected = {
            let mut all: Vec<u32> = runs.iter().flatten().copied().collect();
            all.sort_unstable();
            all
        };
        assert_eq!(merge_sorted_runs(runs), expected);
        assert!(merge_sorted_runs::<u32>(vec![]).is_empty());
        assert_eq!(merge_sorted_runs(vec![vec![7u32, 9]]), vec![7, 9]);
        assert_eq!(merge_two_sorted(vec![1u32, 4], vec![2, 4]), vec![1, 2, 4, 4]);
    }
}
