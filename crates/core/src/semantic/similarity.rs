//! Semantic similarity of concepts (Eq. 4) and records (Eq. 5), plus the
//! paper's Propositions 4.1 and 4.2 as testable functions.

use std::collections::BTreeSet;

use crate::semantic::Interpretation;
use crate::taxonomy::{ConceptId, TaxonomyTree};

/// Semantic similarity of two concepts (Eq. 4):
/// `sim_S(c1, c2) = |leaf(c1) ∩ leaf(c2)| / |leaf(c1) ∪ leaf(c2)|`.
///
/// Sibling concepts have disjoint leaf sets and therefore similarity 0
/// (property (3) of §4.3); identical concepts have similarity 1; an ancestor
/// and its descendant have similarity `|leaf(desc)| / |leaf(anc)|`.
///
/// Unknown concept ids yield 0.
pub fn concept_similarity(tree: &TaxonomyTree, c1: ConceptId, c2: ConceptId) -> f64 {
    if !tree.contains(c1) || !tree.contains(c2) {
        return 0.0;
    }
    let leaves1: BTreeSet<ConceptId> = tree.leaves_under(c1).into_iter().collect();
    let leaves2: BTreeSet<ConceptId> = tree.leaves_under(c2).into_iter().collect();
    if leaves1.is_empty() || leaves2.is_empty() {
        return 0.0;
    }
    let intersection = leaves1.intersection(&leaves2).count();
    let union = leaves1.union(&leaves2).count();
    intersection as f64 / union as f64
}

/// The related-concept-pair set `P(r1, r2)` of Eq. 5: all pairs
/// `(c1, c2)` with `c1 ∈ ζ(r1)`, `c2 ∈ ζ(r2)` and one subsuming the other.
pub fn related_pairs(
    tree: &TaxonomyTree,
    zeta1: &Interpretation,
    zeta2: &Interpretation,
) -> Vec<(ConceptId, ConceptId)> {
    let mut pairs = Vec::new();
    for c1 in zeta1.concepts() {
        for c2 in zeta2.concepts() {
            if tree.related(c1, c2) {
                pairs.push((c1, c2));
            }
        }
    }
    pairs
}

/// Semantic similarity of two records given their interpretations (Eq. 5):
///
/// ```text
/// sim_S(r1, r2) = Σ_{(c1,c2) ∈ P(r1,r2)}  (|α(c1,c2)| / |β(r1,r2)|) · sim_S(c1, c2)
/// ```
///
/// where `α(c1,c2) = leaf(c1) ∪ leaf(c2)` and `β(r1,r2)` is the union of α
/// over **all** concept pairs of the two interpretations.
///
/// Proposition 4.2 follows directly: the result is 0 iff `P(r1, r2)` is empty
/// (no concept of one record is related to any concept of the other).
pub fn record_semantic_similarity(
    tree: &TaxonomyTree,
    zeta1: &Interpretation,
    zeta2: &Interpretation,
) -> f64 {
    if zeta1.is_empty() || zeta2.is_empty() {
        return 0.0;
    }

    // β(r1, r2): union of leaf(c1) ∪ leaf(c2) over all pairs — equivalently,
    // the union of the leaf sets of every concept in either interpretation.
    let mut beta: BTreeSet<ConceptId> = BTreeSet::new();
    for c in zeta1.concepts().chain(zeta2.concepts()) {
        beta.extend(tree.leaves_under(c));
    }
    if beta.is_empty() {
        return 0.0;
    }
    let beta_size = beta.len() as f64;

    let mut total = 0.0;
    for (c1, c2) in related_pairs(tree, zeta1, zeta2) {
        let mut alpha: BTreeSet<ConceptId> = tree.leaves_under(c1).into_iter().collect();
        alpha.extend(tree.leaves_under(c2));
        let weight = alpha.len() as f64 / beta_size;
        total += weight * concept_similarity(tree, c1, c2);
    }
    // Floating point accumulation can nudge the value a hair above 1.0 when
    // the weights sum to exactly one; clamp to the metric's range.
    total.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantic::SemanticFunction;
    use crate::taxonomy::bib::{bibliographic_taxonomy, BibConcept};
    use crate::taxonomy::voter::voter_taxonomy;

    fn ids(tree: &TaxonomyTree) -> (ConceptId, ConceptId, ConceptId, ConceptId, ConceptId, ConceptId, ConceptId) {
        (
            BibConcept::ResearchOutput.resolve(tree).unwrap(),
            BibConcept::Publication.resolve(tree).unwrap(),
            BibConcept::PeerReviewed.resolve(tree).unwrap(),
            BibConcept::Journal.resolve(tree).unwrap(),
            BibConcept::Proceedings.resolve(tree).unwrap(),
            BibConcept::NonPeerReviewed.resolve(tree).unwrap(),
            BibConcept::TechnicalReport.resolve(tree).unwrap(),
        )
    }

    #[test]
    fn example_4_4_concept_similarities() {
        let tree = bibliographic_taxonomy();
        let (c0, c1, c2, _c3, c4, c6, _c7) = ids(&tree);
        assert!((concept_similarity(&tree, c0, c1) - 5.0 / 6.0).abs() < 1e-12);
        assert!((concept_similarity(&tree, c1, c2) - 3.0 / 5.0).abs() < 1e-12);
        assert!((concept_similarity(&tree, c0, c4) - 1.0 / 6.0).abs() < 1e-12);
        assert_eq!(concept_similarity(&tree, c2, c6), 0.0);
    }

    #[test]
    fn example_4_3_siblings_have_zero_similarity() {
        let tree = bibliographic_taxonomy();
        let c3 = BibConcept::Journal.resolve(&tree).unwrap();
        let c5 = BibConcept::Book.resolve(&tree).unwrap();
        assert_eq!(concept_similarity(&tree, c3, c5), 0.0);
    }

    #[test]
    fn concept_similarity_is_symmetric_reflexive_and_bounded() {
        let tree = bibliographic_taxonomy();
        for a in tree.concepts() {
            assert_eq!(concept_similarity(&tree, a, a), 1.0);
            for b in tree.concepts() {
                let s = concept_similarity(&tree, a, b);
                assert!((0.0..=1.0).contains(&s));
                assert!((s - concept_similarity(&tree, b, a)).abs() < 1e-12);
            }
        }
        assert_eq!(concept_similarity(&tree, ConceptId(0), ConceptId(99)), 0.0);
    }

    #[test]
    fn subsumption_monotonicity_property() {
        // For c3 ⪯ c2 ⪯ c1: sim(c1,c3) <= sim(c2,c3) and sim(c1,c3) <= sim(c1,c2).
        let tree = bibliographic_taxonomy();
        let c1 = BibConcept::Publication.resolve(&tree).unwrap();
        let c2 = BibConcept::PeerReviewed.resolve(&tree).unwrap();
        let c3 = BibConcept::Journal.resolve(&tree).unwrap();
        assert!(concept_similarity(&tree, c1, c3) <= concept_similarity(&tree, c2, c3));
        assert!(concept_similarity(&tree, c1, c3) <= concept_similarity(&tree, c1, c2));
    }

    #[test]
    fn example_4_5_record_similarities() {
        let tree = bibliographic_taxonomy();
        let c0 = BibConcept::ResearchOutput.resolve(&tree).unwrap();
        let c3 = BibConcept::Journal.resolve(&tree).unwrap();
        let c4 = BibConcept::Proceedings.resolve(&tree).unwrap();
        let c7 = BibConcept::TechnicalReport.resolve(&tree).unwrap();

        // ζ(r1)={c4}, ζ(r2)={c3,c4} → 1/2
        let r1 = Interpretation::singleton(c4);
        let r2: Interpretation = [c3, c4].into_iter().collect();
        assert!((record_semantic_similarity(&tree, &r1, &r2) - 0.5).abs() < 1e-12);

        // ζ(r3)={c4} → sim(r1, r3) = 1
        let r3 = Interpretation::singleton(c4);
        assert_eq!(record_semantic_similarity(&tree, &r1, &r3), 1.0);

        // ζ(r5)={c7}: unrelated to c4 → 0 (Proposition 4.2)
        let r5 = Interpretation::singleton(c7);
        assert_eq!(record_semantic_similarity(&tree, &r1, &r5), 0.0);
        assert!(related_pairs(&tree, &r1, &r5).is_empty());

        // ζ(r6)={c0} → sim(r1, r6) = 1/6
        let r6 = Interpretation::singleton(c0);
        assert!((record_semantic_similarity(&tree, &r1, &r6) - 1.0 / 6.0).abs() < 1e-12);
        // and sim(r5, r6) = 1/6 as well
        assert!((record_semantic_similarity(&tree, &r5, &r6) - 1.0 / 6.0).abs() < 1e-12);

        // ζ(r2)={c3,c4} vs ζ(r6)={c0}: the paper reports 1/3.
        assert!((record_semantic_similarity(&tree, &r2, &r6) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn proposition_4_1_child_partition_gives_similarity_one() {
        let tree = bibliographic_taxonomy();
        let c2 = BibConcept::PeerReviewed.resolve(&tree).unwrap();
        let children: Interpretation = tree.children(c2).iter().copied().collect();
        let parent = Interpretation::singleton(c2);
        assert!((record_semantic_similarity(&tree, &parent, &children) - 1.0).abs() < 1e-12);

        // Also at the next level up: publication vs {peer reviewed, non-peer reviewed}.
        let c1 = BibConcept::Publication.resolve(&tree).unwrap();
        let kids: Interpretation = tree.children(c1).iter().copied().collect();
        assert!((record_semantic_similarity(&tree, &Interpretation::singleton(c1), &kids) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn proposition_4_2_zero_iff_no_related_pairs() {
        let tree = bibliographic_taxonomy();
        let c3 = BibConcept::Journal.resolve(&tree).unwrap();
        let c4 = BibConcept::Proceedings.resolve(&tree).unwrap();
        let c7 = BibConcept::TechnicalReport.resolve(&tree).unwrap();
        let c1 = BibConcept::Publication.resolve(&tree).unwrap();

        let zeta_a: Interpretation = [c3, c4].into_iter().collect();
        let zeta_b = Interpretation::singleton(c7);
        assert!(related_pairs(&tree, &zeta_a, &zeta_b).is_empty());
        assert_eq!(record_semantic_similarity(&tree, &zeta_a, &zeta_b), 0.0);

        let zeta_c = Interpretation::singleton(c1);
        assert!(!related_pairs(&tree, &zeta_a, &zeta_c).is_empty());
        assert!(record_semantic_similarity(&tree, &zeta_a, &zeta_c) > 0.0);
    }

    #[test]
    fn empty_interpretations_have_zero_similarity() {
        let tree = bibliographic_taxonomy();
        let c3 = BibConcept::Journal.resolve(&tree).unwrap();
        let some = Interpretation::singleton(c3);
        let none = Interpretation::empty();
        assert_eq!(record_semantic_similarity(&tree, &some, &none), 0.0);
        assert_eq!(record_semantic_similarity(&tree, &none, &none), 0.0);
    }

    #[test]
    fn record_similarity_is_symmetric_and_bounded_over_voter_tree() {
        let tree = voter_taxonomy();
        let concepts: Vec<ConceptId> = tree.concepts().collect();
        for &a in concepts.iter().step_by(3) {
            for &b in concepts.iter().step_by(4) {
                let ia = Interpretation::singleton(a);
                let ib = Interpretation::singleton(b);
                let s1 = record_semantic_similarity(&tree, &ia, &ib);
                let s2 = record_semantic_similarity(&tree, &ib, &ia);
                assert!((s1 - s2).abs() < 1e-12);
                assert!((0.0..=1.0).contains(&s1));
            }
        }
    }

    #[test]
    fn coincides_with_concept_similarity_for_singletons() {
        // "When two records are both interpreted to exactly one concept...
        // the semantic similarity between the records coincides with the
        // semantic similarity between their related concepts" (for related
        // concepts).
        let tree = bibliographic_taxonomy();
        let c0 = BibConcept::ResearchOutput.resolve(&tree).unwrap();
        let c1 = BibConcept::Publication.resolve(&tree).unwrap();
        let r_a = Interpretation::singleton(c0);
        let r_b = Interpretation::singleton(c1);
        let via_records = record_semantic_similarity(&tree, &r_a, &r_b);
        let via_concepts = concept_similarity(&tree, c0, c1);
        assert!((via_records - via_concepts).abs() < 1e-12);
    }

    #[test]
    fn integration_with_voter_semantic_function() {
        use crate::semantic::voter::VoterSemanticFunction;
        use sablock_datasets::record::RecordBuilder;
        use sablock_datasets::{RecordId, Schema};

        let zeta = VoterSemanticFunction::default_voter();
        let schema = Schema::shared(["gender", "race"]).unwrap();
        let make = |g: &str, r: &str, id: u32| {
            RecordBuilder::new(std::sync::Arc::clone(&schema))
                .set("gender", g)
                .unwrap()
                .set("race", r)
                .unwrap()
                .build(RecordId(id))
        };
        let tree = zeta.taxonomy();
        let wm = zeta.interpret(&make("m", "w", 0));
        let wf = zeta.interpret(&make("f", "w", 1));
        let wu = zeta.interpret(&make("u", "w", 2));
        let bm = zeta.interpret(&make("m", "b", 3));
        // Same race, different genders: siblings → 0.
        assert_eq!(record_semantic_similarity(tree, &wm, &wf), 0.0);
        // Known gender vs uncertain gender of same race: child vs parent → 1/2.
        assert!((record_semantic_similarity(tree, &wm, &wu) - 0.5).abs() < 1e-12);
        // Different races → 0.
        assert_eq!(record_semantic_similarity(tree, &wm, &bm), 0.0);
        // Identical → 1.
        assert_eq!(record_semantic_similarity(tree, &wm, &wm.clone()), 1.0);
    }
}
