//! The missing-value-pattern semantic function of Table 1.
//!
//! Example 4.2 and Section 6.2 of the paper derive the semantic
//! interpretation of Cora records purely from *which venue attributes are
//! present*: a record with a `journal` value but no `booktitle` or
//! `institution` is interpreted as a journal article (C3); a record with none
//! of the three is only known to be a publication (C1); and so on, following
//! the eight patterns of Table 1.
//!
//! [`PatternSemanticFunction`] generalises that idea: it is configured with a
//! list of patterns over attribute *presence*, each mapping to a set of
//! concepts; the first matching pattern wins. [`PatternSemanticFunction::cora_default`]
//! builds exactly Table 1.

use sablock_datasets::Record;
use sablock_textual::normalize::is_missing_text;

use crate::error::{CoreError, Result};
use crate::semantic::{Interpretation, SemanticFunction};
use crate::taxonomy::bib::BibConcept;
use crate::taxonomy::{ConceptId, TaxonomyTree};

/// A condition on the presence of a single attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Presence {
    /// The attribute must have a non-missing value (`NOT NULL` in Table 1).
    Present,
    /// The attribute must be missing (`NULL` in Table 1).
    Missing,
    /// The attribute may be anything.
    Any,
}

impl Presence {
    fn matches(self, value_present: bool) -> bool {
        match self {
            Self::Present => value_present,
            Self::Missing => !value_present,
            Self::Any => true,
        }
    }
}

/// A single pattern: one presence condition per watched attribute, plus the
/// concepts a matching record is related to.
#[derive(Debug, Clone)]
pub struct Pattern {
    conditions: Vec<Presence>,
    concepts: Vec<ConceptId>,
}

impl Pattern {
    /// Creates a pattern. The number of conditions must equal the number of
    /// attributes the function watches (checked by the function builder).
    pub fn new(conditions: Vec<Presence>, concepts: Vec<ConceptId>) -> Self {
        Self { conditions, concepts }
    }

    /// The concepts of the pattern.
    pub fn concepts(&self) -> &[ConceptId] {
        &self.concepts
    }
}

/// A semantic function driven by missing-value patterns over a fixed list of
/// attributes (Table 1).
#[derive(Debug, Clone)]
pub struct PatternSemanticFunction {
    tree: TaxonomyTree,
    attributes: Vec<String>,
    patterns: Vec<Pattern>,
    fallback: Vec<ConceptId>,
    name: String,
}

impl PatternSemanticFunction {
    /// Creates a pattern function.
    ///
    /// * `attributes` — the attributes whose presence is inspected, in the
    ///   order pattern conditions are written;
    /// * `patterns` — evaluated top to bottom, first match wins;
    /// * `fallback` — the concepts used when no pattern matches (Table 1 is
    ///   complete so its fallback is never reached, but a custom pattern list
    ///   may not be).
    pub fn new(
        name: impl Into<String>,
        tree: TaxonomyTree,
        attributes: Vec<String>,
        patterns: Vec<Pattern>,
        fallback: Vec<ConceptId>,
    ) -> Result<Self> {
        for (i, pattern) in patterns.iter().enumerate() {
            if pattern.conditions.len() != attributes.len() {
                return Err(CoreError::Config(format!(
                    "pattern {i} has {} conditions but {} attributes are watched",
                    pattern.conditions.len(),
                    attributes.len()
                )));
            }
            for &concept in &pattern.concepts {
                if !tree.contains(concept) {
                    return Err(CoreError::Taxonomy(format!("pattern {i} references unknown concept {concept}")));
                }
            }
        }
        for &concept in &fallback {
            if !tree.contains(concept) {
                return Err(CoreError::Taxonomy(format!("fallback references unknown concept {concept}")));
            }
        }
        Ok(Self {
            tree,
            attributes,
            patterns,
            fallback,
            name: name.into(),
        })
    }

    /// Builds the Cora pattern function of Table 1 over the attributes
    /// `journal`, `booktitle` and `institution`.
    ///
    /// | # | journal | booktitle | institution | concepts |
    /// |---|---------|-----------|-------------|----------|
    /// | 1 | present | present   | present     | C3, C4, C6 |
    /// | 2 | present | present   | missing     | C3, C4 |
    /// | 3 | present | missing   | present     | C3, C6 |
    /// | 4 | present | missing   | missing     | C3 |
    /// | 5 | missing | present   | present     | C4, C7, C8 |
    /// | 6 | missing | present   | missing     | C4 |
    /// | 7 | missing | missing   | present     | C7, C8 |
    /// | 8 | missing | missing   | missing     | C1 |
    ///
    /// When the supplied tree is a variant missing some concept (Fig. 10),
    /// the concept is replaced by its parent in the full tree — e.g. in
    /// t_(bib,3), which lacks *journal*, pattern 4 maps to *peer reviewed* —
    /// mirroring the paper's description that "records that are originally
    /// related to missing concepts have been changed to relate with their
    /// parent concepts".
    pub fn cora_default(tree: &TaxonomyTree) -> Result<Self> {
        use Presence::{Missing, Present};

        // Resolve a concept, falling back to parents of the *full* taxonomy
        // when the variant omits it: journal/book -> peer reviewed ->
        // publication; technical report/thesis -> non-peer reviewed -> publication.
        let resolve = |concept: BibConcept| -> Result<ConceptId> {
            if let Some(id) = concept.resolve(tree) {
                return Ok(id);
            }
            let parents: &[BibConcept] = match concept {
                BibConcept::Journal | BibConcept::Proceedings | BibConcept::Book => {
                    &[BibConcept::PeerReviewed, BibConcept::Publication]
                }
                BibConcept::TechnicalReport | BibConcept::Thesis => {
                    &[BibConcept::NonPeerReviewed, BibConcept::Publication]
                }
                BibConcept::PeerReviewed | BibConcept::NonPeerReviewed => &[BibConcept::Publication],
                _ => &[BibConcept::ResearchOutput],
            };
            for parent in parents {
                if let Some(id) = parent.resolve(tree) {
                    return Ok(id);
                }
            }
            tree.require_concept(BibConcept::ResearchOutput.label())
        };

        let c1 = resolve(BibConcept::Publication)?;
        let c3 = resolve(BibConcept::Journal)?;
        let c4 = resolve(BibConcept::Proceedings)?;
        let c6 = resolve(BibConcept::NonPeerReviewed)?;
        let c7 = resolve(BibConcept::TechnicalReport)?;
        let c8 = resolve(BibConcept::Thesis)?;

        let patterns = vec![
            Pattern::new(vec![Present, Present, Present], vec![c3, c4, c6]),
            Pattern::new(vec![Present, Present, Missing], vec![c3, c4]),
            Pattern::new(vec![Present, Missing, Present], vec![c3, c6]),
            Pattern::new(vec![Present, Missing, Missing], vec![c3]),
            Pattern::new(vec![Missing, Present, Present], vec![c4, c7, c8]),
            Pattern::new(vec![Missing, Present, Missing], vec![c4]),
            Pattern::new(vec![Missing, Missing, Present], vec![c7, c8]),
            Pattern::new(vec![Missing, Missing, Missing], vec![c1]),
        ];

        Self::new(
            "cora-pattern",
            tree.clone(),
            vec!["journal".into(), "booktitle".into(), "institution".into()],
            patterns,
            vec![c1],
        )
    }

    /// The attributes this function inspects.
    pub fn attributes(&self) -> &[String] {
        &self.attributes
    }

    /// The number of patterns.
    pub fn num_patterns(&self) -> usize {
        self.patterns.len()
    }

    fn presence_vector(&self, record: &Record) -> Vec<bool> {
        self.attributes
            .iter()
            .map(|attr| match record.value(attr) {
                Some(value) => !is_missing_text(value),
                None => false,
            })
            .collect()
    }
}

impl SemanticFunction for PatternSemanticFunction {
    fn taxonomy(&self) -> &TaxonomyTree {
        &self.tree
    }

    fn interpret(&self, record: &Record) -> Interpretation {
        let presence = self.presence_vector(record);
        for pattern in &self.patterns {
            let matches = pattern
                .conditions
                .iter()
                .zip(presence.iter())
                .all(|(cond, &present)| cond.matches(present));
            if matches {
                return Interpretation::new(&self.tree, pattern.concepts.iter().copied());
            }
        }
        Interpretation::new(&self.tree, self.fallback.iter().copied())
    }

    fn name(&self) -> String {
        self.name.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::bib::{bibliographic_taxonomy, bibliographic_taxonomy_variant, BibVariant};
    use sablock_datasets::record::RecordBuilder;
    use sablock_datasets::{RecordId, Schema};
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::shared(["title", "journal", "booktitle", "institution"]).unwrap()
    }

    fn record(journal: Option<&str>, booktitle: Option<&str>, institution: Option<&str>) -> sablock_datasets::Record {
        let mut builder = RecordBuilder::new(schema()).set("title", "some title").unwrap();
        if let Some(j) = journal {
            builder = builder.set("journal", j).unwrap();
        }
        if let Some(b) = booktitle {
            builder = builder.set("booktitle", b).unwrap();
        }
        if let Some(i) = institution {
            builder = builder.set("institution", i).unwrap();
        }
        builder.build(RecordId(0))
    }

    fn concepts_of(interp: &Interpretation, tree: &TaxonomyTree) -> Vec<String> {
        let mut labels: Vec<String> = interp.concepts().map(|c| tree.label(c).unwrap().to_string()).collect();
        labels.sort();
        labels
    }

    #[test]
    fn table_1_patterns_are_reproduced() {
        let tree = bibliographic_taxonomy();
        let zeta = PatternSemanticFunction::cora_default(&tree).unwrap();
        assert_eq!(zeta.num_patterns(), 8);
        assert_eq!(zeta.attributes(), &["journal", "booktitle", "institution"]);

        type Case<'a> = (Option<&'a str>, Option<&'a str>, Option<&'a str>, Vec<&'a str>);
        let cases: Vec<Case> = vec![
            (Some("ml journal"), Some("nips"), Some("cmu"), vec!["journal", "non-peer reviewed", "proceedings"]),
            (Some("ml journal"), Some("nips"), None, vec!["journal", "proceedings"]),
            (Some("ml journal"), None, Some("cmu"), vec!["journal", "non-peer reviewed"]),
            (Some("ml journal"), None, None, vec!["journal"]),
            (None, Some("nips"), Some("cmu"), vec!["proceedings", "technical report", "thesis"]),
            (None, Some("nips"), None, vec!["proceedings"]),
            (None, None, Some("cmu"), vec!["technical report", "thesis"]),
            (None, None, None, vec!["publication"]),
        ];
        for (journal, booktitle, institution, expected) in cases {
            let interp = zeta.interpret(&record(journal, booktitle, institution));
            let mut expected: Vec<String> = expected.into_iter().map(str::to_string).collect();
            expected.sort();
            assert_eq!(concepts_of(&interp, &tree), expected, "pattern j={journal:?} b={booktitle:?} i={institution:?}");
            assert!(interp.is_specific(&tree));
        }
    }

    #[test]
    fn placeholder_values_count_as_missing() {
        let tree = bibliographic_taxonomy();
        let zeta = PatternSemanticFunction::cora_default(&tree).unwrap();
        let interp = zeta.interpret(&record(Some("null"), Some("  "), None));
        assert_eq!(concepts_of(&interp, &tree), vec!["publication"]);
    }

    #[test]
    fn variant_trees_redirect_to_parent_concepts() {
        // t_(bib,3) has no journal: pattern 4 maps to "peer reviewed" instead.
        let tree = bibliographic_taxonomy_variant(BibVariant::NoJournal);
        let zeta = PatternSemanticFunction::cora_default(&tree).unwrap();
        let interp = zeta.interpret(&record(Some("ml journal"), None, None));
        assert_eq!(concepts_of(&interp, &tree), vec!["peer reviewed"]);

        // t_(bib,1) has no review levels: pattern 3's "non-peer reviewed"
        // becomes "publication"; specificity then drops it next to "journal".
        let tree1 = bibliographic_taxonomy_variant(BibVariant::NoReviewLevels);
        let zeta1 = PatternSemanticFunction::cora_default(&tree1).unwrap();
        let interp1 = zeta1.interpret(&record(Some("ml journal"), None, Some("cmu")));
        assert_eq!(concepts_of(&interp1, &tree1), vec!["journal"]);
    }

    #[test]
    fn mismatched_pattern_arity_rejected() {
        let tree = bibliographic_taxonomy();
        let c1 = BibConcept::Publication.resolve(&tree).unwrap();
        let err = PatternSemanticFunction::new(
            "bad",
            tree.clone(),
            vec!["journal".into()],
            vec![Pattern::new(vec![Presence::Present, Presence::Missing], vec![c1])],
            vec![c1],
        )
        .unwrap_err();
        assert!(err.to_string().contains("conditions"));
    }

    #[test]
    fn unknown_concepts_rejected() {
        let tree = bibliographic_taxonomy();
        let err = PatternSemanticFunction::new(
            "bad",
            tree.clone(),
            vec!["journal".into()],
            vec![Pattern::new(vec![Presence::Present], vec![ConceptId(99)])],
            vec![],
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::Taxonomy(_)));
        let err = PatternSemanticFunction::new("bad", tree, vec![], vec![], vec![ConceptId(99)]).unwrap_err();
        assert!(matches!(err, CoreError::Taxonomy(_)));
    }

    #[test]
    fn fallback_applies_when_no_pattern_matches() {
        let tree = bibliographic_taxonomy();
        let c9 = BibConcept::Patent.resolve(&tree).unwrap();
        let zeta = PatternSemanticFunction::new(
            "only-pattern-1",
            tree.clone(),
            vec!["journal".into()],
            vec![Pattern::new(vec![Presence::Present], vec![c9])],
            vec![BibConcept::ResearchOutput.resolve(&tree).unwrap()],
        )
        .unwrap();
        let interp = zeta.interpret(&record(None, None, None));
        assert_eq!(concepts_of(&interp, &tree), vec!["research output"]);
        assert_eq!(zeta.name(), "only-pattern-1");
    }

    #[test]
    fn presence_any_matches_both() {
        assert!(Presence::Any.matches(true));
        assert!(Presence::Any.matches(false));
        assert!(Presence::Present.matches(true));
        assert!(!Presence::Present.matches(false));
        assert!(Presence::Missing.matches(false));
        assert!(!Presence::Missing.matches(true));
    }
}
