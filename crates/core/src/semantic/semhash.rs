//! Semantic hashing (paper §4.4, Algorithm 1).
//!
//! A *semhash family* is a set of binary hash functions, one per concept in a
//! selected subset `C` of taxonomy concepts satisfying:
//!
//! 1. **Disjointness** — concepts in `C` are pairwise unrelated,
//! 2. **Completeness** — for every concept appearing in a record
//!    interpretation, all of its leaves are in `C`,
//! 3. **Non-emptiness** — every concept of `C` is related to at least one
//!    record.
//!
//! Algorithm 1 satisfies all three by taking `C = ⋃_{c ∈ ζ(R)} leaf(c)`:
//! leaves are pairwise disjoint, every interpreted concept's leaves are
//! included, and only leaves reachable from some record are added. Each
//! concept `c_i ∈ C` becomes a hash function `g_i` with
//! `g_i(r) = 1 ⇔ ∃c ∈ ζ(r). c_i ⪯ c`, and the bit vector
//! `G(r) = [g_1(r), …, g_n(r)]` is the record's **semhash signature**.
//!
//! Proposition 4.3: the Jaccard similarity of two semhash signatures is
//! order-compatible with the semantic similarity of the records.

use std::collections::BTreeSet;

use crate::error::{CoreError, Result};
use crate::semantic::Interpretation;
use crate::taxonomy::{ConceptId, TaxonomyTree};

/// A semhash signature: one bit per semhash function (i.e. per concept of the
/// selected subset `C`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SemanticSignature {
    bits: Vec<u64>,
    len: usize,
}

impl SemanticSignature {
    /// An all-zero signature of `len` bits.
    pub fn zeros(len: usize) -> Self {
        Self {
            bits: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of bits (the size of `C`).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the signature has zero bits (an empty family).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`.
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range for signature of {} bits", self.len);
        self.bits[i / 64] |= 1u64 << (i % 64);
    }

    /// Reads bit `i`.
    pub fn get(&self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        (self.bits[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of bits set in both signatures.
    pub fn intersection_count(&self, other: &Self) -> usize {
        self.bits
            .iter()
            .zip(other.bits.iter())
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Number of bits set in either signature.
    pub fn union_count(&self, other: &Self) -> usize {
        self.bits
            .iter()
            .zip(other.bits.iter())
            .map(|(a, b)| (a | b).count_ones() as usize)
            .sum::<usize>()
            + self.tail_ones(other)
    }

    // When signatures have different lengths (which only happens if callers
    // mix families — a misuse we still want to behave sanely for), count the
    // extra words of the longer one as union-only bits.
    fn tail_ones(&self, other: &Self) -> usize {
        let common = self.bits.len().min(other.bits.len());
        let longer = if self.bits.len() > common { &self.bits } else { &other.bits };
        longer[common..].iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Jaccard similarity of two signatures (0 when both are all-zero).
    pub fn jaccard(&self, other: &Self) -> f64 {
        let union = self.union_count(other);
        if union == 0 {
            return 0.0;
        }
        self.intersection_count(other) as f64 / union as f64
    }

    /// Whether the two signatures share at least one set bit.
    pub fn intersects(&self, other: &Self) -> bool {
        self.bits.iter().zip(other.bits.iter()).any(|(a, b)| a & b != 0)
    }

    /// Indices of the set bits, ascending.
    pub fn ones(&self) -> Vec<usize> {
        (0..self.len).filter(|&i| self.get(i)).collect()
    }
}

/// The semhash family: the selected concept subset `C` and the signature
/// generator (Algorithm 1).
#[derive(Debug, Clone)]
pub struct SemhashFamily {
    concepts: Vec<ConceptId>,
}

impl SemhashFamily {
    /// Algorithm 1, step 1: selects `C = ⋃_{c ∈ ζ(R)} leaf(c)` from the
    /// interpretations of all records.
    ///
    /// Errors if every interpretation is empty (no semantic feature exists,
    /// so semantic hashing cannot contribute anything).
    pub fn build<'a>(
        tree: &TaxonomyTree,
        interpretations: impl IntoIterator<Item = &'a Interpretation>,
    ) -> Result<Self> {
        let mut selected: BTreeSet<ConceptId> = BTreeSet::new();
        for interpretation in interpretations {
            for concept in interpretation.concepts() {
                selected.extend(tree.leaves_under(concept));
            }
        }
        if selected.is_empty() {
            return Err(CoreError::Config(
                "cannot build a semhash family: no record has a non-empty semantic interpretation".into(),
            ));
        }
        Ok(Self {
            concepts: selected.into_iter().collect(),
        })
    }

    /// Builds the family from *all* leaves of the tree, regardless of which
    /// records exist. Useful when the dataset is streamed and the full leaf
    /// set is known to be reachable (e.g. the 12-leaf voter taxonomy).
    pub fn from_all_leaves(tree: &TaxonomyTree) -> Result<Self> {
        let concepts = tree.all_leaves();
        if concepts.is_empty() {
            return Err(CoreError::Taxonomy("taxonomy tree has no leaves".into()));
        }
        Ok(Self { concepts })
    }

    /// The selected concepts `C`, in ascending id order; the i-th concept is
    /// the i-th semhash function / signature bit.
    pub fn concepts(&self) -> &[ConceptId] {
        &self.concepts
    }

    /// Number of semhash functions (= signature bits).
    pub fn len(&self) -> usize {
        self.concepts.len()
    }

    /// Whether the family is empty.
    pub fn is_empty(&self) -> bool {
        self.concepts.is_empty()
    }

    /// Algorithm 1, step 2: the semhash signature of an interpretation —
    /// bit `i` is 1 iff concept `C[i]` is subsumed by some concept of ζ(r).
    pub fn signature(&self, tree: &TaxonomyTree, interpretation: &Interpretation) -> SemanticSignature {
        let mut signature = SemanticSignature::zeros(self.concepts.len());
        for (i, &feature) in self.concepts.iter().enumerate() {
            let related = interpretation.concepts().any(|c| tree.subsumed_by(feature, c));
            if related {
                signature.set(i);
            }
        }
        signature
    }

    /// Signatures for a batch of interpretations, preserving order.
    pub fn signatures(&self, tree: &TaxonomyTree, interpretations: &[Interpretation]) -> Vec<SemanticSignature> {
        interpretations.iter().map(|i| self.signature(tree, i)).collect()
    }

    /// Verifies the disjointness property (1) of §4.4 against a tree. The
    /// families built by [`SemhashFamily::build`] and
    /// [`SemhashFamily::from_all_leaves`] satisfy it by construction; this is
    /// exposed for custom families and for tests.
    pub fn is_disjoint(&self, tree: &TaxonomyTree) -> bool {
        for (i, &a) in self.concepts.iter().enumerate() {
            for &b in &self.concepts[i + 1..] {
                if tree.related(a, b) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantic::similarity::record_semantic_similarity;
    use crate::taxonomy::bib::{bibliographic_taxonomy, BibConcept};
    use crate::taxonomy::voter::voter_taxonomy;

    fn interp(tree: &TaxonomyTree, concepts: &[BibConcept]) -> Interpretation {
        Interpretation::new(tree, concepts.iter().map(|c| c.resolve(tree).unwrap()))
    }

    #[test]
    fn signature_bit_manipulation() {
        let mut sig = SemanticSignature::zeros(70);
        assert_eq!(sig.len(), 70);
        assert!(!sig.is_empty());
        assert_eq!(sig.count_ones(), 0);
        sig.set(0);
        sig.set(64);
        sig.set(69);
        assert!(sig.get(0) && sig.get(64) && sig.get(69));
        assert!(!sig.get(1));
        assert!(!sig.get(200));
        assert_eq!(sig.count_ones(), 3);
        assert_eq!(sig.ones(), vec![0, 64, 69]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn setting_out_of_range_bit_panics() {
        SemanticSignature::zeros(5).set(5);
    }

    #[test]
    fn signature_jaccard_and_intersection() {
        let mut a = SemanticSignature::zeros(8);
        let mut b = SemanticSignature::zeros(8);
        a.set(0);
        a.set(1);
        b.set(1);
        b.set(2);
        assert_eq!(a.intersection_count(&b), 1);
        assert_eq!(a.union_count(&b), 3);
        assert!((a.jaccard(&b) - 1.0 / 3.0).abs() < 1e-12);
        assert!(a.intersects(&b));
        let zero = SemanticSignature::zeros(8);
        assert_eq!(zero.jaccard(&zero), 0.0);
        assert!(!zero.intersects(&a));
    }

    #[test]
    fn cora_family_has_five_bits() {
        // Section 6.2: "we have 5 bit semantic signature for each record in
        // Cora". The Table 1 patterns interpret records with C1/C3/C4/C6/C7/C8,
        // whose leaves are {C3, C4, C5, C7, C8} — 5 features.
        let tree = bibliographic_taxonomy();
        let interpretations = vec![
            interp(&tree, &[BibConcept::Journal, BibConcept::Proceedings, BibConcept::NonPeerReviewed]),
            interp(&tree, &[BibConcept::Publication]),
            interp(&tree, &[BibConcept::TechnicalReport, BibConcept::Thesis]),
        ];
        let family = SemhashFamily::build(&tree, &interpretations).unwrap();
        assert_eq!(family.len(), 5);
        assert!(family.is_disjoint(&tree));
        let labels: Vec<&str> = family.concepts().iter().map(|&c| tree.label(c).unwrap()).collect();
        assert!(labels.contains(&"journal"));
        assert!(labels.contains(&"book"));
        assert!(!labels.contains(&"patent"), "no record is related to patent, so it must not be selected");
    }

    #[test]
    fn voter_family_has_twelve_bits() {
        let tree = voter_taxonomy();
        let family = SemhashFamily::from_all_leaves(&tree).unwrap();
        assert_eq!(family.len(), 12);
        assert!(family.is_disjoint(&tree));
    }

    #[test]
    fn empty_interpretations_cannot_build_a_family() {
        let tree = bibliographic_taxonomy();
        let empties = vec![Interpretation::empty(), Interpretation::empty()];
        assert!(SemhashFamily::build(&tree, &empties).is_err());
        assert!(SemhashFamily::from_all_leaves(&TaxonomyTree::new("empty")).is_err());
    }

    #[test]
    fn signatures_reflect_subsumption() {
        let tree = bibliographic_taxonomy();
        let family = SemhashFamily::from_all_leaves(&tree).unwrap();
        assert_eq!(family.len(), 6);

        // A journal record sets exactly the journal bit.
        let journal = family.signature(&tree, &interp(&tree, &[BibConcept::Journal]));
        assert_eq!(journal.count_ones(), 1);
        // A "publication" record sets every publication leaf (5 bits) but not patent.
        let publication = family.signature(&tree, &interp(&tree, &[BibConcept::Publication]));
        assert_eq!(publication.count_ones(), 5);
        // The root sets all 6.
        let root = family.signature(&tree, &interp(&tree, &[BibConcept::ResearchOutput]));
        assert_eq!(root.count_ones(), 6);
        // An empty interpretation sets nothing.
        let none = family.signature(&tree, &Interpretation::empty());
        assert_eq!(none.count_ones(), 0);
    }

    #[test]
    fn proposition_4_3_signature_jaccard_orders_like_semantic_similarity() {
        // The running example's records (Example 4.5): the ordering of
        // semantic similarities must be preserved by signature Jaccard.
        let tree = bibliographic_taxonomy();
        let family = SemhashFamily::from_all_leaves(&tree).unwrap();
        let r1 = interp(&tree, &[BibConcept::Proceedings]);
        let r2 = interp(&tree, &[BibConcept::Journal, BibConcept::Proceedings]);
        let r3 = interp(&tree, &[BibConcept::Proceedings]);
        let r5 = interp(&tree, &[BibConcept::TechnicalReport]);
        let r6 = interp(&tree, &[BibConcept::ResearchOutput]);

        let pairs = [(&r1, &r3), (&r1, &r2), (&r2, &r6), (&r1, &r6), (&r1, &r5)];
        let sem: Vec<f64> = pairs.iter().map(|(a, b)| record_semantic_similarity(&tree, a, b)).collect();
        let jac: Vec<f64> = pairs
            .iter()
            .map(|(a, b)| family.signature(&tree, a).jaccard(&family.signature(&tree, b)))
            .collect();
        // Semantic similarities are strictly decreasing across these pairs…
        for w in sem.windows(2) {
            assert!(w[0] >= w[1]);
        }
        // …and so are the signature Jaccards (Prop. 4.3's order compatibility).
        for w in jac.windows(2) {
            assert!(w[0] >= w[1], "signature Jaccard must not invert the semantic order: {jac:?}");
        }
        // Zero semantic similarity ⇒ disjoint signatures.
        assert_eq!(sem[4], 0.0);
        assert_eq!(jac[4], 0.0);
    }

    #[test]
    fn batch_signatures_preserve_order() {
        let tree = voter_taxonomy();
        let family = SemhashFamily::from_all_leaves(&tree).unwrap();
        let a = Interpretation::singleton(tree.require_concept("race w gender m").unwrap());
        let b = Interpretation::singleton(tree.require_concept("race b gender f").unwrap());
        let sigs = family.signatures(&tree, &[a.clone(), b.clone()]);
        assert_eq!(sigs.len(), 2);
        assert_eq!(sigs[0], family.signature(&tree, &a));
        assert_eq!(sigs[1], family.signature(&tree, &b));
        assert!(!sigs[0].intersects(&sigs[1]));
    }
}
