//! Semantic analysis: interpreting records as sets of taxonomy concepts
//! (paper §4.2).
//!
//! A *semantic function* ζ maps each record to its **semantic
//! interpretation** — a set of concepts from the taxonomy tree(s) — subject
//! to two properties (Definition 4.2):
//!
//! * **Specificity**: no concept in ζ(r) subsumes another concept in ζ(r);
//!   only the most specific concepts remain.
//! * **Isolation**: ζ(r) is computed from `r` alone, without consulting any
//!   other record (so interpretations can be computed independently and in
//!   parallel).
//!
//! Two concrete semantic functions are provided, matching the two functions
//! used in the paper's experiments:
//!
//! * [`pattern::PatternSemanticFunction`] — driven by missing-value patterns
//!   over selected attributes (Table 1, used for Cora),
//! * [`voter::VoterSemanticFunction`] — driven by the categorical values of
//!   `race` and `gender`, including the uncertain value `u` (used for NC
//!   Voter).

pub mod pattern;
pub mod semhash;
pub mod similarity;
pub mod voter;

use std::collections::BTreeSet;

use sablock_datasets::Record;

use crate::taxonomy::{ConceptId, TaxonomyTree};

/// The semantic interpretation ζ(r) of a record: a set of concepts.
///
/// Stored as a `BTreeSet` so iteration order (and therefore every signature
/// and block built from it) is deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Interpretation {
    concepts: BTreeSet<ConceptId>,
}

impl Interpretation {
    /// An empty interpretation (the record could not be related to any
    /// concept — e.g. the taxonomy variant lacks the concept entirely).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds an interpretation from concepts, enforcing the **specificity**
    /// property: whenever both `c` and an ancestor of `c` are present, the
    /// ancestor is dropped.
    pub fn new(tree: &TaxonomyTree, concepts: impl IntoIterator<Item = ConceptId>) -> Self {
        let raw: BTreeSet<ConceptId> = concepts.into_iter().filter(|&c| tree.contains(c)).collect();
        let concepts = raw
            .iter()
            .copied()
            .filter(|&c| {
                // Keep c unless some *other* concept in the set is strictly
                // subsumed by c (making c a redundant, more general concept).
                !raw.iter().any(|&other| other != c && tree.subsumed_by(other, c))
            })
            .collect();
        Self { concepts }
    }

    /// Builds an interpretation from a single concept.
    pub fn singleton(concept: ConceptId) -> Self {
        let mut concepts = BTreeSet::new();
        concepts.insert(concept);
        Self { concepts }
    }

    /// The concepts of the interpretation.
    pub fn concepts(&self) -> impl Iterator<Item = ConceptId> + '_ {
        self.concepts.iter().copied()
    }

    /// Number of concepts.
    pub fn len(&self) -> usize {
        self.concepts.len()
    }

    /// Whether the interpretation is empty.
    pub fn is_empty(&self) -> bool {
        self.concepts.is_empty()
    }

    /// Whether the interpretation contains a concept.
    pub fn contains(&self, concept: ConceptId) -> bool {
        self.concepts.contains(&concept)
    }

    /// Checks the specificity property against a tree (used by tests and by
    /// implementations of custom semantic functions).
    pub fn is_specific(&self, tree: &TaxonomyTree) -> bool {
        self.concepts.iter().all(|&c| {
            self.concepts
                .iter()
                .all(|&other| c == other || !(tree.subsumed_by(c, other) || tree.subsumed_by(other, c)))
        })
    }
}

impl FromIterator<ConceptId> for Interpretation {
    /// Collects concepts *without* specificity enforcement; use
    /// [`Interpretation::new`] when the source set may contain ancestors.
    fn from_iter<T: IntoIterator<Item = ConceptId>>(iter: T) -> Self {
        Self {
            concepts: iter.into_iter().collect(),
        }
    }
}

/// A semantic function ζ: records → interpretations (Definition 4.2).
///
/// Implementations must satisfy the *isolation* property: the interpretation
/// of a record may depend only on that record and static domain knowledge
/// (the taxonomy, configured patterns), never on other records.
pub trait SemanticFunction: Send + Sync {
    /// The taxonomy tree the interpretations refer to.
    fn taxonomy(&self) -> &TaxonomyTree;

    /// Interprets a record.
    fn interpret(&self, record: &Record) -> Interpretation;

    /// A short name for reports.
    fn name(&self) -> String {
        "semantic-function".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::bib::{bibliographic_taxonomy, BibConcept};

    #[test]
    fn specificity_drops_ancestors() {
        let tree = bibliographic_taxonomy();
        let journal = BibConcept::Journal.resolve(&tree).unwrap();
        let peer = BibConcept::PeerReviewed.resolve(&tree).unwrap();
        let publication = BibConcept::Publication.resolve(&tree).unwrap();
        let patent = BibConcept::Patent.resolve(&tree).unwrap();

        let interp = Interpretation::new(&tree, [journal, peer, publication, patent]);
        assert!(interp.contains(journal));
        assert!(interp.contains(patent));
        assert!(!interp.contains(peer), "peer reviewed subsumes journal and must be dropped");
        assert!(!interp.contains(publication));
        assert_eq!(interp.len(), 2);
        assert!(interp.is_specific(&tree));
    }

    #[test]
    fn unrelated_concepts_are_all_kept() {
        let tree = bibliographic_taxonomy();
        let journal = BibConcept::Journal.resolve(&tree).unwrap();
        let report = BibConcept::TechnicalReport.resolve(&tree).unwrap();
        let interp = Interpretation::new(&tree, [journal, report]);
        assert_eq!(interp.len(), 2);
        assert!(interp.is_specific(&tree));
    }

    #[test]
    fn unknown_concepts_are_filtered() {
        let tree = bibliographic_taxonomy();
        let interp = Interpretation::new(&tree, [ConceptId(99)]);
        assert!(interp.is_empty());
    }

    #[test]
    fn empty_and_singleton_constructors() {
        let tree = bibliographic_taxonomy();
        assert!(Interpretation::empty().is_empty());
        let journal = BibConcept::Journal.resolve(&tree).unwrap();
        let s = Interpretation::singleton(journal);
        assert_eq!(s.len(), 1);
        assert!(s.contains(journal));
        assert_eq!(s.concepts().count(), 1);
    }

    #[test]
    fn from_iterator_does_not_enforce_specificity() {
        let tree = bibliographic_taxonomy();
        let journal = BibConcept::Journal.resolve(&tree).unwrap();
        let peer = BibConcept::PeerReviewed.resolve(&tree).unwrap();
        let raw: Interpretation = [journal, peer].into_iter().collect();
        assert_eq!(raw.len(), 2);
        assert!(!raw.is_specific(&tree));
    }
}
