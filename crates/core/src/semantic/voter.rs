//! The attribute-value semantic function used for the NC Voter experiments.
//!
//! Section 6.2: the semantic function for NC Voter is "based on the values in
//! the attributes race and gender, which have uncertain values like 'u'".
//! A record with known race and gender maps to the corresponding leaf of the
//! voter taxonomy; a record with an uncertain gender maps to the race-level
//! concept; a record with an uncertain race uses the `u` race subtree, and a
//! fully uncertain record maps to the root.

use sablock_datasets::Record;

use crate::error::{CoreError, Result};
use crate::semantic::{Interpretation, SemanticFunction};
use crate::taxonomy::voter::{race_gender_label, race_label, voter_taxonomy, KNOWN_GENDERS, RACES};
use crate::taxonomy::TaxonomyTree;

/// Semantic function mapping `(race, gender)` attribute values to concepts of
/// the voter taxonomy.
#[derive(Debug, Clone)]
pub struct VoterSemanticFunction {
    tree: TaxonomyTree,
    race_attribute: String,
    gender_attribute: String,
}

impl VoterSemanticFunction {
    /// Creates the function over the standard voter taxonomy and the default
    /// attribute names `race` and `gender`.
    pub fn default_voter() -> Self {
        Self {
            tree: voter_taxonomy(),
            race_attribute: "race".into(),
            gender_attribute: "gender".into(),
        }
    }

    /// Creates the function with custom attribute names, validating that the
    /// supplied tree has the expected voter structure.
    pub fn new(tree: TaxonomyTree, race_attribute: impl Into<String>, gender_attribute: impl Into<String>) -> Result<Self> {
        for race in RACES {
            if tree.concept(&race_label(race)).is_none() {
                return Err(CoreError::Taxonomy(format!("voter taxonomy is missing the concept '{}'", race_label(race))));
            }
            for gender in KNOWN_GENDERS {
                if tree.concept(&race_gender_label(race, gender)).is_none() {
                    return Err(CoreError::Taxonomy(format!(
                        "voter taxonomy is missing the concept '{}'",
                        race_gender_label(race, gender)
                    )));
                }
            }
        }
        Ok(Self {
            tree,
            race_attribute: race_attribute.into(),
            gender_attribute: gender_attribute.into(),
        })
    }

    fn normalize_code(&self, value: Option<&str>, known: &[&'static str]) -> &'static str {
        match value {
            Some(v) => {
                let lower = v.trim().to_ascii_lowercase();
                known.iter().find(|&&k| k == lower).copied().unwrap_or("u")
            }
            None => "u",
        }
    }
}

impl SemanticFunction for VoterSemanticFunction {
    fn taxonomy(&self) -> &TaxonomyTree {
        &self.tree
    }

    fn interpret(&self, record: &Record) -> Interpretation {
        let race = self.normalize_code(record.value(&self.race_attribute), &RACES);
        let gender = self.normalize_code(record.value(&self.gender_attribute), &["m", "f"]);

        // Known race + known gender → leaf; known race + uncertain gender →
        // race node; uncertain race is itself a race node with its own
        // subtree, so the same two rules apply to it.
        let concept = if gender == "u" {
            self.tree.concept(&race_label(race))
        } else {
            self.tree.concept(&race_gender_label(race, gender))
        };
        match concept {
            Some(c) => Interpretation::singleton(c),
            None => self.tree.root().map(Interpretation::singleton).unwrap_or_default(),
        }
    }

    fn name(&self) -> String {
        "voter-race-gender".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sablock_datasets::record::RecordBuilder;
    use sablock_datasets::{RecordId, Schema};
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::shared(["first_name", "last_name", "gender", "race"]).unwrap()
    }

    fn record(gender: Option<&str>, race: Option<&str>) -> sablock_datasets::Record {
        let mut builder = RecordBuilder::new(schema()).set("first_name", "pat").unwrap().set("last_name", "lee").unwrap();
        if let Some(g) = gender {
            builder = builder.set("gender", g).unwrap();
        }
        if let Some(r) = race {
            builder = builder.set("race", r).unwrap();
        }
        builder.build(RecordId(0))
    }

    #[test]
    fn known_values_map_to_leaves() {
        let zeta = VoterSemanticFunction::default_voter();
        let tree = zeta.taxonomy();
        let interp = zeta.interpret(&record(Some("f"), Some("b")));
        assert_eq!(interp.len(), 1);
        let concept = interp.concepts().next().unwrap();
        assert_eq!(tree.label(concept), Some("race b gender f"));
        assert!(tree.is_leaf(concept));
        assert!(interp.is_specific(tree));
    }

    #[test]
    fn uncertain_gender_maps_to_race_level() {
        let zeta = VoterSemanticFunction::default_voter();
        let tree = zeta.taxonomy();
        let interp = zeta.interpret(&record(Some("u"), Some("w")));
        let concept = interp.concepts().next().unwrap();
        assert_eq!(tree.label(concept), Some("race w"));
        assert!(!tree.is_leaf(concept));
    }

    #[test]
    fn uncertain_race_uses_u_subtree() {
        let zeta = VoterSemanticFunction::default_voter();
        let tree = zeta.taxonomy();
        let interp = zeta.interpret(&record(Some("m"), Some("u")));
        assert_eq!(tree.label(interp.concepts().next().unwrap()), Some("race u gender m"));
        let interp = zeta.interpret(&record(Some("u"), Some("u")));
        assert_eq!(tree.label(interp.concepts().next().unwrap()), Some("race u"));
    }

    #[test]
    fn missing_and_unknown_codes_are_uncertain() {
        let zeta = VoterSemanticFunction::default_voter();
        let tree = zeta.taxonomy();
        let interp = zeta.interpret(&record(None, None));
        assert_eq!(tree.label(interp.concepts().next().unwrap()), Some("race u"));
        // A bogus race code degrades to 'u', an upper-case known code works.
        let interp = zeta.interpret(&record(Some("M"), Some("xyz")));
        assert_eq!(tree.label(interp.concepts().next().unwrap()), Some("race u gender m"));
        let interp = zeta.interpret(&record(Some("F"), Some("W")));
        assert_eq!(tree.label(interp.concepts().next().unwrap()), Some("race w gender f"));
    }

    #[test]
    fn custom_construction_validates_tree() {
        let err = VoterSemanticFunction::new(TaxonomyTree::new("empty"), "race", "gender").unwrap_err();
        assert!(matches!(err, CoreError::Taxonomy(_)));
        let ok = VoterSemanticFunction::new(voter_taxonomy(), "race_code", "sex");
        assert!(ok.is_ok());
        assert_eq!(VoterSemanticFunction::default_voter().name(), "voter-race-gender");
    }

    #[test]
    fn semantic_dissimilarity_between_different_races() {
        // Two voters of different, known races must have unrelated concepts —
        // this is what lets SA-LSH filter textually-similar non-matches.
        let zeta = VoterSemanticFunction::default_voter();
        let tree = zeta.taxonomy();
        let a = zeta.interpret(&record(Some("m"), Some("w")));
        let b = zeta.interpret(&record(Some("m"), Some("b")));
        let ca = a.concepts().next().unwrap();
        let cb = b.concepts().next().unwrap();
        assert!(!tree.related(ca, cb));
    }
}
